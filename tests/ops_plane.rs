//! Live attribution properties of the serve ops plane.
//!
//! 1. **Sixteen attributable sessions** — a 16-session run against one
//!    shared [`tsvr_serve::Service`] is fully explainable afterwards
//!    through the protocol itself: labeled `stats` counters name every
//!    session and op, `trace` returns the span tree of a real request
//!    (by id and as "latest"), and a zero-threshold `slowlog` retained
//!    the traced requests.
//! 2. **Fault attribution** — a [`FaultyStorage`]-injected checkpoint
//!    failure produces an error response carrying the trace id of the
//!    failing request, and the flight-recorder dump written at the
//!    incident names that same trace in its header.
//!
//! Both tests mutate process-global observability state (registry,
//! slowlog, dump path), so they serialize on one mutex and reset the
//! registry up front.

use std::sync::{Arc, Barrier, Mutex};
use tsvr_core::{bundle_from_clip, prepare_clip, PipelineOptions};
use tsvr_serve::{Envelope, ErrorKind, Request, Response, Service, ServiceConfig};
use tsvr_sim::Scenario;
use tsvr_viddb::record::ClipBundle;
use tsvr_viddb::{ClipMeta, FaultKind, FaultyStorage, VideoDb};

static OBS_STATE: Mutex<()> = Mutex::new(());

fn make_bundle(clip_id: u64, seed: u64) -> ClipBundle {
    let clip = prepare_clip(&Scenario::tunnel_small(seed), &PipelineOptions::default());
    bundle_from_clip(
        &clip,
        ClipMeta {
            clip_id,
            name: format!("clip {clip_id}"),
            location: "tunnel-x".into(),
            camera: format!("cam-{clip_id}"),
            start_time: 1_167_609_600,
            frame_count: 400,
            width: clip.sim.width,
            height: clip.sim.height,
        },
    )
}

fn ask(service: &Service, req: Request) -> Response {
    service.handle(&Envelope::new(req))
}

/// One session: open, one page, one feedback round, close. Returns the
/// session id the server assigned.
fn run_session(service: &Service, clip_id: u64, learner: &str) -> u64 {
    let Response::Opened {
        session_id,
        windows,
        ..
    } = ask(
        service,
        Request::Open {
            clip_id,
            query: "accident".into(),
            learner: learner.into(),
        },
    )
    else {
        panic!("open failed")
    };
    let Response::Page { ranking, .. } = ask(
        service,
        Request::Page {
            session_id,
            n: Some(windows),
        },
    ) else {
        panic!("page failed")
    };
    let labels: Vec<(u32, bool)> = ranking
        .iter()
        .take(4)
        .map(|&w| (w as u32, w.is_multiple_of(3)))
        .collect();
    let resp = ask(service, Request::Feedback { session_id, labels });
    assert!(
        matches!(resp, Response::Learned { .. }),
        "feedback failed: {resp:?}"
    );
    ask(service, Request::Close { session_id });
    session_id
}

fn counter_value(snapshot: &tsvr_obs::Snapshot, name: &str) -> Option<u64> {
    snapshot
        .counters
        .iter()
        .find(|c| c.name == name)
        .map(|c| c.value)
}

#[test]
fn sixteen_sessions_are_fully_attributable_through_the_ops_plane() {
    let _guard = OBS_STATE.lock().unwrap();
    tsvr_obs::reset();
    tsvr_obs::trace::set_slow_threshold_ns(0); // retain every trace

    let mut db = VideoDb::in_memory();
    db.put_clip(&make_bundle(1, 41)).unwrap();
    db.put_clip(&make_bundle(2, 42)).unwrap();
    let service = Arc::new(Service::new(db, ServiceConfig::default()));

    // 4 clients x 4 sessions each, concurrently, over both clips and
    // both learners.
    let barrier = Arc::new(Barrier::new(4));
    let handles: Vec<_> = (0..4u64)
        .map(|client| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                (0..4u64)
                    .map(|i| {
                        let clip = 1 + (client + i) % 2;
                        let learner = if i % 2 == 0 { "ocsvm" } else { "wrf" };
                        run_session(&service, clip, learner)
                    })
                    .collect::<Vec<u64>>()
            })
        })
        .collect();
    let session_ids: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    assert_eq!(session_ids.len(), 16);

    // --- stats: every op and every session shows up, labeled.
    let Response::Stats { snapshot } = ask(&service, Request::Stats) else {
        panic!("stats failed")
    };
    if tsvr_obs::is_enabled() {
        for op in ["open", "page", "feedback", "close", "stats"] {
            let n = counter_value(&snapshot, &format!("serve.requests{{op={op}}}"))
                .unwrap_or_else(|| panic!("no serve.requests{{op={op}}} counter"));
            assert!(n >= 1, "op={op} counted {n}");
        }
        for &sid in &session_ids {
            let name = format!("serve.rounds.checkpointed{{session={sid}}}");
            assert_eq!(
                counter_value(&snapshot, &name),
                Some(1),
                "session {sid} round not attributed in stats"
            );
        }
        let lat = snapshot
            .histograms
            .iter()
            .find(|h| h.name == "serve.latency{op=feedback}")
            .expect("no labeled feedback latency histogram");
        assert!(lat.count >= 16, "feedback latency count {}", lat.count);
    } else {
        assert!(snapshot.counters.is_empty() && snapshot.histograms.is_empty());
    }

    // --- trace: the latest finished trace is retrievable, and fetching
    // it again by id returns the same tree.
    match ask(&service, Request::Trace { trace_id: None }) {
        Response::Trace { trace } => {
            assert!(tsvr_obs::is_enabled());
            assert!(
                trace.name.starts_with("serve.latency."),
                "unexpected root span {:?}",
                trace.name
            );
            let tree = trace.render_tree();
            assert!(tree.contains("serve.latency."), "tree: {tree}");
            let Response::Trace { trace: again } = ask(
                &service,
                Request::Trace {
                    trace_id: Some(trace.trace),
                },
            ) else {
                panic!("trace by id failed")
            };
            assert_eq!(again, trace, "trace changed between fetches");
        }
        Response::Error(e) => {
            assert!(!tsvr_obs::is_enabled(), "trace failed: {e}");
            assert_eq!(e.kind, ErrorKind::NotFound);
        }
        other => panic!("unexpected trace response {other:?}"),
    }
    // A bogus id is a NotFound error, not a panic or a wrong trace.
    match ask(
        &service,
        Request::Trace {
            trace_id: Some(u64::MAX >> 13),
        },
    ) {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::NotFound),
        other => panic!("bogus trace id returned {other:?}"),
    }

    // --- slowlog: at threshold 0 every traced request was retained.
    let Response::Slowlog {
        threshold_ns,
        entries,
    } = ask(&service, Request::Slowlog)
    else {
        panic!("slowlog failed")
    };
    if tsvr_obs::is_enabled() {
        assert_eq!(threshold_ns, 0);
        assert!(!entries.is_empty(), "zero-threshold slowlog is empty");
        // The setup's own prepare_clip roots may be retained too; the
        // served requests must be among the entries.
        assert!(
            entries.iter().any(|e| e.name.starts_with("serve.latency.")),
            "no serve request in slowlog: {:?}",
            entries.iter().map(|e| &e.name).collect::<Vec<_>>()
        );
    } else {
        assert!(entries.is_empty());
    }

    tsvr_obs::trace::set_slow_threshold_ns(u64::MAX);
}

#[test]
fn checkpoint_fault_errors_carry_the_trace_and_dump_the_flight_recorder() {
    let _guard = OBS_STATE.lock().unwrap();
    if !tsvr_obs::is_enabled() {
        return; // incidents and dumps compile to no-ops
    }
    tsvr_obs::reset();

    // Seed image: one stored clip, synced.
    let bundle = make_bundle(1, 43);
    let seed_image = {
        let (storage, handle) = FaultyStorage::new(7);
        let mut db = VideoDb::with_storage(Box::new(storage)).unwrap();
        db.put_clip(&bundle).unwrap();
        db.sync().unwrap();
        handle.snapshot()
    };

    // Fault-free run: find which storage ops belong to the feedback
    // checkpoint (everything after open+page).
    let drive = |service: &Service| -> Response {
        let Response::Opened {
            session_id,
            windows,
            ..
        } = ask(
            service,
            Request::Open {
                clip_id: 1,
                query: "accident".into(),
                learner: "ocsvm".into(),
            },
        )
        else {
            panic!("open failed")
        };
        let Response::Page { ranking, .. } = ask(
            service,
            Request::Page {
                session_id,
                n: Some(windows),
            },
        ) else {
            panic!("page failed")
        };
        let labels: Vec<(u32, bool)> = ranking
            .iter()
            .take(4)
            .map(|&w| (w as u32, w.is_multiple_of(3)))
            .collect();
        ask(service, Request::Feedback { session_id, labels })
    };
    let (ops_before_feedback, ops_total) = {
        let (storage, handle) = FaultyStorage::with_image(seed_image.clone(), 7);
        let db = VideoDb::with_storage(Box::new(storage)).unwrap();
        let service = Service::new(db, ServiceConfig::default());
        // Re-run drive() but capture the op count between page and
        // feedback: simplest is one extra fault-free run that stops
        // after page.
        let Response::Opened {
            session_id,
            windows,
            ..
        } = ask(
            &service,
            Request::Open {
                clip_id: 1,
                query: "accident".into(),
                learner: "ocsvm".into(),
            },
        )
        else {
            panic!("open failed")
        };
        let Response::Page { .. } = ask(
            &service,
            Request::Page {
                session_id,
                n: Some(windows),
            },
        ) else {
            panic!("page failed")
        };
        let before = handle.op_count();
        let resp = ask(
            &service,
            Request::Feedback {
                session_id,
                labels: vec![(0, true), (3, false)],
            },
        );
        assert!(matches!(resp, Response::Learned { .. }), "baseline: {resp:?}");
        (before, handle.op_count())
    };
    assert!(
        ops_total > ops_before_feedback,
        "feedback performed no storage ops"
    );

    let dump_path = std::env::temp_dir().join(format!(
        "tsvr-ops-plane-dump-{}.ndjson",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&dump_path);
    tsvr_obs::trace::set_dump_path(Some(dump_path.clone()));

    // Inject a sync failure at each checkpoint-phase op until one makes
    // the feedback round non-durable.
    let mut attributed = false;
    for fault_at in ops_before_feedback..ops_total {
        let _ = std::fs::remove_file(&dump_path);
        let (storage, handle) = FaultyStorage::with_image(seed_image.clone(), 7);
        handle.schedule(fault_at, FaultKind::SyncFail);
        let db = VideoDb::with_storage(Box::new(storage)).unwrap();
        let service = Service::new(db, ServiceConfig::default());
        let Response::Error(e) = drive(&service) else {
            continue; // fault landed on a retryable/reread op
        };
        assert_eq!(e.kind, ErrorKind::Storage, "unexpected error: {e}");
        let trace_id = e
            .trace
            .unwrap_or_else(|| panic!("storage error carries no trace id: {e}"));

        // The incident dumped the flight recorder, and the dump header
        // names the failing trace.
        let dump = std::fs::read_to_string(&dump_path)
            .expect("checkpoint failure left no flight dump");
        let header = dump.lines().next().expect("empty flight dump");
        let parsed = tsvr_obs::json::Json::parse(header).expect("dump header is not JSON");
        assert_eq!(
            parsed.get("reason").and_then(tsvr_obs::json::Json::as_str),
            Some("serve.checkpoint.failed"),
            "header: {header}"
        );
        assert_eq!(
            parsed.get("trace").and_then(tsvr_obs::json::Json::as_u64),
            Some(trace_id),
            "dump does not name the failing trace: {header}"
        );
        // The recorder payload contains the checkpoint incident itself.
        assert!(
            dump.contains("serve.checkpoint.failed"),
            "incident missing from dump"
        );
        attributed = true;
        break;
    }
    assert!(
        attributed,
        "no injected fault in ops {ops_before_feedback}..{ops_total} surfaced as a checkpoint error"
    );

    tsvr_obs::trace::set_dump_path(None);
    let _ = std::fs::remove_file(&dump_path);
}
