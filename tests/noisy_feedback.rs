//! Integration: robustness of the interactive loop to imperfect users.
//!
//! The paper assumes a cooperative human; a deployed system gets
//! mislabeled feedback. The one-class formulation with Eq. 9's δ should
//! degrade gracefully rather than collapse.

use std::sync::OnceLock;
use tsvr::core::{prepare_clip, ClipArtifacts, EventQuery, LearnerKind, PipelineOptions};
use tsvr::mil::oracle::NoisyOracle;
use tsvr::mil::{GroundTruthOracle, Oracle, RetrievalSession, SessionConfig};
use tsvr::sim::Scenario;

fn shared_clip() -> &'static ClipArtifacts {
    static CLIP: OnceLock<ClipArtifacts> = OnceLock::new();
    CLIP.get_or_init(|| prepare_clip(&Scenario::tunnel_small(66), &PipelineOptions::default()))
}

fn run_with_error_rate(rate: f64, seed: u64) -> f64 {
    let clip = shared_clip();
    let truth = GroundTruthOracle::new(clip.labels(&EventQuery::accidents()));
    let noisy = NoisyOracle::new(truth.clone(), rate, seed);
    let cfg = SessionConfig {
        top_n: 5,
        feedback_rounds: 3,
        ..SessionConfig::default()
    };
    let (report, _) = RetrievalSession::new(
        &clip.bags,
        LearnerKind::paper_ocsvm().build_for(&clip.bags),
        &noisy,
        cfg,
    )
    .run();
    // Score the final ranking against the TRUE labels, regardless of
    // the noisy labels used for training.
    let labels = clip.labels(&EventQuery::accidents());
    tsvr::mil::metrics::accuracy_at(report.rankings.last().unwrap(), &labels, 5)
}

#[test]
fn noiseless_oracle_matches_ground_truth_session() {
    let clip = shared_clip();
    let truth = GroundTruthOracle::new(clip.labels(&EventQuery::accidents()));
    let noisy = NoisyOracle::new(truth.clone(), 0.0, 1);
    for i in 0..clip.bags.len() {
        assert_eq!(truth.label(i), noisy.label(i));
    }
    let clean = run_with_error_rate(0.0, 1);
    assert!(clean > 0.0);
}

#[test]
fn mild_label_noise_degrades_gracefully() {
    let clean = run_with_error_rate(0.0, 3);
    // Average over a few noise seeds to avoid cherry-picking.
    let noisy: f64 = (0..4).map(|s| run_with_error_rate(0.1, s)).sum::<f64>() / 4.0;
    assert!(
        noisy >= clean * 0.5,
        "10% label noise halved retrieval quality: clean {clean}, noisy {noisy}"
    );
}

#[test]
fn heavy_noise_still_terminates() {
    // Even a 50%-random user must not panic or hang the session.
    let acc = run_with_error_rate(0.5, 9);
    assert!((0.0..=1.0).contains(&acc));
}
