//! Cross-crate integration tests: the full pipeline from simulation to
//! interactive retrieval, exercised through the public facade.

use std::sync::OnceLock;
use tsvr::core::{
    prepare_clip, run_session, ClipArtifacts, EventQuery, LearnerKind, PipelineOptions,
};
use tsvr::mil::SessionConfig;
use tsvr::sim::{Scenario, World};

fn shared_clip() -> &'static ClipArtifacts {
    static CLIP: OnceLock<ClipArtifacts> = OnceLock::new();
    CLIP.get_or_init(|| prepare_clip(&Scenario::tunnel_small(77), &PipelineOptions::default()))
}

#[test]
fn pipeline_produces_consistent_artifacts() {
    let clip = shared_clip();
    assert_eq!(clip.sim.frames.len(), 400);
    assert!(!clip.vision.tracks.is_empty());
    assert_eq!(clip.bags.len(), clip.dataset.window_count());
    // Every bag's instances reference tracks that exist.
    let track_ids: Vec<u64> = clip.vision.tracks.iter().map(|t| t.id).collect();
    for bag in &clip.bags {
        for inst in &bag.instances {
            assert!(
                track_ids.contains(&inst.key),
                "instance references unknown track"
            );
        }
    }
}

#[test]
fn windows_tile_the_clip_in_order() {
    let clip = shared_clip();
    let mut prev_end = 0;
    for w in &clip.dataset.windows {
        assert!(w.start_frame >= prev_end || w.index == 0);
        assert_eq!(
            w.end_frame - w.start_frame + 1,
            15,
            "paper window = 15 frames"
        );
        prev_end = w.start_frame;
    }
}

#[test]
fn vision_sees_the_simulated_traffic() {
    let clip = shared_clip();
    // Every long-lived simulated vehicle should have produced a track.
    let mut sim_spans: std::collections::HashMap<u64, u32> = Default::default();
    for f in &clip.sim.frames {
        for v in &f.vehicles {
            *sim_spans.entry(v.id).or_default() += 1;
        }
    }
    let long_lived = sim_spans.values().filter(|&&n| n > 60).count();
    assert!(
        clip.vision.tracks.len() + 2 >= long_lived,
        "{} tracks for {} long-lived vehicles",
        clip.vision.tracks.len(),
        long_lived
    );
}

#[test]
fn accident_retrieval_beats_chance_after_feedback() {
    let clip = shared_clip();
    let labels = clip.labels(&EventQuery::accidents());
    let relevant = labels.iter().filter(|&&l| l).count();
    assert!(relevant >= 2, "scenario scripted 2 accidents");
    let report = run_session(
        clip,
        &EventQuery::accidents(),
        LearnerKind::paper_ocsvm(),
        SessionConfig {
            top_n: 5,
            feedback_rounds: 3,
            ..SessionConfig::default()
        },
    );
    let base_rate = relevant as f64 / clip.bags.len() as f64;
    let final_acc = *report.accuracies.last().unwrap();
    assert!(
        final_acc > base_rate,
        "final accuracy {final_acc} does not beat base rate {base_rate}"
    );
    assert!(
        final_acc >= report.accuracies[0] - 1e-9,
        "feedback made things worse"
    );
}

#[test]
fn different_queries_give_different_labels() {
    let clip = shared_clip();
    let accidents = clip.labels(&EventQuery::accidents());
    let speeding = clip.labels(&EventQuery::speeding());
    // tunnel_small schedules accidents only, so the speeding query has
    // no relevant windows.
    assert!(accidents.iter().any(|&l| l));
    assert!(!speeding.iter().any(|&l| l));
}

#[test]
fn all_learners_complete_a_session() {
    let clip = shared_clip();
    for kind in [
        LearnerKind::paper_ocsvm(),
        LearnerKind::paper_weighted_rf(),
        LearnerKind::DiverseDensity { scale: 8.0 },
        LearnerKind::EmDd { scale: 8.0 },
        LearnerKind::MiSvm { c: 10.0 },
    ] {
        let report = run_session(
            clip,
            &EventQuery::accidents(),
            kind,
            SessionConfig {
                top_n: 5,
                feedback_rounds: 2,
                ..SessionConfig::default()
            },
        );
        assert_eq!(report.accuracies.len(), 3, "{kind:?}");
        // A ranking must be a permutation of bag ids.
        let mut last = report.rankings.last().unwrap().clone();
        last.sort_unstable();
        let expect: Vec<usize> = (0..clip.bags.len()).collect();
        assert_eq!(last, expect, "{kind:?} ranking is not a permutation");
    }
}

#[test]
fn paper_presets_have_paper_scale() {
    // Simulation only (no rendering) to keep this fast in debug builds.
    let t = World::run(Scenario::tunnel_paper(1));
    assert_eq!(t.frames.len(), 2504);
    let i = World::run(Scenario::intersection_paper(1));
    assert_eq!(i.frames.len(), 592);
    assert!(t.incidents.iter().any(|r| r.kind.is_accident()));
    assert!(i.incidents.iter().any(|r| r.kind.is_accident()));
}
