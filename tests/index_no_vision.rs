//! Integration: an index-served query performs zero vision work.
//!
//! Asserted through the observability layer: after the one-time cold
//! extraction that builds the index, serving a query from the stored
//! segment must not advance `vision.frames` (per-frame segmentation) at
//! all, while the `index.hit` probe confirms the segment actually
//! served. This lives in its own test binary so no concurrently running
//! test can touch the process-global vision counters mid-measurement.

use tsvr::core::{
    bags_from_dataset, build_index, bundle_from_clip, heuristic_topk, load_index, prepare_clip,
    ClipWindows, PipelineOptions,
};
use tsvr::sim::Scenario;
use tsvr::viddb::{ClipMeta, VideoDb};

#[test]
fn index_served_query_does_no_vision_or_segmentation_work() {
    if !tsvr_obs::is_enabled() {
        return; // probes compiled out; nothing to measure
    }

    // Cold, once: simulate + vision + extraction, then persist.
    let clip = prepare_clip(&Scenario::tunnel_small(55), &PipelineOptions::default());
    let wcfg = clip.dataset.config;
    let mut db = VideoDb::in_memory();
    db.put_clip(&bundle_from_clip(
        &clip,
        ClipMeta {
            clip_id: 1,
            name: "novision".into(),
            location: "tunnel".into(),
            camera: "cam-0".into(),
            start_time: 0,
            frame_count: 400,
            width: 320,
            height: 240,
        },
    ))
    .unwrap();
    build_index(&mut db, 1, &clip.dataset).unwrap();

    let frames_before = tsvr_obs::counter!("vision.frames").get();
    assert!(frames_before > 0, "cold extraction did not count frames");
    let hits_before = tsvr_obs::counter!("index.hit").get();
    let pushed_before = tsvr_obs::counter!("query.topk.pushed").get();

    // Serve the query entirely from the stored segment.
    let ds = load_index(&mut db, 1, &wcfg).unwrap().expect("fresh index");
    let top = heuristic_topk(
        &[ClipWindows {
            clip_id: 1,
            bags: bags_from_dataset(&ds),
        }],
        5,
    );
    assert!(!top.is_empty());

    assert_eq!(
        tsvr_obs::counter!("vision.frames").get(),
        frames_before,
        "index-served query ran per-frame segmentation"
    );
    assert_eq!(
        tsvr_obs::counter!("index.hit").get(),
        hits_before + 1,
        "query was not actually served from the index"
    );
    assert!(
        tsvr_obs::counter!("query.topk.pushed").get() > pushed_before,
        "top-k merge left no probe trace"
    );
}
