//! Property tests for the tracing wire formats.
//!
//! 1. **JSON round-trip** — randomly generated [`Event`]s and
//!    [`FinishedTrace`]s survive encode → parse exactly, including
//!    awkward strings (quotes, backslashes, control characters,
//!    non-ASCII) and extreme numeric values.
//! 2. **Corruption rejection** — truncating or mangling an encoded line
//!    never panics the parser; it either round-trips to the same value
//!    (when the damage hit insignificant whitespace) or returns `Err`.
//! 3. **Flight-recorder wraparound** — hammering a small ring from many
//!    threads never tears an event and never loses per-trace ordering
//!    (the dedicated concurrent test lives in `crates/obs/tests`; here
//!    the single-threaded wrap arithmetic is property-checked across
//!    random capacities and write counts).

use tsvr_obs::trace::{Event, EventKind, FinishedTrace, FlightRecorder};
use tsvr_sim::check;
use tsvr_sim::rng::Pcg32;

/// A string that exercises JSON escaping: quotes, backslashes, newlines,
/// control characters, and some multi-byte UTF-8.
fn awkward_string(rng: &mut Pcg32) -> String {
    const PIECES: &[&str] = &[
        "plain", "with \"quotes\"", "back\\slash", "new\nline", "tab\there", "\u{1}\u{1f}",
        "naïve", "日本語", "{na:me}", "", "a,b:c[d]e",
    ];
    let n = check::len_in(rng, 0, 4);
    (0..n)
        .map(|_| PIECES[rng.uniform_usize(PIECES.len())])
        .collect()
}

fn random_u64(rng: &mut Pcg32) -> u64 {
    // Mix of small ids, bucket boundaries, and huge values. u64::MAX
    // itself is excluded: the f64-backed JSON number saturates there,
    // which is exercised by the dedicated slowlog-threshold tests.
    match rng.uniform_usize(4) {
        0 => rng.uniform_usize(10) as u64,
        1 => rng.next_u32() as u64,
        2 => u64::MAX >> 12, // still exactly representable in f64
        _ => rng.next_u64() >> 11,
    }
}

fn random_event(rng: &mut Pcg32) -> Event {
    Event {
        seq: random_u64(rng),
        kind: if rng.chance(0.3) {
            EventKind::Incident
        } else {
            EventKind::Span
        },
        trace: random_u64(rng),
        span: random_u64(rng),
        parent: random_u64(rng),
        name: awkward_string(rng).into(),
        detail: awkward_string(rng).into(),
        start_ns: random_u64(rng),
        dur_ns: random_u64(rng),
    }
}

fn random_trace(rng: &mut Pcg32) -> FinishedTrace {
    let n = check::len_in(rng, 0, 12);
    FinishedTrace {
        trace: random_u64(rng),
        name: awkward_string(rng).into(),
        dur_ns: random_u64(rng),
        events: (0..n).map(|_| random_event(rng)).collect(),
        dropped: rng.uniform_usize(600) as u64,
    }
}

#[test]
fn events_round_trip_through_json_lines() {
    check::cases(256, |case, rng| {
        let ev = random_event(rng);
        let line = ev.to_json_line();
        let back = Event::parse_line(&line).unwrap_or_else(|e| {
            panic!("case {case}: parse of own encoding failed: {e}\nline: {line}")
        });
        assert_eq!(back, ev, "case {case}: event changed through {line}");
    });
}

#[test]
fn finished_traces_round_trip_through_json() {
    check::cases(128, |case, rng| {
        let t = random_trace(rng);
        let v = t.to_json_value();
        let back = FinishedTrace::from_json_value(&v)
            .unwrap_or_else(|e| panic!("case {case}: parse failed: {e}"));
        assert_eq!(back, t, "case {case}: trace changed through JSON");
        // The rendered tree never panics, whatever the parent links are.
        let _ = back.render_tree();
    });
}

#[test]
fn corrupted_lines_error_instead_of_panicking() {
    check::cases(256, |_case, rng| {
        let ev = random_event(rng);
        let line = ev.to_json_line();
        let bytes = line.as_bytes();
        // Truncate at a random byte boundary...
        let cut = rng.uniform_usize(bytes.len());
        if let Ok(s) = std::str::from_utf8(&bytes[..cut]) {
            if let Ok(back) = Event::parse_line(s) {
                // Only a cut inside trailing whitespace can still parse.
                assert_eq!(back, ev);
            }
        }
        // ...and flip one byte to another printable character.
        let mut mangled = bytes.to_vec();
        let at = rng.uniform_usize(mangled.len());
        mangled[at] = b' ' + (rng.uniform_usize(94) as u8);
        if let Ok(s) = std::str::from_utf8(&mangled) {
            // Must not panic; a still-valid parse is fine (the flip may
            // have landed in a string payload).
            let _ = Event::parse_line(s);
        }
    });
}

#[test]
fn flight_recorder_wrap_keeps_the_newest_events_in_seq_order() {
    check::cases(64, |case, rng| {
        let cap = check::len_in(rng, 1, 33);
        let writes = check::len_in(rng, 0, 4 * cap + 1);
        let rec = FlightRecorder::with_capacity(cap);
        for i in 0..writes {
            let mut ev = random_event(rng);
            ev.start_ns = i as u64; // self-describing payload
            rec.record(ev);
        }
        assert_eq!(rec.recorded(), writes as u64, "case {case}");
        let events = rec.events();
        assert_eq!(events.len(), writes.min(cap), "case {case}");
        // Exactly the newest `cap` events survive, in ascending seq
        // order, and each one's payload is untorn.
        let oldest = writes.saturating_sub(cap);
        for (k, ev) in events.iter().enumerate() {
            assert_eq!(ev.seq, (oldest + k) as u64, "case {case}: seq gap");
            assert_eq!(ev.start_ns, (oldest + k) as u64, "case {case}: payload mismatch");
        }
    });
}
