//! Integration: the entire system is a pure function of the scenario
//! seed — the property every experiment in EXPERIMENTS.md relies on.

use tsvr::core::{prepare_clip, run_session, EventQuery, LearnerKind, PipelineOptions};
use tsvr::mil::SessionConfig;
use tsvr::sim::Scenario;

#[test]
fn identical_seeds_identical_everything() {
    let a = prepare_clip(&Scenario::tunnel_small(88), &PipelineOptions::default());
    let b = prepare_clip(&Scenario::tunnel_small(88), &PipelineOptions::default());
    assert_eq!(a.sim.incidents, b.sim.incidents);
    assert_eq!(a.vision.tracks, b.vision.tracks);
    assert_eq!(a.bags, b.bags);

    let cfg = SessionConfig {
        top_n: 5,
        feedback_rounds: 2,
        ..SessionConfig::default()
    };
    let ra = run_session(
        &a,
        &EventQuery::accidents(),
        LearnerKind::paper_ocsvm(),
        cfg,
    );
    let rb = run_session(
        &b,
        &EventQuery::accidents(),
        LearnerKind::paper_ocsvm(),
        cfg,
    );
    assert_eq!(ra.accuracies, rb.accuracies);
    assert_eq!(ra.rankings, rb.rankings);
}

#[test]
fn different_seeds_differ() {
    let a = prepare_clip(&Scenario::tunnel_small(88), &PipelineOptions::default());
    let b = prepare_clip(&Scenario::tunnel_small(89), &PipelineOptions::default());
    assert_ne!(a.bags, b.bags);
}
