//! Integration: the scenario fleet behaves like production data.
//!
//! Four properties, one per test:
//!
//! 1. **Thread-count identity** — every fleet member runs the full
//!    pipeline (world → vision → features → bags) bit-identically with
//!    the parallel runtime pinned to 1 thread and to 4.
//! 2. **Crash-safe ingest** — a cross-camera fleet ingest into a
//!    [`ShardedDb`] survives a torn-tail crash at every op boundary:
//!    no shard is quarantined, recovery verifies clean, and synced
//!    clips serve byte-identically.
//! 3. **Oracle round trip through serve** — feeding a serve session the
//!    ground-truth oracle's labels through the `feedback` op produces
//!    exactly the ranking an in-process [`RetrievalSession`] reaches
//!    with the same oracle.
//! 4. **Noise monotonicity** (property test on the in-tree harness) —
//!    expected precision@20 degrades monotonically in the label-noise
//!    rate and the all-noise session never panics.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use tsvr::core::{
    bundle_from_clip, labels_from_bundle, prepare_clip, segment_from_dataset, ClipArtifacts,
    EventQuery, LearnerKind, PipelineOptions,
};
use tsvr::mil::metrics::precision_at;
use tsvr::mil::oracle::NoisyOracle;
use tsvr::mil::{GroundTruthOracle, RetrievalSession, SessionConfig};
use tsvr::sim::{fleet, Scenario};
use tsvr::viddb::record::ClipBundle;
use tsvr::viddb::{ClipMeta, ShardedDb, VideoDb};
use tsvr_serve::{Envelope, Request, Response, Service, ServiceConfig};

/// A fleet member's scenario shortened for test budgets: the first
/// target incident (frame ~110) and the early distractors survive the
/// cut, the second strike does not.
fn short_scenario(name: &str, seed: u64) -> Scenario {
    let mut s = fleet::scenario(name, seed).expect("fleet member");
    s.total_frames = s.total_frames.min(280);
    s
}

fn meta_for(clip_id: u64, camera: &str, clip: &ClipArtifacts) -> ClipMeta {
    ClipMeta {
        clip_id,
        name: format!("fleet clip {clip_id}"),
        location: "fleet".into(),
        camera: camera.into(),
        start_time: 0,
        frame_count: clip.sim.frames.len() as u32,
        width: clip.sim.width,
        height: clip.sim.height,
    }
}

/// Two cached fleet clips from different members (and later, different
/// cameras) shared across the tests in this binary.
fn fleet_clips() -> &'static (ClipArtifacts, ClipArtifacts) {
    static CLIPS: OnceLock<(ClipArtifacts, ClipArtifacts)> = OnceLock::new();
    CLIPS.get_or_init(|| {
        (
            prepare_clip(&short_scenario("wrong_way", 2007), &PipelineOptions::default()),
            prepare_clip(&short_scenario("pedestrian", 2007), &PipelineOptions::default()),
        )
    })
}

#[test]
fn every_fleet_member_is_thread_count_invariant() {
    let saved = tsvr_par::current_threads();
    for m in fleet::members() {
        let scenario = short_scenario(m.name, 11);
        tsvr_par::set_threads(1);
        let a = prepare_clip(&scenario, &PipelineOptions::default());
        tsvr_par::set_threads(4);
        let b = prepare_clip(&scenario, &PipelineOptions::default());
        assert_eq!(a.sim.frames, b.sim.frames, "{}: frames diverged", m.name);
        assert_eq!(a.sim.incidents, b.sim.incidents, "{}: incidents diverged", m.name);
        assert_eq!(a.bags, b.bags, "{}: bags diverged across thread counts", m.name);
        assert_eq!(
            a.dataset.window_count(),
            b.dataset.window_count(),
            "{}: window count diverged",
            m.name
        );
    }
    tsvr_par::set_threads(saved);
}

/// One step of the cross-camera fleet ingest workload.
enum Op {
    PutA,
    IndexA,
    PutB,
    IndexB,
    Sync,
}

fn script() -> Vec<Op> {
    vec![Op::PutA, Op::IndexA, Op::Sync, Op::PutB, Op::IndexB, Op::Sync]
}

fn temp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("tsvr-fleet-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Runs the first `upto` ops; returns clips known fully synced (the
/// strong survivors — unsynced ones are merely *allowed* to survive).
fn run_prefix(
    dir: &Path,
    upto: usize,
    a: &ClipBundle,
    b: &ClipBundle,
) -> BTreeMap<u64, ClipBundle> {
    let (clip_a, clip_b) = fleet_clips();
    let mut db = ShardedDb::open_with_bucket(dir, 3600).unwrap();
    let mut pending: BTreeMap<u64, ClipBundle> = BTreeMap::new();
    let mut synced = BTreeMap::new();
    for op in script().into_iter().take(upto) {
        match op {
            Op::PutA => {
                db.put_clip(a).unwrap();
                pending.insert(a.meta.clip_id, a.clone());
            }
            Op::IndexA => db
                .put_index(&segment_from_dataset(a.meta.clip_id, &clip_a.dataset))
                .unwrap(),
            Op::PutB => {
                db.put_clip(b).unwrap();
                pending.insert(b.meta.clip_id, b.clone());
            }
            Op::IndexB => db
                .put_index(&segment_from_dataset(b.meta.clip_id, &clip_b.dataset))
                .unwrap(),
            Op::Sync => {
                db.sync().unwrap();
                synced.append(&mut pending);
            }
        }
    }
    synced
}

#[test]
fn fleet_ingest_survives_crash_at_every_op() {
    let (clip_a, clip_b) = fleet_clips();
    let a = bundle_from_clip(clip_a, meta_for(1, "cam-a", clip_a));
    let b = bundle_from_clip(clip_b, meta_for(2, "cam-b", clip_b));
    let total = script().len();
    let mut tear_rng = 0x5eed_2007_u64;

    for k in 1..=total {
        let dir = temp_dir(&format!("sweep-{k}"));
        let synced = run_prefix(&dir, k, &a, &b);

        // Crash: tear the tail of a rotating victim file.
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        let victim = files[k % files.len()].clone();
        tear_rng ^= tear_rng << 13;
        tear_rng ^= tear_rng >> 7;
        tear_rng ^= tear_rng << 17;
        let len = std::fs::metadata(&victim).unwrap().len();
        let keep = len.saturating_sub(1 + tear_rng % 48);
        let f = std::fs::OpenOptions::new().write(true).open(&victim).unwrap();
        f.set_len(keep).unwrap();
        drop(f);
        let victim_name = victim.file_name().unwrap().to_str().unwrap().to_string();

        let mut db = ShardedDb::open_with_bucket(&dir, 3600)
            .unwrap_or_else(|e| panic!("crash point {k}: reopen failed: {e}"));
        assert!(
            db.quarantined_shards().is_empty(),
            "crash point {k}: torn tail quarantined a shard: {:?}",
            db.quarantined_shards()
        );
        for (file, report) in db.verify().unwrap() {
            assert!(report.is_clean(), "crash point {k}: {file} dirty: {report:?}");
        }
        // Synced clips outside the torn file must serve byte-perfect;
        // clips inside it may only lose their tail records, never
        // serve corrupt data.
        for (id, want) in &synced {
            let in_victim = db
                .shard_of_clip(*id)
                .map(|f| f == victim_name)
                .unwrap_or(true);
            match db.load_clip(*id) {
                Ok(got) => assert_eq!(*got, *want, "crash point {k}: clip {id} differs"),
                Err(e) => assert!(
                    in_victim,
                    "crash point {k}: clip {id} lost outside the torn file: {e}"
                ),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn oracle_labels_round_trip_through_serve_feedback() {
    let (clip, _) = fleet_clips();
    let query = EventQuery::for_kind(tsvr::sim::IncidentKind::WrongWay);
    let bundle = bundle_from_clip(clip, meta_for(1, "cam-a", clip));
    let labels = labels_from_bundle(&bundle, &query);
    assert!(labels.iter().any(|&l| l), "no relevant windows to label");

    let mut db = VideoDb::in_memory();
    db.put_clip(&bundle).unwrap();
    let service = Service::new(db, ServiceConfig::default());
    let ask = |req: Request| service.handle(&Envelope::new(req));

    let Response::Opened { session_id, windows, .. } = ask(Request::Open {
        clip_id: 1,
        query: query.name.into(),
        learner: "ocsvm".into(),
    }) else {
        panic!("open failed")
    };
    assert_eq!(windows, clip.bags.len());

    // Serve the full initial page and answer the top of it with the
    // ground-truth oracle, exactly as the session protocol would.
    let top_n = 6;
    let Response::Page { ranking, .. } = ask(Request::Page {
        session_id,
        n: Some(windows),
    }) else {
        panic!("page failed")
    };
    let feedback: Vec<(u32, bool)> = ranking
        .iter()
        .take(top_n)
        .map(|&w| (w as u32, labels[w as usize]))
        .collect();
    let learned = ask(Request::Feedback { session_id, labels: feedback });
    assert_eq!(learned, Response::Learned { session_id, round: 1 });
    let Response::Page { ranking: served, .. } = ask(Request::Page {
        session_id,
        n: Some(windows),
    }) else {
        panic!("page failed")
    };

    // The in-process session with the same oracle must land on the
    // same post-feedback ranking.
    let oracle = GroundTruthOracle::new(labels);
    let (report, _) = RetrievalSession::new(
        &clip.bags,
        LearnerKind::paper_ocsvm().build_for(&clip.bags),
        &oracle,
        SessionConfig {
            top_n,
            feedback_rounds: 1,
            ..SessionConfig::default()
        },
    )
    .run();
    let expect: Vec<u64> = report
        .rankings
        .last()
        .unwrap()
        .iter()
        .map(|&w| w as u64)
        .collect();
    assert_eq!(served, expect, "serve feedback diverged from the in-process oracle session");
}

/// Mean precision@20 (scored against the TRUE labels) over a few noise
/// seeds at one error rate.
fn mean_precision_under_noise(bags: &[tsvr::mil::Bag], labels: &[bool], rate: f64) -> f64 {
    let truth = GroundTruthOracle::new(labels.to_vec());
    let seeds = 5;
    let total: f64 = (0..seeds)
        .map(|seed| {
            let noisy = NoisyOracle::new(truth.clone(), rate, seed);
            let (report, _) = RetrievalSession::new(
                bags,
                LearnerKind::paper_ocsvm().build_for(bags),
                &noisy,
                SessionConfig {
                    top_n: 10,
                    feedback_rounds: 2,
                    ..SessionConfig::default()
                },
            )
            .run();
            precision_at(report.rankings.last().unwrap(), labels, 20)
        })
        .sum();
    total / seeds as f64
}

#[test]
fn precision_degrades_monotonically_in_expectation_under_label_noise() {
    // Precision@20 is only order-sensitive when the pool is bigger
    // than the page, so rank both fleet clips together: the pedestrian
    // clip's windows are pure distractors for the wrong-way query.
    let (a, b) = fleet_clips();
    let mut bags = a.bags.clone();
    bags.extend(b.bags.iter().cloned());
    let mut labels = a.labels(&EventQuery::for_kind(tsvr::sim::IncidentKind::WrongWay));
    labels.extend(std::iter::repeat_n(false, b.bags.len()));
    assert!(bags.len() > 20, "pool must exceed the page size");
    let rates = [0.0, 0.25, 0.5, 1.0];
    let means: Vec<f64> = rates
        .iter()
        .map(|&r| mean_precision_under_noise(&bags, &labels, r))
        .collect();
    eprintln!(
        "noise sweep: pool {} windows, {} relevant, means {means:?}",
        bags.len(),
        labels.iter().filter(|&&l| l).count()
    );
    for m in &means {
        assert!((0.0..=1.0).contains(m));
    }
    // Monotone in expectation: each step may wobble by a small seed
    // tolerance but never improve materially, and the all-noise end
    // must sit strictly below the clean end.
    for w in means.windows(2) {
        assert!(
            w[1] <= w[0] + 0.10,
            "noise increased precision: {means:?}"
        );
    }
    assert!(
        *means.last().unwrap() < means[0],
        "all-noise matched clean retrieval: {means:?}"
    );
}

#[test]
fn all_noise_oracle_never_panics_across_structures() {
    // The adversarial edge case swept with the in-tree property
    // harness: every label inverted, across random feedback depths,
    // page sizes and learners — sessions must terminate with a valid
    // ranking, never panic.
    let (a, b) = fleet_clips();
    let truth_a =
        GroundTruthOracle::new(a.labels(&EventQuery::for_kind(tsvr::sim::IncidentKind::WrongWay)));
    let truth_b = GroundTruthOracle::new(
        b.labels(&EventQuery::for_kind(tsvr::sim::IncidentKind::Pedestrian)),
    );
    tsvr::sim::check::cases(12, |case, rng| {
        let (clip, truth) = if case % 2 == 0 { (a, &truth_a) } else { (b, &truth_b) };
        let rounds = 1 + (rng.next_u32() as usize % 3);
        let top_n = 1 + (rng.next_u32() as usize % clip.bags.len().min(25));
        let kind = if case % 3 == 0 {
            LearnerKind::paper_weighted_rf()
        } else {
            LearnerKind::paper_ocsvm()
        };
        let noisy = NoisyOracle::new(truth.clone(), 1.0, case);
        let (report, _) = RetrievalSession::new(
            &clip.bags,
            kind.build_for(&clip.bags),
            &noisy,
            SessionConfig {
                top_n,
                feedback_rounds: rounds,
                ..SessionConfig::default()
            },
        )
        .run();
        assert_eq!(report.rankings.len(), rounds + 1);
        let last = report.rankings.last().unwrap();
        assert_eq!(last.len(), clip.bags.len());
        // Still a permutation of the bag ids.
        let mut seen = last.clone();
        seen.sort_unstable();
        assert!(seen.iter().enumerate().all(|(i, &b)| i == b));
    });
}
