//! Integration: the persistent feature index and the cross-clip query
//! engine built on it.
//!
//! * a stored index serves the *same bits* as cold extraction — across
//!   a process restart (file-backed reload) too;
//! * the cross-clip top-k is byte-identical at any thread count;
//! * a crash at any storage operation while an index is being written
//!   never damages the source clip, and the index afterwards is either
//!   absent (rebuildable) or fully valid — never torn.

use std::sync::Mutex;
use tsvr::core::{
    bags_from_dataset, build_index, bundle_from_clip, heuristic_topk, learner_topk, load_index,
    prepare_clip, ClipWindows, EventQuery, LearnerKind, PipelineOptions, RankedWindow,
};
use tsvr::sim::Scenario;
use tsvr::trajectory::{Dataset, WindowConfig};
use tsvr::viddb::{ClipMeta, FaultKind, FaultyStorage, MemStorage, VideoDb};

/// `set_threads` is process-global; tests that flip it serialize.
static THREADS: Mutex<()> = Mutex::new(());

fn meta(clip_id: u64) -> ClipMeta {
    ClipMeta {
        clip_id,
        name: format!("clip-{clip_id}"),
        location: "tunnel".into(),
        camera: format!("cam-{clip_id}"),
        start_time: clip_id * 60,
        frame_count: 400,
        width: 320,
        height: 240,
    }
}

/// Stores `n` prepared clips (ids 1..=n) with their feature indexes.
fn seeded_db(n: u64) -> (VideoDb, Vec<Dataset>) {
    let mut db = VideoDb::in_memory();
    let mut datasets = Vec::new();
    for id in 1..=n {
        let clip = prepare_clip(
            &Scenario::tunnel_small(10 + id),
            &PipelineOptions::default(),
        );
        db.put_clip(&bundle_from_clip(&clip, meta(id))).unwrap();
        build_index(&mut db, id, &clip.dataset).unwrap();
        datasets.push(clip.dataset);
    }
    (db, datasets)
}

/// One window reduced to comparable bits: (index, start_checkpoint,
/// frame span, per-TS (track_id, feature bit patterns)).
type WindowBits = (usize, usize, u64, u64, Vec<(u64, Vec<u64>)>);

fn dataset_bits(ds: &Dataset) -> Vec<WindowBits> {
    ds.windows
        .iter()
        .map(|w| {
            (
                w.index,
                w.start_checkpoint,
                w.start_frame,
                w.end_frame,
                w.sequences
                    .iter()
                    .map(|ts| {
                        (
                            ts.track_id,
                            ts.feature_vector().iter().map(|v| v.to_bits()).collect(),
                        )
                    })
                    .collect(),
            )
        })
        .collect()
}

fn ranking_bits(rs: &[RankedWindow]) -> Vec<(u64, u64, u64)> {
    rs.iter()
        .map(|r| (r.score.to_bits(), r.clip_id, r.window_index))
        .collect()
}

#[test]
fn index_serves_cold_extraction_bits_across_a_reload() {
    let mut path = std::env::temp_dir();
    path.push(format!("tsvr-index-reload-{}.db", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let clip = prepare_clip(&Scenario::tunnel_small(77), &PipelineOptions::default());
    let wcfg = clip.dataset.config;
    {
        let mut db = VideoDb::open(&path).unwrap();
        db.put_clip(&bundle_from_clip(&clip, meta(1))).unwrap();
        build_index(&mut db, 1, &clip.dataset).unwrap();
        let served = load_index(&mut db, 1, &wcfg).unwrap().expect("fresh hit");
        assert_eq!(dataset_bits(&served), dataset_bits(&clip.dataset));
    }
    // A different process generation: reopen from disk only.
    let mut db = VideoDb::open(&path).unwrap();
    let served = load_index(&mut db, 1, &wcfg)
        .unwrap()
        .expect("index survives reopen");
    assert_eq!(dataset_bits(&served), dataset_bits(&clip.dataset));

    // And the ranking computed off it is the cold ranking, bit for bit.
    let cold = heuristic_topk(
        &[ClipWindows {
            clip_id: 1,
            bags: bags_from_dataset(&clip.dataset),
        }],
        10,
    );
    let warm = heuristic_topk(
        &[ClipWindows {
            clip_id: 1,
            bags: bags_from_dataset(&served),
        }],
        10,
    );
    assert_eq!(ranking_bits(&cold), ranking_bits(&warm));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn cross_clip_topk_is_thread_count_invariant() {
    let _g = THREADS.lock().unwrap_or_else(|e| e.into_inner());
    let (mut db, _) = seeded_db(3);
    let wcfg = WindowConfig::default();

    let rank = |db: &mut VideoDb| {
        let clips: Vec<ClipWindows> = (1..=3)
            .map(|id| ClipWindows {
                clip_id: id,
                bags: bags_from_dataset(&load_index(db, id, &wcfg).unwrap().expect("fresh")),
            })
            .collect();
        let heur = heuristic_topk(&clips, 12);
        let all: Vec<tsvr::mil::Bag> = clips.iter().flat_map(|c| c.bags.clone()).collect();
        let learner = LearnerKind::paper_weighted_rf().build_for(&all);
        let learned = learner_topk(&clips, &learner, 12);
        (ranking_bits(&heur), ranking_bits(&learned))
    };

    tsvr::par::set_threads(1);
    let seq = rank(&mut db);
    tsvr::par::set_threads(4);
    let par = rank(&mut db);
    tsvr::par::set_threads(0);
    assert_eq!(seq.0, par.0, "heuristic top-k diverged across thread counts");
    assert_eq!(seq.1, par.1, "learned top-k diverged across thread counts");
}

#[test]
fn crash_while_writing_index_never_damages_the_clip() {
    let clip = prepare_clip(&Scenario::tunnel_small(33), &PipelineOptions::default());
    let bundle = bundle_from_clip(&clip, meta(1));
    let wcfg = clip.dataset.config;

    // Fault-free run to find the storage-op window of the index write.
    let (storage, handle) = FaultyStorage::new(0);
    let mut db = VideoDb::with_storage(Box::new(storage)).unwrap();
    db.put_clip(&bundle).unwrap();
    db.sync().unwrap();
    let before_index = handle.op_count();
    build_index(&mut db, 1, &clip.dataset).unwrap();
    let after_index = handle.op_count();
    drop(db);
    assert!(after_index > before_index, "index write issued no storage ops");

    for crash_at in before_index..after_index {
        let (storage, handle) = FaultyStorage::new(1000 + crash_at);
        handle.schedule(crash_at, FaultKind::Crash);
        let mut db = VideoDb::with_storage(Box::new(storage)).unwrap();
        db.put_clip(&bundle).unwrap();
        db.sync().unwrap();
        // The crash fires somewhere inside the index append/sync.
        let crashed = build_index(&mut db, 1, &clip.dataset).is_err();
        assert!(crashed, "crash@{crash_at} did not surface");
        drop(db);

        // Reopen the surviving image: the synced clip is intact,
        // byte for byte.
        let image = handle.crash_image();
        let mut db = VideoDb::with_storage(Box::new(MemStorage::from_bytes(image)))
            .unwrap_or_else(|e| panic!("crash@{crash_at}: reopen failed: {e}"));
        let reloaded = db
            .load_clip(1)
            .unwrap_or_else(|e| panic!("crash@{crash_at}: clip lost: {e}"));
        assert_eq!(*reloaded, bundle, "crash@{crash_at}: clip data changed");

        // The index is absent or fully valid — never torn garbage —
        // and a rebuild always restores service.
        match load_index(&mut db, 1, &wcfg).unwrap() {
            Some(served) => {
                assert_eq!(
                    dataset_bits(&served),
                    dataset_bits(&clip.dataset),
                    "crash@{crash_at}: torn index served"
                );
            }
            None => {
                build_index(&mut db, 1, &clip.dataset)
                    .unwrap_or_else(|e| panic!("crash@{crash_at}: rebuild failed: {e}"));
                let served = load_index(&mut db, 1, &wcfg).unwrap().expect("rebuilt");
                assert_eq!(dataset_bits(&served), dataset_bits(&clip.dataset));
            }
        }
    }
}

#[test]
fn stale_index_is_rebuilt_not_served() {
    let (mut db, datasets) = seeded_db(1);
    let mut stale_cfg = WindowConfig::default();
    stale_cfg.features.sampling_rate += 1;
    assert!(
        load_index(&mut db, 1, &stale_cfg).unwrap().is_none(),
        "index for another configuration was served"
    );
    // The original configuration still hits.
    assert!(load_index(&mut db, 1, &datasets[0].config)
        .unwrap()
        .is_some());
}

#[test]
fn sessions_accept_index_backed_datasets_unchanged() {
    let (mut db, _) = seeded_db(2);
    let wcfg = WindowConfig::default();
    let event = EventQuery::accidents();
    let mut parts = Vec::new();
    for id in 1..=2 {
        let ds = load_index(&mut db, id, &wcfg).unwrap().expect("fresh");
        let bags = bags_from_dataset(&ds);
        let bundle = db.load_clip(id).unwrap();
        let labels = tsvr::core::labels_from_bundle(&bundle, &event);
        parts.push((id, bags, labels));
    }
    let index = tsvr::core::MultiClipIndex::from_parts(parts);
    let oracle = tsvr::mil::GroundTruthOracle::new(index.labels.clone());
    let cfg = tsvr::mil::SessionConfig {
        top_n: 5,
        feedback_rounds: 2,
        ..tsvr::mil::SessionConfig::default()
    };
    let (report, _) = tsvr::mil::RetrievalSession::new(
        &index.bags,
        LearnerKind::paper_ocsvm().build_for(&index.bags),
        &oracle,
        cfg,
    )
    .run();
    assert_eq!(report.accuracies.len(), 3);
    for &a in &report.accuracies {
        assert!((0.0..=1.0).contains(&a));
    }
}
