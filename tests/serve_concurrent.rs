//! Concurrency and crash-safety properties of the retrieval service.
//!
//! 1. **Interleaving invariance** — N scripted clients running
//!    concurrently against one shared [`tsvr_serve::Service`] receive
//!    exactly the rankings they would get running alone against a fresh
//!    service over the same database. Session state is private per
//!    client; the only shared state (clip bag caches) is read-only.
//!
//! 2. **Checkpoint durability** — with a crash injected at *every*
//!    storage operation in turn (the PR-3 [`FaultyStorage`] sweep), a
//!    feedback round the client saw acked (`learned`) is never lost:
//!    the reopened database replays to the exact post-round ranking the
//!    original session served.

use std::sync::{Arc, Barrier};
use tsvr_core::{bundle_from_clip, prepare_clip, PipelineOptions};
use tsvr_serve::{Envelope, ErrorKind, Request, Response, Service, ServiceConfig};
use tsvr_sim::Scenario;
use tsvr_viddb::record::ClipBundle;
use tsvr_viddb::{ClipMeta, FaultKind, FaultyStorage, MemStorage, VideoDb};

fn make_bundle(clip_id: u64, seed: u64) -> ClipBundle {
    let clip = prepare_clip(&Scenario::tunnel_small(seed), &PipelineOptions::default());
    bundle_from_clip(
        &clip,
        ClipMeta {
            clip_id,
            name: format!("clip {clip_id}"),
            location: "tunnel-x".into(),
            camera: format!("cam-{clip_id}"),
            start_time: 1_167_609_600,
            frame_count: 400,
            width: clip.sim.width,
            height: clip.sim.height,
        },
    )
}

fn fresh_db(bundles: &[ClipBundle]) -> VideoDb {
    let mut db = VideoDb::in_memory();
    for b in bundles {
        db.put_clip(b).unwrap();
    }
    db
}

fn ask(service: &Service, req: Request) -> Response {
    service.handle(&Envelope::new(req))
}

/// One scripted client: open, three feedback rounds, collecting the
/// full ranking after every round (initial included). Labels are a
/// deterministic function of the served page and the client's salt, so
/// two runs that see the same rankings submit the same feedback.
fn run_client(service: &Service, clip_id: u64, learner: &str, salt: u64) -> Vec<Vec<u64>> {
    let Response::Opened {
        session_id,
        windows,
        ..
    } = ask(
        service,
        Request::Open {
            clip_id,
            query: "accident".into(),
            learner: learner.into(),
        },
    )
    else {
        panic!("open failed")
    };
    let mut rankings = Vec::new();
    for round in 1..=3usize {
        let Response::Page { ranking, .. } = ask(
            service,
            Request::Page {
                session_id,
                n: Some(windows),
            },
        ) else {
            panic!("page failed")
        };
        let labels: Vec<(u32, bool)> = ranking
            .iter()
            .take(6)
            .map(|&w| (w as u32, (w + salt).is_multiple_of(3)))
            .collect();
        rankings.push(ranking);
        let resp = ask(service, Request::Feedback { session_id, labels });
        assert_eq!(
            resp,
            Response::Learned { session_id, round },
            "feedback round {round} failed"
        );
    }
    let Response::Page { ranking, .. } = ask(
        service,
        Request::Page {
            session_id,
            n: Some(windows),
        },
    ) else {
        panic!("final page failed")
    };
    rankings.push(ranking);
    ask(service, Request::Close { session_id });
    rankings
}

#[test]
fn interleaved_sessions_match_solo_rankings() {
    let bundles = vec![make_bundle(1, 41), make_bundle(2, 42)];
    // (clip, learner, salt): two clients per clip, mixed learners, so
    // sessions share bag caches but never learner state.
    let clients: Vec<(u64, &str, u64)> =
        vec![(1, "ocsvm", 0), (1, "wrf", 1), (2, "ocsvm", 2), (2, "wrf", 3)];

    // Solo reference: each client alone on a fresh service.
    let solo: Vec<Vec<Vec<u64>>> = clients
        .iter()
        .map(|&(clip, learner, salt)| {
            let service = Service::new(fresh_db(&bundles), ServiceConfig::default());
            run_client(&service, clip, learner, salt)
        })
        .collect();

    // Interleaved: all clients concurrently on one shared service.
    let service = Arc::new(Service::new(fresh_db(&bundles), ServiceConfig::default()));
    let barrier = Arc::new(Barrier::new(clients.len()));
    let handles: Vec<_> = clients
        .iter()
        .map(|&(clip, learner, salt)| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            let learner = learner.to_string();
            std::thread::spawn(move || {
                barrier.wait();
                run_client(&service, clip, &learner, salt)
            })
        })
        .collect();
    let interleaved: Vec<Vec<Vec<u64>>> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();

    for (i, (alone, shared)) in solo.iter().zip(&interleaved).enumerate() {
        assert_eq!(
            alone, shared,
            "client {i} ({:?}) ranks differently when interleaved",
            clients[i]
        );
    }
}

/// The scripted crash workload: open one session on clip 1 and push
/// `rounds` feedback rounds, stopping at the first error. Returns the
/// number of *acked* rounds, each round's submitted labels, and the
/// ranking served after each acked round.
#[allow(clippy::type_complexity)]
fn drive_session(
    service: &Service,
    rounds: usize,
) -> (usize, Vec<Vec<(u32, bool)>>, Vec<Vec<u64>>, u64) {
    let (session_id, windows) = match ask(
        service,
        Request::Open {
            clip_id: 1,
            query: "accident".into(),
            learner: "ocsvm".into(),
        },
    ) {
        Response::Opened {
            session_id,
            windows,
            ..
        } => (session_id, windows),
        Response::Error(_) => return (0, Vec::new(), Vec::new(), 0),
        other => panic!("unexpected open response {other:?}"),
    };
    let mut acked = 0usize;
    let mut all_labels = Vec::new();
    let mut post_rankings = Vec::new();
    for _ in 1..=rounds {
        let ranking = match ask(
            service,
            Request::Page {
                session_id,
                n: Some(windows),
            },
        ) {
            Response::Page { ranking, .. } => ranking,
            Response::Error(_) => break,
            other => panic!("unexpected page response {other:?}"),
        };
        let labels: Vec<(u32, bool)> = ranking
            .iter()
            .take(6)
            .map(|&w| (w as u32, w.is_multiple_of(3)))
            .collect();
        match ask(
            service,
            Request::Feedback {
                session_id,
                labels: labels.clone(),
            },
        ) {
            Response::Learned { .. } => {
                acked += 1;
                all_labels.push(labels);
                // The post-round ranking this client can now observe.
                match ask(
                    service,
                    Request::Page {
                        session_id,
                        n: Some(windows),
                    },
                ) {
                    Response::Page { ranking, .. } => post_rankings.push(ranking),
                    Response::Error(e) => panic!("page after ack failed: {e}"),
                    other => panic!("unexpected response {other:?}"),
                }
            }
            Response::Error(e) => {
                assert_eq!(
                    e.kind,
                    ErrorKind::Storage,
                    "only storage errors are expected under crash injection: {e}"
                );
                break;
            }
            other => panic!("unexpected feedback response {other:?}"),
        }
    }
    (acked, all_labels, post_rankings, session_id)
}

#[test]
fn crash_at_every_op_never_loses_an_acked_round() {
    // Seed image: one stored clip, synced.
    let bundle = make_bundle(1, 43);
    let seed_image = {
        let (storage, handle) = FaultyStorage::new(7);
        let mut db = VideoDb::with_storage(Box::new(storage)).unwrap();
        db.put_clip(&bundle).unwrap();
        db.sync().unwrap();
        handle.snapshot()
    };

    // Fault-free baseline: count storage ops and record expectations.
    let rounds = 3usize;
    let (total_ops, base_labels, base_rankings) = {
        let (storage, handle) = FaultyStorage::with_image(seed_image.clone(), 7);
        let db = VideoDb::with_storage(Box::new(storage)).unwrap();
        let service = Service::new(db, ServiceConfig::default());
        let (acked, labels, rankings, _) = drive_session(&service, rounds);
        assert_eq!(acked, rounds, "baseline must ack every round");
        (handle.op_count(), labels, rankings)
    };
    assert!(total_ops > 0);

    // Crash sweep: one run per storage operation, crash scheduled there.
    let fast = std::env::var("TSVR_CRASH_FAST").map(|v| v == "1").unwrap_or(false);
    let step = if fast { 7 } else { 1 };
    for k in (0..total_ops).step_by(step) {
        let (storage, handle) = FaultyStorage::with_image(seed_image.clone(), 7);
        handle.schedule(k, FaultKind::Crash);
        let acked = match VideoDb::with_storage(Box::new(storage)) {
            Ok(db) => {
                let service = Service::new(db, ServiceConfig::default());
                let (acked, labels, _, _) = drive_session(&service, rounds);
                assert_eq!(
                    labels,
                    base_labels[..acked],
                    "crash changed pre-crash behavior at op {k}"
                );
                acked
            }
            // Crash during the open-time scan: nothing was acked.
            Err(_) => 0,
        };
        assert!(handle.crashed(), "crash at op {k} never fired");

        // Power is gone; reopen the surviving image.
        let crash_image = handle.crash_image();
        let mut db = VideoDb::with_storage(Box::new(MemStorage::from_bytes(crash_image)))
            .unwrap_or_else(|e| panic!("reopen after crash at op {k} failed: {e}"));
        let stored_rounds = db
            .sessions_for_clip(1)
            .unwrap()
            .iter()
            .map(|r| r.feedback.len())
            .max()
            .unwrap_or(0);
        assert!(
            stored_rounds >= acked,
            "crash at op {k} lost acked feedback: {stored_rounds} stored < {acked} acked"
        );

        if acked > 0 {
            // Resume through the service over the reopened database and
            // check the served ranking equals what the original session
            // saw after its last acked round... unless the crash made a
            // *later*, never-acked round durable (legitimately "maybe
            // applied"), in which case it must match that round instead.
            let service = Service::new(db, ServiceConfig::default());
            let resumed = ask(
                &service,
                Request::Resume {
                    clip_id: 1,
                    session_id: 1,
                    learner: None,
                },
            );
            let Response::Opened {
                session_id, rounds, ..
            } = resumed
            else {
                panic!("resume after crash at op {k} failed: {resumed:?}")
            };
            assert_eq!(rounds, stored_rounds);
            let Response::Page { ranking, .. } = ask(
                &service,
                Request::Page {
                    session_id,
                    n: Some(base_rankings[0].len()),
                },
            ) else {
                panic!("page after resume failed")
            };
            assert_eq!(
                ranking,
                base_rankings[stored_rounds - 1],
                "crash at op {k}: resumed ranking diverges from round {stored_rounds}"
            );
        }
    }
}
