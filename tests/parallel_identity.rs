//! Integration: the `tsvr-par` determinism invariant — every
//! parallelized hot path (segmentation, the pass-2 neighbor loop, Gram
//! construction, batch bag scoring) produces output bit-identical to
//! the sequential run, at any thread count.

use std::sync::Mutex;
use tsvr::core::{prepare_clip, run_session, EventQuery, LearnerKind, PipelineOptions};
use tsvr::mil::SessionConfig;
use tsvr::sim::{Pcg32, Scenario, World};
use tsvr::svm::Kernel;
use tsvr::trajectory::checkpoint::{build_series, FeatureConfig};
use tsvr::vision;

/// `set_threads` is process-global and the test binary runs tests on
/// multiple threads, so each test locks while it flips the override.
static THREADS: Mutex<()> = Mutex::new(());

/// Runs `f` once with the pool pinned to one worker and once with four,
/// restoring automatic selection after.
fn seq_vs_par<R>(f: impl Fn() -> R) -> (R, R) {
    let _g = THREADS.lock().unwrap_or_else(|e| e.into_inner());
    tsvr::par::set_threads(1);
    let seq = f();
    tsvr::par::set_threads(4);
    let par = f();
    tsvr::par::set_threads(0);
    (seq, par)
}

#[test]
fn vision_pipeline_is_thread_count_invariant() {
    let scenario = Scenario::tunnel_small(41);
    let sim = World::run(scenario.clone());
    let cfg = vision::PipelineConfig::default();
    let (a, b) = seq_vs_par(|| vision::pipeline::process(&sim, scenario.kind, &cfg));
    assert_eq!(a.detections_per_frame, b.detections_per_frame);
    assert_eq!(a.tracks.len(), b.tracks.len());
    for (ta, tb) in a.tracks.iter().zip(&b.tracks) {
        assert_eq!(ta.id, tb.id);
        assert_eq!(ta.points.len(), tb.points.len());
        for (pa, pb) in ta.points.iter().zip(&tb.points) {
            assert_eq!(pa.frame, pb.frame);
            assert_eq!(pa.centroid.x.to_bits(), pb.centroid.x.to_bits());
            assert_eq!(pa.centroid.y.to_bits(), pb.centroid.y.to_bits());
        }
    }
}

#[test]
fn feature_extraction_is_thread_count_invariant() {
    let scenario = Scenario::tunnel_small(17);
    let sim = World::run(scenario.clone());
    let tracks = vision::pipeline::process(&sim, scenario.kind, &vision::PipelineConfig::default())
        .tracks;
    let cfg = FeatureConfig::default();
    let (a, b) = seq_vs_par(|| build_series(&tracks, &cfg));
    assert_eq!(a.len(), b.len());
    for (sa, sb) in a.iter().zip(&b) {
        assert_eq!(sa.track_id, sb.track_id);
        assert_eq!(sa.first_checkpoint, sb.first_checkpoint);
        assert_eq!(sa.alphas.len(), sb.alphas.len());
        for (aa, ab) in sa.alphas.iter().zip(&sb.alphas) {
            assert_eq!(aa.inv_mdist.to_bits(), ab.inv_mdist.to_bits());
            assert_eq!(aa.vdiff.to_bits(), ab.vdiff.to_bits());
            assert_eq!(aa.theta.to_bits(), ab.theta.to_bits());
        }
    }
}

#[test]
fn gram_matrix_is_thread_count_invariant() {
    let mut rng = Pcg32::seeded(7);
    let data: Vec<Vec<f64>> = (0..120)
        .map(|_| (0..6).map(|_| rng.uniform(-2.0, 2.0)).collect())
        .collect();
    for kernel in [
        Kernel::Rbf { gamma: 0.4 },
        Kernel::Laplacian { sigma: 1.5 },
        Kernel::Linear,
    ] {
        let (a, b) = seq_vs_par(|| kernel.gram(&data));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

#[test]
fn full_retrieval_session_is_thread_count_invariant() {
    let (a, b) = seq_vs_par(|| {
        let clip = prepare_clip(&Scenario::tunnel_small(88), &PipelineOptions::default());
        let cfg = SessionConfig {
            top_n: 5,
            feedback_rounds: 2,
            ..SessionConfig::default()
        };
        run_session(
            &clip,
            &EventQuery::accidents(),
            LearnerKind::paper_ocsvm(),
            cfg,
        )
    });
    assert_eq!(a.rankings, b.rankings);
    assert_eq!(a.accuracies.len(), b.accuracies.len());
    for (x, y) in a.accuracies.iter().zip(&b.accuracies) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}
