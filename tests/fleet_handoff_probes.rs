//! Integration: the multi-camera handoff member really exercises the
//! sharded scatter-gather path.
//!
//! The handoff recording is split through the middle of its wrong-way
//! incident; the two halves carry different camera ids, so the sharded
//! database must route them to two distinct shard files, and a
//! cross-camera query must fan out to both — witnessed through the
//! `query.scatter.shards` probe counter, exactly like
//! `index_no_vision.rs` witnesses the zero-vision property. This lives
//! in its own test binary so no concurrently running test can touch
//! the process-global counters mid-measurement.

use tsvr::core::{
    bags_from_dataset, bundle_from_clip, dataset_from_segment, heuristic_topk, prepare_sim,
    segment_from_dataset, sharded_heuristic_topk, ClipWindows, PipelineOptions, ShardWindows,
};
use tsvr::sim::fleet;
use tsvr::sim::World;
use tsvr::viddb::{ClipMeta, ShardedDb};

#[test]
fn handoff_query_scatters_across_both_camera_shards() {
    let member = fleet::member("handoff").expect("handoff member");
    let mut scenario = fleet::scenario("handoff", 2007).expect("handoff scenario");
    scenario.total_frames = scenario.total_frames.min(340);
    let opts = PipelineOptions::default();

    let sim = World::run(scenario.clone());
    let cut = fleet::handoff_split_frame(&sim, member.target);
    let (first, second) = sim.split_at(cut);
    let halves = [
        prepare_sim(first, scenario.kind, &opts),
        prepare_sim(second, scenario.kind, &opts),
    ];

    let dir = std::env::temp_dir().join(format!("tsvr-fleet-probes-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = ShardedDb::open(&dir).expect("open sharded db");
    for (i, clip) in halves.iter().enumerate() {
        let clip_id = i as u64 + 1;
        db.put_clip(&bundle_from_clip(
            clip,
            ClipMeta {
                clip_id,
                name: format!("handoff cam-{i}"),
                location: "handoff".into(),
                camera: format!("cam-{i}"),
                start_time: 0,
                frame_count: clip.sim.frames.len() as u32,
                width: clip.sim.width,
                height: clip.sim.height,
            },
        ))
        .expect("put_clip");
        db.put_index(&segment_from_dataset(clip_id, &clip.dataset))
            .expect("put_index");
    }
    db.sync().expect("sync");
    assert_eq!(
        db.shard_count(),
        2,
        "two cameras must route to two shard files"
    );

    // Serve both halves from their stored indexes and group them into
    // their actual shards.
    let mut shards: Vec<ShardWindows> = Vec::new();
    for (i, clip) in halves.iter().enumerate() {
        let clip_id = i as u64 + 1;
        let segment = db.load_index(clip_id).expect("load_index").expect("stored");
        let bags = bags_from_dataset(&dataset_from_segment(&segment, clip.dataset.config));
        assert_eq!(bags, clip.bags, "index-served bags diverged");
        let shard = db.shard_of_clip(clip_id).expect("routed").to_string();
        shards.push(ShardWindows {
            shard,
            clips: vec![ClipWindows { clip_id, bags }],
        });
    }
    assert_eq!(shards.len(), 2);
    assert_ne!(shards[0].shard, shards[1].shard, "halves share a shard");

    if !tsvr_obs::is_enabled() {
        let _ = std::fs::remove_dir_all(&dir);
        return; // probes compiled out; nothing further to measure
    }

    let scattered_before = tsvr_obs::counter!("query.scatter.shards").get();
    let sharded = sharded_heuristic_topk(&shards, 20);
    assert_eq!(
        tsvr_obs::counter!("query.scatter.shards").get(),
        scattered_before + shards.len() as u64,
        "query did not fan out across both shards"
    );

    // Scatter-gather must agree byte for byte with the flat merge.
    let flat: Vec<ClipWindows> = shards
        .iter()
        .flat_map(|s| s.clips.iter().cloned())
        .collect();
    assert_eq!(sharded, heuristic_topk(&flat, 20));
    assert!(!sharded.is_empty());

    let _ = std::fs::remove_dir_all(&dir);
}
