//! Property test for the gram-memoization path (PR 9 satellite):
//! memoized gram blocks and decision values must be **bit-identical**
//! to full recomputation across feedback rounds, at one thread and at
//! four, and in the presence of NaN-bearing feature rows. This is the
//! invariant that lets `OcSvmMilLearner` reuse per-round gram blocks
//! at all: the cache is an optimization, never an approximation.

use tsvr_mil::{Bag, Instance, Learner, OcSvmMilLearner};
use tsvr_svm::Kernel;

/// Deterministic xorshift so the test data is stable across runs.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn synth_rows(rng: &mut Rng, n: usize, dim: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| (0..dim).map(|_| rng.next_f64() * 4.0 - 2.0).collect())
        .collect()
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: index {i} differs ({x} vs {y})"
        );
    }
}

/// `gram_extend` over incrementally grown data must reproduce the full
/// `gram` bit for bit, including when grown rows carry NaN.
#[test]
fn gram_extend_matches_full_gram_with_nan_rows() {
    let mut rng = Rng(0x9e3779b97f4a7c15);
    for kernel in [
        Kernel::Linear,
        Kernel::Rbf { gamma: 0.7 },
        Kernel::Laplacian { sigma: 1.3 },
    ] {
        let mut data = synth_rows(&mut rng, 6, 5);
        let mut cached = kernel.gram(&data);
        let mut old_n = data.len();
        // Grow in uneven steps; step 2 introduces a NaN-poisoned row.
        for (step, grow) in [3usize, 1, 4, 2].into_iter().enumerate() {
            let mut fresh = synth_rows(&mut rng, grow, 5);
            if step == 2 {
                fresh[0][1] = f64::NAN;
            }
            data.extend(fresh);
            cached = kernel.gram_extend(&data, &cached, old_n);
            old_n = data.len();
            let full = kernel.gram(&data);
            assert_bits_eq(&cached, &full, "extended gram vs full recompute");
        }
    }
}

fn synth_bags(rng: &mut Rng, n_bags: usize, dim: usize) -> Vec<Bag> {
    (0..n_bags)
        .map(|b| {
            let instances = (0..2 + b % 3)
                .map(|i| {
                    let rows = synth_rows(rng, 3, dim);
                    Instance::new((b * 16 + i) as u64, rows)
                })
                .collect();
            Bag::new(b, instances)
        })
        .collect()
}

/// Drives four feedback rounds through a memoized learner and a
/// from-scratch learner and bit-compares every score of every round.
fn run_rounds(bags: &[Bag], adaptive: bool) {
    let make = || {
        let learner = OcSvmMilLearner::new(Kernel::Rbf { gamma: 0.5 });
        if adaptive {
            learner.with_adaptive_gamma(1.0)
        } else {
            learner
        }
    };
    let mut memo = make();
    let mut fresh = make().without_gram_memo();
    // Four rounds of growing feedback; round 3 labels the NaN bag.
    let schedule: [&[(usize, bool)]; 4] = [
        &[(0, true), (1, false), (2, true)],
        &[(3, true), (4, true)],
        &[(5, false), (6, true), (7, true)],
        &[(8, true), (9, false)],
    ];
    for (round, feedback) in schedule.iter().enumerate() {
        memo.learn(bags, feedback);
        fresh.learn(bags, feedback);
        let scores_memo = memo.score_all(bags);
        let scores_fresh = fresh.score_all(bags);
        assert_bits_eq(
            &scores_memo,
            &scores_fresh,
            &format!("round {round} scores, adaptive={adaptive}"),
        );
    }
}

/// Memoized scores equal from-scratch scores across 4 feedback rounds,
/// at 1 and 4 threads, with a NaN-bearing feature row in the training
/// set — for both the fixed-γ and adaptive-γ (cache-invalidating)
/// kernel configurations.
#[test]
fn memoized_scores_bit_identical_across_rounds_and_threads() {
    let mut rng = Rng(0x2545f4914f6cdd1d);
    let mut bags = synth_bags(&mut rng, 24, 6);
    // Poison one instance of a bag that round 3 labels relevant, so a
    // NaN row enters the training set mid-session.
    bags[8].instances[0].points[0][2] = f64::NAN;
    for threads in [1usize, 4] {
        tsvr_par::set_threads(threads);
        run_rounds(&bags, false);
        run_rounds(&bags, true);
    }
    tsvr_par::set_threads(0);
}
