//! Integration: the database path produces bit-identical retrieval
//! behaviour to the in-memory path.

use tsvr::core::{
    bags_from_bundle, bundle_from_clip, labels_from_bundle, prepare_clip, EventQuery, LearnerKind,
    PipelineOptions,
};
use tsvr::mil::{GroundTruthOracle, RetrievalSession, SessionConfig};
use tsvr::sim::Scenario;
use tsvr::trajectory::checkpoint::FeatureConfig;
use tsvr::viddb::{ClipMeta, SessionRow, VideoDb};

fn meta(clip_id: u64) -> ClipMeta {
    ClipMeta {
        clip_id,
        name: "roundtrip".into(),
        location: "tunnel-t".into(),
        camera: "cam-9".into(),
        start_time: 42,
        frame_count: 400,
        width: 320,
        height: 240,
    }
}

#[test]
fn stored_clip_reproduces_session_results() {
    let clip = prepare_clip(&Scenario::tunnel_small(55), &PipelineOptions::default());
    let query = EventQuery::accidents();
    let cfg = SessionConfig {
        top_n: 5,
        feedback_rounds: 2,
        ..SessionConfig::default()
    };

    // Direct session.
    let oracle = GroundTruthOracle::new(clip.labels(&query));
    let (direct, _) = RetrievalSession::new(
        &clip.bags,
        LearnerKind::paper_ocsvm().build_for(&clip.bags),
        &oracle,
        cfg,
    )
    .run();

    // Through the database.
    let mut db = VideoDb::in_memory();
    db.put_clip(&bundle_from_clip(&clip, meta(1))).unwrap();
    let bundle = db.load_clip(1).unwrap();
    let bags = bags_from_bundle(&bundle, &FeatureConfig::default());
    let oracle2 = GroundTruthOracle::new(labels_from_bundle(&bundle, &query));
    let (via_db, _) = RetrievalSession::new(
        &bags,
        LearnerKind::paper_ocsvm().build_for(&bags),
        &oracle2,
        cfg,
    )
    .run();

    assert_eq!(direct.accuracies, via_db.accuracies);
    assert_eq!(direct.rankings, via_db.rankings);
}

#[test]
fn file_database_survives_process_restart_semantics() {
    let mut path = std::env::temp_dir();
    path.push(format!("tsvr-it-{}.db", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let clip = prepare_clip(&Scenario::tunnel_small(56), &PipelineOptions::default());
    let expected_windows = clip.dataset.window_count();

    {
        let mut db = VideoDb::open(&path).unwrap();
        db.put_clip(&bundle_from_clip(&clip, meta(7))).unwrap();
        db.put_session(&SessionRow {
            session_id: 1,
            clip_id: 7,
            query: "accident".into(),
            learner: "MIL_OneClassSVM".into(),
            feedback: vec![vec![(0, true), (1, false)]],
            accuracies: vec![0.4, 0.6],
        })
        .unwrap();
    }
    {
        let mut db = VideoDb::open(&path).unwrap();
        assert_eq!(db.clip_count(), 1);
        let bundle = db.load_clip(7).unwrap();
        assert_eq!(bundle.windows.len(), expected_windows);
        let sessions = db.sessions_for_clip(7).unwrap();
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].accuracies, vec![0.4, 0.6]);
        // Compaction keeps everything live.
        db.compact().unwrap();
        assert_eq!(db.clip_count(), 1);
        assert_eq!(db.sessions_for_clip(7).unwrap().len(), 1);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn metadata_queries_work_across_many_clips() {
    let mut db = VideoDb::in_memory();
    let clip = prepare_clip(&Scenario::tunnel_small(57), &PipelineOptions::default());
    for id in 1..=6u64 {
        let mut m = meta(id);
        m.location = if id % 2 == 0 {
            "tunnel-even".into()
        } else {
            "tunnel-odd".into()
        };
        m.start_time = id * 100;
        db.put_clip(&bundle_from_clip(&clip, m)).unwrap();
    }
    assert_eq!(db.find_by_location("tunnel-even").len(), 3);
    assert_eq!(db.find_by_time_range(150, 450).len(), 3);
    db.delete_clip(2).unwrap();
    assert_eq!(db.find_by_location("tunnel-even").len(), 2);
}
