//! Crash-consistency harness for the video database.
//!
//! For every seed, a put/delete/session/sync workload is run once
//! fault-free to count the storage operations it issues; then the
//! whole workload is re-run once per storage operation with a
//! simulated power-loss crash scheduled exactly there. The surviving
//! disk image (durable prefix plus a seeded cut of the unsynced
//! suffix) is reopened and checked against the model:
//!
//! * the database ALWAYS reopens — no panic, no failed open;
//! * every clip synced before the crash survives, byte-for-byte;
//! * the recovered state is exactly some prefix of the workload at
//!   or after the last successful sync (a mutation that errored at
//!   crash time may legitimately be durable — "maybe applied");
//! * nothing torn is ever served as data (no quarantined clips from a
//!   pure truncation crash).
//!
//! A separate sweep flips every stored byte of a finished database and
//! asserts bit rot degrades to quarantine/absence — never to wrong
//! data, never to a failed open. A third sweep injects one transient
//! I/O error at every operation and requires the workload to succeed
//! untouched.
//!
//! `TSVR_CRASH_FAST=1` (used by ci.sh) trims the seed budget so the
//! sweep stays fast; the full run covers ≥ 200 crash schedules.

use std::collections::BTreeMap;
use tsvr_sim::Pcg32;
use tsvr_viddb::record::{ClipBundle, ClipMeta, SessionRow, TrackRow};
use tsvr_viddb::{DbError, FaultKind, FaultyStorage, MemStorage, VideoDb};

fn fast_mode() -> bool {
    std::env::var("TSVR_CRASH_FAST").map(|v| v == "1").unwrap_or(false)
}

/// Deterministic bundle for a clip id — reopened data can be compared
/// byte-for-byte against what must have been written.
fn make_bundle(id: u64) -> ClipBundle {
    ClipBundle {
        meta: ClipMeta {
            clip_id: id,
            name: format!("clip-{id}"),
            location: format!("tunnel-{}", id % 3),
            camera: format!("cam-{}", id % 2),
            start_time: 1_000_000 + id * 60,
            frame_count: 100 + id as u32,
            width: 320,
            height: 240,
        },
        tracks: vec![TrackRow {
            track_id: id * 7,
            start_frame: id as u32,
            centroids: vec![(id as f32, 2.0 * id as f32), (id as f32 + 1.0, 0.5)],
        }],
        windows: vec![],
        incidents: vec![],
    }
}

fn make_session(sid: u64, clip_id: u64) -> SessionRow {
    SessionRow {
        session_id: sid,
        clip_id,
        query: "accident".into(),
        learner: "MIL_OneClassSVM".into(),
        feedback: vec![vec![(sid as u32 % 5, sid.is_multiple_of(2))]],
        accuracies: vec![0.5, 0.75],
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    PutClip(u64),
    DeleteClip(u64),
    PutSession(u64, u64),
    Sync,
}

/// Seeded workload: a mix of puts, deletes of live clips, sessions
/// against live clips, and explicit sync points. Clip ids are unique
/// across puts so every id maps to one deterministic bundle.
fn gen_ops(seed: u64) -> Vec<Op> {
    let mut rng = Pcg32::new(seed, 0x0b5);
    let n = 16 + rng.uniform_usize(9);
    let mut ops = Vec::with_capacity(n);
    let mut next_clip = 1u64;
    let mut next_session = 100u64;
    let mut live: Vec<u64> = Vec::new();
    for _ in 0..n {
        let roll = rng.uniform(0.0, 1.0);
        if roll < 0.45 || live.is_empty() {
            ops.push(Op::PutClip(next_clip));
            live.push(next_clip);
            next_clip += 1;
        } else if roll < 0.60 {
            let idx = rng.uniform_usize(live.len());
            ops.push(Op::DeleteClip(live.remove(idx)));
        } else if roll < 0.80 {
            let idx = rng.uniform_usize(live.len());
            ops.push(Op::PutSession(next_session, live[idx]));
            next_session += 1;
        } else {
            ops.push(Op::Sync);
        }
    }
    ops
}

/// In-memory model of what the database should hold. Compared via
/// PartialEq — the bundles' floats come from make_bundle and are never
/// NaN.
#[derive(Debug, Clone, PartialEq, Default)]
struct State {
    clips: BTreeMap<u64, ClipBundle>,
    sessions: Vec<(u64, u64)>, // (session_id, clip_id)
}

fn apply(state: &State, op: Op) -> State {
    let mut s = state.clone();
    match op {
        Op::PutClip(id) => {
            s.clips.insert(id, make_bundle(id));
        }
        Op::DeleteClip(id) => {
            s.clips.remove(&id);
            // Tombstones also drop video segments, but the workload
            // stores none; sessions survive deletes.
        }
        Op::PutSession(sid, cid) => s.sessions.push((sid, cid)),
        Op::Sync => {}
    }
    s
}

/// Applies one op to the real database. Returns Err on injected crash.
fn drive(db: &mut VideoDb, op: Op) -> Result<(), DbError> {
    match op {
        Op::PutClip(id) => db.put_clip(&make_bundle(id)),
        Op::DeleteClip(id) => db.delete_clip(id),
        Op::PutSession(sid, cid) => db.put_session(&make_session(sid, cid)),
        Op::Sync => db.sync(),
    }
}

/// Reads the full logical state out of a reopened database.
fn read_state(db: &mut VideoDb) -> State {
    let ids: Vec<u64> = db.list_clips().iter().map(|m| m.clip_id).collect();
    let mut clips = BTreeMap::new();
    for id in ids {
        let bundle = db
            .load_clip(id)
            .unwrap_or_else(|e| panic!("indexed clip {id} failed to load: {e}"));
        clips.insert(id, (*bundle).clone());
    }
    let mut sessions = Vec::new();
    let clip_ids: Vec<u64> = (1..=40).collect(); // sessions may reference deleted clips
    for cid in clip_ids {
        for s in db.sessions_for_clip(cid).expect("session read failed") {
            sessions.push((s.session_id, s.clip_id));
        }
    }
    sessions.sort_unstable();
    State { clips, sessions }
}

/// Runs the whole workload fault-free and returns how many storage
/// operations it issues (including the ones spent opening).
fn count_storage_ops(ops: &[Op]) -> u64 {
    let (storage, handle) = FaultyStorage::new(0);
    let mut db = VideoDb::with_storage(Box::new(storage)).expect("clean open");
    for &op in ops {
        drive(&mut db, op).expect("clean run must not fail");
    }
    handle.op_count()
}

/// Runs `ops` against a fresh faulty storage with a crash scheduled at
/// storage-op `crash_at`. Returns the candidate model states the
/// post-crash image may legally decode to, and the fault handle.
fn run_to_crash(
    ops: &[Op],
    seed: u64,
    crash_at: u64,
) -> (Vec<State>, tsvr_viddb::FaultHandle) {
    let (storage, handle) = FaultyStorage::new(seed);
    handle.schedule(crash_at, FaultKind::Crash);
    let empty = State::default();
    let db = match VideoDb::with_storage(Box::new(storage)) {
        Ok(db) => db,
        // Crash during open: nothing was ever acknowledged.
        Err(_) => return (vec![empty], handle),
    };
    let mut db = db;
    let mut states = vec![empty];
    let mut synced_idx = 0usize;
    let mut candidates: Option<Vec<State>> = None;
    for &op in ops {
        let next = apply(states.last().unwrap(), op);
        match drive(&mut db, op) {
            Ok(()) => {
                states.push(next);
                if op == Op::Sync {
                    synced_idx = states.len() - 1;
                }
            }
            Err(_) => {
                // The op that crashed may or may not be durable
                // ("maybe applied"): its record either fully landed in
                // the torn suffix or it didn't.
                let mut cands = states[synced_idx..].to_vec();
                cands.push(next);
                candidates = Some(cands);
                break;
            }
        }
    }
    let candidates = candidates.unwrap_or_else(|| {
        // Crash never fired (scheduled past the end): any state from
        // the last sync onward is legal for the crash image.
        states[synced_idx..].to_vec()
    });
    (candidates, handle)
}

fn run_crash_sweep(seed: u64) -> u64 {
    let ops = gen_ops(seed);
    let total = count_storage_ops(&ops);
    for crash_at in 0..total {
        let (candidates, handle) = run_to_crash(&ops, seed, crash_at);
        let image = handle.crash_image();
        // Invariant 1: the database ALWAYS reopens.
        let mut db = VideoDb::with_storage(Box::new(MemStorage::from_bytes(image)))
            .unwrap_or_else(|e| {
                panic!("seed {seed} crash@{crash_at}: reopen failed: {e}")
            });
        // Invariant 2: a pure truncation crash never corrupts a
        // record mid-log — nothing to quarantine.
        let state = read_state(&mut db);
        assert!(
            db.quarantined().is_empty(),
            "seed {seed} crash@{crash_at}: truncation crash quarantined clips: {:?}",
            db.quarantined()
        );
        // Invariant 3: the recovered state is a legal prefix at or
        // after the last sync (synced clips all present), with the
        // crashed mutation maybe-applied.
        assert!(
            candidates.contains(&state),
            "seed {seed} crash@{crash_at}: recovered state not among {} candidates.\n\
             got clips={:?} sessions={:?}",
            candidates.len(),
            state.clips.keys().collect::<Vec<_>>(),
            state.sessions,
        );
    }
    total
}

#[test]
fn crash_at_every_operation_preserves_synced_data() {
    let seeds: &[u64] = if fast_mode() {
        &[1, 2]
    } else {
        &[1, 2, 3, 4, 5, 6, 7, 8]
    };
    let mut schedules = 0u64;
    for &seed in seeds {
        schedules += run_crash_sweep(seed);
    }
    if !fast_mode() {
        assert!(
            schedules >= 200,
            "acceptance requires >= 200 crash schedules, ran {schedules}"
        );
    }
}

#[test]
fn every_stored_byte_flip_degrades_to_quarantine_not_wrong_data() {
    let seeds: &[u64] = if fast_mode() { &[41] } else { &[41, 42] };
    for &seed in seeds {
        let ops = gen_ops(seed);
        let (storage, handle) = FaultyStorage::new(seed);
        let mut db = VideoDb::with_storage(Box::new(storage)).unwrap();
        let mut model = State::default();
        let mut all_put: BTreeMap<u64, ClipBundle> = BTreeMap::new();
        let mut all_sessions: Vec<(u64, u64)> = Vec::new();
        for &op in &ops {
            model = apply(&model, op);
            if let Op::PutClip(id) = op {
                all_put.insert(id, make_bundle(id));
            }
            if let Op::PutSession(sid, cid) = op {
                all_sessions.push((sid, cid));
            }
            drive(&mut db, op).unwrap();
        }
        db.sync().unwrap();
        drop(db);
        let image = handle.snapshot();

        for byte in 8..image.len() {
            let mut flipped = image.clone();
            flipped[byte] ^= 1 << (byte % 8);
            // Invariant 1: bit rot never takes the open path down.
            let mut db =
                VideoDb::with_storage(Box::new(MemStorage::from_bytes(flipped)))
                    .unwrap_or_else(|e| {
                        panic!("seed {seed} flip@{byte}: open failed: {e}")
                    });
            // Invariant 2: every clip the DB serves is byte-identical
            // to what was stored — a flipped record is quarantined or
            // absent, never silently wrong. (A flipped tombstone can
            // legitimately resurrect a deleted clip; it must still
            // decode to exactly the original bundle.)
            let mut served = 0usize;
            for (&id, original) in &all_put {
                match db.load_clip(id) {
                    Ok(got) => {
                        assert_eq!(
                            *got, *original,
                            "seed {seed} flip@{byte}: clip {id} served wrong data"
                        );
                        if model.clips.contains_key(&id) {
                            served += 1;
                        }
                    }
                    Err(DbError::ClipQuarantined(_)) | Err(DbError::ClipNotFound(_)) => {}
                    Err(e) => panic!("seed {seed} flip@{byte}: clip {id}: {e}"),
                }
            }
            // Invariant 3: one flipped bit costs at most one record —
            // all other live clips stay retrievable.
            assert!(
                served + 1 >= model.clips.len(),
                "seed {seed} flip@{byte}: lost {} clips to one bit",
                model.clips.len() - served
            );
            // Invariant 4: served sessions are a subset of the
            // sessions actually recorded.
            for cid in all_put.keys() {
                for s in db.sessions_for_clip(*cid).unwrap() {
                    assert!(
                        all_sessions.contains(&(s.session_id, s.clip_id)),
                        "seed {seed} flip@{byte}: fabricated session {}",
                        s.session_id
                    );
                }
            }
        }
    }
}

#[test]
fn single_transient_error_at_any_op_is_invisible() {
    let seed = 77u64;
    let ops = gen_ops(seed);
    let total = count_storage_ops(&ops);
    // Expected final state, fault-free.
    let mut expect = State::default();
    for &op in &ops {
        expect = apply(&expect, op);
    }
    for fault_at in 0..total {
        let (storage, handle) = FaultyStorage::new(seed);
        handle.schedule(fault_at, FaultKind::TransientIo);
        let mut db = VideoDb::with_storage(Box::new(storage)).unwrap_or_else(|e| {
            panic!("transient@{fault_at}: open failed: {e}")
        });
        for &op in &ops {
            drive(&mut db, op)
                .unwrap_or_else(|e| panic!("transient@{fault_at}: op {op:?} failed: {e}"));
        }
        let state = read_state(&mut db);
        assert_eq!(
            state, expect,
            "transient@{fault_at}: retried run diverged from fault-free run"
        );
    }
}
