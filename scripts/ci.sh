#!/usr/bin/env bash
# Offline CI for the tsvr workspace: release build, tests, lints, and a
# probes-compiled-out build. No network access is required — the
# workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> TSVR_THREADS=1 cargo test -q --workspace (forced-sequential runtime)"
TSVR_THREADS=1 cargo test -q --workspace

# The crash-consistency sweep runs with the full workspace tests above;
# this rerun pins the fast-mode path (used for quick local iteration)
# so a regression in the env-var gate cannot slip through. Budget: <30s.
echo "==> crash-consistency suite (TSVR_CRASH_FAST=1)"
TSVR_CRASH_FAST=1 cargo test -q --test crash_consistency

# Sharded crash sweep: a crash at every op boundary of a cross-shard
# workload (torn tail on a rotating victim file, manifest included)
# must leave every shard independently recoverable. Fast mode thins the
# sweep to every 3rd crash point; the full sweep runs with the
# workspace tests above.
echo "==> sharded crash sweep (TSVR_CRASH_FAST=1)"
TSVR_CRASH_FAST=1 cargo test -q -p tsvr-viddb --test shard_crash

# The smoke run exercises the bench end-to-end but writes its JSON in a
# scratch directory so it cannot clobber a committed paper-scale
# BENCH_parallel.json. The committed full-mode JSON must record a pass
# under the tightened rule (parity only on true single-core hosts, and
# threads=n never >2% slower than threads=1 on any host).
echo "==> parallel bench smoke run (TSVR_BENCH_FAST=1)"
repo="$PWD"
par_tmp="$(mktemp -d)"
(cd "$par_tmp" && TSVR_BENCH_FAST=1 cargo run --release -q \
    --manifest-path "$repo/Cargo.toml" -p tsvr-bench --bin parallel)
grep -q '"pass":true' "$par_tmp/BENCH_parallel.json"
grep -q '"no_slowdown_pass":true' BENCH_parallel.json
grep -q '"pass":true' BENCH_parallel.json

# Kernels bench smoke: proves the SoA gram / fused-exp decision / rolling
# DTW / memoized-gram paths are bit-identical to their scalar and
# from-scratch references end to end. Fast mode gates identity only
# (short batches are too noisy for speedup targets); the committed
# full-mode BENCH_kernels.json must also record its measured speedups as
# a pass.
echo "==> kernels bench smoke run (TSVR_BENCH_FAST=1)"
kern_tmp="$(mktemp -d)"
(cd "$kern_tmp" && TSVR_BENCH_FAST=1 cargo run --release -q \
    --manifest-path "$repo/Cargo.toml" -p tsvr-bench --bin kernels)
grep -q '"pass":true' "$kern_tmp/BENCH_kernels.json"
grep -q '"identical":true' BENCH_kernels.json
grep -q '"pass":true' BENCH_kernels.json

# Same scratch-dir discipline for the feature-index bench: proves the
# cold-vs-indexed comparison (and its bit-identity assertion) end to end
# without touching a committed BENCH_index.json.
echo "==> index bench smoke run (TSVR_BENCH_FAST=1)"
(cd "$(mktemp -d)" && TSVR_BENCH_FAST=1 cargo run --release -q \
    --manifest-path "$repo/Cargo.toml" -p tsvr-bench --bin index)

# Shard bench smoke: proves the scatter-gather byte-identity assertion
# (sharded vs flat path, 1 vs N threads) and the compressed index
# codec's bit-exact round trip end to end; the committed paper-scale
# BENCH_shard.json stays untouched and is sanity-checked below.
echo "==> shard bench smoke run (TSVR_BENCH_FAST=1)"
shard_tmp="$(mktemp -d)"
(cd "$shard_tmp" && TSVR_BENCH_FAST=1 cargo run --release -q \
    --manifest-path "$repo/Cargo.toml" -p tsvr-bench --bin shard)
grep -q '"pass":true' "$shard_tmp/BENCH_shard.json"
grep -q '"rankings_byte_identical":true' BENCH_shard.json
grep -q '"compression_bit_exact":true' BENCH_shard.json
grep -q '"pass":true' BENCH_shard.json

# Query-planner bench smoke: proves the progressive planner's rankings
# are byte-identical to a post-filtered full scan (1 and 4 threads) and
# that the narrow query's plan actually pruned shards and pre-filtered
# windows. Fast mode gates correctness only; the committed full-mode
# BENCH_query.json must also record the latency-falls-with-selectivity
# pass.
echo "==> query bench smoke run (TSVR_BENCH_FAST=1)"
query_tmp="$(mktemp -d)"
(cd "$query_tmp" && TSVR_BENCH_FAST=1 cargo run --release -q \
    --manifest-path "$repo/Cargo.toml" -p tsvr-bench --bin query)
grep -q '"pass":true' "$query_tmp/BENCH_query.json"
grep -q '"rankings_byte_identical":true' BENCH_query.json
grep -q '"pass":true' BENCH_query.json

# Scenario-fleet smoke: the retrieval-quality matrix over the fleet in
# fast mode (shorter clips, paper learner only). The binary asserts
# every cell clears its AP floor, index-served bags are bit-identical,
# and the handoff row scatter-gathers + survives a shard quarantine;
# the committed full-matrix BENCH_scenarios.json is sanity-checked and
# must contain no failing cell.
echo "==> scenario fleet smoke run (TSVR_SCENARIO_FAST=1)"
fleet_tmp="$(mktemp -d)"
(cd "$fleet_tmp" && TSVR_SCENARIO_FAST=1 cargo run --release -q \
    --manifest-path "$repo/Cargo.toml" -p tsvr-bench --bin scenarios)
grep -q '"pass":true' "$fleet_tmp/BENCH_scenarios.json"
! grep -q '"cell_pass":false' "$fleet_tmp/BENCH_scenarios.json"
grep -q '"index_served_bit_identical":true' BENCH_scenarios.json
grep -q '"handoff_scatter_gather":true' BENCH_scenarios.json
! grep -q '"cell_pass":false' BENCH_scenarios.json
grep -q '"pass":true' BENCH_scenarios.json

# Serve bench smoke: proves the TCP fan-out and the byte-identity
# assertion against the single-threaded in-process path end to end.
echo "==> serve bench smoke run (TSVR_BENCH_FAST=1)"
(cd "$(mktemp -d)" && TSVR_BENCH_FAST=1 cargo run --release -q \
    --manifest-path "$repo/Cargo.toml" -p tsvr-bench --bin serve)

# Obs-overhead smoke: the full traced measurement path (probes on,
# traced, off) end to end in a scratch dir. Fast mode gates only gross
# regressions (noise in a single short batch exceeds the real 2%
# target); the committed full-mode BENCH_obs_overhead.json is checked
# against the 2% acceptance number below.
echo "==> obs_overhead bench smoke run (TSVR_BENCH_FAST=1, traced)"
obs_tmp="$(mktemp -d)"
(cd "$obs_tmp" && TSVR_BENCH_FAST=1 cargo run --release -q \
    --manifest-path "$repo/Cargo.toml" -p tsvr-bench --bin obs_overhead)
grep -q '"pass":true' "$obs_tmp/BENCH_obs_overhead.json"
grep -q '"pass":true' BENCH_obs_overhead.json
grep -q '"ns_per_iter_traced"' BENCH_obs_overhead.json

# Serve TCP smoke: a scripted NDJSON session over bash's /dev/tcp
# against a real `tsvr serve` process (slowlog retaining everything, so
# the ops plane has traces to serve), then a cross-process check that
# the checkpointed session is readable by the CLI replay path.
echo "==> serve TCP smoke (scripted NDJSON session over /dev/tcp)"
smoke="$(mktemp -d)"
./target/release/tsvr simulate --db "$smoke/smoke.db" \
    --scenario tunnel-small --seed 7 --clip-id 1 >/dev/null
port=$((20000 + RANDOM % 20000))
./target/release/tsvr serve --db "$smoke/smoke.db" \
    --addr "127.0.0.1:$port" --workers 2 \
    --slowlog-ms 0 --flight-dump "$smoke/flight.ndjson" \
    >"$smoke/serve.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 50); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then break; fi
    sleep 0.2
done
exec 3<>"/dev/tcp/127.0.0.1/$port"
expect() { # expect <needle> — send stdin line, read one response, grep it
    local needle="$1" line
    read -r line <&3
    echo "   <- $line"
    [[ "$line" == *"$needle"* ]] || {
        echo "serve smoke: expected '$needle' in response" >&2
        kill "$serve_pid" 2>/dev/null || true
        exit 1
    }
}
send() { echo "   -> $1"; printf '%s\n' "$1" >&3; }
send '{"op":"ping"}';                                    expect '"ok":"pong"'
send '{"op":"open","clip_id":1,"query":"accident","learner":"ocsvm"}'
                                                         expect '"ok":"opened"'
send '{"op":"page","session_id":1,"n":5}';               expect '"ok":"page"'
send '{"op":"feedback","session_id":1,"labels":[[0,true],[1,false]]}'
                                                         expect '"ok":"learned"'
send '{"op":"page","session_id":1,"n":5}';               expect '"ok":"page"'
send '{"op":"page","session_id":99}';                    expect '"error":"not_found"'
# Query language over the wire: a planned query answers with a plan
# receipt; a typo'd event name is a typed error with a suggestion.
send '{"op":"query","expr":"vdiff >= 0.5","k":3}';       expect '"ok":"query"'
send '{"op":"query","expr":"event = acident"}';          expect '"error":"bad_request"'
# The remote CLI proxies through the server; the local CLI plans
# directly against the database. Same query, byte-identical output.
./target/release/tsvr query "vdiff >= 0.5" \
    --addr "127.0.0.1:$port" --top 3 | tee "$smoke/query_remote.out"
# Ops plane: live registry snapshot, latest trace tree, slowlog.
send '{"op":"stats"}';                                   expect '"ok":"stats"'
send '{"op":"trace"}';                                   expect '"ok":"trace"'
send '{"op":"trace","trace_id":999999999}';              expect '"error":"not_found"'
send '{"op":"slowlog"}';                                 expect '"ok":"slowlog"'
# The CLI subcommands are thin clients over the same three ops.
./target/release/tsvr stats --addr "127.0.0.1:$port" | grep -q 'serve.requests'
./target/release/tsvr trace --addr "127.0.0.1:$port" | grep -q 'serve.latency.'
./target/release/tsvr slowlog --addr "127.0.0.1:$port" | grep -q 'serve.latency.'
send '{"op":"shutdown"}';                                expect '"ok":"shutting_down"'
exec 3<&- 3>&-
wait "$serve_pid"
# The feedback round the TCP client saw acked must be durable and
# replayable from another process.
./target/release/tsvr session list --db "$smoke/smoke.db" | grep -q "MIL_OneClassSVM"
./target/release/tsvr session replay --db "$smoke/smoke.db" \
    --clip-id 1 --session 1 --top 5 | tee "$smoke/replay.out"
grep -q "1 rounds replayed" "$smoke/replay.out"
# Cross-check the planner surfaces: the local CLI (planning directly
# against the database) must print exactly what the remote CLI printed
# while proxying through the server.
./target/release/tsvr query "vdiff >= 0.5" \
    --db "$smoke/smoke.db" --top 3 | tee "$smoke/query_local.out"
diff "$smoke/query_remote.out" "$smoke/query_local.out"

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace --no-default-features (obs probes off)"
cargo build --workspace --no-default-features

echo "==> ci.sh: all green"
