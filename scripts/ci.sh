#!/usr/bin/env bash
# Offline CI for the tsvr workspace: release build, tests, lints, and a
# probes-compiled-out build. No network access is required — the
# workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> TSVR_THREADS=1 cargo test -q --workspace (forced-sequential runtime)"
TSVR_THREADS=1 cargo test -q --workspace

# The crash-consistency sweep runs with the full workspace tests above;
# this rerun pins the fast-mode path (used for quick local iteration)
# so a regression in the env-var gate cannot slip through. Budget: <30s.
echo "==> crash-consistency suite (TSVR_CRASH_FAST=1)"
TSVR_CRASH_FAST=1 cargo test -q --test crash_consistency

# The smoke run exercises the bench end-to-end but writes its JSON in a
# scratch directory so it cannot clobber a committed paper-scale
# BENCH_parallel.json.
echo "==> parallel bench smoke run (TSVR_BENCH_FAST=1)"
repo="$PWD"
(cd "$(mktemp -d)" && TSVR_BENCH_FAST=1 cargo run --release -q \
    --manifest-path "$repo/Cargo.toml" -p tsvr-bench --bin parallel)

# Same scratch-dir discipline for the feature-index bench: proves the
# cold-vs-indexed comparison (and its bit-identity assertion) end to end
# without touching a committed BENCH_index.json.
echo "==> index bench smoke run (TSVR_BENCH_FAST=1)"
(cd "$(mktemp -d)" && TSVR_BENCH_FAST=1 cargo run --release -q \
    --manifest-path "$repo/Cargo.toml" -p tsvr-bench --bin index)

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace --no-default-features (obs probes off)"
cargo build --workspace --no-default-features

echo "==> ci.sh: all green"
