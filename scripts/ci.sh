#!/usr/bin/env bash
# Offline CI for the tsvr workspace: release build, tests, lints, and a
# probes-compiled-out build. No network access is required — the
# workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace --no-default-features (obs probes off)"
cargo build --workspace --no-default-features

echo "==> ci.sh: all green"
