//! Facade crate re-exporting the whole tsvr workspace.
pub use tsvr_core as core;
pub use tsvr_linalg as linalg;
pub use tsvr_mil as mil;
pub use tsvr_par as par;
pub use tsvr_sim as sim;
pub use tsvr_svm as svm;
pub use tsvr_trajectory as trajectory;
pub use tsvr_viddb as viddb;
pub use tsvr_vision as vision;
