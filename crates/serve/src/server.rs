//! The TCP transport: a bounded accept queue drained by a fixed worker
//! pool, newline-delimited JSON per connection.
//!
//! ## Backpressure
//!
//! The accept thread never blocks on workers: when the pending queue is
//! full it answers the new connection with one `overloaded` error line
//! and drops it. Clients therefore always get an explicit signal — they
//! are never silently parked behind an unbounded backlog.
//!
//! ## Shutdown & drain
//!
//! A `shutdown` request (or [`Server::shutdown`]) flips the stop flag.
//! The accept thread exits (closing the listener, so new connects are
//! refused by the OS), queued connections are still served their
//! in-flight request, and each worker closes its connection after the
//! response it is currently producing. `learned` acks are durable
//! before they are written (see [`crate::service`]), so a drain never
//! loses a round a client saw confirmed.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind as IoErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::proto::{self, ErrorKind, Request, Response, ServeError};
use crate::service::Service;

/// Transport tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads serving connections (each connection is pinned to
    /// one worker until it closes).
    pub workers: usize,
    /// Pending-connection queue capacity; connection number
    /// `queue_cap + 1` gets an `overloaded` error instead of a slot.
    pub queue_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_cap: 64,
        }
    }
}

struct Shared {
    service: Arc<Service>,
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    stop: AtomicBool,
    queue_cap: usize,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || self.service.is_draining()
    }

    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.service.begin_drain();
        self.ready.notify_all();
    }
}

/// A running TCP server; dropping it without [`Server::shutdown`] leaks
/// the threads, so call it (tests) or block on [`Server::join`]
/// (the CLI).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts the accept thread
    /// plus the worker pool.
    pub fn start(
        service: Arc<Service>,
        addr: &str,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        assert!(cfg.workers >= 1, "server needs at least one worker");
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            service,
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
            queue_cap: cfg.queue_cap.max(1),
        });

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        let mut workers = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server stops (a `shutdown` request arrives) and
    /// every worker has drained.
    pub fn join(mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }

    /// Initiates the drain locally and blocks until it completes.
    pub fn shutdown(self) {
        self.shared.request_stop();
        self.join();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.stopping() {
        match listener.accept() {
            Ok((stream, _)) => {
                tsvr_obs::counter!("serve.accepted").incr();
                enqueue(shared, stream);
            }
            Err(e) if e.kind() == IoErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    // Wake every worker so drain can finish; the listener closes here,
    // making further connects fail fast at the OS level.
    shared.ready.notify_all();
}

fn enqueue(shared: &Shared, mut stream: TcpStream) {
    let depth = {
        let mut q = shared.queue.lock().unwrap();
        if q.len() >= shared.queue_cap {
            drop(q);
            tsvr_obs::counter!("serve.overloaded").incr();
            tsvr_obs::trace::incident(
                "serve.overloaded",
                &format!("queue at cap {}; connection shed", shared.queue_cap),
            );
            let resp = Response::Error(ServeError::new(
                ErrorKind::Overloaded,
                "connection queue full; retry later",
            ));
            let _ = writeln!(stream, "{}", proto::encode_response(&resp));
            return;
        }
        q.push_back(stream);
        q.len()
    };
    tsvr_obs::histogram!("serve.queue.depth").record(depth as u64);
    shared.ready.notify_one();
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                if shared.stopping() {
                    break None;
                }
                let (guard, _) = shared
                    .ready
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap();
                q = guard;
            }
        };
        match stream {
            Some(s) => serve_connection(shared, s),
            // Queue fully drained and the server is stopping.
            None => return,
        }
    }
}

/// Serves one connection until EOF, a write failure, or drain. The read
/// timeout exists so a worker parked on an idle connection notices the
/// stop flag instead of pinning the drain forever.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // `read_line` may return a timeout error after consuming a
        // partial line into `line`; looping without clearing keeps
        // accumulating until the newline arrives.
        let n = loop {
            match reader.read_line(&mut line) {
                Ok(n) => break n,
                Err(e)
                    if e.kind() == IoErrorKind::WouldBlock
                        || e.kind() == IoErrorKind::TimedOut =>
                {
                    if shared.stopping() {
                        return;
                    }
                }
                Err(_) => return,
            }
        };
        if n == 0 {
            return; // EOF: client hung up.
        }
        if line.trim().is_empty() {
            continue;
        }
        let decoded = proto::decode_request(&line);
        let is_shutdown = matches!(
            decoded,
            Ok(proto::Envelope {
                req: Request::Shutdown,
                ..
            })
        );
        let resp = match decoded {
            Ok(env) => shared.service.handle(&env),
            Err(msg) => Response::Error(ServeError::new(ErrorKind::BadRequest, msg)),
        };
        if writeln!(writer, "{}", proto::encode_response(&resp)).is_err() {
            return;
        }
        if is_shutdown {
            shared.request_stop();
            return;
        }
        if shared.stopping() {
            // Drain: the in-flight request was answered; close so the
            // worker can exit.
            return;
        }
    }
}
