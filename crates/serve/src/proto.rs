//! The wire protocol: one JSON object per line, in both directions.
//!
//! Requests name their operation in an `"op"` field; responses either
//! name their payload in an `"ok"` field or carry an `"error"` kind.
//! Both directions use [`tsvr_obs::json::Json`], so the service, the
//! CLI client, the bench driver, and shell clients (`bash /dev/tcp`,
//! `nc`) all speak the same ten-line grammar:
//!
//! ```text
//! -> {"op":"open","clip_id":1,"query":"accident","learner":"ocsvm"}
//! <- {"ok":"opened","session_id":3,"clip_id":1,"windows":57,"rounds":0,"learner":"MIL_OneClassSVM"}
//! -> {"op":"page","session_id":3,"n":5}
//! <- {"ok":"page","session_id":3,"round":0,"ranking":[12,40,7,31,2]}
//! -> {"op":"feedback","session_id":3,"labels":[[12,true],[40,false]]}
//! <- {"ok":"learned","session_id":3,"round":1}
//! ```

use tsvr_core::{DegradedShard, PlanStats, RankedWindow};
use tsvr_obs::json::Json;
use tsvr_obs::trace::FinishedTrace;
use tsvr_obs::Snapshot;

/// One client request, already validated structurally.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Start a new retrieval session over a stored clip.
    Open {
        /// Clip to retrieve from.
        clip_id: u64,
        /// Free-form query label recorded with the session (e.g.
        /// `"accident"`).
        query: String,
        /// Learner spec (`"ocsvm"`, `"wrf"`, `"misvm"`, `"dd"`,
        /// `"emdd"`, or a stored learner display name); empty string
        /// selects the paper's OC-SVM.
        learner: String,
    },
    /// Restore a persisted session (same id, same learner state).
    Resume {
        /// Clip the session was recorded against.
        clip_id: u64,
        /// Stored session id.
        session_id: u64,
        /// Optional learner spec override; `None` trusts the stored
        /// row's learner name.
        learner: Option<String>,
    },
    /// Fetch the current top-`n` page of a live session.
    Page {
        /// Live session id.
        session_id: u64,
        /// Page size; `None` uses the service default (paper: 20).
        n: Option<usize>,
    },
    /// Submit one round of relevance labels and re-rank.
    Feedback {
        /// Live session id.
        session_id: u64,
        /// `(window, relevant)` labels for this round.
        labels: Vec<(u32, bool)>,
    },
    /// Run a query-language expression through the progressive planner
    /// over the whole archive (heuristic scorer, no session state).
    Query {
        /// The expression, e.g.
        /// `"camera = cam-1 and vdiff >= 3.5 and time in [0, 3600]"`.
        expr: String,
        /// Ranking depth; `None` uses the service default page size.
        k: Option<usize>,
    },
    /// List stored + live sessions for a clip.
    Sessions {
        /// Clip whose sessions to list.
        clip_id: u64,
    },
    /// Drop a live session from memory (its checkpoints stay stored).
    Close {
        /// Live session id.
        session_id: u64,
    },
    /// Liveness check.
    Ping,
    /// Live metrics snapshot (counters + histograms, labeled included).
    Stats,
    /// Fetch one completed request's span tree by trace id, or the most
    /// recent one when no id is given.
    Trace {
        /// Trace id (as carried on error responses and slowlog
        /// entries); `None` returns the latest completed trace.
        trace_id: Option<u64>,
    },
    /// The retained slowlog: full span trees of requests that exceeded
    /// the server's latency threshold.
    Slowlog,
    /// Begin graceful drain: no new sessions, in-flight requests
    /// finish, then the server exits.
    Shutdown,
}

impl Request {
    /// Stable operation name (the `"op"` field value).
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Open { .. } => "open",
            Request::Resume { .. } => "resume",
            Request::Page { .. } => "page",
            Request::Feedback { .. } => "feedback",
            Request::Query { .. } => "query",
            Request::Sessions { .. } => "sessions",
            Request::Close { .. } => "close",
            Request::Ping => "ping",
            Request::Stats => "stats",
            Request::Trace { .. } => "trace",
            Request::Slowlog => "slowlog",
            Request::Shutdown => "shutdown",
        }
    }
}

/// A request plus its transport options.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The operation.
    pub req: Request,
    /// Per-request deadline in milliseconds, measured from the moment
    /// the service starts handling it; `None` uses the service default.
    pub deadline_ms: Option<u64>,
}

impl Envelope {
    /// Wraps a request with no deadline override.
    pub fn new(req: Request) -> Envelope {
        Envelope {
            req,
            deadline_ms: None,
        }
    }
}

/// One line of the `sessions` listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSummary {
    /// Session id.
    pub session_id: u64,
    /// Clip the session retrieves from.
    pub clip_id: u64,
    /// Query label recorded at open.
    pub query: String,
    /// Learner display name.
    pub learner: String,
    /// Completed feedback rounds.
    pub rounds: usize,
    /// Whether the session is currently live in the service (vs only
    /// persisted).
    pub live: bool,
}

/// Error classification carried on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed or semantically invalid request.
    BadRequest,
    /// Unknown clip or session id.
    NotFound,
    /// Stored session's learner differs from the requested one.
    LearnerMismatch,
    /// The server's connection queue is full; retry later.
    Overloaded,
    /// The request's deadline expired before the expensive work began.
    DeadlineExceeded,
    /// The database rejected a read or a checkpoint write.
    Storage,
    /// The server is draining and accepts no new sessions.
    ShuttingDown,
}

impl ErrorKind {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::NotFound => "not_found",
            ErrorKind::LearnerMismatch => "learner_mismatch",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Storage => "storage",
            ErrorKind::ShuttingDown => "shutting_down",
        }
    }

    /// Inverse of [`ErrorKind::as_str`].
    pub fn from_wire(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "bad_request" => ErrorKind::BadRequest,
            "not_found" => ErrorKind::NotFound,
            "learner_mismatch" => ErrorKind::LearnerMismatch,
            "overloaded" => ErrorKind::Overloaded,
            "deadline_exceeded" => ErrorKind::DeadlineExceeded,
            "storage" => ErrorKind::Storage,
            "shutting_down" => ErrorKind::ShuttingDown,
            _ => return None,
        })
    }
}

/// A typed protocol error (kind + human-readable detail).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// Classification.
    pub kind: ErrorKind,
    /// Detail for humans; not meant to be parsed.
    pub message: String,
    /// The failing request's trace id, when the service was tracing it
    /// — feed it to `{"op":"trace","trace_id":N}` (or `tsvr trace`) to
    /// see where the request spent its time before failing.
    pub trace: Option<u64>,
}

impl ServeError {
    /// Builds an error response value (no trace attribution).
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> ServeError {
        ServeError {
            kind,
            message: message.into(),
            trace: None,
        }
    }

    /// Attach the originating trace id.
    pub fn with_trace(mut self, trace: Option<u64>) -> ServeError {
        self.trace = trace;
        self
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

impl std::error::Error for ServeError {}

/// One server response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A session is live (new or resumed).
    Opened {
        /// Assigned (or restored) session id.
        session_id: u64,
        /// Clip being retrieved from.
        clip_id: u64,
        /// Windows (bags) in the clip's database.
        windows: usize,
        /// Feedback rounds already incorporated.
        rounds: usize,
        /// Learner display name driving the session.
        learner: String,
    },
    /// The current ranking page.
    Page {
        /// Session id.
        session_id: u64,
        /// Feedback rounds incorporated into this ranking.
        round: usize,
        /// Window indices, best first.
        ranking: Vec<u64>,
    },
    /// A feedback round was incorporated **and durably checkpointed**.
    Learned {
        /// Session id.
        session_id: u64,
        /// Total completed rounds (this one included).
        round: usize,
    },
    /// A planned query's results: ranking plus the plan receipt.
    QueryResult {
        /// Ranked surviving windows, best first.
        ranking: Vec<RankedWindow>,
        /// What each planner stage pruned.
        stats: PlanStats,
        /// Relevant shards that could not be served — a non-empty list
        /// marks a *partial* result even when `ranking` is empty.
        degraded: Vec<DegradedShard>,
    },
    /// The `sessions` listing.
    Sessions {
        /// One entry per session, ascending id.
        sessions: Vec<SessionSummary>,
    },
    /// The session was dropped from memory.
    Closed {
        /// Session id.
        session_id: u64,
    },
    /// Liveness answer.
    Pong,
    /// Live metrics snapshot.
    Stats {
        /// Point-in-time registry copy (labeled metrics included).
        snapshot: Snapshot,
    },
    /// One completed request's span tree.
    Trace {
        /// The finished trace (root span, nested events, incidents).
        trace: FinishedTrace,
    },
    /// The retained slowlog.
    Slowlog {
        /// Latency threshold in nanoseconds a request must exceed to be
        /// retained; `u64::MAX` means the slowlog is disabled.
        threshold_ns: u64,
        /// Retained slow traces, oldest first.
        entries: Vec<FinishedTrace>,
    },
    /// Drain acknowledged.
    ShuttingDown,
    /// The request failed.
    Error(ServeError),
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

/// Serializes a request envelope to one wire line (no trailing newline).
pub fn encode_request(env: &Envelope) -> String {
    let mut fields = vec![("op", Json::Str(env.req.op_name().into()))];
    match &env.req {
        Request::Open {
            clip_id,
            query,
            learner,
        } => {
            fields.push(("clip_id", num(*clip_id)));
            fields.push(("query", Json::Str(query.clone())));
            if !learner.is_empty() {
                fields.push(("learner", Json::Str(learner.clone())));
            }
        }
        Request::Resume {
            clip_id,
            session_id,
            learner,
        } => {
            fields.push(("clip_id", num(*clip_id)));
            fields.push(("session_id", num(*session_id)));
            if let Some(l) = learner {
                fields.push(("learner", Json::Str(l.clone())));
            }
        }
        Request::Page { session_id, n } => {
            fields.push(("session_id", num(*session_id)));
            if let Some(n) = n {
                fields.push(("n", num(*n as u64)));
            }
        }
        Request::Feedback { session_id, labels } => {
            fields.push(("session_id", num(*session_id)));
            fields.push((
                "labels",
                Json::Arr(
                    labels
                        .iter()
                        .map(|&(w, r)| Json::Arr(vec![num(u64::from(w)), Json::Bool(r)]))
                        .collect(),
                ),
            ));
        }
        Request::Query { expr, k } => {
            fields.push(("expr", Json::Str(expr.clone())));
            if let Some(k) = k {
                fields.push(("k", num(*k as u64)));
            }
        }
        Request::Sessions { clip_id } => fields.push(("clip_id", num(*clip_id))),
        Request::Close { session_id } => fields.push(("session_id", num(*session_id))),
        Request::Trace { trace_id } => {
            if let Some(id) = trace_id {
                fields.push(("trace_id", num(*id)));
            }
        }
        Request::Ping | Request::Stats | Request::Slowlog | Request::Shutdown => {}
    }
    if let Some(ms) = env.deadline_ms {
        fields.push(("deadline_ms", num(ms)));
    }
    obj(fields).to_string()
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

/// Parses one wire line into a request envelope. The error string is
/// human-readable and becomes a `bad_request` response.
pub fn decode_request(line: &str) -> Result<Envelope, String> {
    let v = Json::parse(line.trim()).map_err(|e| e.to_string())?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing string field \"op\"")?;
    let req = match op {
        "open" => Request::Open {
            clip_id: field_u64(&v, "clip_id")?,
            query: v
                .get("query")
                .and_then(Json::as_str)
                .unwrap_or("accident")
                .to_string(),
            learner: v
                .get("learner")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
        },
        "resume" => Request::Resume {
            clip_id: field_u64(&v, "clip_id")?,
            session_id: field_u64(&v, "session_id")?,
            learner: v.get("learner").and_then(Json::as_str).map(String::from),
        },
        "page" => Request::Page {
            session_id: field_u64(&v, "session_id")?,
            n: match v.get("n") {
                Some(n) => Some(
                    n.as_u64()
                        .ok_or("field \"n\" must be a non-negative integer")?
                        as usize,
                ),
                None => None,
            },
        },
        "feedback" => {
            let labels = v
                .get("labels")
                .and_then(Json::as_arr)
                .ok_or("missing array field \"labels\"")?;
            let mut parsed = Vec::with_capacity(labels.len());
            for l in labels {
                let pair = l.as_arr().filter(|p| p.len() == 2).ok_or(
                    "each label must be a [window, relevant] pair, e.g. [12, true]",
                )?;
                let w = pair[0]
                    .as_u64()
                    .filter(|&w| w <= u64::from(u32::MAX))
                    .ok_or("label window must be a u32 index")?;
                let r = match pair[1] {
                    Json::Bool(b) => b,
                    _ => return Err("label relevance must be a boolean".into()),
                };
                parsed.push((w as u32, r));
            }
            Request::Feedback {
                session_id: field_u64(&v, "session_id")?,
                labels: parsed,
            }
        }
        "query" => Request::Query {
            expr: v
                .get("expr")
                .and_then(Json::as_str)
                .ok_or("missing string field \"expr\"")?
                .to_string(),
            k: match v.get("k") {
                Some(k) => Some(
                    k.as_u64()
                        .ok_or("field \"k\" must be a non-negative integer")?
                        as usize,
                ),
                None => None,
            },
        },
        "sessions" => Request::Sessions {
            clip_id: field_u64(&v, "clip_id")?,
        },
        "close" => Request::Close {
            session_id: field_u64(&v, "session_id")?,
        },
        "ping" => Request::Ping,
        "stats" => Request::Stats,
        "trace" => Request::Trace {
            trace_id: match v.get("trace_id") {
                Some(id) => Some(
                    id.as_u64()
                        .ok_or("field \"trace_id\" must be a non-negative integer")?,
                ),
                None => None,
            },
        },
        "slowlog" => Request::Slowlog,
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown op {other:?}")),
    };
    let deadline_ms = match v.get("deadline_ms") {
        Some(d) => Some(
            d.as_u64()
                .ok_or("field \"deadline_ms\" must be a non-negative integer")?,
        ),
        None => None,
    };
    Ok(Envelope { req, deadline_ms })
}

/// Serializes a response to one wire line (no trailing newline).
pub fn encode_response(resp: &Response) -> String {
    let v = match resp {
        Response::Opened {
            session_id,
            clip_id,
            windows,
            rounds,
            learner,
        } => obj(vec![
            ("ok", Json::Str("opened".into())),
            ("session_id", num(*session_id)),
            ("clip_id", num(*clip_id)),
            ("windows", num(*windows as u64)),
            ("rounds", num(*rounds as u64)),
            ("learner", Json::Str(learner.clone())),
        ]),
        Response::Page {
            session_id,
            round,
            ranking,
        } => obj(vec![
            ("ok", Json::Str("page".into())),
            ("session_id", num(*session_id)),
            ("round", num(*round as u64)),
            ("ranking", Json::Arr(ranking.iter().map(|&w| num(w)).collect())),
        ]),
        Response::Learned { session_id, round } => obj(vec![
            ("ok", Json::Str("learned".into())),
            ("session_id", num(*session_id)),
            ("round", num(*round as u64)),
        ]),
        Response::QueryResult {
            ranking,
            stats,
            degraded,
        } => obj(vec![
            ("ok", Json::Str("query".into())),
            (
                "ranking",
                Json::Arr(
                    ranking
                        .iter()
                        .map(|r| {
                            Json::Arr(vec![
                                num(r.clip_id),
                                num(r.window_index),
                                Json::Num(r.score),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "plan",
                obj(vec![
                    ("shards_total", num(stats.shards_total as u64)),
                    ("shards_pruned", num(stats.shards_pruned as u64)),
                    ("clips_considered", num(stats.clips_considered as u64)),
                    ("clips_pruned", num(stats.clips_pruned as u64)),
                    ("windows_scanned", num(stats.windows_scanned as u64)),
                    ("windows_prefiltered", num(stats.windows_prefiltered as u64)),
                    ("windows_ranked", num(stats.windows_ranked as u64)),
                ]),
            ),
            (
                "degraded",
                Json::Arr(
                    degraded
                        .iter()
                        .map(|d| {
                            obj(vec![
                                ("file", Json::Str(d.file.clone())),
                                ("camera", Json::Str(d.camera.clone())),
                                ("bucket", num(d.bucket)),
                                ("reason", Json::Str(d.reason.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        Response::Sessions { sessions } => obj(vec![
            ("ok", Json::Str("sessions".into())),
            (
                "sessions",
                Json::Arr(
                    sessions
                        .iter()
                        .map(|s| {
                            obj(vec![
                                ("session_id", num(s.session_id)),
                                ("clip_id", num(s.clip_id)),
                                ("query", Json::Str(s.query.clone())),
                                ("learner", Json::Str(s.learner.clone())),
                                ("rounds", num(s.rounds as u64)),
                                ("live", Json::Bool(s.live)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        Response::Closed { session_id } => obj(vec![
            ("ok", Json::Str("closed".into())),
            ("session_id", num(*session_id)),
        ]),
        Response::Pong => obj(vec![("ok", Json::Str("pong".into()))]),
        Response::Stats { snapshot } => obj(vec![
            ("ok", Json::Str("stats".into())),
            ("snapshot", snapshot.to_json_value()),
        ]),
        Response::Trace { trace } => obj(vec![
            ("ok", Json::Str("trace".into())),
            ("trace", trace.to_json_value()),
        ]),
        Response::Slowlog {
            threshold_ns,
            entries,
        } => obj(vec![
            ("ok", Json::Str("slowlog".into())),
            ("threshold_ns", num(*threshold_ns)),
            (
                "entries",
                Json::Arr(entries.iter().map(FinishedTrace::to_json_value).collect()),
            ),
        ]),
        Response::ShuttingDown => obj(vec![("ok", Json::Str("shutting_down".into()))]),
        Response::Error(e) => {
            let mut fields = vec![
                ("error", Json::Str(e.kind.as_str().into())),
                ("message", Json::Str(e.message.clone())),
            ];
            if let Some(t) = e.trace {
                fields.push(("trace", num(t)));
            }
            obj(fields)
        }
    };
    v.to_string()
}

/// Parses one wire line into a response (the client half).
pub fn decode_response(line: &str) -> Result<Response, String> {
    let v = Json::parse(line.trim()).map_err(|e| e.to_string())?;
    if let Some(kind) = v.get("error").and_then(Json::as_str) {
        let kind = ErrorKind::from_wire(kind).ok_or_else(|| format!("unknown error kind {kind:?}"))?;
        return Ok(Response::Error(
            ServeError::new(kind, v.get("message").and_then(Json::as_str).unwrap_or(""))
                .with_trace(v.get("trace").and_then(Json::as_u64)),
        ));
    }
    let ok = v
        .get("ok")
        .and_then(Json::as_str)
        .ok_or("response has neither \"ok\" nor \"error\"")?;
    Ok(match ok {
        "opened" => Response::Opened {
            session_id: field_u64(&v, "session_id")?,
            clip_id: field_u64(&v, "clip_id")?,
            windows: field_u64(&v, "windows")? as usize,
            rounds: field_u64(&v, "rounds")? as usize,
            learner: v
                .get("learner")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
        },
        "page" => Response::Page {
            session_id: field_u64(&v, "session_id")?,
            round: field_u64(&v, "round")? as usize,
            ranking: v
                .get("ranking")
                .and_then(Json::as_arr)
                .ok_or("missing array field \"ranking\"")?
                .iter()
                .map(|w| w.as_u64().ok_or("ranking entries must be integers"))
                .collect::<Result<_, _>>()?,
        },
        "learned" => Response::Learned {
            session_id: field_u64(&v, "session_id")?,
            round: field_u64(&v, "round")? as usize,
        },
        "query" => {
            let ranking = v
                .get("ranking")
                .and_then(Json::as_arr)
                .ok_or("missing array field \"ranking\"")?
                .iter()
                .map(|hit| {
                    let parts = hit
                        .as_arr()
                        .filter(|p| p.len() == 3)
                        .ok_or("each hit must be a [clip, window, score] triple")?;
                    Ok(RankedWindow {
                        clip_id: parts[0].as_u64().ok_or("hit clip must be an integer")?,
                        window_index: parts[1]
                            .as_u64()
                            .ok_or("hit window must be an integer")?,
                        score: parts[2].as_f64().ok_or("hit score must be a number")?,
                    })
                })
                .collect::<Result<_, String>>()?;
            let plan = v.get("plan").ok_or("missing object field \"plan\"")?;
            let stat = |key: &str| -> Result<usize, String> {
                Ok(field_u64(plan, key)? as usize)
            };
            let stats = PlanStats {
                shards_total: stat("shards_total")?,
                shards_pruned: stat("shards_pruned")?,
                clips_considered: stat("clips_considered")?,
                clips_pruned: stat("clips_pruned")?,
                windows_scanned: stat("windows_scanned")?,
                windows_prefiltered: stat("windows_prefiltered")?,
                windows_ranked: stat("windows_ranked")?,
            };
            let degraded = v
                .get("degraded")
                .and_then(Json::as_arr)
                .ok_or("missing array field \"degraded\"")?
                .iter()
                .map(|d| {
                    let text = |key: &str| -> Result<String, String> {
                        Ok(d.get(key)
                            .and_then(Json::as_str)
                            .ok_or_else(|| format!("missing string field {key:?}"))?
                            .to_string())
                    };
                    Ok(DegradedShard {
                        file: text("file")?,
                        camera: text("camera")?,
                        bucket: field_u64(d, "bucket")?,
                        reason: text("reason")?,
                    })
                })
                .collect::<Result<_, String>>()?;
            Response::QueryResult {
                ranking,
                stats,
                degraded,
            }
        }
        "sessions" => Response::Sessions {
            sessions: v
                .get("sessions")
                .and_then(Json::as_arr)
                .ok_or("missing array field \"sessions\"")?
                .iter()
                .map(|s| {
                    Ok(SessionSummary {
                        session_id: field_u64(s, "session_id")?,
                        clip_id: field_u64(s, "clip_id")?,
                        query: s
                            .get("query")
                            .and_then(Json::as_str)
                            .unwrap_or("")
                            .to_string(),
                        learner: s
                            .get("learner")
                            .and_then(Json::as_str)
                            .unwrap_or("")
                            .to_string(),
                        rounds: field_u64(s, "rounds")? as usize,
                        live: matches!(s.get("live"), Some(Json::Bool(true))),
                    })
                })
                .collect::<Result<_, String>>()?,
        },
        "closed" => Response::Closed {
            session_id: field_u64(&v, "session_id")?,
        },
        "pong" => Response::Pong,
        "stats" => Response::Stats {
            snapshot: Snapshot::from_json_value(
                v.get("snapshot").ok_or("missing object field \"snapshot\"")?,
            )
            .map_err(|e| format!("bad snapshot: {e}"))?,
        },
        "trace" => Response::Trace {
            trace: FinishedTrace::from_json_value(
                v.get("trace").ok_or("missing object field \"trace\"")?,
            )
            .map_err(|e| format!("bad trace: {e}"))?,
        },
        "slowlog" => Response::Slowlog {
            threshold_ns: field_u64(&v, "threshold_ns")?,
            entries: v
                .get("entries")
                .and_then(Json::as_arr)
                .ok_or("missing array field \"entries\"")?
                .iter()
                .map(|t| FinishedTrace::from_json_value(t).map_err(|e| format!("bad trace: {e}")))
                .collect::<Result<_, _>>()?,
        },
        "shutting_down" => Response::ShuttingDown,
        other => return Err(format!("unknown ok kind {other:?}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_req(env: Envelope) {
        let line = encode_request(&env);
        let back = decode_request(&line).unwrap();
        assert_eq!(back, env, "request round trip changed {line}");
    }

    fn round_trip_resp(resp: Response) {
        let line = encode_response(&resp);
        let back = decode_response(&line).unwrap();
        assert_eq!(back, resp, "response round trip changed {line}");
    }

    #[test]
    fn requests_round_trip() {
        round_trip_req(Envelope::new(Request::Open {
            clip_id: 1,
            query: "accident".into(),
            learner: "ocsvm".into(),
        }));
        round_trip_req(Envelope {
            req: Request::Resume {
                clip_id: 2,
                session_id: 9,
                learner: Some("wrf".into()),
            },
            deadline_ms: Some(1500),
        });
        round_trip_req(Envelope::new(Request::Resume {
            clip_id: 2,
            session_id: 9,
            learner: None,
        }));
        round_trip_req(Envelope::new(Request::Page {
            session_id: 3,
            n: Some(7),
        }));
        round_trip_req(Envelope::new(Request::Page {
            session_id: 3,
            n: None,
        }));
        round_trip_req(Envelope::new(Request::Feedback {
            session_id: 3,
            labels: vec![(12, true), (40, false)],
        }));
        round_trip_req(Envelope::new(Request::Query {
            expr: "camera = cam-1 and vdiff >= 3.5".into(),
            k: Some(10),
        }));
        round_trip_req(Envelope::new(Request::Query {
            expr: "all".into(),
            k: None,
        }));
        round_trip_req(Envelope::new(Request::Sessions { clip_id: 1 }));
        round_trip_req(Envelope::new(Request::Close { session_id: 3 }));
        round_trip_req(Envelope::new(Request::Ping));
        round_trip_req(Envelope::new(Request::Stats));
        round_trip_req(Envelope::new(Request::Trace { trace_id: Some(17) }));
        round_trip_req(Envelope::new(Request::Trace { trace_id: None }));
        round_trip_req(Envelope::new(Request::Slowlog));
        round_trip_req(Envelope::new(Request::Shutdown));
    }

    #[test]
    fn responses_round_trip() {
        round_trip_resp(Response::Opened {
            session_id: 3,
            clip_id: 1,
            windows: 57,
            rounds: 2,
            learner: "MIL_OneClassSVM".into(),
        });
        round_trip_resp(Response::Page {
            session_id: 3,
            round: 1,
            ranking: vec![12, 40, 7],
        });
        round_trip_resp(Response::Learned {
            session_id: 3,
            round: 2,
        });
        round_trip_resp(Response::Sessions {
            sessions: vec![SessionSummary {
                session_id: 3,
                clip_id: 1,
                query: "accident".into(),
                learner: "MIL_OneClassSVM".into(),
                rounds: 2,
                live: true,
            }],
        });
        round_trip_resp(Response::QueryResult {
            ranking: vec![
                RankedWindow {
                    score: 0.875,
                    clip_id: 3,
                    window_index: u64::from(u32::MAX) + 7,
                },
                RankedWindow {
                    score: 0.1 + 0.2, // non-terminating binary fraction
                    clip_id: 1,
                    window_index: 0,
                },
            ],
            stats: PlanStats {
                shards_total: 12,
                shards_pruned: 9,
                clips_considered: 6,
                clips_pruned: 2,
                windows_scanned: 400,
                windows_prefiltered: 390,
                windows_ranked: 10,
            },
            degraded: vec![DegradedShard {
                file: "shard-cam-2-5".into(),
                camera: "cam-2".into(),
                bucket: 5,
                reason: "bad magic".into(),
            }],
        });
        round_trip_resp(Response::QueryResult {
            ranking: vec![],
            stats: PlanStats::default(),
            degraded: vec![],
        });
        round_trip_resp(Response::Closed { session_id: 3 });
        round_trip_resp(Response::Pong);
        round_trip_resp(Response::ShuttingDown);
        round_trip_resp(Response::Error(ServeError::new(
            ErrorKind::Overloaded,
            "queue full",
        )));
        round_trip_resp(Response::Error(
            ServeError::new(ErrorKind::Storage, "checkpoint failed").with_trace(Some(41)),
        ));
    }

    fn sample_trace(id: u64) -> FinishedTrace {
        FinishedTrace {
            trace: id,
            name: "serve.latency.page".into(),
            dur_ns: 120_000,
            events: vec![
                tsvr_obs::trace::Event {
                    seq: 7,
                    kind: tsvr_obs::trace::EventKind::Incident,
                    trace: id,
                    span: 3,
                    parent: 2,
                    name: "viddb.retry.exhausted".into(),
                    detail: "segment 4".into(),
                    start_ns: 50,
                    dur_ns: 0,
                },
                tsvr_obs::trace::Event {
                    seq: 9,
                    kind: tsvr_obs::trace::EventKind::Span,
                    trace: id,
                    span: 2,
                    parent: 0,
                    name: "serve.latency.page".into(),
                    detail: "".into(),
                    start_ns: 10,
                    dur_ns: 120_000,
                },
            ],
            dropped: 1,
        }
    }

    #[test]
    fn ops_plane_responses_round_trip() {
        round_trip_resp(Response::Stats {
            snapshot: Snapshot::default(),
        });
        round_trip_resp(Response::Trace {
            trace: sample_trace(41),
        });
        round_trip_resp(Response::Slowlog {
            threshold_ns: 100_000_000,
            entries: vec![sample_trace(41), sample_trace(42)],
        });
        round_trip_resp(Response::Slowlog {
            threshold_ns: u64::MAX,
            entries: vec![],
        });
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            ("", "parse error"),
            ("{}", "\"op\""),
            ("{\"op\":\"warp\"}", "unknown op"),
            ("{\"op\":\"open\"}", "clip_id"),
            ("{\"op\":\"feedback\",\"session_id\":1}", "labels"),
            (
                "{\"op\":\"feedback\",\"session_id\":1,\"labels\":[[1]]}",
                "pair",
            ),
            (
                "{\"op\":\"feedback\",\"session_id\":1,\"labels\":[[1,2]]}",
                "boolean",
            ),
            ("{\"op\":\"ping\",\"deadline_ms\":-4}", "deadline_ms"),
            ("{\"op\":\"query\"}", "expr"),
            ("{\"op\":\"query\",\"expr\":\"all\",\"k\":-1}", "\"k\""),
        ] {
            let err = decode_request(line).unwrap_err();
            assert!(
                err.contains(needle),
                "error for {line:?} was {err:?}, expected to mention {needle:?}"
            );
        }
    }

    #[test]
    fn error_kinds_round_trip_through_wire_names() {
        for kind in [
            ErrorKind::BadRequest,
            ErrorKind::NotFound,
            ErrorKind::LearnerMismatch,
            ErrorKind::Overloaded,
            ErrorKind::DeadlineExceeded,
            ErrorKind::Storage,
            ErrorKind::ShuttingDown,
        ] {
            assert_eq!(ErrorKind::from_wire(kind.as_str()), Some(kind));
        }
        assert_eq!(ErrorKind::from_wire("gremlins"), None);
    }
}
