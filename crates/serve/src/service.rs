//! The in-process service: session management, checkpointing, and the
//! one `handle` entry point every transport shares.
//!
//! ## Durability contract
//!
//! A `learned` response is only sent after the round's checkpoint — a
//! full-history [`SessionRow`] — has been appended **and synced** to the
//! database. Crash the process at any storage operation and every round
//! the client was told about is replayable via [`tsvr_core::replay_session`];
//! rounds that never got their `learned` ack may be lost, which is
//! exactly the at-most-once promise a client can reason about. Because
//! every checkpoint row carries the complete feedback history, a single
//! successful checkpoint also re-persists any earlier round whose own
//! checkpoint write failed transiently.
//!
//! ## Concurrency model
//!
//! One mutex per session serializes that client's requests; different
//! sessions only contend on three short-held maps (database handle,
//! clip cache, session table). The expensive work — scoring every bag —
//! runs outside all service locks except the owning session's, and fans
//! out internally on the bounded [`tsvr_par`] pool via
//! [`Learner::score_all`]. Lock order is `session state → db`; nothing
//! acquires a session lock while holding the db lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::proto::{Envelope, ErrorKind, Request, Response, ServeError, SessionSummary};
use tsvr_core::{bags_from_bundle, bags_from_dataset, LearnerKind};
use tsvr_mil::session::rank_scores;
use tsvr_mil::{heuristic, Bag, Learner};
use tsvr_trajectory::checkpoint::FeatureConfig;
use tsvr_trajectory::WindowConfig;
use tsvr_viddb::{AnyDb, DbError, SessionRow};

/// Service tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Page size when a `page` request omits `n` (paper: 20).
    pub default_top_n: usize,
    /// Deadline applied when a request carries none, in milliseconds.
    /// `0` disables the default deadline.
    pub default_deadline_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            default_top_n: 20,
            default_deadline_ms: 30_000,
        }
    }
}

/// One live session's state. Owned by its mutex; the learner inside is
/// exactly what a replay of the recorded feedback would rebuild.
struct SessionState {
    clip_id: u64,
    query: String,
    learner: Box<dyn Learner>,
    bags: Arc<Vec<Bag>>,
    /// Full feedback history, one inner vec per completed round.
    feedback: Vec<Vec<(u32, bool)>>,
    /// Current full ranking (heuristic before any feedback, learner
    /// scores after).
    ranking: Vec<usize>,
}

/// The concurrent retrieval service. Wrap it in an [`Arc`] and call
/// [`Service::handle`] from any number of threads; the TCP server in
/// [`crate::server`] is one such caller, tests and the CLI are others.
pub struct Service {
    db: Mutex<AnyDb>,
    /// Per-clip bag cache: loaded once (index-served when fresh),
    /// shared read-only by every session on the clip.
    clips: Mutex<HashMap<u64, Arc<Vec<Bag>>>>,
    sessions: Mutex<HashMap<u64, Arc<Mutex<SessionState>>>>,
    next_id: AtomicU64,
    draining: AtomicBool,
    cfg: ServiceConfig,
}

/// Parses a learner spec: the CLI's short names, a stored learner
/// display name, or empty for the paper default.
fn learner_kind_from_spec(spec: &str) -> Option<LearnerKind> {
    Some(match spec {
        "" | "ocsvm" => LearnerKind::paper_ocsvm(),
        "wrf" => LearnerKind::paper_weighted_rf(),
        "misvm" => LearnerKind::MiSvm { c: 10.0 },
        "dd" => LearnerKind::DiverseDensity { scale: 8.0 },
        "emdd" => LearnerKind::EmDd { scale: 8.0 },
        other => LearnerKind::from_learner_name(other)?,
    })
}

/// Builds an error response, stamping it with the current trace id so a
/// client holding only the error line can pull the request's span tree
/// via `{"op":"trace","trace_id":N}`.
fn err(kind: ErrorKind, message: impl Into<String>) -> Response {
    tsvr_obs::counter!("serve.errors").incr();
    let trace = tsvr_obs::trace::current().map(|c| c.trace);
    Response::Error(ServeError::new(kind, message).with_trace(trace))
}

fn db_err(e: &DbError) -> Response {
    match e {
        DbError::ClipNotFound(id) => err(ErrorKind::NotFound, format!("clip {id} not stored")),
        DbError::ClipQuarantined(id) => err(
            ErrorKind::Storage,
            format!("clip {id} is quarantined; repair or compact the database"),
        ),
        other => err(ErrorKind::Storage, other.to_string()),
    }
}

/// A request's time budget, measured from service entry.
#[derive(Clone, Copy)]
struct Deadline {
    started: Instant,
    budget: Option<Duration>,
}

impl Deadline {
    fn new(env: &Envelope, cfg: &ServiceConfig) -> Deadline {
        let ms = env.deadline_ms.unwrap_or(cfg.default_deadline_ms);
        Deadline {
            started: Instant::now(),
            budget: (ms > 0).then(|| Duration::from_millis(ms)),
        }
    }

    /// `Some(error)` once the budget is spent. Checked before each
    /// expensive stage; a round whose training already started always
    /// runs to completion (and checkpoints), so the deadline bounds
    /// queue + startup cost without ever leaving a half-applied round.
    fn check(&self) -> Option<Response> {
        let budget = self.budget?;
        if self.started.elapsed() < budget {
            return None;
        }
        tsvr_obs::counter!("serve.deadline_exceeded").incr();
        tsvr_obs::trace::incident(
            "serve.deadline_exceeded",
            &format!("budget {budget:?} spent before the work started"),
        );
        Some(err(
            ErrorKind::DeadlineExceeded,
            format!("deadline of {budget:?} expired before the work started"),
        ))
    }
}

impl Service {
    /// Wraps an open database — a single-file [`tsvr_viddb::VideoDb`],
    /// a [`tsvr_viddb::ShardedDb`] directory, or an already-wrapped
    /// [`AnyDb`]. New session ids continue after the largest persisted
    /// one, so resumed and fresh sessions never collide.
    pub fn new(db: impl Into<AnyDb>, cfg: ServiceConfig) -> Service {
        let db = db.into();
        let next = db.max_session_id() + 1;
        Service {
            db: Mutex::new(db),
            clips: Mutex::new(HashMap::new()),
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(next),
            draining: AtomicBool::new(false),
            cfg,
        }
    }

    /// Whether [`Request::Shutdown`] has been received (or
    /// [`Service::begin_drain`] called): new sessions are refused and
    /// transports should close connections after their in-flight
    /// request.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Starts the drain without a protocol request (process signal,
    /// test teardown).
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Handles one request. This is the single code path behind every
    /// transport; the TCP server adds framing and queueing around it,
    /// nothing else.
    pub fn handle(&self, env: &Envelope) -> Response {
        let deadline = Deadline::new(env, &self.cfg);
        tsvr_obs::counter!("serve.requests").incr();
        let op = env.req.op_name();
        tsvr_obs::counter_labeled("serve.requests", &format!("op={op}")).incr();
        // Retrieval ops become trace roots (each arm is its own probe
        // site, so every name is static). Ops-plane requests — ping,
        // stats, trace, slowlog — stay untraced so `trace` with no id
        // always answers with the latest *real* request.
        let _traced = match &env.req {
            Request::Open { .. } => Some(tsvr_obs::tspan!("serve.latency.open")),
            Request::Resume { .. } => Some(tsvr_obs::tspan!("serve.latency.resume")),
            Request::Page { .. } => Some(tsvr_obs::tspan!("serve.latency.page")),
            Request::Feedback { .. } => Some(tsvr_obs::tspan!("serve.latency.feedback")),
            Request::Query { .. } => Some(tsvr_obs::tspan!("serve.latency.query")),
            _ => None,
        };
        let _plain = match &env.req {
            Request::Sessions { .. } | Request::Close { .. } | Request::Shutdown => {
                Some(tsvr_obs::span!("serve.latency.other"))
            }
            _ => None,
        };
        let labeled_t0 = tsvr_obs::is_enabled().then(Instant::now);
        let resp = match &env.req {
            Request::Open {
                clip_id,
                query,
                learner,
            } => self.open(*clip_id, query, learner, deadline),
            Request::Resume {
                clip_id,
                session_id,
                learner,
            } => self.resume(*clip_id, *session_id, learner.as_deref(), deadline),
            Request::Page { session_id, n } => self.page(*session_id, *n),
            Request::Feedback { session_id, labels } => {
                self.feedback(*session_id, labels, deadline)
            }
            Request::Query { expr, k } => self.query(expr, *k, deadline),
            Request::Sessions { clip_id } => self.list_sessions(*clip_id),
            Request::Close { session_id } => self.close(*session_id),
            Request::Ping => Response::Pong,
            Request::Stats => Response::Stats {
                snapshot: tsvr_obs::snapshot(),
            },
            Request::Trace { trace_id } => Self::trace_of(*trace_id),
            Request::Slowlog => Response::Slowlog {
                threshold_ns: tsvr_obs::trace::slow_threshold_ns(),
                entries: tsvr_obs::trace::slowlog(),
            },
            Request::Shutdown => {
                self.begin_drain();
                Response::ShuttingDown
            }
        };
        // Per-op latency with a label dimension (`serve.latency{op=x}`),
        // alongside the per-endpoint histograms the spans feed.
        if let Some(t0) = labeled_t0 {
            tsvr_obs::histogram_ns_labeled("serve.latency", &format!("op={op}"))
                .record(t0.elapsed().as_nanos() as u64);
        }
        resp
    }

    /// Answers a `trace` request from the retained recent-trace buffer.
    fn trace_of(trace_id: Option<u64>) -> Response {
        let found = match trace_id {
            Some(id) => tsvr_obs::trace::finished(id),
            None => tsvr_obs::trace::latest(),
        };
        match found {
            Some(trace) => Response::Trace { trace },
            None => err(
                ErrorKind::NotFound,
                match trace_id {
                    Some(id) => format!(
                        "trace {id} not retained (buffer keeps the last {} traces)",
                        tsvr_obs::trace::RECENT_CAP
                    ),
                    None => "no completed traces (server built without obs, or no traced \
                             request has finished yet)"
                        .to_string(),
                },
            ),
        }
    }

    /// The clip's bag database: cached, else served from its stored
    /// feature index when fresh, else rebuilt from the archived bundle.
    /// All three paths yield bit-identical bags (PR-4 invariant), and
    /// none re-runs vision work.
    fn clip_bags(&self, clip_id: u64) -> Result<Arc<Vec<Bag>>, Response> {
        if let Some(bags) = self.clips.lock().unwrap().get(&clip_id) {
            return Ok(Arc::clone(bags));
        }
        // Load outside the cache lock; a racing load computes the same
        // value, and the first insert wins.
        let bags = {
            let mut db = self.db.lock().unwrap();
            let wcfg = WindowConfig::default();
            let vdb = db.db_for_clip_mut(clip_id).map_err(|e| db_err(&e))?;
            match tsvr_core::load_index(vdb, clip_id, &wcfg) {
                Ok(Some(ds)) => bags_from_dataset(&ds),
                Ok(None) => {
                    let bundle = vdb.load_clip(clip_id).map_err(|e| db_err(&e))?;
                    bags_from_bundle(&bundle, &FeatureConfig::default())
                }
                Err(e) => return Err(db_err(&e)),
            }
        };
        let bags = Arc::new(bags);
        Ok(Arc::clone(
            self.clips
                .lock()
                .unwrap()
                .entry(clip_id)
                .or_insert_with(|| Arc::clone(&bags)),
        ))
    }

    fn session(&self, session_id: u64) -> Result<Arc<Mutex<SessionState>>, Response> {
        self.sessions
            .lock()
            .unwrap()
            .get(&session_id)
            .cloned()
            .ok_or_else(|| {
                err(
                    ErrorKind::NotFound,
                    format!("no live session {session_id} (open or resume it first)"),
                )
            })
    }

    fn open(&self, clip_id: u64, query: &str, learner: &str, deadline: Deadline) -> Response {
        if self.is_draining() {
            return err(ErrorKind::ShuttingDown, "server is draining");
        }
        let Some(kind) = learner_kind_from_spec(learner) else {
            return err(ErrorKind::BadRequest, format!("unknown learner {learner:?}"));
        };
        let bags = match self.clip_bags(clip_id) {
            Ok(b) => b,
            Err(resp) => return resp,
        };
        if let Some(resp) = deadline.check() {
            return resp;
        }
        let learner = kind.build_for(&bags);
        let ranking = rank_scores(&bags, &heuristic::bag_scores(&bags));
        let session_id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let state = SessionState {
            clip_id,
            query: query.to_string(),
            learner,
            bags,
            feedback: Vec::new(),
            ranking,
        };
        let windows = state.bags.len();
        let name = state.learner.name().to_string();
        self.sessions
            .lock()
            .unwrap()
            .insert(session_id, Arc::new(Mutex::new(state)));
        tsvr_obs::counter!("serve.sessions.opened").incr();
        tsvr_obs::counter_labeled("serve.sessions.opened", &format!("session={session_id}"))
            .incr();
        Response::Opened {
            session_id,
            clip_id,
            windows,
            rounds: 0,
            learner: name,
        }
    }

    fn resume(
        &self,
        clip_id: u64,
        session_id: u64,
        learner: Option<&str>,
        deadline: Deadline,
    ) -> Response {
        if self.is_draining() {
            return err(ErrorKind::ShuttingDown, "server is draining");
        }
        // Checkpoints carry full history, so the row with the most
        // rounds is the latest state; among equals, the later append
        // wins.
        let row = {
            let mut db = self.db.lock().unwrap();
            let rows = match db.sessions_for_clip(clip_id) {
                Ok(rows) => rows,
                Err(e) => return db_err(&e),
            };
            match rows
                .into_iter()
                .enumerate()
                .filter(|(_, r)| r.session_id == session_id)
                .max_by_key(|(i, r)| (r.feedback.len(), *i))
            {
                Some((_, row)) => row,
                None => {
                    return err(
                        ErrorKind::NotFound,
                        format!("no stored session {session_id} for clip {clip_id}"),
                    )
                }
            }
        };
        let kind = match learner {
            Some(spec) => match learner_kind_from_spec(spec) {
                Some(k) => k,
                None => return err(ErrorKind::BadRequest, format!("unknown learner {spec:?}")),
            },
            None => match LearnerKind::from_learner_name(&row.learner) {
                Some(k) => k,
                None => {
                    tsvr_obs::trace::incident(
                        "serve.learner.mismatch",
                        &format!("session {session_id}: stored learner {:?} unknown", row.learner),
                    );
                    return err(
                        ErrorKind::LearnerMismatch,
                        format!("stored session uses unknown learner {:?}", row.learner),
                    )
                }
            },
        };
        let bags = match self.clip_bags(clip_id) {
            Ok(b) => b,
            Err(resp) => return resp,
        };
        if let Some(resp) = deadline.check() {
            return resp;
        }
        let learner = match tsvr_core::replay_session(&bags, &row, kind) {
            Ok(l) => l,
            Err(e) => {
                tsvr_obs::trace::incident(
                    "serve.learner.mismatch",
                    &format!("session {session_id}: replay refused: {e}"),
                );
                return err(ErrorKind::LearnerMismatch, e.to_string());
            }
        };
        // Reproduce the exact post-round ranking the original session
        // last served: heuristic before any feedback, learner scores
        // after.
        let ranking = if row.feedback.is_empty() {
            rank_scores(&bags, &heuristic::bag_scores(&bags))
        } else {
            rank_scores(&bags, &learner.score_all(&bags))
        };
        let rounds = row.feedback.len();
        let name = learner.name().to_string();
        let state = SessionState {
            clip_id,
            query: row.query.clone(),
            learner,
            bags,
            feedback: row.feedback.clone(),
            ranking,
        };
        let windows = state.bags.len();
        self.sessions
            .lock()
            .unwrap()
            .insert(session_id, Arc::new(Mutex::new(state)));
        // Fresh ids must never collide with a resumed one.
        self.next_id.fetch_max(session_id + 1, Ordering::SeqCst);
        tsvr_obs::counter!("serve.sessions.resumed").incr();
        Response::Opened {
            session_id,
            clip_id,
            windows,
            rounds,
            learner: name,
        }
    }

    fn page(&self, session_id: u64, n: Option<usize>) -> Response {
        let state = match self.session(session_id) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let state = state.lock().unwrap();
        let n = n.unwrap_or(self.cfg.default_top_n).min(state.ranking.len());
        Response::Page {
            session_id,
            round: state.feedback.len(),
            ranking: state.ranking[..n].iter().map(|&w| w as u64).collect(),
        }
    }

    fn feedback(&self, session_id: u64, labels: &[(u32, bool)], deadline: Deadline) -> Response {
        let state = match self.session(session_id) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let mut state = state.lock().unwrap();
        if labels
            .iter()
            .any(|&(w, _)| (w as usize) >= state.bags.len())
        {
            return err(
                ErrorKind::BadRequest,
                format!("label window out of range (clip has {} windows)", state.bags.len()),
            );
        }
        if let Some(resp) = deadline.check() {
            return resp;
        }
        let feedback: Vec<(usize, bool)> =
            labels.iter().map(|&(w, r)| (w as usize, r)).collect();
        {
            let _span = tsvr_obs::tspan!("serve.learn");
            let SessionState {
                learner,
                bags,
                ranking,
                ..
            } = &mut *state;
            let bags: &[Bag] = bags.as_slice();
            learner.learn(bags, &feedback);
            *ranking = rank_scores(bags, &learner.score_all(bags));
        }
        state.feedback.push(labels.to_vec());
        // Durability point: the `learned` ack goes out only after the
        // full-history checkpoint is appended AND synced.
        let row = SessionRow {
            session_id,
            clip_id: state.clip_id,
            query: state.query.clone(),
            learner: state.learner.name().into(),
            feedback: state.feedback.clone(),
            accuracies: Vec::new(),
        };
        {
            let _span = tsvr_obs::tspan!("serve.checkpoint");
            let mut db = self.db.lock().unwrap();
            if let Err(e) = db.put_session(&row).and_then(|()| db.sync()) {
                // The in-memory session is ahead of disk; the next
                // successful checkpoint carries this round too, because
                // rows hold the full history. A lost checkpoint is the
                // incident the flight recorder exists for: dump it.
                tsvr_obs::counter!("serve.checkpoint.failed").incr();
                tsvr_obs::trace::incident_dump(
                    "serve.checkpoint.failed",
                    &format!("session {session_id} round {}: {e}", state.feedback.len()),
                );
                return err(
                    ErrorKind::Storage,
                    format!("round applied in memory but NOT durable: {e}"),
                );
            }
        }
        tsvr_obs::counter!("serve.rounds.checkpointed").incr();
        tsvr_obs::counter_labeled("serve.rounds.checkpointed", &format!("session={session_id}"))
            .incr();
        Response::Learned {
            session_id,
            round: state.feedback.len(),
        }
    }

    /// Answers a `query` request: parse the expression, run the
    /// progressive planner with the stateless heuristic scorer, and
    /// return the ranking plus the plan receipt. Parse failures (with
    /// their did-you-mean suggestions) and unevaluable class predicates
    /// are `bad_request`; quarantined-but-relevant shards do *not* fail
    /// the request — they come back in the `degraded` list.
    fn query(&self, expr: &str, k: Option<usize>, deadline: Deadline) -> Response {
        let parsed = match tsvr_core::parse_query(expr) {
            Ok(q) => q,
            Err(e) => return err(ErrorKind::BadRequest, format!("query: {e}")),
        };
        if let Some(resp) = deadline.check() {
            return resp;
        }
        let planner = tsvr_core::Planner::new(k.unwrap_or(self.cfg.default_top_n));
        let mut db = self.db.lock().unwrap();
        match planner.run(&mut db, &parsed, tsvr_core::Scorer::Heuristic) {
            Ok(out) => {
                if !out.degraded.is_empty() {
                    tsvr_obs::counter!("serve.query.partial").incr();
                    tsvr_obs::trace::incident(
                        "serve.query.partial",
                        &format!("{} relevant shard(s) unserveable", out.degraded.len()),
                    );
                }
                Response::QueryResult {
                    ranking: out.ranking,
                    stats: out.stats,
                    degraded: out.degraded,
                }
            }
            Err(tsvr_core::PlanError::Db(e)) => db_err(&e),
            Err(e @ tsvr_core::PlanError::ClassesUnavailable { .. }) => {
                err(ErrorKind::BadRequest, e.to_string())
            }
            Err(tsvr_core::PlanError::Query(e)) => err(ErrorKind::BadRequest, format!("query: {e}")),
        }
    }

    fn list_sessions(&self, clip_id: u64) -> Response {
        // Stored rows first (db lock dropped before touching session
        // locks — see the module's lock-order note)...
        let rows = match self.db.lock().unwrap().sessions_for_clip(clip_id) {
            Ok(rows) => rows,
            Err(e) => return db_err(&e),
        };
        let mut by_id: std::collections::BTreeMap<u64, SessionSummary> = std::collections::BTreeMap::new();
        for r in rows {
            let entry = by_id.entry(r.session_id).or_insert_with(|| SessionSummary {
                session_id: r.session_id,
                clip_id: r.clip_id,
                query: r.query.clone(),
                learner: r.learner.clone(),
                rounds: 0,
                live: false,
            });
            entry.rounds = entry.rounds.max(r.feedback.len());
        }
        // ...then live sessions overlay them (a live session is never
        // behind its last checkpoint).
        let live: Vec<(u64, Arc<Mutex<SessionState>>)> = self
            .sessions
            .lock()
            .unwrap()
            .iter()
            .map(|(&id, s)| (id, Arc::clone(s)))
            .collect();
        for (id, state) in live {
            let state = state.lock().unwrap();
            if state.clip_id != clip_id {
                continue;
            }
            let entry = by_id.entry(id).or_insert_with(|| SessionSummary {
                session_id: id,
                clip_id,
                query: state.query.clone(),
                learner: state.learner.name().into(),
                rounds: 0,
                live: true,
            });
            entry.live = true;
            entry.rounds = entry.rounds.max(state.feedback.len());
        }
        Response::Sessions {
            sessions: by_id.into_values().collect(),
        }
    }

    fn close(&self, session_id: u64) -> Response {
        // Idempotent: closing an unknown or already-closed session is a
        // no-op, not an error (its checkpoints remain stored).
        self.sessions.lock().unwrap().remove(&session_id);
        Response::Closed { session_id }
    }
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("cfg", &self.cfg)
            .field("draining", &self.is_draining())
            .finish_non_exhaustive()
    }
}
