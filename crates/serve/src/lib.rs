//! # tsvr-serve
//!
//! A std-only concurrent retrieval service over a `tsvr-viddb`
//! database, exposing the paper's full interactive protocol — open a
//! query, page through the ranking, submit relevance labels, re-rank,
//! and save/resume the session — to many clients at once.
//!
//! Three layers, one code path:
//!
//! * [`proto`] — the newline-delimited JSON wire grammar (requests,
//!   responses, typed errors), parsed with the in-tree
//!   [`tsvr_obs::json`] reader. Any client that can write one JSON line
//!   to a socket can drive a session — including `bash`'s `/dev/tcp`.
//! * [`service`] — [`Service::handle`]: session management, per-request
//!   deadlines, and the durability contract (a feedback round is acked
//!   only after its full-history checkpoint is synced to the database).
//!   Tests, benches, and the CLI call this directly in process.
//! * [`server`] — the TCP transport: bounded accept queue with an
//!   explicit `overloaded` error, fixed worker pool, graceful drain on
//!   `shutdown`.
//!
//! Rankings are deterministic: a session's responses are byte-identical
//! whether it runs alone on one thread or interleaved with other
//! sessions across the pool, because all shared state is per-clip
//! read-only bag data and each session's learner is private.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proto;
pub mod server;
pub mod service;

pub use proto::{
    decode_request, decode_response, encode_request, encode_response, Envelope, ErrorKind,
    Request, Response, ServeError, SessionSummary,
};
pub use server::{Server, ServerConfig};
pub use service::{Service, ServiceConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tsvr_core::{bundle_from_clip, prepare_clip, PipelineOptions};
    use tsvr_sim::Scenario;
    use tsvr_viddb::{ClipMeta, VideoDb};

    fn seeded_db(clip_ids: &[u64]) -> VideoDb {
        let mut db = VideoDb::in_memory();
        for &id in clip_ids {
            let clip = prepare_clip(&Scenario::tunnel_small(60 + id), &PipelineOptions::default());
            let meta = ClipMeta {
                clip_id: id,
                name: format!("clip {id}"),
                location: "tunnel-x".into(),
                camera: format!("cam-{id}"),
                start_time: 1_167_609_600,
                frame_count: 400,
                width: clip.sim.width,
                height: clip.sim.height,
            };
            db.put_clip(&bundle_from_clip(&clip, meta)).unwrap();
        }
        db
    }

    fn ask(service: &Service, req: Request) -> Response {
        service.handle(&Envelope::new(req))
    }

    #[test]
    fn full_protocol_session_in_process() {
        let service = Service::new(seeded_db(&[1]), ServiceConfig::default());

        assert_eq!(ask(&service, Request::Ping), Response::Pong);

        let Response::Opened {
            session_id,
            windows,
            rounds,
            ..
        } = ask(
            &service,
            Request::Open {
                clip_id: 1,
                query: "accident".into(),
                learner: "ocsvm".into(),
            },
        )
        else {
            panic!("open failed")
        };
        assert!(windows > 0);
        assert_eq!(rounds, 0);

        let Response::Page { ranking, round, .. } = ask(
            &service,
            Request::Page {
                session_id,
                n: Some(5),
            },
        ) else {
            panic!("page failed")
        };
        assert_eq!(round, 0);
        assert_eq!(ranking.len(), 5);

        let labels: Vec<(u32, bool)> = ranking.iter().map(|&w| (w as u32, w % 2 == 0)).collect();
        let resp = ask(
            &service,
            Request::Feedback {
                session_id,
                labels: labels.clone(),
            },
        );
        assert_eq!(
            resp,
            Response::Learned {
                session_id,
                round: 1
            }
        );

        // The ranking changed regime: round is now 1.
        let Response::Page { round, .. } = ask(
            &service,
            Request::Page {
                session_id,
                n: Some(5),
            },
        ) else {
            panic!("page failed")
        };
        assert_eq!(round, 1);

        // The listing shows the session as live with one round.
        let Response::Sessions { sessions } = ask(&service, Request::Sessions { clip_id: 1 })
        else {
            panic!("sessions failed")
        };
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].rounds, 1);
        assert!(sessions[0].live);

        // Close, then resume from the checkpoint: same id, same rounds.
        ask(&service, Request::Close { session_id });
        let Response::Opened { rounds, .. } = ask(
            &service,
            Request::Resume {
                clip_id: 1,
                session_id,
                learner: None,
            },
        ) else {
            panic!("resume failed")
        };
        assert_eq!(rounds, 1);
    }

    #[test]
    fn query_op_prunes_shards_and_reports_degraded_partial_results() {
        use tsvr_viddb::{AnyDb, ShardId, ShardedDb};
        let mut dir = std::env::temp_dir();
        dir.push(format!("tsvr-serve-query-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut victim = String::new();
        {
            let mut db = ShardedDb::open_with_bucket(&dir, 3600).unwrap();
            for (id, camera, start_time) in
                [(1, "cam-a", 0u64), (2, "cam-b", 0), (3, "cam-b", 7200)]
            {
                let clip =
                    prepare_clip(&Scenario::tunnel_small(60 + id), &PipelineOptions::default());
                let meta = ClipMeta {
                    clip_id: id,
                    name: format!("clip {id}"),
                    location: "tunnel-x".into(),
                    camera: camera.into(),
                    start_time,
                    frame_count: 400,
                    width: clip.sim.width,
                    height: clip.sim.height,
                };
                if id == 3 {
                    victim = ShardId::for_meta(&meta, db.bucket_secs()).file_name();
                }
                db.put_clip(&bundle_from_clip(&clip, meta)).unwrap();
            }
            db.sync().unwrap();
        }
        std::fs::write(dir.join(&victim), b"NOTADB!!").unwrap();
        let service = Service::new(AnyDb::open(&dir).unwrap(), ServiceConfig::default());

        // Camera predicate prunes the other shards manifest-side.
        let Response::QueryResult {
            ranking,
            stats,
            degraded,
        } = ask(
            &service,
            Request::Query {
                expr: "camera = cam-a".into(),
                k: Some(5),
            },
        ) else {
            panic!("query failed")
        };
        assert!(!ranking.is_empty());
        assert!(stats.shards_pruned >= 1, "stats: {stats:?}");
        assert!(degraded.is_empty());

        // A query routed only to the quarantined shard returns a typed
        // partial-result report, not a silent empty ranking.
        let Response::QueryResult {
            ranking, degraded, ..
        } = ask(
            &service,
            Request::Query {
                expr: "camera = cam-b and time >= 7200".into(),
                k: Some(5),
            },
        ) else {
            panic!("query failed")
        };
        assert!(ranking.is_empty());
        assert_eq!(degraded.len(), 1);
        assert_eq!(degraded[0].camera, "cam-b");

        // Parse errors are bad_request and carry did-you-mean.
        match ask(
            &service,
            Request::Query {
                expr: "event = acident".into(),
                k: None,
            },
        ) {
            Response::Error(e) => {
                assert_eq!(e.kind, ErrorKind::BadRequest);
                assert!(e.message.contains("accident"), "{}", e.message);
            }
            other => panic!("expected bad_request, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn typed_errors_for_bad_sessions_clips_and_learners() {
        let service = Service::new(seeded_db(&[1]), ServiceConfig::default());
        let kind_of = |resp: Response| match resp {
            Response::Error(e) => e.kind,
            other => panic!("expected error, got {other:?}"),
        };
        assert_eq!(
            kind_of(ask(
                &service,
                Request::Open {
                    clip_id: 99,
                    query: "accident".into(),
                    learner: String::new(),
                }
            )),
            ErrorKind::NotFound
        );
        assert_eq!(
            kind_of(ask(
                &service,
                Request::Open {
                    clip_id: 1,
                    query: "accident".into(),
                    learner: "magic".into(),
                }
            )),
            ErrorKind::BadRequest
        );
        assert_eq!(
            kind_of(ask(
                &service,
                Request::Page {
                    session_id: 42,
                    n: None
                }
            )),
            ErrorKind::NotFound
        );
        assert_eq!(
            kind_of(ask(
                &service,
                Request::Resume {
                    clip_id: 1,
                    session_id: 42,
                    learner: None,
                }
            )),
            ErrorKind::NotFound
        );
        // Out-of-range label windows are rejected before training.
        let Response::Opened { session_id, .. } = ask(
            &service,
            Request::Open {
                clip_id: 1,
                query: "accident".into(),
                learner: String::new(),
            },
        ) else {
            panic!("open failed")
        };
        assert_eq!(
            kind_of(ask(
                &service,
                Request::Feedback {
                    session_id,
                    labels: vec![(u32::MAX, true)],
                }
            )),
            ErrorKind::BadRequest
        );
    }

    #[test]
    fn resume_through_mismatched_learner_is_typed() {
        let service = Service::new(seeded_db(&[1]), ServiceConfig::default());
        let Response::Opened { session_id, .. } = ask(
            &service,
            Request::Open {
                clip_id: 1,
                query: "accident".into(),
                learner: "ocsvm".into(),
            },
        ) else {
            panic!("open failed")
        };
        let Response::Page { ranking, .. } = ask(
            &service,
            Request::Page {
                session_id,
                n: Some(3),
            },
        ) else {
            panic!("page failed")
        };
        let labels = ranking.iter().map(|&w| (w as u32, true)).collect();
        assert!(matches!(
            ask(&service, Request::Feedback { session_id, labels }),
            Response::Learned { .. }
        ));
        // Resuming the stored OC-SVM session through weighted_rf must
        // refuse with the replay layer's typed mismatch.
        let resp = ask(
            &service,
            Request::Resume {
                clip_id: 1,
                session_id,
                learner: Some("wrf".into()),
            },
        );
        match resp {
            Response::Error(e) => {
                assert_eq!(e.kind, ErrorKind::LearnerMismatch);
                assert!(e.message.contains("MIL_OneClassSVM"), "{}", e.message);
            }
            other => panic!("expected learner_mismatch, got {other:?}"),
        }
    }

    #[test]
    fn draining_rejects_new_sessions_but_answers_pings() {
        let service = Service::new(seeded_db(&[1]), ServiceConfig::default());
        assert_eq!(ask(&service, Request::Shutdown), Response::ShuttingDown);
        assert!(service.is_draining());
        assert_eq!(ask(&service, Request::Ping), Response::Pong);
        match ask(
            &service,
            Request::Open {
                clip_id: 1,
                query: "accident".into(),
                learner: String::new(),
            },
        ) {
            Response::Error(e) => assert_eq!(e.kind, ErrorKind::ShuttingDown),
            other => panic!("expected shutting_down, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_is_reported_before_work_starts() {
        let service = Service::new(seeded_db(&[1]), ServiceConfig::default());
        // A zero... (clamped to 1ms) budget expires during the bag load.
        let env = Envelope {
            req: Request::Open {
                clip_id: 1,
                query: "accident".into(),
                learner: String::new(),
            },
            deadline_ms: Some(1),
        };
        // The clip load may beat a 1ms deadline on a fast machine, so
        // accept either outcome — but an explicit deadline must never
        // panic or hang, and a session must not be half-created.
        match service.handle(&env) {
            Response::Opened { session_id, .. } => {
                assert!(matches!(
                    ask(&service, Request::Page { session_id, n: None }),
                    Response::Page { .. }
                ));
            }
            Response::Error(e) => assert_eq!(e.kind, ErrorKind::DeadlineExceeded),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn tcp_round_trip_matches_in_process_ranking() {
        let service = Arc::new(Service::new(seeded_db(&[1]), ServiceConfig::default()));
        let reference = Service::new(seeded_db(&[1]), ServiceConfig::default());
        let server = Server::start(
            Arc::clone(&service),
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                queue_cap: 8,
            },
        )
        .unwrap();
        let addr = server.addr();

        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = std::io::BufReader::new(stream);
        let mut send = |req: Request| -> Response {
            use std::io::{BufRead, Write};
            writeln!(writer, "{}", encode_request(&Envelope::new(req))).unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            decode_response(&line).unwrap()
        };

        assert_eq!(send(Request::Ping), Response::Pong);
        let open = Request::Open {
            clip_id: 1,
            query: "accident".into(),
            learner: String::new(),
        };
        let Response::Opened { session_id, .. } = send(open.clone()) else {
            panic!("tcp open failed")
        };
        let tcp_page = send(Request::Page {
            session_id,
            n: Some(10),
        });

        // Same protocol driven in process must produce the same bytes.
        let Response::Opened {
            session_id: ref_id, ..
        } = reference.handle(&Envelope::new(open))
        else {
            panic!("in-process open failed")
        };
        let ref_page = reference.handle(&Envelope::new(Request::Page {
            session_id: ref_id,
            n: Some(10),
        }));
        match (&tcp_page, &ref_page) {
            (
                Response::Page {
                    ranking: tcp_rank, ..
                },
                Response::Page {
                    ranking: ref_rank, ..
                },
            ) => assert_eq!(tcp_rank, ref_rank),
            other => panic!("unexpected page pair {other:?}"),
        }

        assert_eq!(send(Request::Shutdown), Response::ShuttingDown);
        server.join();
        // After drain the listener is closed: connecting now fails.
        assert!(std::net::TcpStream::connect(addr).is_err());
    }

    #[test]
    fn overloaded_connections_get_an_explicit_error() {
        use std::io::BufRead;
        let service = Arc::new(Service::new(seeded_db(&[1]), ServiceConfig::default()));
        // One worker and a one-slot queue: the first connection pins the
        // worker, the second waits in queue, the third must be refused.
        let server = Server::start(
            Arc::clone(&service),
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                queue_cap: 1,
            },
        )
        .unwrap();
        let addr = server.addr();

        let pinned = std::net::TcpStream::connect(addr).unwrap();
        {
            // A ping round trip guarantees the worker has taken this
            // connection off the queue before the next ones arrive.
            use std::io::Write;
            let mut w = pinned.try_clone().unwrap();
            writeln!(w, "{}", encode_request(&Envelope::new(Request::Ping))).unwrap();
            let mut line = String::new();
            std::io::BufReader::new(pinned.try_clone().unwrap())
                .read_line(&mut line)
                .unwrap();
            assert_eq!(decode_response(&line).unwrap(), Response::Pong);
        }
        let _queued = std::net::TcpStream::connect(addr).unwrap();
        // Give the accept thread time to queue it.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let refused = std::net::TcpStream::connect(addr).unwrap();
        let mut line = String::new();
        std::io::BufReader::new(refused).read_line(&mut line).unwrap();
        match decode_response(&line).unwrap() {
            Response::Error(e) => assert_eq!(e.kind, ErrorKind::Overloaded),
            other => panic!("expected overloaded, got {other:?}"),
        }
        server.shutdown();
    }
}
