//! # tsvr-par
//!
//! A zero-dependency, std-only parallel runtime for the retrieval
//! pipeline's hot loops: per-frame segmentation, the O(tracks² ×
//! checkpoints) neighbor-distance pass, Gram matrix construction, and
//! batch bag scoring.
//!
//! ## Design
//!
//! Every entry point is a *scoped* fork-join over borrowed data
//! ([`std::thread::scope`]), so no `'static` bounds leak into callers.
//! Work is split into chunks that workers claim from a shared atomic
//! cursor (work stealing by competition rather than deques), which keeps
//! ragged workloads — e.g. triangular Gram rows — balanced without any
//! queue data structure.
//!
//! ## Determinism invariant
//!
//! Parallel results are **bit-identical** to the sequential ones: each
//! output element is a pure function of its input element, and
//! [`par_map`] reassembles chunk results in input order before
//! returning. No reduction ever happens in thread-completion order.
//! Callers that fold over the returned `Vec` therefore reduce in exactly
//! the order the sequential loop would have.
//!
//! ## Configuration
//!
//! The worker count resolves, in priority order: [`set_threads`] (the
//! CLI's `--threads` flag calls this), the `TSVR_THREADS` environment
//! variable, then [`std::thread::available_parallelism`]. A value of 1
//! disables spawning entirely — every entry point then runs inline on
//! the calling thread.
//!
//! Whatever the resolved count, forking is capped by the detected
//! hardware parallelism and skipped outright when the work is too small
//! to amortize a spawn — so a `--threads 4` request on a single-core
//! host degrades gracefully to the sequential path instead of paying
//! for context switches (the *sequential fallback*).
//!
//! ## Cost-hinted fallback
//!
//! Spawning a scoped worker costs tens of microseconds ([`FORK_COST_NS`]).
//! A fork whose per-worker slice is smaller than that *loses* time to
//! parallelism, which is invisible to the plain entry points because
//! they cannot know how expensive one item is. The `*_est` variants
//! ([`par_map_est`], [`par_map_index_est`]) take a caller-supplied
//! per-item cost estimate in nanoseconds; the planner then sizes the
//! pool so every spawned worker carries at least
//! [`MIN_WORK_PER_WORKER_NS`] of estimated work and runs inline when
//! even two workers cannot be fed. The estimate only steers the fork
//! decision — results are bit-identical either way, because the
//! sequential path is the reference.
//!
//! ## Tracing
//!
//! Workers adopt the forking thread's [`tsvr_obs::trace`] context: when
//! the fork happens inside a request trace, every chunk records a
//! `par.chunk` span into that trace, so a `trace <id>` tree shows the
//! fan-out.
//!
//! ## Observability
//!
//! With the `obs` feature the runtime records under `par.*`:
//! `par.tasks` (chunks executed), `par.par_calls` / `par.seq_calls`
//! (parallel vs inline entry counts), and the `par.queue_wait` /
//! `par.task` nanosecond histograms (time from fork to chunk pickup,
//! and per-chunk execution time).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Process-global thread-count override; 0 = no override.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the worker count for all subsequent parallel calls.
///
/// Takes precedence over `TSVR_THREADS` and the detected parallelism.
/// `set_threads(1)` forces fully sequential execution; `set_threads(0)`
/// clears the override.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// The `TSVR_THREADS` value at first use (the environment is read once;
/// later mutations of the variable do not retune a running process).
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("TSVR_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
    })
}

/// The worker count parallel calls will use right now: the
/// [`set_threads`] override, else `TSVR_THREADS`, else
/// [`std::thread::available_parallelism`].
pub fn current_threads() -> usize {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o >= 1 {
        return o;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    hw_threads()
}

/// Detected hardware parallelism, probed once. Fork-join never spawns
/// more workers than this: the pipeline is CPU-bound, so oversubscribing
/// a small host (e.g. `--threads 4` on one core) only buys context
/// switches — measured ~5× slower than inline on a 1-thread host.
fn hw_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The worker count a fork over `work_items` items actually gets: the
/// resolved thread count, clamped by hardware parallelism and by the
/// rule that each worker must have at least [`MIN_FORK_ITEMS`] items.
/// With a per-item cost estimate, the pool is additionally sized so
/// each spawned worker carries at least [`MIN_WORK_PER_WORKER_NS`] of
/// estimated work; a call whose total estimated work cannot feed two
/// workers runs inline. Without one (the plain entry points), the
/// item-count rule alone decides, preserving the historical fork
/// policy. A result of 1 means "run inline" — the sequential fallback.
fn plan_workers(work_items: usize, est_item_ns: Option<u64>) -> usize {
    let cap = current_threads()
        .min(hw_threads())
        .min(work_items / MIN_FORK_ITEMS)
        .max(1);
    let Some(est) = est_item_ns else { return cap };
    if cap <= 1 {
        return 1;
    }
    let total_ns = est.saturating_mul(work_items as u64);
    let by_work = (total_ns / MIN_WORK_PER_WORKER_NS) as usize;
    if by_work < 2 {
        return 1;
    }
    cap.min(by_work)
}

/// Minimum items per worker before forking pays for itself; with fewer
/// the spawn cost dominates and the call runs inline.
const MIN_FORK_ITEMS: usize = 2;

/// Measured cost of forking one scoped worker (spawn + first chunk
/// pickup + join share) on commodity hardware — tens of microseconds.
/// The calibration constant behind [`MIN_WORK_PER_WORKER_NS`].
pub const FORK_COST_NS: u64 = 50_000;

/// Minimum *estimated* work per spawned worker before a cost-hinted
/// call forks: 5× [`FORK_COST_NS`], so the spawn overhead stays under
/// ~20% even when the estimate is optimistic by a small factor.
pub const MIN_WORK_PER_WORKER_NS: u64 = 5 * FORK_COST_NS;

/// Target chunks per worker: enough granularity that one slow chunk
/// cannot serialize the join, few enough that per-chunk bookkeeping
/// stays invisible.
const CHUNKS_PER_WORKER: usize = 8;

fn chunk_size(n: usize, threads: usize) -> usize {
    n.div_ceil(threads * CHUNKS_PER_WORKER).max(1)
}

#[cfg(feature = "obs")]
mod probes {
    use std::sync::OnceLock;
    use tsvr_obs::{Counter, Histogram};

    pub fn tasks() -> &'static Counter {
        static C: OnceLock<&'static Counter> = OnceLock::new();
        C.get_or_init(|| tsvr_obs::counter("par.tasks"))
    }
    pub fn par_calls() -> &'static Counter {
        static C: OnceLock<&'static Counter> = OnceLock::new();
        C.get_or_init(|| tsvr_obs::counter("par.par_calls"))
    }
    pub fn seq_calls() -> &'static Counter {
        static C: OnceLock<&'static Counter> = OnceLock::new();
        C.get_or_init(|| tsvr_obs::counter("par.seq_calls"))
    }
    pub fn queue_wait() -> &'static Histogram {
        static H: OnceLock<&'static Histogram> = OnceLock::new();
        H.get_or_init(|| tsvr_obs::histogram_ns("par.queue_wait"))
    }
    pub fn task() -> &'static Histogram {
        static H: OnceLock<&'static Histogram> = OnceLock::new();
        H.get_or_init(|| tsvr_obs::histogram_ns("par.task"))
    }
}

#[cfg(feature = "obs")]
fn record_chunk(fork: Instant, picked: Instant, done: Instant) {
    if !tsvr_obs::is_enabled() {
        return;
    }
    probes::tasks().incr();
    probes::queue_wait().record((picked - fork).as_nanos() as u64);
    probes::task().record((done - picked).as_nanos() as u64);
}

#[cfg(not(feature = "obs"))]
fn record_chunk(_fork: Instant, _picked: Instant, _done: Instant) {}

fn record_call(parallel: bool) {
    #[cfg(feature = "obs")]
    if tsvr_obs::is_enabled() {
        if parallel {
            probes::par_calls().incr();
        } else {
            probes::seq_calls().incr();
        }
    }
    #[cfg(not(feature = "obs"))]
    let _ = parallel;
}

/// Maps `f` over `items` in parallel, preserving input order.
///
/// `f` receives the item's index and a reference to it. The returned
/// vector is bit-identical to the sequential
/// `items.iter().enumerate().map(...).collect()` — chunks execute on
/// whichever worker grabs them first, but results are reassembled in
/// index order.
///
/// ```
/// let squares = tsvr_par::par_map(&[1.0f64, 2.0, 3.0], |_, x| x * x);
/// assert_eq!(squares, vec![1.0, 4.0, 9.0]);
/// ```
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_indexed(items.len(), None, |i| f(i, &items[i]))
}

/// Cost-hinted [`par_map`]: `est_item_ns` is the caller's rough
/// estimate of one item's cost in nanoseconds. Cheap items (estimated
/// total below two workers' worth of [`MIN_WORK_PER_WORKER_NS`]) run
/// inline instead of paying the fork cost; expensive items fork exactly
/// like [`par_map`]. The hint never changes the result — only whether
/// threads are spawned to compute it.
///
/// ```
/// // A ~5ns/item map: the hint keeps it inline on any host.
/// let out = tsvr_par::par_map_est(&[1.0f64, 2.0, 3.0], 5, |_, x| x * x);
/// assert_eq!(out, vec![1.0, 4.0, 9.0]);
/// ```
pub fn par_map_est<T, R, F>(items: &[T], est_item_ns: u64, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_indexed(items.len(), Some(est_item_ns), |i| f(i, &items[i]))
}

/// Index-space variant of [`par_map`]: maps `f` over `0..n`, preserving
/// order. Useful when the "items" are rows of a matrix or other
/// structures not naturally a slice.
pub fn par_map_index<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    run_indexed(n, None, f)
}

/// Cost-hinted [`par_map_index`]; see [`par_map_est`] for the fork
/// heuristic the estimate drives.
pub fn par_map_index_est<R, F>(n: usize, est_item_ns: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    run_indexed(n, Some(est_item_ns), f)
}

fn run_indexed<R, F>(n: usize, est_item_ns: Option<u64>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = plan_workers(n, est_item_ns);
    if threads <= 1 {
        record_call(false);
        return (0..n).map(f).collect();
    }
    record_call(true);

    let chunk = chunk_size(n, threads);
    let nchunks = n.div_ceil(chunk);
    let cursor = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(nchunks));
    let fork = Instant::now();
    // Hand the submitting thread's trace context to every worker, so
    // chunk spans land in the request's trace instead of starting one.
    let ctx = tsvr_obs::trace::current();

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let _adopted = tsvr_obs::trace::adopt(ctx);
                loop {
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    if c >= nchunks {
                        break;
                    }
                    let picked = Instant::now();
                    let _span = ctx.map(|_| tsvr_obs::tspan!("par.chunk"));
                    let lo = c * chunk;
                    let hi = (lo + chunk).min(n);
                    let out: Vec<R> = (lo..hi).map(&f).collect();
                    record_chunk(fork, picked, Instant::now());
                    done.lock().unwrap_or_else(|e| e.into_inner()).push((c, out));
                }
            });
        }
    });

    let mut parts = done.into_inner().unwrap_or_else(|e| e.into_inner());
    parts.sort_unstable_by_key(|&(c, _)| c);
    let mut out = Vec::with_capacity(n);
    for (_, mut part) in parts {
        out.append(&mut part);
    }
    out
}

/// Runs `f` over disjoint mutable chunks of `data` in parallel.
///
/// `data` is split into runs of at most `chunk_len` elements; `f`
/// receives each run's starting offset and the run itself. Chunk
/// boundaries are identical to the sequential
/// `data.chunks_mut(chunk_len)` split, so any per-element computation
/// is bit-identical to the sequential pass.
pub fn par_for_chunks<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    let n = data.len();
    let nchunks = n.div_ceil(chunk_len);
    let threads = current_threads().min(hw_threads()).min(nchunks);
    if threads <= 1 {
        record_call(false);
        for (c, run) in data.chunks_mut(chunk_len).enumerate() {
            f(c * chunk_len, run);
        }
        return;
    }
    record_call(true);

    // Queue of (offset, chunk) pairs; workers pop until empty. The
    // mutable borrows are disjoint by construction of `chunks_mut`.
    let queue: Mutex<Vec<(usize, &mut [T])>> = Mutex::new(
        data.chunks_mut(chunk_len)
            .enumerate()
            .map(|(c, run)| (c * chunk_len, run))
            .rev() // pop() then serves chunks in ascending offset order
            .collect(),
    );
    let fork = Instant::now();
    let ctx = tsvr_obs::trace::current();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let _adopted = tsvr_obs::trace::adopt(ctx);
                loop {
                    let item = queue.lock().unwrap_or_else(|e| e.into_inner()).pop();
                    let Some((offset, run)) = item else { break };
                    let picked = Instant::now();
                    let _span = ctx.map(|_| tsvr_obs::tspan!("par.chunk"));
                    f(offset, run);
                    record_chunk(fork, picked, Instant::now());
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Serializes tests that touch the process-global thread override.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Runs `f` with the override forced to `n`, restoring it after.
    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let prev = OVERRIDE.load(Ordering::Relaxed);
        set_threads(n);
        let r = f();
        set_threads(prev);
        r
    }

    #[test]
    fn par_map_preserves_order_and_values() {
        let _g = lock();
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 4, 7] {
            let par = with_threads(threads, || par_map(&items, |_, &x| x * x + 1));
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_passes_indices() {
        let _g = lock();
        let items = vec![10u64; 257];
        let got = with_threads(4, || par_map(&items, |i, &x| i as u64 + x));
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, i as u64 + 10);
        }
    }

    #[test]
    fn par_map_float_reduction_is_bit_identical() {
        let _g = lock();
        // Catastrophic-cancellation-prone values: any reordering of the
        // fold would change the bits.
        let items: Vec<f64> = (0..2048)
            .map(|i| (i as f64 * 0.7311).sin() * 10f64.powi(i % 13 - 6))
            .collect();
        let seq: Vec<f64> = items.iter().map(|x| (x * 1.000000119).exp_m1()).collect();
        let par = with_threads(8, || par_map(&items, |_, x| (x * 1.000000119).exp_m1()));
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn par_map_index_matches_range_map() {
        let _g = lock();
        let seq: Vec<usize> = (0..77).map(|i| i * 3).collect();
        let par = with_threads(3, || par_map_index(77, |i| i * 3));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let _g = lock();
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[5u32], |_, &x| x * 2), vec![10]);
        assert_eq!(par_map_index(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn par_for_chunks_touches_every_element_once() {
        let _g = lock();
        for threads in [1, 4] {
            let mut data = vec![0u64; 1003];
            with_threads(threads, || {
                par_for_chunks(&mut data, 17, |offset, run| {
                    for (i, v) in run.iter_mut().enumerate() {
                        *v += (offset + i) as u64 + 1;
                    }
                })
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i as u64 + 1, "threads = {threads}");
            }
        }
    }

    #[test]
    fn par_for_chunks_offsets_match_sequential_split() {
        let _g = lock();
        let offsets = Mutex::new(Vec::new());
        let mut data = vec![0u8; 100];
        with_threads(4, || {
            par_for_chunks(&mut data, 23, |offset, run| {
                offsets
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push((offset, run.len()));
            })
        });
        let mut got = offsets.into_inner().unwrap_or_else(|e| e.into_inner());
        got.sort_unstable();
        assert_eq!(got, vec![(0, 23), (23, 23), (46, 23), (69, 23), (92, 8)]);
    }

    #[test]
    fn all_workers_participate_under_load() {
        let _g = lock();
        // With enough chunks and a non-trivial payload, more than one
        // distinct thread should execute tasks (not a strict guarantee,
        // but with 64 chunks and 4 workers the odds of one thread
        // winning every race are nil).
        let ids = Mutex::new(std::collections::HashSet::new());
        let items = vec![0u64; 4096];
        with_threads(4, || {
            par_map(&items, |_, _| {
                ids.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(std::thread::current().id());
                std::hint::black_box((0..500u64).sum::<u64>())
            })
        });
        assert!(!ids.lock().unwrap().is_empty());
    }

    #[test]
    fn sequential_fallback_clamps_oversubscription() {
        let _g = lock();
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        with_threads(hw * 8, || {
            // Requesting more workers than the hardware has never forks
            // wider than the hardware.
            assert!(plan_workers(100_000, None) <= hw);
            // Tiny work always runs inline, whatever was requested.
            assert_eq!(plan_workers(0, None), 1);
            assert_eq!(plan_workers(1, None), 1);
            // 3 items / MIN_FORK_ITEMS(2) per worker -> 1 worker: inline.
            assert_eq!(plan_workers(3, None), 1);
        });
        // And results stay correct under heavy oversubscription.
        let items: Vec<u64> = (0..300).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * 7).collect();
        let par = with_threads(hw * 8, || par_map(&items, |_, &x| x * 7));
        assert_eq!(par, seq);
    }

    #[test]
    fn cost_hint_keeps_cheap_work_inline() {
        let _g = lock();
        with_threads(8, || {
            // 1000 items at 10ns each = 10µs total: far below two
            // workers' minimum slice, so the planner stays inline even
            // though the item-count rule alone would fork.
            assert!(plan_workers(1000, None) > 1 || hw_threads() == 1);
            assert_eq!(plan_workers(1000, Some(10)), 1);
            // Zero-cost items never fork.
            assert_eq!(plan_workers(1_000_000, Some(0)), 1);
            // Expensive items fork as wide as the unhinted plan allows.
            let heavy = plan_workers(1000, Some(10_000_000));
            assert_eq!(heavy, plan_workers(1000, None));
            // Mid-range work is capped so each worker keeps a full
            // minimum slice: 100 items × 10µs = 1ms -> at most 4 workers.
            let mid = plan_workers(100, Some(10_000));
            assert!(mid <= 4, "mid-range plan spawned {mid} workers");
        });
    }

    #[test]
    fn cost_hint_never_changes_results() {
        let _g = lock();
        let items: Vec<f64> = (0..512).map(|i| (i as f64 * 0.31).cos()).collect();
        let seq: Vec<f64> = items.iter().map(|x| (x * 1.0000007).exp_m1()).collect();
        for threads in [1, 4] {
            for est in [0, 10, 1_000_000] {
                let got = with_threads(threads, || {
                    par_map_est(&items, est, |_, x| (x * 1.0000007).exp_m1())
                });
                for (a, b) in seq.iter().zip(&got) {
                    assert_eq!(a.to_bits(), b.to_bits(), "threads {threads} est {est}");
                }
                let got = with_threads(threads, || {
                    par_map_index_est(items.len(), est, |i| (items[i] * 1.0000007).exp_m1())
                });
                for (a, b) in seq.iter().zip(&got) {
                    assert_eq!(a.to_bits(), b.to_bits(), "threads {threads} est {est}");
                }
            }
        }
    }

    #[test]
    fn cost_hint_overflow_is_saturating() {
        let _g = lock();
        with_threads(4, || {
            // A pathological estimate must not overflow the total-work
            // product; it saturates and forks at the unhinted width.
            let w = plan_workers(usize::MAX, Some(u64::MAX));
            assert_eq!(w, plan_workers(usize::MAX, None));
        });
    }

    #[test]
    fn set_threads_roundtrip() {
        let _g = lock();
        let prev = OVERRIDE.load(Ordering::Relaxed);
        set_threads(3);
        assert_eq!(current_threads(), 3);
        set_threads(0);
        assert!(current_threads() >= 1);
        set_threads(prev);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let _g = lock();
        let items: Vec<u32> = (0..100).collect();
        let hit = AtomicU64::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_threads(4, || {
                par_map(&items, |_, &x| {
                    hit.fetch_add(1, Ordering::Relaxed);
                    if x == 57 {
                        panic!("worker failure");
                    }
                    x
                })
            })
        }));
        assert!(result.is_err(), "worker panic must not be swallowed");
    }

    #[test]
    fn chunk_size_sane() {
        assert_eq!(chunk_size(1, 8), 1);
        assert!(chunk_size(1000, 4) >= 1);
        assert!(chunk_size(1000, 4) * 4 * CHUNKS_PER_WORKER >= 1000);
    }
}
