//! Sharded crash-consistency sweep: simulate a crash at **every op
//! boundary** of a scripted cross-shard write workload, tear the tail
//! of a rotating victim file (the crash model for file-backed logs:
//! an unsynced suffix of appends may be lost, and recovery must also
//! survive losing a synced suffix — it just costs those records), and
//! assert every shard recovers *independently*: the torn shard never
//! serves wrong bytes, and shards the crash did not touch serve every
//! record exactly as written.
//!
//! `TSVR_CRASH_FAST=1` thins the sweep (every 3rd crash point) for CI
//! smoke runs; the full sweep covers each op boundary.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use tsvr_viddb::record::{ClipBundle, ClipMeta, IndexSegment, IndexWindowRow, TrackRow};
use tsvr_viddb::{DbError, SessionRow, ShardedDb, MANIFEST_FILE};

fn bundle(id: u64, camera: &str, start_time: u64) -> ClipBundle {
    ClipBundle {
        meta: ClipMeta {
            clip_id: id,
            name: format!("clip-{id}"),
            location: "tunnel-9".into(),
            camera: camera.into(),
            start_time,
            frame_count: 100,
            width: 320,
            height: 240,
        },
        tracks: vec![TrackRow {
            track_id: id * 10,
            start_frame: 0,
            centroids: vec![(1.0, 2.0), (3.0, 4.0), (5.5, 6.5)],
        }],
        windows: vec![],
        incidents: vec![],
    }
}

fn session(session_id: u64, clip_id: u64) -> SessionRow {
    SessionRow {
        session_id,
        clip_id,
        query: "accident".into(),
        learner: "ocsvm".into(),
        feedback: vec![vec![(0, true), (3, false)]],
        accuracies: vec![0.25, 0.75],
    }
}

fn index_segment(clip_id: u64) -> IndexSegment {
    IndexSegment {
        clip_id,
        config_hash: 0xfeed,
        feature_dim: 3,
        windows: vec![IndexWindowRow {
            window_index: 0,
            start_checkpoint: 0,
            start_frame: 0,
            end_frame: 14,
            track_ids: vec![clip_id * 10],
            // One track × feature_dim 3 (the shape both codecs enforce).
            features: vec![0.1, 0.8, 0.4],
        }],
    }
}

/// One step of the cross-shard workload.
enum Op {
    Put(u64, &'static str, u64),
    Session(u64, u64),
    Index(u64),
    Delete(u64),
    Sync,
}

/// The scripted workload: writes that deliberately straddle shards
/// (two cameras, two time buckets) with sessions, an index, a delete,
/// and explicit durability points mixed in.
fn script() -> Vec<Op> {
    vec![
        Op::Put(1, "cam-a", 0),
        Op::Put(2, "cam-b", 0),
        Op::Session(1, 1),
        Op::Put(3, "cam-a", 7200),
        Op::Index(2),
        Op::Sync,
        Op::Put(4, "cam-b", 7200),
        Op::Delete(1),
        Op::Session(2, 2),
        Op::Sync,
    ]
}

/// Runs the first `upto` ops against a fresh directory and returns
/// the surviving `clip_id -> bundle` expectation.
fn run_prefix(dir: &Path, upto: usize) -> BTreeMap<u64, ClipBundle> {
    let mut db = ShardedDb::open_with_bucket(dir, 3600).unwrap();
    let mut expected = BTreeMap::new();
    for op in script().into_iter().take(upto) {
        match op {
            Op::Put(id, cam, t) => {
                let b = bundle(id, cam, t);
                db.put_clip(&b).unwrap();
                expected.insert(id, b);
            }
            Op::Session(sid, cid) => db.put_session(&session(sid, cid)).unwrap(),
            Op::Index(cid) => db.put_index(&index_segment(cid)).unwrap(),
            Op::Delete(id) => {
                db.delete_clip(id).unwrap();
                expected.remove(&id);
            }
            Op::Sync => db.sync().unwrap(),
        }
    }
    expected
}

fn temp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("tsvr-shard-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Every file in the directory, manifest first then shards in name
/// order — the victim rotation for the sweep.
fn dir_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    files
}

/// Tiny deterministic rng (xorshift64*) so the torn lengths differ
/// across crash points without depending on ambient entropy.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

#[test]
fn crash_at_every_op_leaves_shards_independently_recoverable() {
    let fast = std::env::var("TSVR_CRASH_FAST").is_ok_and(|v| v == "1");
    let step = if fast { 3 } else { 1 };
    let total = script().len();
    let mut rng = 0x5eed_2007_u64;

    for k in (1..=total).step_by(step) {
        let dir = temp_dir(&format!("sweep-{k}"));
        let expected = run_prefix(&dir, k);

        // Crash: tear the tail of one victim file (rotating through
        // manifest and shards). Everything else is untouched — those
        // shards must come back byte-perfect.
        let files = dir_files(&dir);
        let victim = files[k % files.len()].clone();
        let len = std::fs::metadata(&victim).unwrap().len();
        let tear = 1 + xorshift(&mut rng) % 40;
        let keep = len.saturating_sub(tear);
        let f = std::fs::OpenOptions::new().write(true).open(&victim).unwrap();
        f.set_len(keep).unwrap();
        drop(f);

        let mut db = ShardedDb::open_with_bucket(&dir, 3600)
            .unwrap_or_else(|e| panic!("crash point {k}: reopen failed: {e}"));
        // Tail truncation is always recoverable — never a quarantined
        // shard, and verify over every surviving shard runs clean.
        assert_eq!(
            db.quarantined_shards(),
            Vec::new(),
            "crash point {k}: torn tail must not quarantine a shard"
        );
        for (file, report) in db.verify().unwrap() {
            assert!(
                report.is_clean(),
                "crash point {k}: shard {file} dirty after recovery: {report:?}"
            );
        }

        let victim_name = victim.file_name().unwrap().to_str().unwrap().to_string();
        for (id, want) in &expected {
            let routed_to_victim = db
                .shard_of_clip(*id)
                .map(|f| f == victim_name)
                // Clip gone entirely: it was in the victim (or the
                // manifest tear orphaned it past its record).
                .unwrap_or(true);
            match db.load_clip(*id) {
                // Whatever still serves must be byte-identical.
                Ok(got) => assert_eq!(*got, *want, "crash point {k}: clip {id} differs"),
                // Only records in the torn file may be lost.
                Err(DbError::ClipNotFound(_)) | Err(DbError::ClipQuarantined(_)) => {
                    assert!(
                        routed_to_victim || victim_name == MANIFEST_FILE,
                        "crash point {k}: clip {id} lost but its shard was never torn"
                    );
                }
                Err(e) => panic!("crash point {k}: clip {id}: unexpected error {e}"),
            }
        }

        // Every cell accepts writes again after recovery.
        let next_id = 100 + k as u64;
        db.put_clip(&bundle(next_id, "cam-a", 0)).unwrap();
        db.put_clip(&bundle(next_id + 1, "cam-b", 7200)).unwrap();
        db.sync().unwrap();

        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_manifest_tail_never_loses_whole_shards() {
    // Tear the manifest specifically at the final crash point: route
    // records may be lost, but orphan adoption must re-route every
    // shard file, so fully-written clips all survive.
    let dir = temp_dir("manifest-tear");
    let expected = run_prefix(&dir, script().len());
    let manifest = dir.join(MANIFEST_FILE);
    let len = std::fs::metadata(&manifest).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&manifest).unwrap();
    f.set_len(len.saturating_sub(20)).unwrap();
    drop(f);

    let mut db = ShardedDb::open_with_bucket(&dir, 3600).unwrap();
    assert_eq!(db.quarantined_shards(), Vec::new());
    for (id, want) in &expected {
        let got = db.load_clip(*id).unwrap_or_else(|e| {
            panic!("clip {id} lost to a manifest tear that touched no shard: {e}")
        });
        assert_eq!(*got, *want);
    }
    // Sessions and the index also survived with their shards.
    assert_eq!(db.sessions_for_clip(2).unwrap().len(), 1);
    assert_eq!(db.load_index(2).unwrap().unwrap(), index_segment(2));
    let _ = std::fs::remove_dir_all(&dir);
}
