//! Property-based tests for the database layer: codec round trips with
//! arbitrary content, log recovery under arbitrary truncation, and
//! frame-codec bounds. Driven by the in-tree seeded harness
//! (`tsvr_sim::check`).

use tsvr_sim::check;
use tsvr_sim::Pcg32;
use tsvr_viddb::codec::{crc32, Reader, Writer};
use tsvr_viddb::frames::{rle_compress, rle_decompress, FrameCodec, StoredFrame};
use tsvr_viddb::log::Log;
use tsvr_viddb::record::{ClipMeta, IncidentRow, SessionRow, TrackRow, WindowRow};
use tsvr_viddb::storage::MemStorage;

fn bytes(rng: &mut Pcg32, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.uniform_u32(256) as u8).collect()
}

/// An arbitrary string mixing ASCII and multibyte characters.
fn string(rng: &mut Pcg32, max_len: usize) -> String {
    let n = rng.uniform_usize(max_len + 1);
    (0..n)
        .map(|_| match rng.uniform_u32(8) {
            0 => char::from_u32(0x00C0 + rng.uniform_u32(0x100)).unwrap_or('é'),
            1 => '雨',
            _ => (0x20 + rng.uniform_u32(0x5f) as u8) as char,
        })
        .collect()
}

fn lowercase(rng: &mut Pcg32, lo: usize, hi: usize) -> String {
    let n = check::len_in(rng, lo, hi);
    (0..n)
        .map(|_| {
            if rng.chance(0.1) {
                '_'
            } else {
                (b'a' + rng.uniform_u32(26) as u8) as char
            }
        })
        .collect()
}

#[test]
fn scalar_codec_round_trip() {
    check::cases(96, |case, rng| {
        let a = rng.uniform_u32(256) as u8;
        let b = rng.next_u32();
        let c = rng.next_u64();
        let d = f64::from_bits(rng.next_u64());
        let s = string(rng, 40);
        let blob_len = rng.uniform_usize(100);
        let blob = bytes(rng, blob_len);
        let mut w = Writer::new();
        w.put_u8(a);
        w.put_u32(b);
        w.put_u64(c);
        w.put_f64(d);
        w.put_str(&s).unwrap();
        w.put_bytes(&blob).unwrap();
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), a, "case {case}");
        assert_eq!(r.get_u32().unwrap(), b, "case {case}");
        assert_eq!(r.get_u64().unwrap(), c, "case {case}");
        let got = r.get_f64().unwrap();
        assert!(got == d || (got.is_nan() && d.is_nan()), "case {case}");
        assert_eq!(r.get_str().unwrap(), s, "case {case}");
        assert_eq!(r.get_bytes().unwrap(), &blob[..], "case {case}");
        assert!(r.is_exhausted(), "case {case}");
    });
}

#[test]
fn crc_detects_single_bit_flips() {
    check::cases(96, |case, rng| {
        let len = check::len_in(rng, 1, 200);
        let data = bytes(rng, len);
        let c1 = crc32(&data);
        let mut corrupted = data.clone();
        let i = rng.uniform_usize(corrupted.len());
        corrupted[i] ^= 0x01;
        assert_ne!(c1, crc32(&corrupted), "case {case}: flip undetected");
    });
}

#[test]
fn rle_round_trips_arbitrary_bytes() {
    check::cases(96, |case, rng| {
        // Mix of pure noise and run-heavy data to exercise both paths.
        let data = if rng.chance(0.5) {
            let len = rng.uniform_usize(500);
            bytes(rng, len)
        } else {
            let mut out = Vec::new();
            while out.len() < 400 {
                let b = rng.uniform_u32(4) as u8;
                let run = 1 + rng.uniform_usize(40);
                out.extend(std::iter::repeat_n(b, run));
            }
            out
        };
        assert_eq!(rle_decompress(&rle_compress(&data)), data, "case {case}");
    });
}

#[test]
fn track_row_round_trips() {
    check::cases(96, |case, rng| {
        let row = TrackRow {
            track_id: rng.next_u64(),
            start_frame: rng.next_u32(),
            centroids: (0..rng.uniform_usize(60))
                .map(|_| {
                    (
                        rng.uniform(-1e4, 1e4) as f32,
                        rng.uniform(-1e4, 1e4) as f32,
                    )
                })
                .collect(),
        };
        let mut w = Writer::new();
        row.encode(&mut w).unwrap();
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(TrackRow::decode(&mut r).unwrap(), row, "case {case}");
    });
}

#[test]
fn clip_meta_round_trips() {
    check::cases(96, |case, rng| {
        let meta = ClipMeta {
            clip_id: rng.next_u64(),
            name: string(rng, 30),
            location: string(rng, 30),
            camera: string(rng, 20),
            start_time: rng.next_u64(),
            frame_count: rng.next_u32(),
            width: 320,
            height: 240,
        };
        let mut w = Writer::new();
        meta.encode(&mut w).unwrap();
        let buf = w.into_bytes();
        assert_eq!(
            ClipMeta::decode(&mut Reader::new(&buf)).unwrap(),
            meta,
            "case {case}"
        );
    });
}

#[test]
fn incident_and_session_rows_round_trip() {
    check::cases(96, |case, rng| {
        let kind = lowercase(rng, 1, 16);
        let s = rng.next_u32();
        let dur = rng.uniform_u32(500);
        let ids: Vec<u64> = (0..rng.uniform_usize(5)).map(|_| rng.next_u64()).collect();
        let n_accs = rng.uniform_usize(6);
        let accs = check::vec_f64(rng, n_accs, 0.0, 1.0);
        let inc = IncidentRow {
            kind: kind.clone(),
            start_frame: s,
            end_frame: s.saturating_add(dur),
            vehicle_ids: ids,
        };
        let mut w = Writer::new();
        inc.encode(&mut w).unwrap();
        let buf = w.into_bytes();
        assert_eq!(
            IncidentRow::decode(&mut Reader::new(&buf)).unwrap(),
            inc,
            "case {case}"
        );

        let ses = SessionRow {
            session_id: 1,
            clip_id: 2,
            query: kind,
            learner: "x".into(),
            feedback: vec![vec![(3, true), (4, false)]],
            accuracies: accs,
        };
        let mut w = Writer::new();
        ses.encode(&mut w).unwrap();
        let buf = w.into_bytes();
        assert_eq!(
            SessionRow::decode(&mut Reader::new(&buf)).unwrap(),
            ses,
            "case {case}"
        );
    });
}

#[test]
fn log_round_trips_arbitrary_records() {
    check::cases(96, |case, rng| {
        let records: Vec<Vec<u8>> = (0..rng.uniform_usize(20))
            .map(|_| {
                // Frames are non-empty by contract (zero-length frames
                // are reserved as a corruption signature).
                let len = check::len_in(rng, 1, 80);
                bytes(rng, len)
            })
            .collect();
        let mut log = Log::in_memory();
        let mut offsets = Vec::new();
        for rec in &records {
            offsets.push(log.append(rec).unwrap());
        }
        for (off, rec) in offsets.iter().zip(&records) {
            assert_eq!(&log.read(*off).unwrap(), rec, "case {case}");
        }
        let scanned = log.scan().unwrap();
        assert_eq!(scanned.len(), records.len(), "case {case}");
        for ((_, got), want) in scanned.iter().zip(&records) {
            assert_eq!(got, want, "case {case}");
        }
    });
}

/// Builds a log image holding `records`, returning its raw bytes.
fn log_image(records: &[Vec<u8>]) -> Vec<u8> {
    let mut w = Vec::new();
    w.extend_from_slice(b"TSVRDB01");
    for rec in records {
        w.extend_from_slice(&(rec.len() as u32).to_le_bytes());
        w.extend_from_slice(&crc32(rec).to_le_bytes());
        w.extend_from_slice(rec);
    }
    w
}

#[test]
fn log_survives_any_single_bit_flip() {
    check::cases(96, |case, rng| {
        let records: Vec<Vec<u8>> = (0..check::len_in(rng, 1, 10))
            .map(|_| {
                let len = check::len_in(rng, 1, 60);
                bytes(rng, len)
            })
            .collect();
        let mut image = log_image(&records);
        // Flip one bit anywhere past the magic.
        let byte = 8 + rng.uniform_usize(image.len() - 8);
        let bit = rng.uniform_u32(8);
        image[byte] ^= 1 << bit;
        // Opening must never fail or panic.
        let mut log = Log::with_storage(Box::new(MemStorage::from_bytes(image)))
            .unwrap_or_else(|e| panic!("case {case}: open failed: {e}"));
        let got = log.scan().unwrap();
        // Every served record must be one of the originals (CRC means a
        // flipped record is dropped, never silently mis-served), and at
        // most one record may be lost.
        let mut remaining: Vec<&Vec<u8>> = records.iter().collect();
        for (_, payload) in &got {
            let pos = remaining
                .iter()
                .position(|r| *r == payload)
                .unwrap_or_else(|| panic!("case {case}: served a payload never stored"));
            remaining.remove(pos);
        }
        assert!(
            got.len() + 1 >= records.len(),
            "case {case}: single flip lost {} records",
            records.len() - got.len()
        );
    });
}

#[test]
fn log_recovers_exact_record_prefix_under_truncation() {
    check::cases(96, |case, rng| {
        let records: Vec<Vec<u8>> = (0..check::len_in(rng, 1, 8))
            .map(|_| {
                let len = check::len_in(rng, 1, 50);
                bytes(rng, len)
            })
            .collect();
        let image = log_image(&records);
        let cut = rng.uniform_usize(image.len() + 1);
        let mut log = Log::with_storage(Box::new(MemStorage::from_bytes(image[..cut].to_vec())))
            .unwrap_or_else(|e| panic!("case {case}: open failed: {e}"));
        let got = log.scan().unwrap();
        if cut < 8 {
            // Sub-magic cut: re-initialised empty log.
            assert!(got.is_empty(), "case {case}");
            assert!(log.recovery_report().recovered_header || cut == 0, "case {case}");
            return;
        }
        // The recovered records must be exactly the longest full-record
        // prefix that fits in `cut` bytes.
        let mut expect = Vec::new();
        let mut off = 8usize;
        for rec in &records {
            if off + 8 + rec.len() <= cut {
                expect.push(rec.clone());
                off += 8 + rec.len();
            } else {
                break;
            }
        }
        let got_payloads: Vec<Vec<u8>> = got.into_iter().map(|(_, p)| p).collect();
        assert_eq!(got_payloads, expect, "case {case}: wrong prefix recovered");
    });
}

#[test]
fn corrupted_record_bytes_never_panic_decoders() {
    // Any single bit flip or truncation of an encoded record must
    // yield either a clean DbError or a decode (possibly different
    // values for a flip in a value field — that is what the log-level
    // CRC protects against) — never a panic or abort.
    check::cases(96, |_case, rng| {
        let row = WindowRow {
            window_index: rng.next_u32(),
            start_frame: rng.next_u32(),
            end_frame: rng.next_u32(),
            sequences: (0..check::len_in(rng, 0, 3))
                .map(|_| tsvr_viddb::SequenceRow {
                    track_id: rng.next_u64(),
                    alphas: (0..check::len_in(rng, 0, 4))
                        .map(|_| [rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)])
                        .collect(),
                })
                .collect(),
        };
        let mut w = Writer::new();
        row.encode(&mut w).unwrap();
        let clean = w.into_bytes();

        // Bit flip.
        let mut flipped = clean.clone();
        let byte = rng.uniform_usize(flipped.len());
        flipped[byte] ^= 1 << rng.uniform_u32(8);
        let _ = WindowRow::decode(&mut Reader::new(&flipped)); // must not panic

        // Truncation.
        let cut = rng.uniform_usize(clean.len());
        assert!(
            WindowRow::decode(&mut Reader::new(&clean[..cut])).is_err(),
            "truncated record decoded successfully"
        );

        // Session records too (nested collections).
        let ses = SessionRow {
            session_id: rng.next_u64(),
            clip_id: rng.next_u64(),
            query: lowercase(rng, 1, 8),
            learner: lowercase(rng, 1, 8),
            feedback: vec![vec![(rng.next_u32(), rng.chance(0.5))]],
            accuracies: check::vec_f64(rng, 3, 0.0, 1.0),
        };
        let mut w = Writer::new();
        ses.encode(&mut w).unwrap();
        let mut enc = w.into_bytes();
        let byte = rng.uniform_usize(enc.len());
        enc[byte] ^= 1 << rng.uniform_u32(8);
        let _ = SessionRow::decode(&mut Reader::new(&enc)); // must not panic
    });
}

#[test]
fn frame_codec_error_bounded_by_quant_step() {
    check::cases(96, |case, rng| {
        let pixels = bytes(rng, 64);
        let quant = 1 + rng.uniform_u32(31) as u8;
        let frame = StoredFrame::new(8, 8, pixels.clone()).unwrap();
        let codec = FrameCodec { quant_step: quant };
        let payload = codec.encode_segment(&[frame]).unwrap();
        let decoded = FrameCodec::decode_segment(&payload).unwrap();
        for (&got, &want) in decoded[0].pixels.iter().zip(&pixels) {
            assert!(
                (got as i16 - want as i16).unsigned_abs() <= quant as u16,
                "case {case}: error beyond quant step: {got} vs {want} (q={quant})"
            );
        }
    });
}

#[test]
fn frame_codec_multi_frame_round_trip() {
    check::cases(96, |case, rng| {
        let seed = rng.next_u32();
        let count = check::len_in(rng, 1, 6);
        // Slowly varying frames (like real video).
        let frames: Vec<StoredFrame> = (0..count)
            .map(|k| {
                let pixels = (0..48u32)
                    .map(|i| {
                        let h = (seed as u64)
                            .wrapping_mul(0x9E3779B97F4A7C15)
                            .wrapping_add(i as u64);
                        (((h >> 32) as u8) / 4).wrapping_add(k as u8 * 3)
                    })
                    .collect();
                StoredFrame::new(8, 6, pixels).unwrap()
            })
            .collect();
        let codec = FrameCodec { quant_step: 1 };
        let payload = codec.encode_segment(&frames).unwrap();
        let decoded = FrameCodec::decode_segment(&payload).unwrap();
        assert_eq!(decoded, frames, "case {case}");
    });
}
