//! Property-based tests for the database layer: codec round trips with
//! arbitrary content, log recovery under arbitrary truncation, and
//! frame-codec bounds.

use proptest::prelude::*;
use tsvr_viddb::codec::{crc32, Reader, Writer};
use tsvr_viddb::frames::{rle_compress, rle_decompress, FrameCodec, StoredFrame};
use tsvr_viddb::log::Log;
use tsvr_viddb::record::{ClipMeta, IncidentRow, SessionRow, TrackRow};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scalar_codec_round_trip(
        a in any::<u8>(), b in any::<u32>(), c in any::<u64>(),
        d in any::<f64>(), s in ".{0,40}", bytes in prop::collection::vec(any::<u8>(), 0..100),
    ) {
        let mut w = Writer::new();
        w.put_u8(a);
        w.put_u32(b);
        w.put_u64(c);
        w.put_f64(d);
        w.put_str(&s);
        w.put_bytes(&bytes);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.get_u8().unwrap(), a);
        prop_assert_eq!(r.get_u32().unwrap(), b);
        prop_assert_eq!(r.get_u64().unwrap(), c);
        let got = r.get_f64().unwrap();
        prop_assert!(got == d || (got.is_nan() && d.is_nan()));
        prop_assert_eq!(r.get_str().unwrap(), s);
        prop_assert_eq!(r.get_bytes().unwrap(), &bytes[..]);
        prop_assert!(r.is_exhausted());
    }

    #[test]
    fn crc_detects_single_bit_flips(data in prop::collection::vec(any::<u8>(), 1..200), pos in any::<prop::sample::Index>()) {
        let c1 = crc32(&data);
        let mut corrupted = data.clone();
        let i = pos.index(corrupted.len());
        corrupted[i] ^= 0x01;
        prop_assert_ne!(c1, crc32(&corrupted));
    }

    #[test]
    fn rle_round_trips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..500)) {
        prop_assert_eq!(rle_decompress(&rle_compress(&data)), data);
    }

    #[test]
    fn track_row_round_trips(
        track_id in any::<u64>(),
        start in any::<u32>(),
        pts in prop::collection::vec((-1e4f32..1e4, -1e4f32..1e4), 0..60),
    ) {
        let row = TrackRow { track_id, start_frame: start, centroids: pts };
        let mut w = Writer::new();
        row.encode(&mut w);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        prop_assert_eq!(TrackRow::decode(&mut r).unwrap(), row);
    }

    #[test]
    fn clip_meta_round_trips(
        clip_id in any::<u64>(),
        name in ".{0,30}", location in ".{0,30}", camera in ".{0,20}",
        t0 in any::<u64>(), frames in any::<u32>(),
    ) {
        let meta = ClipMeta {
            clip_id, name, location, camera,
            start_time: t0, frame_count: frames, width: 320, height: 240,
        };
        let mut w = Writer::new();
        meta.encode(&mut w);
        let buf = w.into_bytes();
        prop_assert_eq!(ClipMeta::decode(&mut Reader::new(&buf)).unwrap(), meta);
    }

    #[test]
    fn incident_and_session_rows_round_trip(
        kind in "[a-z_]{1,16}",
        s in any::<u32>(), dur in 0u32..500,
        ids in prop::collection::vec(any::<u64>(), 0..5),
        accs in prop::collection::vec(0.0f64..1.0, 0..6),
    ) {
        let inc = IncidentRow { kind: kind.clone(), start_frame: s, end_frame: s.saturating_add(dur), vehicle_ids: ids };
        let mut w = Writer::new();
        inc.encode(&mut w);
        let buf = w.into_bytes();
        prop_assert_eq!(IncidentRow::decode(&mut Reader::new(&buf)).unwrap(), inc);

        let ses = SessionRow {
            session_id: 1, clip_id: 2, query: kind, learner: "x".into(),
            feedback: vec![vec![(3, true), (4, false)]],
            accuracies: accs,
        };
        let mut w = Writer::new();
        ses.encode(&mut w);
        let buf = w.into_bytes();
        prop_assert_eq!(SessionRow::decode(&mut Reader::new(&buf)).unwrap(), ses);
    }

    #[test]
    fn log_round_trips_arbitrary_records(records in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..80), 0..20)) {
        let mut log = Log::in_memory();
        let mut offsets = Vec::new();
        for rec in &records {
            offsets.push(log.append(rec).unwrap());
        }
        for (off, rec) in offsets.iter().zip(&records) {
            prop_assert_eq!(&log.read(*off).unwrap(), rec);
        }
        let scanned = log.scan().unwrap();
        prop_assert_eq!(scanned.len(), records.len());
        for ((_, got), want) in scanned.iter().zip(&records) {
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn frame_codec_error_bounded_by_quant_step(
        pixels in prop::collection::vec(any::<u8>(), 64),
        quant in 1u8..32,
    ) {
        let frame = StoredFrame::new(8, 8, pixels.clone()).unwrap();
        let codec = FrameCodec { quant_step: quant };
        let payload = codec.encode_segment(&[frame]).unwrap();
        let decoded = FrameCodec::decode_segment(&payload).unwrap();
        for (&got, &want) in decoded[0].pixels.iter().zip(&pixels) {
            prop_assert!(
                (got as i16 - want as i16).unsigned_abs() <= quant as u16,
                "error beyond quant step: {got} vs {want} (q={quant})"
            );
        }
    }

    #[test]
    fn frame_codec_multi_frame_round_trip(
        seed in any::<u32>(),
        count in 1usize..6,
    ) {
        // Slowly varying frames (like real video).
        let frames: Vec<StoredFrame> = (0..count)
            .map(|k| {
                let pixels = (0..48u32)
                    .map(|i| {
                        let h = (seed as u64).wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i as u64);
                        (((h >> 32) as u8) / 4).wrapping_add(k as u8 * 3)
                    })
                    .collect();
                StoredFrame::new(8, 6, pixels).unwrap()
            })
            .collect();
        let codec = FrameCodec { quant_step: 1 };
        let payload = codec.encode_segment(&frames).unwrap();
        let decoded = FrameCodec::decode_segment(&payload).unwrap();
        prop_assert_eq!(decoded, frames);
    }
}
