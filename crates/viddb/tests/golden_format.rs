//! Golden-format fixture test: a handwritten `TSVRDB01` log committed
//! under `tests/fixtures/` is decoded field-for-field. This pins the
//! on-disk format — a future codec or log edit that silently breaks
//! reading of existing databases fails here, not in production.
//!
//! The fixture holds four records: one clip bundle (metadata, one
//! track, one window with a trajectory sequence, one incident), one
//! retrieval session, one tombstone for an unrelated clip id, and one
//! two-frame video segment.

use tsvr_viddb::{FrameCodec, MemStorage, VideoDb};

const GOLDEN: &[u8] = include_bytes!("fixtures/golden_tsvrdb01.db");

fn open_golden() -> VideoDb {
    VideoDb::with_storage(Box::new(MemStorage::from_bytes(GOLDEN.to_vec())))
        .expect("golden fixture must open cleanly")
}

#[test]
fn golden_log_opens_clean() {
    let db = open_golden();
    let report = db.fault_report();
    assert!(report.is_clean(), "golden fixture reported damage: {report:?}");
    assert_eq!(db.clip_count(), 1);
    assert_eq!(db.session_count(), 1);
    assert_eq!(db.video_segment_count(), 1);
}

#[test]
fn golden_clip_decodes_field_for_field() {
    let mut db = open_golden();
    let bundle = db.load_clip(7).expect("clip 7 must load");

    // Metadata.
    assert_eq!(bundle.meta.clip_id, 7);
    assert_eq!(bundle.meta.name, "golden");
    assert_eq!(bundle.meta.location, "tunnel-9");
    assert_eq!(bundle.meta.camera, "cam-2");
    assert_eq!(bundle.meta.start_time, 1_167_609_600);
    assert_eq!(bundle.meta.frame_count, 120);
    assert_eq!(bundle.meta.width, 320);
    assert_eq!(bundle.meta.height, 240);

    // Track.
    assert_eq!(bundle.tracks.len(), 1);
    let track = &bundle.tracks[0];
    assert_eq!(track.track_id, 3);
    assert_eq!(track.start_frame, 5);
    assert_eq!(track.centroids, vec![(1.5, 2.25), (3.0, 4.5)]);

    // Window with one trajectory sequence.
    assert_eq!(bundle.windows.len(), 1);
    let win = &bundle.windows[0];
    assert_eq!(win.window_index, 0);
    assert_eq!(win.start_frame, 0);
    assert_eq!(win.end_frame, 14);
    assert_eq!(win.sequences.len(), 1);
    assert_eq!(win.sequences[0].track_id, 3);
    assert_eq!(win.sequences[0].alphas, vec![[0.5, 1.0, 0.25]]);

    // Incident.
    assert_eq!(bundle.incidents.len(), 1);
    let inc = &bundle.incidents[0];
    assert_eq!(inc.kind, "u_turn");
    assert_eq!(inc.start_frame, 30);
    assert_eq!(inc.end_frame, 60);
    assert_eq!(inc.vehicle_ids, vec![3]);

    // Metadata queries see the same fields.
    assert_eq!(db.find_by_location("tunnel-9").len(), 1);
    assert_eq!(db.find_by_camera("cam-2")[0].clip_id, 7);
}

#[test]
fn golden_session_decodes_field_for_field() {
    let mut db = open_golden();
    let sessions = db.sessions_for_clip(7).unwrap();
    assert_eq!(sessions.len(), 1);
    let s = &sessions[0];
    assert_eq!(s.session_id, 1);
    assert_eq!(s.clip_id, 7);
    assert_eq!(s.query, "accident");
    assert_eq!(s.learner, "MIL_OneClassSVM");
    assert_eq!(s.feedback, vec![vec![(0, true), (2, false)]]);
    assert_eq!(s.accuracies, vec![0.5, 0.75]);
}

#[test]
fn golden_tombstone_hides_clip_99() {
    let db = open_golden();
    assert!(db.meta(99).is_none(), "tombstoned clip must stay deleted");
}

#[test]
fn golden_video_segment_decodes_pixel_for_pixel() {
    let mut db = open_golden();
    let frames = db.load_frames(7, 0, 2).unwrap();
    assert_eq!(frames.len(), 2);
    // quant_step 1 dequantizes q to q (mid-rise adds step/2 = 0).
    let codec = FrameCodec { quant_step: 1 };
    assert_eq!(frames[0].0, 0);
    assert_eq!(frames[0].1.width, 4);
    assert_eq!(frames[0].1.height, 3);
    assert_eq!(frames[0].1.pixels, vec![codec.reconstruct(10); 12]);
    assert_eq!(frames[1].0, 1);
    assert_eq!(frames[1].1.pixels, vec![codec.reconstruct(12); 12]);
}
