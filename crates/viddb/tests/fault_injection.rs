//! Fault-injection integration tests: drive `VideoDb` over
//! `FaultyStorage` and check that every injected failure mode degrades
//! the way the durability contract promises — retries for transients,
//! rollback for torn appends, surfaced-but-survivable sync failures,
//! and quarantine (never wrong data, never a failed open) for bit rot.

use std::sync::Arc;
use tsvr_viddb::log::MAX_IO_RETRIES;
use tsvr_viddb::record::{ClipBundle, ClipMeta, TrackRow};
use tsvr_viddb::{DbError, FaultKind, FaultyStorage, MemStorage, VideoDb};

fn bundle(id: u64) -> ClipBundle {
    ClipBundle {
        meta: ClipMeta {
            clip_id: id,
            name: format!("clip-{id}"),
            location: "tunnel-9".into(),
            camera: "cam-2".into(),
            start_time: 1000 + id,
            frame_count: 100,
            width: 320,
            height: 240,
        },
        tracks: vec![TrackRow {
            track_id: id * 10,
            start_frame: 0,
            centroids: vec![(1.0, 2.0), (3.0, 4.0)],
        }],
        windows: vec![],
        incidents: vec![],
    }
}

#[test]
fn transient_io_error_is_retried_transparently() {
    let (storage, handle) = FaultyStorage::new(21);
    let mut db = VideoDb::with_storage(Box::new(storage)).unwrap();
    // Fail the next storage op once; the retry must succeed.
    handle.schedule(handle.op_count(), FaultKind::TransientIo);
    db.put_clip(&bundle(1)).unwrap();
    assert_eq!(db.load_clip(1).unwrap().meta.clip_id, 1);
    assert_eq!(handle.injected().len(), 1, "fault was not consumed");
}

#[test]
fn exhausted_retries_surface_as_io_and_leave_state_unchanged() {
    let (storage, handle) = FaultyStorage::new(22);
    let mut db = VideoDb::with_storage(Box::new(storage)).unwrap();
    db.put_clip(&bundle(1)).unwrap();
    // More consecutive transients than the retry budget.
    let base = handle.op_count();
    for k in 0..=(MAX_IO_RETRIES as u64 + 2) {
        handle.schedule(base + k, FaultKind::TransientIo);
    }
    match db.put_clip(&bundle(2)).unwrap_err() {
        DbError::Io(_) => {}
        other => panic!("expected Io after retry exhaustion, got {other:?}"),
    }
    // The failed put must not leave clip 2 behind, and clip 1 intact.
    assert!(matches!(db.load_clip(2), Err(DbError::ClipNotFound(2))));
    assert_eq!(db.load_clip(1).unwrap().meta.clip_id, 1);
}

#[test]
fn torn_append_is_rolled_back_and_reput_succeeds() {
    let (storage, handle) = FaultyStorage::new(23);
    let mut db = VideoDb::with_storage(Box::new(storage)).unwrap();
    db.put_clip(&bundle(1)).unwrap();
    let size_before = db.log_size();
    handle.schedule(handle.op_count(), FaultKind::TornAppend);
    assert!(db.put_clip(&bundle(2)).is_err());
    assert_eq!(db.log_size(), size_before, "torn frame not rolled back");
    // The same clip can be re-put after the transient tear.
    db.put_clip(&bundle(2)).unwrap();
    assert_eq!(db.load_clip(2).unwrap().meta.clip_id, 2);
    assert_eq!(db.clip_count(), 2);
}

#[test]
fn sync_failure_surfaces_but_db_stays_usable() {
    let (storage, handle) = FaultyStorage::new(24);
    let mut db = VideoDb::with_storage(Box::new(storage)).unwrap();
    db.put_clip(&bundle(1)).unwrap();
    handle.schedule(handle.op_count(), FaultKind::SyncFail);
    assert!(db.sync().is_err(), "sync failure must not be swallowed");
    // The database keeps working; a later sync succeeds.
    db.put_clip(&bundle(2)).unwrap();
    db.sync().unwrap();
    assert_eq!(db.clip_count(), 2);
}

#[test]
fn bit_flip_quarantines_only_the_damaged_clip() {
    // Write several clips, flip one stored bit, and check the DB
    // serves everything whose record stayed intact and quarantines
    // (never mis-serves) the rest.
    let (storage, handle) = FaultyStorage::new(25);
    let mut db = VideoDb::with_storage(Box::new(storage)).unwrap();
    let originals: Vec<ClipBundle> = (1..=4).map(bundle).collect();
    for b in &originals {
        db.put_clip(b).unwrap();
    }
    db.sync().unwrap();
    // Reopen over the same image with one flipped bit.
    let mut image = handle.snapshot();
    // Flip a bit inside the second record's payload region — past the
    // magic and the first record.
    let target = 8 + 40;
    assert!(image.len() > target + 1);
    image[target] ^= 0x10;
    let mut db = VideoDb::with_storage(Box::new(MemStorage::from_bytes(image))).unwrap();

    let mut served = 0;
    let mut quarantined_or_missing = 0;
    for b in &originals {
        match db.load_clip(b.meta.clip_id) {
            Ok(got) => {
                assert_eq!(*got, *b, "served clip differs from what was stored");
                served += 1;
            }
            Err(DbError::ClipQuarantined(_)) | Err(DbError::ClipNotFound(_)) => {
                quarantined_or_missing += 1
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(served + quarantined_or_missing, originals.len());
    assert!(
        served >= originals.len() - 1,
        "a single bit flip must cost at most one clip (served {served})"
    );
    assert!(quarantined_or_missing >= 1, "the flip hit record bytes");
}

#[test]
fn verify_then_compact_restores_a_clean_database() {
    let (storage, handle) = FaultyStorage::new(26);
    let mut db = VideoDb::with_storage(Box::new(storage)).unwrap();
    for id in 1..=3 {
        db.put_clip(&bundle(id)).unwrap();
    }
    db.sync().unwrap();
    // Corrupt the middle record's payload in a reopened image.
    let mut image = handle.snapshot();
    let len = image.len();
    image[len / 2] ^= 0xff;
    let mut db = VideoDb::with_storage(Box::new(MemStorage::from_bytes(image))).unwrap();

    let report = db.verify().unwrap();
    assert!(!report.is_clean(), "verify must notice the corruption");
    db.compact().unwrap();
    // After compaction the damage is gone for good: everything still
    // indexed decodes, and a fresh verify is clean.
    let report = db.verify().unwrap();
    assert_eq!(report.clips_intact, db.clip_count());
    assert_eq!(report.sessions_dropped, 0);
    assert_eq!(report.segments_dropped, 0);
    for meta in db.list_clips().into_iter().cloned().collect::<Vec<_>>() {
        let got = db.load_clip(meta.clip_id).unwrap();
        assert_eq!(got.meta, meta);
    }
}

#[test]
fn quarantined_clip_is_repaired_by_reingest() {
    let (storage, handle) = FaultyStorage::new(27);
    let mut db = VideoDb::with_storage(Box::new(storage)).unwrap();
    db.put_clip(&bundle(1)).unwrap();
    db.put_clip(&bundle(2)).unwrap();
    db.sync().unwrap();
    let mut image = handle.snapshot();
    // Damage clip 1's payload (first record, just past its header).
    image[8 + 12] ^= 0x40;
    let mut db = VideoDb::with_storage(Box::new(MemStorage::from_bytes(image))).unwrap();

    // Force the quarantine by touching every clip.
    let _ = db.load_clip(1);
    let _ = db.load_clip(2);
    if db.quarantined().is_empty() {
        // The flip may have landed in already-skipped bytes at open
        // time; either way clip 2 must be fine.
        assert_eq!(db.load_clip(2).unwrap().meta.clip_id, 2);
        return;
    }
    let bad_id = db.quarantined()[0].clip_id;
    assert!(matches!(
        db.load_clip(bad_id),
        Err(DbError::ClipQuarantined(_))
    ));
    // Re-ingest repairs.
    db.put_clip(&bundle(bad_id)).unwrap();
    assert!(db.quarantined().is_empty());
    assert_eq!(db.load_clip(bad_id).unwrap().meta.clip_id, bad_id);
}

#[test]
fn mid_log_corruption_on_open_preserves_later_records() {
    let (storage, handle) = FaultyStorage::new(28);
    let mut db = VideoDb::with_storage(Box::new(storage)).unwrap();
    db.put_clip(&bundle(1)).unwrap();
    db.put_clip(&bundle(2)).unwrap();
    db.sync().unwrap();
    let mut image = handle.snapshot();
    // Flip a byte in the FIRST record's payload (offset 8 = magic,
    // +8 frame header, +5 into the payload).
    image[8 + 8 + 5] ^= 0x20;
    let mut db = VideoDb::with_storage(Box::new(MemStorage::from_bytes(image))).unwrap();
    // Open must succeed, record a corrupt region, and still serve
    // clip 2 — the damage must not truncate the rest of the log away.
    assert!(
        !db.fault_report().corrupt_regions.is_empty(),
        "open-time scan should report the damaged range"
    );
    assert!(db.meta(1).is_none(), "damaged clip must not be indexed");
    let got = db.load_clip(2).unwrap();
    assert_eq!(*got, bundle(2));
}

#[test]
fn crash_image_preserves_synced_clips() {
    let (storage, handle) = FaultyStorage::new(29);
    let mut db = VideoDb::with_storage(Box::new(storage)).unwrap();
    db.put_clip(&bundle(1)).unwrap();
    db.sync().unwrap();
    // Crash during the next put.
    handle.schedule(handle.op_count(), FaultKind::Crash);
    assert!(db.put_clip(&bundle(2)).is_err());
    drop(db);
    let image = handle.crash_image();
    let mut db = VideoDb::with_storage(Box::new(MemStorage::from_bytes(image))).unwrap();
    // The synced clip survives, byte-identical.
    let got: Arc<ClipBundle> = db.load_clip(1).unwrap();
    assert_eq!(*got, bundle(1));
    assert!(db.quarantined().is_empty());
}
