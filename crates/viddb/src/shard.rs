//! Sharded video database: a directory of independently compacted
//! [`VideoDb`] shards keyed by `(camera, time-bucket)`.
//!
//! # Layout
//!
//! A sharded database is a directory:
//!
//! ```text
//! db-dir/
//!   MANIFEST                     append-only route log (same framing
//!                                as every tsvr log: TSVRDB01 + CRC)
//!   shard-<fnv64(camera)>-<bucket>.db   one ordinary PR-3 VideoDb each
//! ```
//!
//! The `MANIFEST` is itself a [`Log`], so route records inherit the
//! torn-tail truncation and mid-log quarantine guarantees of every
//! other file in the system. It holds two record kinds: a one-time
//! config record pinning the time-bucket width, and one route record
//! per shard mapping `(camera, bucket)` to a shard file name.
//!
//! # Crash consistency
//!
//! Creating a shard is a two-step write (route record, then shard
//! file), ordered **manifest first**: the route record is appended
//! *and synced* before the shard file is created. A crash between the
//! two leaves a route pointing at a missing file, which [`VideoDb`]
//! re-creates empty on the next open — indistinguishable from a shard
//! that never received its first clip. The opposite order would leak
//! an anonymous shard file the router cannot reach. As a second line
//! of defence, open *adopts orphans*: any `shard-*.db` file in the
//! directory that no route mentions (possible if a corrupt manifest
//! region was quarantined) is opened and re-routed from the clip
//! metadata it contains.
//!
//! # Degradation
//!
//! A shard that fails to open is quarantined, not fatal: the incident
//! is recorded (`viddb.shard.quarantined` counter + trace incident),
//! reads and queries continue over the surviving shards, and only
//! operations routed *into* the damaged shard fail, with
//! [`DbError::ShardUnavailable`]. This mirrors, one level up, what a
//! single `VideoDb` already does for a corrupt clip record.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::cache::CacheStats;
use crate::codec::{Reader, Writer};
use crate::db::{FaultReport, VerifyReport, VideoDb};
use crate::error::{DbError, Result};
use crate::log::{Log, RecoveryReport};
use crate::record::{ClipBundle, ClipMeta, IndexSegment, SessionRow};

/// Default shard time-bucket width: one hour of capture time. Clips
/// whose `start_time` falls in the same hour (and share a camera) land
/// in the same shard.
pub const DEFAULT_TIME_BUCKET_SECS: u64 = 3600;

/// Manifest file name inside a sharded database directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Manifest record: `(camera, bucket) -> shard file` route.
const MF_ROUTE: u8 = 1;
/// Manifest record: one-time config (time-bucket width).
const MF_CONFIG: u8 = 2;

/// Shard key: every clip routes to exactly one `(camera, time-bucket)`
/// cell, so per-camera ingest and time-range retention both map to
/// whole shards.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId {
    /// Camera identifier (from [`ClipMeta::camera`]).
    pub camera: String,
    /// `start_time / bucket_secs` — which time bucket the clip's
    /// capture start falls in.
    pub bucket: u64,
}

impl ShardId {
    /// The shard a clip belongs to under a given bucket width.
    pub fn for_meta(meta: &ClipMeta, bucket_secs: u64) -> ShardId {
        ShardId {
            camera: meta.camera.clone(),
            bucket: meta.start_time / bucket_secs.max(1),
        }
    }

    /// Deterministic, filesystem-safe shard file name. The camera name
    /// is hashed (FNV-1a) rather than embedded because camera ids are
    /// free-form strings; the exact mapping lives in the manifest, so
    /// the name only has to be stable and collision-resistant enough
    /// to keep unrelated shards in separate files.
    pub fn file_name(&self) -> String {
        format!("shard-{:016x}-{:08x}.db", fnv1a(self.camera.as_bytes()), self.bucket)
    }
}

/// 64-bit FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Summary of one shard, for `info`/`stats`-style listings.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardInfo {
    /// Shard file name within the database directory.
    pub file: String,
    /// Shard keys routed to this file (one, barring hash collisions).
    pub keys: Vec<ShardId>,
    /// Stored clips (0 for a quarantined shard).
    pub clips: usize,
    /// Stored session records (0 for a quarantined shard).
    pub sessions: usize,
    /// Log size in bytes (0 for a quarantined shard).
    pub log_bytes: u64,
    /// Whether the shard failed to open and is quarantined.
    pub quarantined: bool,
}

/// A directory of independently compacted [`VideoDb`] shards behind a
/// manifest log. Writes route by `(camera, time-bucket)`; reads route
/// by clip id; metadata queries and verification fan out over every
/// healthy shard.
pub struct ShardedDb {
    dir: PathBuf,
    manifest: Log,
    bucket_secs: u64,
    /// `(camera, bucket)` -> shard file name, replayed from the manifest.
    routes: BTreeMap<ShardId, String>,
    /// Open shards, by file name. `BTreeMap` so every fan-out walks
    /// shards in the same deterministic order.
    shards: BTreeMap<String, VideoDb>,
    /// Shards that failed to open: file name -> reason.
    quarantined: BTreeMap<String, String>,
    /// clip id -> shard file name, rebuilt from shard catalogs.
    clip_route: BTreeMap<u64, String>,
}

impl ShardedDb {
    /// Opens (or creates) a sharded database directory with the
    /// default time-bucket width. An existing manifest's stored width
    /// always wins, so reopening never re-routes clips.
    pub fn open(dir: &Path) -> Result<ShardedDb> {
        ShardedDb::open_with_bucket(dir, DEFAULT_TIME_BUCKET_SECS)
    }

    /// Opens (or creates) a sharded database directory, pinning
    /// `bucket_secs` as the time-bucket width if the directory is new.
    pub fn open_with_bucket(dir: &Path, bucket_secs: u64) -> Result<ShardedDb> {
        let _span = tsvr_obs::span!("viddb.shard.open");
        std::fs::create_dir_all(dir)?;
        let mut manifest = Log::open(&dir.join(MANIFEST_FILE))?;

        // Replay the manifest: config first (it pins routing), then
        // routes. Later route records for the same key supersede
        // earlier ones (they are deterministic, so in practice equal).
        let mut stored_bucket = None;
        let mut routes: BTreeMap<ShardId, String> = BTreeMap::new();
        for (_, payload) in manifest.scan()? {
            let mut r = Reader::new(&payload);
            match r.get_u8()? {
                MF_ROUTE => {
                    let camera = r.get_str()?;
                    let bucket = r.get_u64()?;
                    let file = r.get_str()?;
                    routes.insert(ShardId { camera, bucket }, file);
                }
                MF_CONFIG => stored_bucket = Some(r.get_u64()?),
                t => return Err(DbError::UnknownRecordType(t)),
            }
        }
        let bucket_secs = match stored_bucket {
            Some(b) => b.max(1),
            None => {
                let b = bucket_secs.max(1);
                let mut w = Writer::new();
                w.put_u8(MF_CONFIG);
                w.put_u64(b);
                manifest.append(&w.into_bytes())?;
                manifest.sync()?;
                b
            }
        };

        let mut db = ShardedDb {
            dir: dir.to_path_buf(),
            manifest,
            bucket_secs,
            routes,
            shards: BTreeMap::new(),
            quarantined: BTreeMap::new(),
            clip_route: BTreeMap::new(),
        };

        // Open every routed shard; quarantine the ones that refuse.
        let files: Vec<String> = db.routes.values().cloned().collect();
        for file in files {
            db.open_shard(&file);
        }
        db.adopt_orphans()?;
        Ok(db)
    }

    /// Whether `path` looks like a sharded database: an existing
    /// directory (a plain `VideoDb` is always a single file).
    pub fn is_sharded_path(path: &Path) -> bool {
        path.is_dir()
    }

    /// Opens one shard file, indexing its clips, or quarantines it.
    /// Idempotent: already-open and already-quarantined files are left
    /// alone.
    fn open_shard(&mut self, file: &str) {
        if self.shards.contains_key(file) || self.quarantined.contains_key(file) {
            return;
        }
        match VideoDb::open(&self.dir.join(file)) {
            Ok(shard) => {
                for meta in shard.list_clips() {
                    self.clip_route.insert(meta.clip_id, file.to_string());
                }
                self.shards.insert(file.to_string(), shard);
            }
            Err(e) => {
                let reason = e.to_string();
                tsvr_obs::counter!("viddb.shard.quarantined").incr();
                tsvr_obs::trace::incident(
                    "viddb.shard.quarantined",
                    &format!("shard {file}: {reason}"),
                );
                self.quarantined.insert(file.to_string(), reason);
            }
        }
    }

    /// Adopts `shard-*.db` files no route mentions (a quarantined
    /// manifest region can lose route records): open each, derive its
    /// routes from the clip metadata inside, and re-append them to the
    /// manifest so the next open finds them the normal way.
    fn adopt_orphans(&mut self) -> Result<()> {
        let routed: std::collections::BTreeSet<&String> = self.routes.values().collect();
        let mut orphans = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with("shard-") && name.ends_with(".db") && !routed.contains(&name.to_string())
            {
                orphans.push(name.to_string());
            }
        }
        drop(routed);
        for file in orphans {
            self.open_shard(&file);
            let Some(shard) = self.shards.get(&file) else { continue };
            let keys: Vec<ShardId> = shard
                .list_clips()
                .iter()
                .map(|m| ShardId::for_meta(m, self.bucket_secs))
                .collect();
            for id in keys {
                if self.routes.contains_key(&id) {
                    continue;
                }
                self.append_route(&id, &file)?;
            }
        }
        Ok(())
    }

    /// Appends one route record and syncs the manifest. The sync is
    /// the crash-ordering point: the route must be durable before the
    /// shard file it names exists.
    fn append_route(&mut self, id: &ShardId, file: &str) -> Result<()> {
        let mut w = Writer::new();
        w.put_u8(MF_ROUTE);
        w.put_str(&id.camera)?;
        w.put_u64(id.bucket);
        w.put_str(file)?;
        self.manifest.append(&w.into_bytes())?;
        self.manifest.sync()?;
        self.routes.insert(id.clone(), file.to_string());
        Ok(())
    }

    /// The shard a write for `id` routes to, creating the route (and
    /// then the shard file) if this is the first clip for the cell.
    fn shard_for_write(&mut self, id: &ShardId) -> Result<&mut VideoDb> {
        let file = match self.routes.get(id) {
            Some(f) => f.clone(),
            None => {
                let f = id.file_name();
                self.append_route(id, &f)?;
                f
            }
        };
        if let Some(reason) = self.quarantined.get(&file) {
            return Err(DbError::ShardUnavailable { file, reason: reason.clone() });
        }
        self.open_shard(&file);
        match self.shards.get_mut(&file) {
            Some(shard) => Ok(shard),
            // open_shard just failed and quarantined it.
            None => {
                let reason = self.quarantined.get(&file).cloned().unwrap_or_default();
                Err(DbError::ShardUnavailable { file, reason })
            }
        }
    }

    /// The open shard holding `clip_id`, for read-side routing.
    /// `None` when the clip is unknown or its shard is quarantined.
    pub fn shard_for_clip_mut(&mut self, clip_id: u64) -> Option<&mut VideoDb> {
        let file = self.clip_route.get(&clip_id)?.clone();
        self.shards.get_mut(&file)
    }

    /// The shard file holding `clip_id`, if the clip is known — the
    /// grouping key a scatter-gather query plans its fan-out with.
    pub fn shard_of_clip(&self, clip_id: u64) -> Option<&str> {
        self.clip_route.get(&clip_id).map(String::as_str)
    }

    /// Resolves `clip_id` to its shard, with a typed error: unknown
    /// clips are [`DbError::ClipNotFound`]; clips routed into a
    /// quarantined shard are [`DbError::ShardUnavailable`].
    fn routed_shard(&mut self, clip_id: u64) -> Result<&mut VideoDb> {
        let Some(file) = self.clip_route.get(&clip_id).cloned() else {
            return Err(DbError::ClipNotFound(clip_id));
        };
        if let Some(reason) = self.quarantined.get(&file) {
            return Err(DbError::ShardUnavailable { file, reason: reason.clone() });
        }
        match self.shards.get_mut(&file) {
            Some(shard) => Ok(shard),
            None => Err(DbError::ClipNotFound(clip_id)),
        }
    }

    /// Stores a clip bundle, routed by `(camera, start_time bucket)`.
    /// Clip ids are unique across the whole database, not per shard.
    pub fn put_clip(&mut self, bundle: &ClipBundle) -> Result<()> {
        let _span = tsvr_obs::span!("viddb.shard.put_clip");
        let clip_id = bundle.meta.clip_id;
        if self.clip_route.contains_key(&clip_id) {
            return Err(DbError::DuplicateClip(clip_id));
        }
        let id = ShardId::for_meta(&bundle.meta, self.bucket_secs);
        let file = self.routes.get(&id).cloned().unwrap_or_else(|| id.file_name());
        self.shard_for_write(&id)?.put_clip(bundle)?;
        self.clip_route.insert(clip_id, file);
        Ok(())
    }

    /// Loads a clip bundle from its shard.
    pub fn load_clip(&mut self, clip_id: u64) -> Result<Arc<ClipBundle>> {
        self.routed_shard(clip_id)?.load_clip(clip_id)
    }

    /// Deletes a clip (tombstone in its shard).
    pub fn delete_clip(&mut self, clip_id: u64) -> Result<()> {
        self.routed_shard(clip_id)?.delete_clip(clip_id)?;
        self.clip_route.remove(&clip_id);
        Ok(())
    }

    /// Stores a feature-index segment next to its clip.
    pub fn put_index(&mut self, segment: &IndexSegment) -> Result<()> {
        let clip_id = segment.clip_id;
        self.routed_shard(clip_id)?.put_index(segment)
    }

    /// Loads the freshest index segment for a clip, if any.
    pub fn load_index(&mut self, clip_id: u64) -> Result<Option<IndexSegment>> {
        match self.routed_shard(clip_id) {
            Ok(shard) => shard.load_index(clip_id),
            Err(DbError::ClipNotFound(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Total index segments across healthy shards.
    pub fn index_count(&self) -> usize {
        self.shards.values().map(|s| s.index_count()).sum()
    }

    /// Persists a retrieval session in the shard of the clip it
    /// queried, so a shard remains self-contained (clip + indexes +
    /// sessions travel together through compaction and retention).
    pub fn put_session(&mut self, session: &SessionRow) -> Result<()> {
        let clip_id = session.clip_id;
        self.routed_shard(clip_id)?.put_session(session)
    }

    /// Every session recorded against a clip. Falls back to scanning
    /// all shards when the clip itself is gone (deleted clips keep
    /// their session history).
    pub fn sessions_for_clip(&mut self, clip_id: u64) -> Result<Vec<SessionRow>> {
        if self.clip_route.contains_key(&clip_id) {
            return self.routed_shard(clip_id)?.sessions_for_clip(clip_id);
        }
        let mut out = Vec::new();
        for shard in self.shards.values_mut() {
            out.extend(shard.sessions_for_clip(clip_id)?);
        }
        Ok(out)
    }

    /// Total stored sessions across healthy shards.
    pub fn session_count(&self) -> usize {
        self.shards.values().map(|s| s.session_count()).sum()
    }

    /// Highest session id across healthy shards (`0` when none).
    pub fn max_session_id(&self) -> u64 {
        self.shards.values().map(|s| s.max_session_id()).max().unwrap_or(0)
    }

    /// `(session_id, clip_id)` pairs across all healthy shards, in
    /// shard order then per-shard log order.
    pub fn session_index(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for shard in self.shards.values() {
            out.extend(shard.session_index());
        }
        out
    }

    /// Metadata of one clip.
    pub fn meta(&self, clip_id: u64) -> Option<&ClipMeta> {
        let file = self.clip_route.get(&clip_id)?;
        self.shards.get(file)?.meta(clip_id)
    }

    /// All clips across healthy shards, ordered by clip id.
    pub fn list_clips(&self) -> Vec<&ClipMeta> {
        let mut out: Vec<&ClipMeta> =
            self.shards.values().flat_map(|s| s.list_clips()).collect();
        out.sort_by_key(|m| m.clip_id);
        out
    }

    /// Number of stored clips across healthy shards.
    pub fn clip_count(&self) -> usize {
        self.clip_route.len()
    }

    /// Clips captured at a location, across shards, ordered by clip id.
    pub fn find_by_location(&self, location: &str) -> Vec<&ClipMeta> {
        let mut out: Vec<&ClipMeta> =
            self.shards.values().flat_map(|s| s.find_by_location(location)).collect();
        out.sort_by_key(|m| m.clip_id);
        out
    }

    /// Clips captured by a camera, across shards, ordered by clip id.
    pub fn find_by_camera(&self, camera: &str) -> Vec<&ClipMeta> {
        let mut out: Vec<&ClipMeta> =
            self.shards.values().flat_map(|s| s.find_by_camera(camera)).collect();
        out.sort_by_key(|m| m.clip_id);
        out
    }

    /// Clips whose capture start falls in `[from, to]`, across shards,
    /// ordered by clip id.
    pub fn find_by_time_range(&self, from: u64, to: u64) -> Vec<&ClipMeta> {
        let mut out: Vec<&ClipMeta> =
            self.shards.values().flat_map(|s| s.find_by_time_range(from, to)).collect();
        out.sort_by_key(|m| m.clip_id);
        out
    }

    /// Syncs the manifest and every healthy shard.
    pub fn sync(&mut self) -> Result<()> {
        self.manifest.sync()?;
        for shard in self.shards.values_mut() {
            shard.sync()?;
        }
        Ok(())
    }

    /// Verifies each healthy shard independently, returning
    /// `(file, report)` pairs in shard order. A quarantined shard
    /// cannot be verified (it would not open); it is reported via
    /// [`ShardedDb::quarantined_shards`].
    pub fn verify(&mut self) -> Result<Vec<(String, VerifyReport)>> {
        let mut out = Vec::with_capacity(self.shards.len());
        for (file, shard) in &mut self.shards {
            out.push((file.clone(), shard.verify()?));
        }
        Ok(out)
    }

    /// Compacts each healthy shard independently. One shard's
    /// compaction never rewrites another's file, so a failure part way
    /// leaves every other shard untouched.
    pub fn compact(&mut self) -> Result<()> {
        let _span = tsvr_obs::span!("viddb.shard.compact");
        for shard in self.shards.values_mut() {
            shard.compact()?;
        }
        Ok(())
    }

    /// Quarantined shards as `(file, reason)` pairs, in file order.
    pub fn quarantined_shards(&self) -> Vec<(String, String)> {
        self.quarantined.iter().map(|(f, r)| (f.clone(), r.clone())).collect()
    }

    /// Aggregated per-clip fault report over every healthy shard.
    pub fn fault_report(&self) -> FaultReport {
        let mut agg = FaultReport::default();
        for shard in self.shards.values() {
            let r = shard.fault_report();
            agg.quarantined_clips.extend(r.quarantined_clips);
            agg.corrupt_regions.extend(r.corrupt_regions);
            agg.truncated_tail_bytes += r.truncated_tail_bytes;
            agg.recovered_header |= r.recovered_header;
        }
        agg
    }

    /// Aggregated cache statistics over every healthy shard.
    pub fn cache_stats(&self) -> CacheStats {
        let mut agg = CacheStats::default();
        for shard in self.shards.values() {
            let s = shard.cache_stats();
            agg.hits += s.hits;
            agg.misses += s.misses;
            agg.len += s.len;
        }
        agg
    }

    /// The manifest log's own recovery report.
    pub fn manifest_recovery(&self) -> &RecoveryReport {
        self.manifest.recovery_report()
    }

    /// Total log bytes: manifest plus every healthy shard.
    pub fn log_size(&self) -> u64 {
        self.manifest.len() + self.shards.values().map(|s| s.log_size()).sum::<u64>()
    }

    /// Number of open (healthy) shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configured time-bucket width, seconds.
    pub fn bucket_secs(&self) -> u64 {
        self.bucket_secs
    }

    /// Per-shard summaries (healthy then quarantined), in file order.
    pub fn shard_infos(&self) -> Vec<ShardInfo> {
        let mut by_file: BTreeMap<&String, Vec<ShardId>> = BTreeMap::new();
        for (id, file) in &self.routes {
            by_file.entry(file).or_default().push(id.clone());
        }
        let mut out = Vec::with_capacity(self.shards.len() + self.quarantined.len());
        for (file, shard) in &self.shards {
            out.push(ShardInfo {
                file: file.clone(),
                keys: by_file.get(file).cloned().unwrap_or_default(),
                clips: shard.clip_count(),
                sessions: shard.session_count(),
                log_bytes: shard.log_size(),
                quarantined: false,
            });
        }
        for file in self.quarantined.keys() {
            out.push(ShardInfo {
                file: file.clone(),
                keys: by_file.get(file).cloned().unwrap_or_default(),
                clips: 0,
                sessions: 0,
                log_bytes: 0,
                quarantined: true,
            });
        }
        out
    }

    /// Iterates healthy shards as `(file, db)`, in file order. The
    /// query layer uses this to build per-shard datasets for parallel
    /// scatter-gather.
    pub fn shards_mut(&mut self) -> impl Iterator<Item = (&str, &mut VideoDb)> {
        self.shards.iter_mut().map(|(f, s)| (f.as_str(), s))
    }

    /// Clip ids per healthy shard, in shard order — the deterministic
    /// fan-out plan for a cross-shard query.
    pub fn shard_clip_ids(&self) -> Vec<(String, Vec<u64>)> {
        let mut out = Vec::with_capacity(self.shards.len());
        for (file, shard) in &self.shards {
            let mut ids: Vec<u64> =
                shard.list_clips().iter().map(|m| m.clip_id).collect();
            ids.sort_unstable();
            out.push((file.clone(), ids));
        }
        out
    }

    /// The manifest's routing table, one entry per `(camera, bucket)`
    /// key, in route order. This is the query planner's prune input:
    /// the camera and time-bucket of every shard — healthy or
    /// quarantined — are known from the manifest alone, and healthy
    /// routes carry just enough per-clip metadata (`start_time`,
    /// `frame_count`) to decide time-overlap exactly, without touching
    /// stored index or bundle records. Quarantined routes carry the
    /// open-failure reason instead, so a planner can *name* what it
    /// could not serve rather than silently returning less.
    pub fn shard_routes(&self) -> Vec<ShardRoute> {
        let mut out = Vec::with_capacity(self.routes.len());
        for (id, file) in &self.routes {
            let status = if let Some(reason) = self.quarantined.get(file) {
                RouteStatus::Quarantined {
                    reason: reason.clone(),
                }
            } else {
                let clips = match self.shards.get(file) {
                    Some(shard) => {
                        let mut clips: Vec<ClipStub> = shard
                            .list_clips()
                            .iter()
                            // A shard file can serve several routes; a
                            // route's clips are the ones bucketed to it.
                            .filter(|m| ShardId::for_meta(m, self.bucket_secs) == *id)
                            .map(|m| ClipStub {
                                clip_id: m.clip_id,
                                camera: m.camera.clone(),
                                start_time: m.start_time,
                                frame_count: m.frame_count,
                            })
                            .collect();
                        clips.sort_unstable_by_key(|c| c.clip_id);
                        clips
                    }
                    // Routed but missing on disk (manifest ahead of the
                    // file): report as degraded, not silently empty.
                    None => {
                        out.push(ShardRoute {
                            camera: id.camera.clone(),
                            bucket: id.bucket,
                            file: file.clone(),
                            status: RouteStatus::Quarantined {
                                reason: "routed shard file missing".into(),
                            },
                        });
                        continue;
                    }
                };
                RouteStatus::Healthy { clips }
            };
            out.push(ShardRoute {
                camera: id.camera.clone(),
                bucket: id.bucket,
                file: file.clone(),
                status,
            });
        }
        out
    }
}

/// One manifest route as seen by the query planner: the `(camera,
/// bucket)` key, the shard file it maps to, and either the route's clip
/// stubs (healthy) or the reason it cannot be served (quarantined).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRoute {
    /// Camera the route covers.
    pub camera: String,
    /// Time bucket (`start_time / bucket_secs`) the route covers.
    pub bucket: u64,
    /// Shard file name.
    pub file: String,
    /// Whether the route can be served.
    pub status: RouteStatus,
}

/// Serveability of one [`ShardRoute`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteStatus {
    /// The shard is open; these are the clips bucketed to this route.
    Healthy {
        /// Per-clip metadata stubs, ascending clip id.
        clips: Vec<ClipStub>,
    },
    /// The shard could not be opened (or is missing); `reason` is the
    /// quarantine cause.
    Quarantined {
        /// Why the shard is unavailable.
        reason: String,
    },
}

/// The slice of [`ClipMeta`] a planner needs to prune by camera and
/// time without opening any stored records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClipStub {
    /// Clip id.
    pub clip_id: u64,
    /// Camera name.
    pub camera: String,
    /// Capture start, seconds since epoch.
    pub start_time: u64,
    /// Number of frames in the clip.
    pub frame_count: u32,
}

/// A database handle that is either a single-file [`VideoDb`] or a
/// sharded directory, so the CLI and the retrieval service open both
/// through one path. Old single-file archives keep working unchanged;
/// a directory is served shard-aware.
pub enum AnyDb {
    /// One single-file database (the PR-3 format, unchanged).
    Single(VideoDb),
    /// A sharded directory.
    Sharded(ShardedDb),
}

impl AnyDb {
    /// Opens `path` as a sharded directory if it is one, else as a
    /// single-file database (creating the file if absent — exactly the
    /// old behaviour).
    pub fn open(path: &Path) -> Result<AnyDb> {
        if ShardedDb::is_sharded_path(path) {
            Ok(AnyDb::Sharded(ShardedDb::open(path)?))
        } else {
            Ok(AnyDb::Single(VideoDb::open(path)?))
        }
    }

    /// The single `VideoDb` that owns `clip_id`: the whole database
    /// when unsharded, the routed shard otherwise. This is how
    /// clip-scoped callers (index build, retrieval sessions) reuse the
    /// unsharded code paths verbatim.
    pub fn db_for_clip_mut(&mut self, clip_id: u64) -> Result<&mut VideoDb> {
        match self {
            AnyDb::Single(db) => Ok(db),
            AnyDb::Sharded(db) => db.routed_shard(clip_id),
        }
    }

    /// Stores a clip bundle (routed by shard key when sharded).
    pub fn put_clip(&mut self, bundle: &ClipBundle) -> Result<()> {
        match self {
            AnyDb::Single(db) => db.put_clip(bundle),
            AnyDb::Sharded(db) => db.put_clip(bundle),
        }
    }

    /// Loads a clip bundle.
    pub fn load_clip(&mut self, clip_id: u64) -> Result<Arc<ClipBundle>> {
        match self {
            AnyDb::Single(db) => db.load_clip(clip_id),
            AnyDb::Sharded(db) => db.load_clip(clip_id),
        }
    }

    /// Loads the freshest index segment for a clip, if any.
    pub fn load_index(&mut self, clip_id: u64) -> Result<Option<IndexSegment>> {
        match self {
            AnyDb::Single(db) => db.load_index(clip_id),
            AnyDb::Sharded(db) => db.load_index(clip_id),
        }
    }

    /// Persists a retrieval session.
    pub fn put_session(&mut self, session: &SessionRow) -> Result<()> {
        match self {
            AnyDb::Single(db) => db.put_session(session),
            AnyDb::Sharded(db) => db.put_session(session),
        }
    }

    /// Every session recorded against a clip.
    pub fn sessions_for_clip(&mut self, clip_id: u64) -> Result<Vec<SessionRow>> {
        match self {
            AnyDb::Single(db) => db.sessions_for_clip(clip_id),
            AnyDb::Sharded(db) => db.sessions_for_clip(clip_id),
        }
    }

    /// Number of stored sessions.
    pub fn session_count(&self) -> usize {
        match self {
            AnyDb::Single(db) => db.session_count(),
            AnyDb::Sharded(db) => db.session_count(),
        }
    }

    /// Highest stored session id (`0` when none).
    pub fn max_session_id(&self) -> u64 {
        match self {
            AnyDb::Single(db) => db.max_session_id(),
            AnyDb::Sharded(db) => db.max_session_id(),
        }
    }

    /// `(session_id, clip_id)` of every stored session record.
    pub fn session_index(&self) -> Vec<(u64, u64)> {
        match self {
            AnyDb::Single(db) => db.session_index(),
            AnyDb::Sharded(db) => db.session_index(),
        }
    }

    /// Metadata of one clip.
    pub fn meta(&self, clip_id: u64) -> Option<&ClipMeta> {
        match self {
            AnyDb::Single(db) => db.meta(clip_id),
            AnyDb::Sharded(db) => db.meta(clip_id),
        }
    }

    /// All clips, ordered by id.
    pub fn list_clips(&self) -> Vec<&ClipMeta> {
        match self {
            AnyDb::Single(db) => db.list_clips(),
            AnyDb::Sharded(db) => db.list_clips(),
        }
    }

    /// Number of stored clips.
    pub fn clip_count(&self) -> usize {
        match self {
            AnyDb::Single(db) => db.clip_count(),
            AnyDb::Sharded(db) => db.clip_count(),
        }
    }

    /// Durability point: flush and fsync everything.
    pub fn sync(&mut self) -> Result<()> {
        match self {
            AnyDb::Single(db) => db.sync(),
            AnyDb::Sharded(db) => db.sync(),
        }
    }

    /// Verifies every record, per shard: single-file databases report
    /// as one pseudo-shard named `"-"`.
    pub fn verify(&mut self) -> Result<Vec<(String, VerifyReport)>> {
        match self {
            AnyDb::Single(db) => Ok(vec![("-".to_string(), db.verify()?)]),
            AnyDb::Sharded(db) => db.verify(),
        }
    }

    /// Compacts the database (each shard independently when sharded).
    pub fn compact(&mut self) -> Result<()> {
        match self {
            AnyDb::Single(db) => db.compact(),
            AnyDb::Sharded(db) => db.compact(),
        }
    }

    /// Total log bytes.
    pub fn log_size(&self) -> u64 {
        match self {
            AnyDb::Single(db) => db.log_size(),
            AnyDb::Sharded(db) => db.log_size(),
        }
    }

    /// Total stored index segments.
    pub fn index_count(&self) -> usize {
        match self {
            AnyDb::Single(db) => db.index_count(),
            AnyDb::Sharded(db) => db.index_count(),
        }
    }

    /// Damage observed so far (aggregated over shards when sharded).
    pub fn fault_report(&self) -> FaultReport {
        match self {
            AnyDb::Single(db) => db.fault_report(),
            AnyDb::Sharded(db) => db.fault_report(),
        }
    }

    /// Quarantined shards as `(file, reason)`; empty when unsharded.
    pub fn quarantined_shards(&self) -> Vec<(String, String)> {
        match self {
            AnyDb::Single(_) => Vec::new(),
            AnyDb::Sharded(db) => db.quarantined_shards(),
        }
    }

    /// The shard file holding `clip_id`; `None` for a single-file
    /// database (everything is one "shard") or an unknown clip.
    pub fn shard_of_clip(&self, clip_id: u64) -> Option<&str> {
        match self {
            AnyDb::Single(_) => None,
            AnyDb::Sharded(db) => db.shard_of_clip(clip_id),
        }
    }

    /// The manifest routing table with its bucket width, for shard
    /// pruning (see [`ShardedDb::shard_routes`]); `None` for a
    /// single-file database, which has no manifest to prune against.
    pub fn shard_routes(&self) -> Option<(u64, Vec<ShardRoute>)> {
        match self {
            AnyDb::Single(_) => None,
            AnyDb::Sharded(db) => Some((db.bucket_secs(), db.shard_routes())),
        }
    }
}

impl From<VideoDb> for AnyDb {
    fn from(db: VideoDb) -> AnyDb {
        AnyDb::Single(db)
    }
}

impl From<ShardedDb> for AnyDb {
    fn from(db: ShardedDb) -> AnyDb {
        AnyDb::Sharded(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::test_fixtures::sample_bundle;

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tsvr-shard-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    /// A bundle whose shard key we control.
    fn bundle_at(clip_id: u64, camera: &str, start_time: u64) -> ClipBundle {
        let mut b = sample_bundle(clip_id);
        b.meta.camera = camera.to_string();
        b.meta.start_time = start_time;
        b
    }

    #[test]
    fn routes_by_camera_and_time_bucket() {
        let dir = temp_dir("routing");
        let mut db = ShardedDb::open_with_bucket(&dir, 3600).unwrap();
        db.put_clip(&bundle_at(1, "cam-a", 0)).unwrap();
        db.put_clip(&bundle_at(2, "cam-a", 100)).unwrap(); // same bucket
        db.put_clip(&bundle_at(3, "cam-a", 3600)).unwrap(); // next bucket
        db.put_clip(&bundle_at(4, "cam-b", 0)).unwrap(); // other camera
        assert_eq!(db.shard_count(), 3);
        assert_eq!(db.clip_count(), 4);
        // Same-cell clips share a shard file.
        let infos = db.shard_infos();
        let two_clip_shards: Vec<_> = infos.iter().filter(|i| i.clips == 2).collect();
        assert_eq!(two_clip_shards.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_round_trips_clips_sessions_and_indexes() {
        let dir = temp_dir("reopen");
        {
            let mut db = ShardedDb::open(&dir).unwrap();
            db.put_clip(&bundle_at(1, "cam-a", 0)).unwrap();
            db.put_clip(&bundle_at(2, "cam-b", 7200)).unwrap();
            db.put_session(&SessionRow {
                session_id: 9,
                clip_id: 2,
                query: "accident".into(),
                learner: "knn".into(),
                feedback: vec![vec![(0, true)]],
                accuracies: vec![0.5],
            })
            .unwrap();
            db.sync().unwrap();
        }
        let mut db = ShardedDb::open(&dir).unwrap();
        assert_eq!(db.clip_count(), 2);
        assert_eq!(db.load_clip(1).unwrap().meta.camera, "cam-a");
        assert_eq!(db.max_session_id(), 9);
        let sessions = db.sessions_for_clip(2).unwrap();
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].query, "accident");
        assert_eq!(db.list_clips().iter().map(|m| m.clip_id).collect::<Vec<_>>(), vec![1, 2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_clip_rejected_across_shards() {
        let dir = temp_dir("dup");
        let mut db = ShardedDb::open(&dir).unwrap();
        db.put_clip(&bundle_at(1, "cam-a", 0)).unwrap();
        // Same id, different shard key: still a duplicate.
        assert!(matches!(
            db.put_clip(&bundle_at(1, "cam-b", 99_999)).unwrap_err(),
            DbError::DuplicateClip(1)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_shard_file_recreated_on_open() {
        // Crash model: route record synced, shard file never created
        // (or lost). Open must self-heal: the route resolves to an
        // empty shard, everything else serves normally.
        let dir = temp_dir("missing-file");
        let victim;
        {
            let mut db = ShardedDb::open(&dir).unwrap();
            db.put_clip(&bundle_at(1, "cam-a", 0)).unwrap();
            db.put_clip(&bundle_at(2, "cam-b", 0)).unwrap();
            db.sync().unwrap();
            victim = ShardId::for_meta(&bundle_at(2, "cam-b", 0).meta, db.bucket_secs()).file_name();
        }
        std::fs::remove_file(dir.join(&victim)).unwrap();
        let mut db = ShardedDb::open(&dir).unwrap();
        assert_eq!(db.quarantined_shards().len(), 0);
        assert_eq!(db.clip_count(), 1);
        assert_eq!(db.load_clip(1).unwrap().meta.clip_id, 1);
        // The healed cell accepts writes again.
        db.put_clip(&bundle_at(3, "cam-b", 0)).unwrap();
        assert_eq!(db.clip_count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_shard_quarantined_others_serve() {
        let dir = temp_dir("quarantine");
        let victim;
        {
            let mut db = ShardedDb::open(&dir).unwrap();
            db.put_clip(&bundle_at(1, "cam-a", 0)).unwrap();
            db.put_clip(&bundle_at(2, "cam-b", 0)).unwrap();
            db.sync().unwrap();
            victim = ShardId::for_meta(&bundle_at(2, "cam-b", 0).meta, db.bucket_secs()).file_name();
        }
        // Destroy the victim's file header so VideoDb::open refuses it.
        std::fs::write(dir.join(&victim), b"NOTADB!!").unwrap();
        let before = tsvr_obs::counter!("viddb.shard.quarantined").get();
        let mut db = ShardedDb::open(&dir).unwrap();
        assert!(tsvr_obs::counter!("viddb.shard.quarantined").get() > before);
        assert_eq!(db.quarantined_shards().len(), 1);
        assert_eq!(db.quarantined_shards()[0].0, victim);
        // Surviving shard serves reads and queries.
        assert_eq!(db.clip_count(), 1);
        assert_eq!(db.load_clip(1).unwrap().meta.clip_id, 1);
        assert_eq!(db.list_clips().len(), 1);
        // Routing a write into the quarantined cell fails typed.
        assert!(matches!(
            db.put_clip(&bundle_at(3, "cam-b", 0)).unwrap_err(),
            DbError::ShardUnavailable { .. }
        ));
        // The damaged clip is simply unknown (not served corrupt).
        assert!(matches!(db.load_clip(2).unwrap_err(), DbError::ClipNotFound(2)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphan_shard_files_adopted_when_manifest_lost() {
        let dir = temp_dir("orphans");
        {
            let mut db = ShardedDb::open(&dir).unwrap();
            db.put_clip(&bundle_at(1, "cam-a", 0)).unwrap();
            db.put_clip(&bundle_at(2, "cam-b", 7200)).unwrap();
            db.sync().unwrap();
        }
        // Lose the manifest entirely (worst-case manifest damage).
        std::fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();
        let mut db = ShardedDb::open(&dir).unwrap();
        assert_eq!(db.clip_count(), 2);
        assert_eq!(db.load_clip(2).unwrap().meta.camera, "cam-b");
        // Adoption re-wrote routes: a third open finds them directly.
        drop(db);
        let db = ShardedDb::open(&dir).unwrap();
        assert_eq!(db.clip_count(), 2);
        assert_eq!(db.shard_count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn per_shard_compact_and_verify() {
        let dir = temp_dir("compact");
        let mut db = ShardedDb::open(&dir).unwrap();
        for id in 1..=4u64 {
            db.put_clip(&bundle_at(id, if id % 2 == 0 { "cam-a" } else { "cam-b" }, 0)).unwrap();
        }
        db.delete_clip(3).unwrap();
        let before = db.log_size();
        db.compact().unwrap();
        assert!(db.log_size() < before);
        assert_eq!(db.clip_count(), 3);
        let reports = db.verify().unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|(_, r)| r.is_clean()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bucket_width_pinned_by_manifest() {
        let dir = temp_dir("bucket-pin");
        {
            let _db = ShardedDb::open_with_bucket(&dir, 60).unwrap();
        }
        // A different requested width is ignored on reopen: the stored
        // config wins, so routing never changes under existing data.
        let db = ShardedDb::open_with_bucket(&dir, 3600).unwrap();
        assert_eq!(db.bucket_secs(), 60);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn anydb_opens_file_as_single_and_dir_as_sharded() {
        let dir = temp_dir("anydb");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("single.db");
        {
            let mut db = AnyDb::open(&file).unwrap();
            assert!(matches!(db, AnyDb::Single(_)));
            db.put_clip(&bundle_at(1, "cam-a", 0)).unwrap();
            db.sync().unwrap();
        }
        // The same file reopens as single — old archives unchanged.
        let mut db = AnyDb::open(&file).unwrap();
        assert!(matches!(db, AnyDb::Single(_)));
        assert_eq!(db.load_clip(1).unwrap().meta.clip_id, 1);

        let shard_dir = dir.join("sharded");
        std::fs::create_dir_all(&shard_dir).unwrap();
        let mut db = AnyDb::open(&shard_dir).unwrap();
        assert!(matches!(db, AnyDb::Sharded(_)));
        db.put_clip(&bundle_at(1, "cam-a", 0)).unwrap();
        assert_eq!(db.db_for_clip_mut(1).unwrap().clip_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_routes_expose_manifest_with_clip_stubs_and_quarantine() {
        let dir = temp_dir("routes");
        let victim;
        {
            let mut db = ShardedDb::open_with_bucket(&dir, 3600).unwrap();
            db.put_clip(&bundle_at(1, "cam-a", 0)).unwrap();
            db.put_clip(&bundle_at(2, "cam-a", 100)).unwrap(); // same route
            db.put_clip(&bundle_at(3, "cam-b", 7200)).unwrap();
            db.sync().unwrap();
            victim =
                ShardId::for_meta(&bundle_at(3, "cam-b", 7200).meta, db.bucket_secs()).file_name();
        }
        std::fs::write(dir.join(&victim), b"NOTADB!!").unwrap();
        let db = ShardedDb::open(&dir).unwrap();
        let routes = db.shard_routes();
        assert_eq!(routes.len(), 2);
        let cam_a = routes
            .iter()
            .find(|r| r.camera == "cam-a")
            .expect("cam-a route");
        assert_eq!(cam_a.bucket, 0);
        match &cam_a.status {
            RouteStatus::Healthy { clips } => {
                assert_eq!(
                    clips.iter().map(|c| c.clip_id).collect::<Vec<_>>(),
                    vec![1, 2]
                );
                assert_eq!(clips[0].camera, "cam-a");
                assert_eq!(clips[0].start_time, 0);
                assert_eq!(clips[0].frame_count, 400);
            }
            other => panic!("cam-a should be healthy, got {other:?}"),
        }
        let cam_b = routes
            .iter()
            .find(|r| r.camera == "cam-b")
            .expect("cam-b route");
        assert_eq!((cam_b.bucket, cam_b.file.as_str()), (2, victim.as_str()));
        assert!(matches!(&cam_b.status, RouteStatus::Quarantined { .. }));
        // The AnyDb wrapper exposes the same view (None for single-file).
        let any: AnyDb = db.into();
        let (bucket_secs, routes) = any.shard_routes().expect("sharded");
        assert_eq!(bucket_secs, 3600);
        assert_eq!(routes.len(), 2);
        let single: AnyDb = VideoDb::in_memory().into();
        assert!(single.shard_routes().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
