//! Video frame storage: lossy-quantized, temporally-delta-coded,
//! run-length-compressed grayscale frames.
//!
//! The retrieval pipeline works on derived records, but the database is
//! a *video* database (§1) — an analyst reviewing a retrieved Video
//! Sequence needs the pixels back. Surveillance archival is classically
//! lossy: this codec quantizes intensities (default 32 levels, which
//! also swallows sensor noise), codes each frame as a wrapping delta
//! against the previous frame of its segment, and run-length-encodes
//! the result. Static scenes — the normal case for a fixed camera —
//! compress by an order of magnitude.

use crate::codec::{Reader, Writer, MAX_LEN};
use crate::error::{DbError, Result};

/// One stored grayscale frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredFrame {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Row-major pixels.
    pub pixels: Vec<u8>,
}

impl StoredFrame {
    /// Creates a frame, checking dimensions.
    pub fn new(width: u32, height: u32, pixels: Vec<u8>) -> Result<StoredFrame> {
        // Widen before multiplying: u32 dimensions from corrupt data
        // would overflow (and panic in debug) in u32 arithmetic.
        if pixels.len() as u64 != width as u64 * height as u64 {
            return Err(DbError::LengthOutOfBounds(pixels.len() as u64));
        }
        Ok(StoredFrame {
            width,
            height,
            pixels,
        })
    }
}

/// Frame codec parameters.
#[derive(Debug, Clone, Copy)]
pub struct FrameCodec {
    /// Quantization step in gray levels (1 = lossless-quantization,
    /// 8 = 32 levels). Larger steps compress better and lose more.
    pub quant_step: u8,
}

impl Default for FrameCodec {
    fn default() -> Self {
        FrameCodec { quant_step: 8 }
    }
}

impl FrameCodec {
    /// Quantizes a pixel to its level index.
    #[inline]
    fn quantize(&self, v: u8) -> u8 {
        v / self.quant_step.max(1)
    }

    /// Reconstructs a pixel from its level index (mid-rise).
    #[inline]
    fn dequantize(&self, q: u8) -> u8 {
        let s = self.quant_step.max(1) as u16;
        (q as u16 * s + s / 2).min(255) as u8
    }

    /// The reconstruction of `v` after a quantize/dequantize round trip
    /// (what [`FrameCodec::decode_segment`] will return for it).
    pub fn reconstruct(&self, v: u8) -> u8 {
        self.dequantize(self.quantize(v))
    }

    /// Encodes a segment of frames (all with identical dimensions).
    /// The first frame is coded directly, the rest as wrapping deltas
    /// against their predecessor; everything is then RLE-packed.
    pub fn encode_segment(&self, frames: &[StoredFrame]) -> Result<Vec<u8>> {
        let Some(first) = frames.first() else {
            return Err(DbError::UnexpectedEof { context: "frames" });
        };
        for f in frames {
            if f.width != first.width || f.height != first.height {
                return Err(DbError::LengthOutOfBounds(f.pixels.len() as u64));
            }
        }
        let mut w = Writer::new();
        w.put_u8(self.quant_step);
        w.put_u32(first.width);
        w.put_u32(first.height);
        w.put_len(frames.len(), "frame segment")?;

        let mut prev: Vec<u8> = Vec::new();
        let mut stream: Vec<u8> = Vec::with_capacity(first.pixels.len());
        for (i, f) in frames.iter().enumerate() {
            let q: Vec<u8> = f.pixels.iter().map(|&p| self.quantize(p)).collect();
            if i == 0 {
                stream.extend_from_slice(&q);
            } else {
                stream.extend(q.iter().zip(&prev).map(|(&a, &b)| a.wrapping_sub(b)));
            }
            prev = q;
        }
        w.put_bytes(&rle_compress(&stream))?;
        Ok(w.into_bytes())
    }

    /// Decodes a segment produced by [`FrameCodec::encode_segment`].
    pub fn decode_segment(payload: &[u8]) -> Result<Vec<StoredFrame>> {
        let mut r = Reader::new(payload);
        let quant_step = r.get_u8()?;
        let codec = FrameCodec { quant_step };
        let width = r.get_u32()?;
        let height = r.get_u32()?;
        let count = r.get_len()?;
        // Widen before multiplying: corrupt dimensions would overflow
        // u32 (a debug-build panic) and a huge product must be rejected
        // before it sizes any allocation.
        let per_frame_u64 = width as u64 * height as u64;
        let total_u64 = per_frame_u64.saturating_mul(count as u64);
        if per_frame_u64 > MAX_LEN || total_u64 > MAX_LEN {
            return Err(DbError::LengthOutOfBounds(total_u64));
        }
        let per_frame = per_frame_u64 as usize;
        let stream = rle_decompress(r.get_bytes()?);
        if stream.len() as u64 != total_u64 {
            return Err(DbError::UnexpectedEof {
                context: "frame stream",
            });
        }
        let mut out = Vec::with_capacity(count);
        let mut prev: Vec<u8> = Vec::new();
        for i in 0..count {
            let chunk = &stream[i * per_frame..(i + 1) * per_frame];
            let q: Vec<u8> = if i == 0 {
                chunk.to_vec()
            } else {
                chunk
                    .iter()
                    .zip(&prev)
                    .map(|(&d, &p)| d.wrapping_add(p))
                    .collect()
            };
            let pixels = q.iter().map(|&v| codec.dequantize(v)).collect();
            prev = q;
            out.push(StoredFrame {
                width,
                height,
                pixels,
            });
        }
        Ok(out)
    }
}

/// Byte-level run-length encoding: `(count, value)` pairs with count in
/// 1..=255.
pub fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 8);
    let mut i = 0;
    while i < data.len() {
        let v = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == v && run < 255 {
            run += 1;
        }
        out.push(run as u8);
        out.push(v);
        i += run;
    }
    out
}

/// Inverse of [`rle_compress`]. Trailing odd bytes are ignored.
pub fn rle_decompress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 4);
    for pair in data.chunks_exact(2) {
        out.extend(std::iter::repeat_n(pair[1], pair[0] as usize));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(width: u32, height: u32, f: impl Fn(u32, u32) -> u8) -> StoredFrame {
        let mut pixels = Vec::with_capacity((width * height) as usize);
        for y in 0..height {
            for x in 0..width {
                pixels.push(f(x, y));
            }
        }
        StoredFrame {
            width,
            height,
            pixels,
        }
    }

    #[test]
    fn rle_round_trip() {
        let data = b"aaaabbbcddddddddddddddddddddddddddd";
        let c = rle_compress(data);
        assert_eq!(rle_decompress(&c), data);
        assert!(c.len() < data.len());
        assert!(rle_compress(&[]).is_empty());
        assert!(rle_decompress(&[]).is_empty());
    }

    #[test]
    fn rle_handles_long_runs() {
        let data = vec![7u8; 1000];
        let c = rle_compress(&data);
        assert_eq!(rle_decompress(&c), data);
        // ceil(1000/255) pairs.
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn rle_worst_case_alternating() {
        let data: Vec<u8> = (0..100).map(|i| (i % 2) as u8).collect();
        let c = rle_compress(&data);
        assert_eq!(rle_decompress(&c), data);
        assert_eq!(c.len(), 200); // 2 bytes per 1-run
    }

    #[test]
    fn segment_round_trip_is_quantized_identity() {
        let codec = FrameCodec { quant_step: 8 };
        let frames: Vec<StoredFrame> = (0..5)
            .map(|i| frame(16, 12, |x, y| ((x * 7 + y * 3 + i * 2) % 256) as u8))
            .collect();
        let payload = codec.encode_segment(&frames).unwrap();
        let decoded = FrameCodec::decode_segment(&payload).unwrap();
        assert_eq!(decoded.len(), frames.len());
        for (d, f) in decoded.iter().zip(&frames) {
            assert_eq!(d.width, 16);
            assert_eq!(d.height, 12);
            for (&got, &want) in d.pixels.iter().zip(&f.pixels) {
                assert_eq!(got, codec.reconstruct(want));
                // Reconstruction error bounded by the quantization step.
                assert!((got as i16 - want as i16).unsigned_abs() <= 8);
            }
        }
    }

    #[test]
    fn lossless_quantization_step_one() {
        let codec = FrameCodec { quant_step: 1 };
        let frames = vec![frame(8, 8, |x, y| (x * y % 251) as u8)];
        let payload = codec.encode_segment(&frames).unwrap();
        let decoded = FrameCodec::decode_segment(&payload).unwrap();
        assert_eq!(decoded[0].pixels, frames[0].pixels);
    }

    #[test]
    fn static_scene_compresses_well() {
        let codec = FrameCodec::default();
        // 30 identical frames of a structured background.
        let base = frame(64, 48, |x, y| if y < 20 { 45 } else { 90 + (x % 3) as u8 });
        let frames = vec![base; 30];
        let raw_size = 64 * 48 * 30;
        let payload = codec.encode_segment(&frames).unwrap();
        assert!(
            payload.len() * 10 < raw_size,
            "compressed {} of {raw_size}",
            payload.len()
        );
    }

    #[test]
    fn moving_object_still_compresses() {
        let codec = FrameCodec::default();
        let frames: Vec<StoredFrame> = (0..20)
            .map(|i| {
                frame(64, 48, move |x, y| {
                    // Background 90 with a bright 8x6 block sliding right.
                    let bx = i * 3;
                    if x >= bx && x < bx + 8 && (20..26).contains(&y) {
                        180
                    } else {
                        90
                    }
                })
            })
            .collect();
        let raw_size = 64 * 48 * 20;
        let payload = codec.encode_segment(&frames).unwrap();
        assert!(
            payload.len() * 4 < raw_size,
            "compressed {} of {raw_size}",
            payload.len()
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let codec = FrameCodec::default();
        let frames = vec![frame(8, 8, |_, _| 0), frame(8, 9, |_, _| 0)];
        assert!(codec.encode_segment(&frames).is_err());
        assert!(codec.encode_segment(&[]).is_err());
    }

    #[test]
    fn corrupt_payload_fails_cleanly() {
        let codec = FrameCodec::default();
        let frames = vec![frame(8, 8, |x, _| x as u8)];
        let mut payload = codec.encode_segment(&frames).unwrap();
        payload.truncate(payload.len() / 2);
        assert!(FrameCodec::decode_segment(&payload).is_err());
    }

    #[test]
    fn stored_frame_validates_size() {
        assert!(StoredFrame::new(4, 4, vec![0; 16]).is_ok());
        assert!(StoredFrame::new(4, 4, vec![0; 15]).is_err());
        // Dimensions whose product overflows u32 must error, not panic.
        assert!(StoredFrame::new(u32::MAX, u32::MAX, vec![0; 4]).is_err());
    }

    #[test]
    fn corrupt_dimensions_rejected_without_panic() {
        // Hand-craft a payload with overflowing width × height.
        let mut w = Writer::new();
        w.put_u8(1); // quant
        w.put_u32(u32::MAX); // width
        w.put_u32(u32::MAX); // height
        w.put_u32(1); // count
        w.put_bytes(&[1, 0]).unwrap(); // tiny rle stream
        assert!(matches!(
            FrameCodec::decode_segment(&w.into_bytes()).unwrap_err(),
            DbError::LengthOutOfBounds(_)
        ));
    }
}
