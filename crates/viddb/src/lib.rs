//! # tsvr-viddb
//!
//! The transportation surveillance video *database* layer.
//!
//! The paper's setting (§1) is a database: "a large amount of
//! transportation surveillance videos are collected and stored in the
//! database … organized with the corresponding metadata such as the time
//! and place a video is taken", and its future-work section plans
//! per-camera normalization before "storing them into the database".
//! This crate supplies that substrate:
//!
//! * [`codec`] — a compact little-endian binary codec with CRC-32
//!   integrity (no serialization crates are available offline);
//! * [`record`] — durable record types: clip metadata (time / place /
//!   camera), vehicle tracks, extracted windows with trajectory-sequence
//!   features, ground-truth incidents, and retrieval-session history;
//! * [`storage`] — pluggable byte-storage backends: memory, file, and
//!   a seeded fault injector for crash-consistency testing;
//! * [`log`] — an append-only, checksummed record log with torn-write
//!   recovery, mid-log corruption quarantine, bounded retry, and an
//!   explicit `sync` durability point, over any [`storage`] backend;
//! * [`frames`] — lossy-quantized, delta-coded, RLE-compressed video
//!   frame segments, so retrieved Video Sequences can be played back;
//! * [`cache`] — an LRU buffer cache for decoded clip bundles;
//! * [`compress`] — XOR-delta + bit-packed compression for the flat
//!   f64 feature rows of index segments (per-chunk raw fallback, bit-
//!   exact round trip);
//! * [`db`] — [`db::VideoDb`]: the log + in-memory catalog + cache, with
//!   metadata queries (by location, camera, time range) and session
//!   persistence;
//! * [`shard`] — [`shard::ShardedDb`]: a directory of independently
//!   compacted per-`(camera, time-bucket)` [`db::VideoDb`] shards
//!   behind a manifest log, routing writes by shard key and degrading
//!   per shard on damage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod codec;
pub mod compress;
pub mod db;
pub mod error;
pub mod frames;
pub mod log;
pub mod record;
pub mod shard;
pub mod storage;

pub use cache::CacheStats;
pub use db::{FaultReport, QuarantineEntry, VerifyReport, VideoDb};
pub use error::DbError;
pub use frames::{FrameCodec, StoredFrame};
pub use log::{CorruptRegion, RecoveryReport};
pub use record::{
    ClipBundle, ClipMeta, IncidentRow, IndexSegment, IndexWindowRow, SequenceRow, SessionRow,
    TrackRow, WindowRow, INDEX_COMPRESSED_VERSION, INDEX_FORMAT_VERSION, INDEX_MAGIC,
};
pub use shard::{
    AnyDb, ClipStub, RouteStatus, ShardId, ShardInfo, ShardRoute, ShardedDb,
    DEFAULT_TIME_BUCKET_SECS, MANIFEST_FILE,
};
pub use storage::{FaultHandle, FaultKind, FaultyStorage, FileStorage, MemStorage, OpKind, Storage};
