//! Pluggable storage backends for the record log.
//!
//! [`Log`](crate::log::Log) talks to its backing medium exclusively
//! through the [`Storage`] trait — a minimal append-only surface
//! (`read_at` / `append` / `flush` / `sync` / `len` / `truncate`).
//! Three implementations ship with the crate:
//!
//! * [`MemStorage`] — a plain `Vec<u8>`, for ephemeral databases and
//!   tests;
//! * [`FileStorage`] — a real file, for durable databases;
//! * [`FaultyStorage`] — a deterministic fault injector around an
//!   in-memory image, driven by a seeded schedule of [`FaultKind`]s.
//!   This is the crash-consistency test surface: it can return
//!   transient errors, serve short reads, tear appends, fail syncs,
//!   flip stored bits, and simulate a power-loss crash whose surviving
//!   disk image ([`FaultHandle::crash_image`]) keeps every synced byte
//!   but only a seeded prefix of unsynced writes.
//!
//! Short reads and short writes are part of the trait contract (exactly
//! like POSIX `read(2)`/`write(2)`): callers must loop. `sync` is the
//! durability point — after it returns `Ok`, everything appended so far
//! must survive a crash.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use tsvr_sim::Pcg32;

/// Byte-level storage for an append-only log.
///
/// `Send` is a supertrait so a [`VideoDb`](crate::VideoDb) can sit
/// behind a mutex shared across a server's worker threads; all shipped
/// backends are plain owned data (or `Arc`-shared in the fault
/// injector's case) and satisfy it for free.
#[allow(clippy::len_without_is_empty)]
pub trait Storage: std::fmt::Debug + Send {
    /// Reads up to `buf.len()` bytes at `offset`, returning how many
    /// were read (`0` means end of storage). Short reads are allowed.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize>;
    /// Appends up to `data.len()` bytes at the end of the storage,
    /// returning how many were written. Short writes are allowed.
    fn append(&mut self, data: &[u8]) -> io::Result<usize>;
    /// Pushes buffered writes down to the backing medium.
    fn flush(&mut self) -> io::Result<()>;
    /// Durability point: after `Ok`, every appended byte survives a
    /// crash.
    fn sync(&mut self) -> io::Result<()>;
    /// Current size in bytes.
    fn len(&mut self) -> io::Result<u64>;
    /// Shrinks the storage to `len` bytes (no-op if already smaller).
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

/// In-memory storage: a growable byte buffer. Infallible.
#[derive(Debug, Default)]
pub struct MemStorage {
    data: Vec<u8>,
}

impl MemStorage {
    /// Creates empty storage.
    pub fn new() -> MemStorage {
        MemStorage::default()
    }

    /// Wraps an existing byte image (e.g. a post-crash disk image).
    pub fn from_bytes(data: Vec<u8>) -> MemStorage {
        MemStorage { data }
    }

    /// Consumes the storage, returning its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.data
    }
}

impl Storage for MemStorage {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let len = self.data.len() as u64;
        if offset >= len {
            return Ok(0);
        }
        let start = offset as usize;
        let n = buf.len().min(self.data.len() - start);
        buf[..n].copy_from_slice(&self.data[start..start + n]);
        Ok(n)
    }

    fn append(&mut self, data: &[u8]) -> io::Result<usize> {
        self.data.extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.data.len() as u64)
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        if (len as usize) < self.data.len() {
            self.data.truncate(len as usize);
        }
        Ok(())
    }
}

/// File-backed storage. `sync` maps to `File::sync_all`.
#[derive(Debug)]
pub struct FileStorage {
    file: File,
}

impl FileStorage {
    /// Opens (or creates) the file at `path`.
    pub fn open(path: &Path) -> io::Result<FileStorage> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(FileStorage { file })
    }
}

impl Storage for FileStorage {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read(buf)
    }

    fn append(&mut self, data: &[u8]) -> io::Result<usize> {
        self.file.seek(SeekFrom::End(0))?;
        self.file.write(data)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }
}

/// A fault to inject at a scheduled operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// One-shot `ErrorKind::Interrupted` error; a retry succeeds.
    TransientIo,
    /// A read serves at most half the requested bytes.
    ShortRead,
    /// An append accepts only a prefix of the data (caller must loop).
    ShortWrite,
    /// An append writes a seeded prefix of the data, then errors —
    /// leaving a torn record unless the caller rolls it back.
    TornAppend,
    /// `sync` fails without making anything durable.
    SyncFail,
    /// A seeded bit of the stored image flips (bit rot); the operation
    /// itself then proceeds normally.
    BitFlip,
    /// Simulated power loss: if the operation is an append, a seeded
    /// prefix may land first; every operation from here on fails.
    Crash,
}

/// The kind of storage operation, as recorded in the fault trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `read_at`
    Read,
    /// `append`
    Append,
    /// `flush`
    Flush,
    /// `sync`
    Sync,
    /// `truncate`
    Truncate,
}

#[derive(Debug)]
struct FaultInner {
    data: Vec<u8>,
    synced_len: usize,
    op: u64,
    schedule: BTreeMap<u64, FaultKind>,
    rng: Pcg32,
    crashed: bool,
    trace: Vec<OpKind>,
    injected: Vec<(u64, FaultKind)>,
}

impl FaultInner {
    fn crash_err() -> io::Error {
        io::Error::other("simulated crash: storage offline")
    }

    fn transient_err() -> io::Error {
        io::Error::new(io::ErrorKind::Interrupted, "injected transient i/o error")
    }

    /// Counts the operation, records it in the trace, and returns the
    /// fault scheduled for it (if any).
    fn begin_op(&mut self, kind: OpKind) -> io::Result<Option<FaultKind>> {
        if self.crashed {
            return Err(Self::crash_err());
        }
        let idx = self.op;
        self.op += 1;
        self.trace.push(kind);
        let fault = self.schedule.remove(&idx);
        if let Some(f) = fault {
            self.injected.push((idx, f));
        }
        Ok(fault)
    }

    fn flip_random_bit(&mut self) {
        if self.data.is_empty() {
            return;
        }
        let byte = self.rng.uniform_usize(self.data.len());
        let bit = self.rng.uniform_u32(8);
        self.data[byte] ^= 1 << bit;
    }
}

/// Deterministic fault-injecting storage over an in-memory image.
///
/// Construct with [`FaultyStorage::new`], which also returns a
/// [`FaultHandle`] for scheduling faults and inspecting the image after
/// the database that owns the storage has been dropped.
#[derive(Debug)]
pub struct FaultyStorage(Arc<Mutex<FaultInner>>);

/// Shared view into a [`FaultyStorage`]: schedules faults, reads the
/// operation trace, and extracts post-crash disk images.
#[derive(Debug, Clone)]
pub struct FaultHandle(Arc<Mutex<FaultInner>>);

impl FaultyStorage {
    /// Creates empty faulty storage with a seeded RNG (the seed decides
    /// torn-prefix lengths, bit-flip positions, and crash-image cuts).
    pub fn new(seed: u64) -> (FaultyStorage, FaultHandle) {
        Self::with_image(Vec::new(), seed)
    }

    /// Wraps an existing byte image. The image counts as durable
    /// (already synced).
    pub fn with_image(data: Vec<u8>, seed: u64) -> (FaultyStorage, FaultHandle) {
        let synced_len = data.len();
        let inner = Arc::new(Mutex::new(FaultInner {
            data,
            synced_len,
            op: 0,
            schedule: BTreeMap::new(),
            rng: Pcg32::new(seed, 0xfa17),
            crashed: false,
            trace: Vec::new(),
            injected: Vec::new(),
        }));
        (FaultyStorage(Arc::clone(&inner)), FaultHandle(inner))
    }
}

impl FaultHandle {
    /// Schedules `fault` for the `op`-th storage operation (0-based;
    /// `len` calls are not counted).
    pub fn schedule(&self, op: u64, fault: FaultKind) {
        self.0.lock().unwrap().schedule.insert(op, fault);
    }

    /// Operations issued so far.
    pub fn op_count(&self) -> u64 {
        self.0.lock().unwrap().op
    }

    /// The operation kinds issued so far, in order.
    pub fn trace(&self) -> Vec<OpKind> {
        self.0.lock().unwrap().trace.clone()
    }

    /// Faults that actually fired, as `(op_index, kind)` pairs.
    pub fn injected(&self) -> Vec<(u64, FaultKind)> {
        self.0.lock().unwrap().injected.clone()
    }

    /// Whether a [`FaultKind::Crash`] has fired.
    pub fn crashed(&self) -> bool {
        self.0.lock().unwrap().crashed
    }

    /// The current full byte image (what an uncrashed disk holds).
    pub fn snapshot(&self) -> Vec<u8> {
        self.0.lock().unwrap().data.clone()
    }

    /// The post-crash disk image: every synced byte survives; the
    /// unsynced suffix is cut at a seeded point (sometimes kept whole,
    /// sometimes lost entirely — both legal outcomes of power loss).
    pub fn crash_image(&self) -> Vec<u8> {
        let mut inner = self.0.lock().unwrap();
        let len = inner.data.len();
        let synced = inner.synced_len.min(len);
        let keep = if inner.rng.chance(1.0 / 3.0) {
            len
        } else {
            synced + inner.rng.uniform_usize(len - synced + 1)
        };
        inner.data[..keep].to_vec()
    }
}

impl Storage for FaultyStorage {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let mut inner = self.0.lock().unwrap();
        let mut limit = buf.len();
        match inner.begin_op(OpKind::Read)? {
            None => {}
            Some(FaultKind::BitFlip) => inner.flip_random_bit(),
            Some(FaultKind::ShortRead) => limit = (buf.len() / 2).max(1),
            Some(FaultKind::Crash) => {
                inner.crashed = true;
                return Err(FaultInner::crash_err());
            }
            Some(_) => return Err(FaultInner::transient_err()),
        }
        let len = inner.data.len();
        if offset as usize >= len {
            return Ok(0);
        }
        let start = offset as usize;
        let n = limit.min(len - start);
        buf[..n].copy_from_slice(&inner.data[start..start + n]);
        Ok(n)
    }

    fn append(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut inner = self.0.lock().unwrap();
        match inner.begin_op(OpKind::Append)? {
            None => {
                inner.data.extend_from_slice(data);
                Ok(data.len())
            }
            Some(FaultKind::BitFlip) => {
                inner.flip_random_bit();
                inner.data.extend_from_slice(data);
                Ok(data.len())
            }
            Some(FaultKind::ShortWrite) => {
                let n = data.len().div_ceil(2);
                inner.data.extend_from_slice(&data[..n]);
                Ok(n)
            }
            Some(FaultKind::TornAppend) => {
                let n = if data.is_empty() {
                    0
                } else {
                    inner.rng.uniform_usize(data.len())
                };
                inner.data.extend_from_slice(&data[..n]);
                Err(io::Error::other("injected torn append"))
            }
            Some(FaultKind::Crash) => {
                let n = if data.is_empty() {
                    0
                } else {
                    inner.rng.uniform_usize(data.len() + 1)
                };
                inner.data.extend_from_slice(&data[..n]);
                inner.crashed = true;
                Err(FaultInner::crash_err())
            }
            Some(_) => Err(FaultInner::transient_err()),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        let mut inner = self.0.lock().unwrap();
        match inner.begin_op(OpKind::Flush)? {
            None => Ok(()),
            Some(FaultKind::BitFlip) => {
                inner.flip_random_bit();
                Ok(())
            }
            Some(FaultKind::Crash) => {
                inner.crashed = true;
                Err(FaultInner::crash_err())
            }
            Some(_) => Err(FaultInner::transient_err()),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut inner = self.0.lock().unwrap();
        match inner.begin_op(OpKind::Sync)? {
            None => {
                inner.synced_len = inner.data.len();
                Ok(())
            }
            Some(FaultKind::BitFlip) => {
                inner.flip_random_bit();
                inner.synced_len = inner.data.len();
                Ok(())
            }
            Some(FaultKind::SyncFail) => Err(io::Error::other("injected sync failure")),
            Some(FaultKind::Crash) => {
                inner.crashed = true;
                Err(FaultInner::crash_err())
            }
            Some(_) => Err(FaultInner::transient_err()),
        }
    }

    fn len(&mut self) -> io::Result<u64> {
        // `len` is a metadata query, not a counted fault point.
        let inner = self.0.lock().unwrap();
        if inner.crashed {
            return Err(FaultInner::crash_err());
        }
        Ok(inner.data.len() as u64)
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        let mut inner = self.0.lock().unwrap();
        match inner.begin_op(OpKind::Truncate)? {
            None | Some(FaultKind::BitFlip) => {
                if (len as usize) < inner.data.len() {
                    inner.data.truncate(len as usize);
                    inner.synced_len = inner.synced_len.min(len as usize);
                }
                Ok(())
            }
            Some(FaultKind::Crash) => {
                inner.crashed = true;
                Err(FaultInner::crash_err())
            }
            Some(_) => Err(FaultInner::transient_err()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_round_trip() {
        let mut s = MemStorage::new();
        assert_eq!(s.append(b"hello").unwrap(), 5);
        assert_eq!(s.len().unwrap(), 5);
        let mut buf = [0u8; 5];
        assert_eq!(s.read_at(0, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b"hello");
        // Reads past the end are short, then empty.
        assert_eq!(s.read_at(3, &mut buf).unwrap(), 2);
        assert_eq!(s.read_at(9, &mut buf).unwrap(), 0);
        s.truncate(2).unwrap();
        assert_eq!(s.len().unwrap(), 2);
        // Truncate never grows.
        s.truncate(100).unwrap();
        assert_eq!(s.len().unwrap(), 2);
        assert_eq!(MemStorage::from_bytes(vec![1, 2, 3]).into_bytes(), [1, 2, 3]);
    }

    #[test]
    fn faulty_storage_counts_ops_and_traces() {
        let (mut s, h) = FaultyStorage::new(1);
        s.append(b"abc").unwrap();
        s.flush().unwrap();
        s.sync().unwrap();
        let mut buf = [0u8; 3];
        s.read_at(0, &mut buf).unwrap();
        assert_eq!(h.op_count(), 4);
        assert_eq!(
            h.trace(),
            vec![OpKind::Append, OpKind::Flush, OpKind::Sync, OpKind::Read]
        );
        assert!(h.injected().is_empty());
    }

    #[test]
    fn transient_fault_fails_once_then_recovers() {
        let (mut s, h) = FaultyStorage::new(2);
        h.schedule(0, FaultKind::TransientIo);
        let err = s.append(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(s.append(b"x").unwrap(), 1);
        assert_eq!(h.injected(), vec![(0, FaultKind::TransientIo)]);
    }

    #[test]
    fn crash_freezes_storage_and_yields_seeded_image() {
        let (mut s, h) = FaultyStorage::new(3);
        s.append(b"durable").unwrap();
        s.sync().unwrap();
        h.schedule(2, FaultKind::Crash);
        assert!(s.append(b"lost-maybe").unwrap_err().to_string().contains("crash"));
        assert!(h.crashed());
        // Everything errors after the crash.
        assert!(s.sync().is_err());
        assert!(s.len().is_err());
        let img = h.crash_image();
        assert!(img.len() >= 7, "synced bytes lost: {}", img.len());
        assert_eq!(&img[..7], b"durable");
    }

    #[test]
    fn short_write_makes_partial_progress() {
        let (mut s, h) = FaultyStorage::new(4);
        h.schedule(0, FaultKind::ShortWrite);
        assert_eq!(s.append(b"abcd").unwrap(), 2);
        assert_eq!(s.append(b"cd").unwrap(), 2);
        assert_eq!(h.snapshot(), b"abcd");
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let (mut s, h) = FaultyStorage::new(5);
        s.append(&[0u8; 64]).unwrap();
        h.schedule(1, FaultKind::BitFlip);
        let mut buf = [0u8; 64];
        s.read_at(0, &mut buf).unwrap();
        let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "expected exactly one flipped bit");
    }
}
