//! Little-endian binary codec with CRC-32 integrity.
//!
//! The allowed dependency set has no serialization format crate, so the
//! database defines its own: fixed-width little-endian scalars,
//! length-prefixed strings and vectors, and CRC-32 (IEEE 802.3,
//! table-driven) over record payloads.

use crate::error::{DbError, Result};

/// Upper bound for any length field — catches corrupt/hostile lengths
/// before they turn into giant allocations.
pub const MAX_LEN: u64 = 1 << 30;

/// Growable byte sink for encoding.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Finishes and returns the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bits.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a collection length as a checked `u32` prefix.
    ///
    /// A length over `u32::MAX` (or the codec's `MAX_LEN` sanity bound,
    /// which decode enforces) surfaces as [`DbError::TooLarge`] instead
    /// of the silent `as u32` truncation that would corrupt the record.
    pub fn put_len(&mut self, n: usize, context: &'static str) -> Result<()> {
        match u32::try_from(n) {
            Ok(v) if (v as u64) <= MAX_LEN => {
                self.put_u32(v);
                Ok(())
            }
            _ => Err(DbError::TooLarge { context, len: n }),
        }
    }

    /// Writes raw bytes with a checked `u32` length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) -> Result<()> {
        self.put_len(v.len(), "byte slice")?;
        self.buf.extend_from_slice(v);
        Ok(())
    }

    /// Writes a UTF-8 string with a checked `u32` length prefix.
    pub fn put_str(&mut self, v: &str) -> Result<()> {
        self.put_bytes(v.as_bytes())
    }

    /// Writes a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }
}

/// Cursor over an encoded byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over a slice.
    pub fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the cursor consumed everything.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(DbError::UnexpectedEof { context });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    /// Reads an `f64`.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8, "f64")?.try_into().unwrap()))
    }

    /// Reads a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.get_u32()? as u64;
        if n > MAX_LEN {
            return Err(DbError::LengthOutOfBounds(n));
        }
        self.take(n as usize, "bytes")
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| DbError::InvalidUtf8)
    }

    /// Reads a boolean byte.
    pub fn get_bool(&mut self) -> Result<bool> {
        Ok(self.get_u8()? != 0)
    }

    /// Reads a length prefix for a collection, sanity-bounded.
    pub fn get_len(&mut self) -> Result<usize> {
        let n = self.get_u32()? as u64;
        if n > MAX_LEN {
            return Err(DbError::LengthOutOfBounds(n));
        }
        Ok(n as usize)
    }

    /// Reads a collection length prefix and additionally bounds it by
    /// the bytes actually remaining: a count of `n` elements of at
    /// least `min_elem_bytes` each cannot exceed
    /// `remaining / min_elem_bytes`. This stops a bit-flipped length
    /// field from driving a huge `Vec::with_capacity` allocation (an
    /// abort, not a catchable error) before element decoding would
    /// naturally hit EOF.
    pub fn get_len_bounded(&mut self, min_elem_bytes: usize) -> Result<usize> {
        let n = self.get_len()?;
        if n > self.remaining() / min_elem_bytes.max(1) {
            return Err(DbError::LengthOutOfBounds(n as u64));
        }
        Ok(n)
    }
}

/// CRC-32 (IEEE) lookup table, evaluated at compile time — no lazy
/// initialization (or its synchronization) on the checksum path.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB88320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3) of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(123_456);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-2.5);
        w.put_bool(true);
        w.put_bool(false);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 123_456);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap(), -2.5);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert!(r.is_exhausted());
    }

    #[test]
    fn string_and_bytes_round_trip() {
        let mut w = Writer::new();
        w.put_str("tunnel 北上").unwrap();
        w.put_bytes(&[1, 2, 3]).unwrap();
        w.put_str("").unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_str().unwrap(), "tunnel 北上");
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.get_str().unwrap(), "");
    }

    #[test]
    fn eof_detected() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(
            r.get_u32().unwrap_err(),
            DbError::UnexpectedEof { .. }
        ));
    }

    #[test]
    fn truncated_string_detected() {
        let mut w = Writer::new();
        w.put_str("hello").unwrap();
        let mut bytes = w.into_bytes();
        bytes.truncate(bytes.len() - 2);
        let mut r = Reader::new(&bytes);
        assert!(r.get_str().is_err());
    }

    #[test]
    fn invalid_utf8_detected() {
        let mut w = Writer::new();
        w.put_bytes(&[0xFF, 0xFE, 0xFD]).unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_str().unwrap_err(), DbError::InvalidUtf8));
    }

    #[test]
    fn hostile_length_rejected() {
        // Length prefix of u32::MAX with no data behind it.
        let bytes = u32::MAX.to_le_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.get_bytes().unwrap_err(),
            DbError::LengthOutOfBounds(_)
        ));
    }

    #[test]
    fn bounded_length_rejects_counts_that_cannot_fit() {
        // Count of 1000 elements ≥ 8 bytes each, but only 12 bytes follow.
        let mut w = Writer::new();
        w.put_u32(1000);
        w.put_u64(0);
        w.put_u32(0);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.get_len_bounded(8).unwrap_err(),
            DbError::LengthOutOfBounds(1000)
        ));
        // A count that fits passes.
        let mut w = Writer::new();
        w.put_u32(1);
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_len_bounded(8).unwrap(), 1);
        assert_eq!(r.get_u64().unwrap(), 42);
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vectors — these pin the const table: any change
        // to its construction that alters the polynomial or bit order
        // fails here.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn crc_table_first_entries_pinned() {
        // Spot-check the compile-time table itself against the IEEE
        // 802.3 reflected polynomial's known first entries.
        assert_eq!(CRC_TABLE[0], 0);
        assert_eq!(CRC_TABLE[1], 0x7707_3096);
        assert_eq!(CRC_TABLE[255], 0x2D02_EF8D);
    }

    #[test]
    fn oversized_length_rejected_on_encode() {
        let mut w = Writer::new();
        // One past the decode-side sanity bound must fail on encode —
        // otherwise we could write records our own reader rejects.
        let err = w.put_len((MAX_LEN + 1) as usize, "rows").unwrap_err();
        assert!(matches!(err, DbError::TooLarge { context: "rows", len } if len as u64 == MAX_LEN + 1));
        // Nothing was written by the failed call.
        assert!(w.is_empty());
        // A length at the bound encodes fine.
        w.put_len(3, "rows").unwrap();
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn nan_f64_round_trips_bitwise() {
        let mut w = Writer::new();
        w.put_f64(f64::NAN);
        w.put_f64(f64::INFINITY);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_f64().unwrap(), f64::INFINITY);
    }
}
