//! A small LRU buffer cache.
//!
//! Decoding a clip bundle from the log costs a full deserialization
//! pass; retrieval sessions touch the same clip repeatedly, so the
//! database keeps the most recently used bundles decoded. Implemented
//! with a `HashMap` plus an access counter — eviction scans for the
//! minimum counter, which is O(capacity) but capacities here are tiny
//! (defaults to 8 clips).

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// A point-in-time view of cache effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to decode from the log.
    pub misses: u64,
    /// Entries currently held.
    pub len: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `0` when no lookups happened yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// LRU cache mapping keys to shared values.
#[derive(Debug)]
pub struct LruCache<K: Eq + Hash + Clone, V> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, (Arc<V>, u64)>,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity: capacity.max(1),
            tick: 0,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a key, refreshing its recency on hit.
    pub fn get(&mut self, key: &K) -> Option<Arc<V>> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some((v, t)) => {
                *t = self.tick;
                self.hits += 1;
                tsvr_obs::counter!("viddb.cache.hits").incr();
                Some(Arc::clone(v))
            }
            None => {
                self.misses += 1;
                tsvr_obs::counter!("viddb.cache.misses").incr();
                None
            }
        }
    }

    /// Inserts a value, evicting the least recently used entry if full.
    pub fn put(&mut self, key: K, value: Arc<V>) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(evict) = self
                .map
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&evict);
            }
        }
        self.map.insert(key, (value, self.tick));
    }

    /// Removes a key (e.g. after a clip is deleted).
    pub fn invalidate(&mut self, key: &K) {
        self.map.remove(key);
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Hit/miss counters and current occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            len: self.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_put_get() {
        let mut c: LruCache<u64, String> = LruCache::new(2);
        c.put(1, Arc::new("one".into()));
        assert_eq!(c.get(&1).unwrap().as_str(), "one");
        assert!(c.get(&2).is_none());
        let stats = c.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn stats_track_hits_misses_and_len() {
        let mut c: LruCache<u64, u64> = LruCache::new(4);
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.put(1, Arc::new(10));
        c.put(2, Arc::new(20));
        c.get(&1); // hit
        c.get(&1); // hit
        c.get(&9); // miss
        let s = c.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.len, 2);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u64, u64> = LruCache::new(2);
        c.put(1, Arc::new(10));
        c.put(2, Arc::new(20));
        // Touch 1 so 2 becomes LRU.
        c.get(&1);
        c.put(3, Arc::new(30));
        assert!(c.get(&1).is_some());
        assert!(c.get(&2).is_none(), "LRU entry not evicted");
        assert!(c.get(&3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn overwrite_does_not_evict() {
        let mut c: LruCache<u64, u64> = LruCache::new(2);
        c.put(1, Arc::new(10));
        c.put(2, Arc::new(20));
        c.put(1, Arc::new(11)); // same key: replace
        assert_eq!(*c.get(&1).unwrap(), 11);
        assert!(c.get(&2).is_some());
    }

    #[test]
    fn invalidate_and_clear() {
        let mut c: LruCache<u64, u64> = LruCache::new(4);
        c.put(1, Arc::new(10));
        c.put(2, Arc::new(20));
        c.invalidate(&1);
        assert!(c.get(&1).is_none());
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn eviction_order_under_interleaved_get_put() {
        let mut c: LruCache<u64, u64> = LruCache::new(3);
        c.put(1, Arc::new(10));
        c.put(2, Arc::new(20));
        c.put(3, Arc::new(30));
        // Recency now (oldest → newest): 1, 2, 3. Touch 2 then 1.
        assert!(c.get(&2).is_some());
        assert!(c.get(&1).is_some());
        // Oldest is now 3 → evicted by the next insert.
        c.put(4, Arc::new(40));
        assert!(c.get(&3).is_none(), "3 should be the LRU victim");
        // Oldest is now 2 (4 and 1 are fresher) → evicted next.
        c.put(5, Arc::new(50));
        assert!(c.get(&2).is_none(), "2 should be the LRU victim");
        // Survivors: 1, 4, 5.
        assert!(c.get(&1).is_some());
        assert!(c.get(&4).is_some());
        assert!(c.get(&5).is_some());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn stats_accounting_across_eviction() {
        let mut c: LruCache<u64, u64> = LruCache::new(2);
        c.put(1, Arc::new(10));
        c.put(2, Arc::new(20));
        c.put(3, Arc::new(30)); // evicts 1
        let s = c.stats();
        assert_eq!(s.len, 2, "len must not exceed capacity after eviction");
        assert_eq!((s.hits, s.misses), (0, 0), "puts are not lookups");
        // A lookup of the evicted key is a miss, of a resident key a hit.
        assert!(c.get(&1).is_none());
        assert!(c.get(&3).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.len, 2);
    }

    #[test]
    fn hit_rate_edge_cases() {
        // Zero lookups: rate is 0, not NaN.
        let c: LruCache<u64, u64> = LruCache::new(2);
        assert_eq!(c.stats().hit_rate(), 0.0);
        // All hits.
        let mut c: LruCache<u64, u64> = LruCache::new(2);
        c.put(1, Arc::new(10));
        c.get(&1);
        c.get(&1);
        assert_eq!(c.stats().hit_rate(), 1.0);
        // All misses.
        let mut c: LruCache<u64, u64> = LruCache::new(2);
        c.get(&1);
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    fn post_clear_counters_persist_and_lookups_miss() {
        let mut c: LruCache<u64, u64> = LruCache::new(2);
        c.put(1, Arc::new(10));
        c.get(&1); // hit
        c.get(&9); // miss
        c.clear();
        let s = c.stats();
        assert_eq!(s.len, 0, "clear drops entries");
        assert_eq!(
            (s.hits, s.misses),
            (1, 1),
            "clear keeps lifetime hit/miss counters"
        );
        // A previously-resident key now misses.
        assert!(c.get(&1).is_none());
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let mut c: LruCache<u64, u64> = LruCache::new(0);
        c.put(1, Arc::new(10));
        assert!(c.get(&1).is_some());
        c.put(2, Arc::new(20));
        assert_eq!(c.len(), 1);
    }
}
