//! The video database: log + catalog + buffer cache + metadata queries.

use crate::cache::{CacheStats, LruCache};
use crate::codec::{Reader, Writer};
use crate::error::{DbError, Result};
use crate::frames::{FrameCodec, StoredFrame};
use crate::log::{CorruptRegion, Log};
use crate::record::{
    ClipBundle, ClipMeta, IndexSegment, SessionRow, INDEX_COMPRESSED_VERSION,
    INDEX_FORMAT_VERSION, INDEX_MAGIC,
};
use crate::storage::Storage;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

/// Record type tags in the log.
const TAG_CLIP: u8 = 1;
const TAG_SESSION: u8 = 2;
const TAG_TOMBSTONE: u8 = 3;
const TAG_VIDEO: u8 = 4;
const TAG_INDEX: u8 = 5;
/// Compressed feature-index segment (XOR-delta + bit-packed f64 rows).
/// A *new* tag rather than a version bump inside tag 5 so archives
/// written before compression existed still decode byte-for-byte
/// through the old path.
const TAG_INDEX_C: u8 = 6;

/// Default number of decoded clip bundles kept in the buffer cache.
pub const DEFAULT_CACHE_CAPACITY: usize = 8;

/// One quarantined clip: its stored record failed integrity checks at
/// query time, so the database serves every *other* clip and reports
/// this one here instead of failing the query path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// The quarantined clip.
    pub clip_id: u64,
    /// Log offset of the corrupt record.
    pub offset: u64,
    /// Human-readable description of what failed.
    pub reason: String,
}

/// Result of a full-database integrity pass ([`VideoDb::verify`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Records examined (clips + sessions + video segments).
    pub records_checked: usize,
    /// Clips that decoded cleanly.
    pub clips_intact: usize,
    /// Clips quarantined by this pass (or already quarantined).
    pub clips_quarantined: usize,
    /// Session records dropped as corrupt.
    pub sessions_dropped: usize,
    /// Video segment records dropped as corrupt.
    pub segments_dropped: usize,
    /// Feature-index segments dropped as corrupt (rebuildable from the
    /// clip, so dropping is always safe).
    pub indexes_dropped: usize,
    /// Corrupt byte ranges the open-time scan skipped.
    pub corrupt_regions: usize,
}

impl VerifyReport {
    /// Whether the pass found no damage anywhere.
    pub fn is_clean(&self) -> bool {
        self.clips_quarantined == 0
            && self.sessions_dropped == 0
            && self.segments_dropped == 0
            && self.indexes_dropped == 0
            && self.corrupt_regions == 0
    }
}

/// Everything the database currently knows about stored-data damage.
#[derive(Debug, Clone, Default)]
pub struct FaultReport {
    /// Clips quarantined at query time.
    pub quarantined_clips: Vec<QuarantineEntry>,
    /// Corrupt byte ranges skipped by open-time recovery.
    pub corrupt_regions: Vec<CorruptRegion>,
    /// Bytes of torn tail truncated at open.
    pub truncated_tail_bytes: u64,
    /// Whether a torn file header was re-initialised at open.
    pub recovered_header: bool,
}

impl FaultReport {
    /// Whether no damage has been observed.
    pub fn is_clean(&self) -> bool {
        self.quarantined_clips.is_empty()
            && self.corrupt_regions.is_empty()
            && self.truncated_tail_bytes == 0
            && !self.recovered_header
    }
}

/// The transportation surveillance video database.
///
/// Clips are stored as single checksummed log records; the catalog
/// (clip metadata and record offsets) is rebuilt by scanning the log on
/// open, and full bundles are decoded on demand through an LRU cache.
pub struct VideoDb {
    log: Log,
    /// clip_id -> (metadata, log offset of the bundle record).
    catalog: BTreeMap<u64, (ClipMeta, u64)>,
    /// Session records: (session_id, clip_id, offset).
    sessions: Vec<(u64, u64, u64)>,
    /// Video segments: (clip_id, start_frame, frame_count, offset).
    video_segments: Vec<(u64, u32, u32, u64)>,
    /// Feature indexes: clip_id -> log offset (later records win).
    indexes: BTreeMap<u64, u64>,
    cache: LruCache<u64, ClipBundle>,
    /// Clips whose stored record failed integrity checks at query time.
    quarantined: BTreeMap<u64, QuarantineEntry>,
}

impl VideoDb {
    /// Creates an ephemeral in-memory database.
    ///
    /// ```
    /// use tsvr_viddb::{ClipBundle, ClipMeta, VideoDb};
    ///
    /// let mut db = VideoDb::in_memory();
    /// db.put_clip(&ClipBundle {
    ///     meta: ClipMeta {
    ///         clip_id: 1,
    ///         name: "demo".into(),
    ///         location: "tunnel-17".into(),
    ///         camera: "cam-1".into(),
    ///         start_time: 0,
    ///         frame_count: 100,
    ///         width: 320,
    ///         height: 240,
    ///     },
    ///     tracks: vec![],
    ///     windows: vec![],
    ///     incidents: vec![],
    /// })
    /// .unwrap();
    /// assert_eq!(db.find_by_location("tunnel-17").len(), 1);
    /// assert_eq!(db.load_clip(1).unwrap().meta.name, "demo");
    /// ```
    pub fn in_memory() -> VideoDb {
        VideoDb::from_log(Log::in_memory()).expect("in-memory open cannot fail")
    }

    /// Opens (or creates) a file-backed database, rebuilding the
    /// catalog from the log.
    pub fn open(path: &Path) -> Result<VideoDb> {
        VideoDb::from_log(Log::open(path)?)
    }

    /// Opens a database over any [`Storage`] backend (e.g. the
    /// fault-injecting test backend, or a recovered crash image wrapped
    /// in `MemStorage`).
    pub fn with_storage(storage: Box<dyn Storage>) -> Result<VideoDb> {
        VideoDb::from_log(Log::with_storage(storage)?)
    }

    /// Builds a database over an already-opened log.
    pub fn from_log(log: Log) -> Result<VideoDb> {
        let mut db = VideoDb {
            log,
            catalog: BTreeMap::new(),
            sessions: Vec::new(),
            video_segments: Vec::new(),
            indexes: BTreeMap::new(),
            cache: LruCache::new(DEFAULT_CACHE_CAPACITY),
            quarantined: BTreeMap::new(),
        };
        db.rebuild_catalog()?;
        Ok(db)
    }

    fn rebuild_catalog(&mut self) -> Result<()> {
        let records = self.log.scan()?;
        for (offset, payload) in records {
            // A record that passes the log CRC but fails structural
            // decode is still corruption — skip it rather than failing
            // the whole open, matching the quarantine philosophy.
            if let Err(e) = self.index_record(offset, &payload) {
                if e.is_corruption() {
                    tsvr_obs::counter!("viddb.fault.detected").incr();
                    continue;
                }
                return Err(e);
            }
        }
        Ok(())
    }

    /// Indexes one scanned record into the in-memory catalog.
    fn index_record(&mut self, offset: u64, payload: &[u8]) -> Result<()> {
        let mut r = Reader::new(payload);
        match r.get_u8()? {
            TAG_CLIP => {
                let meta = ClipMeta::decode(&mut r)?;
                // Later records win (e.g. after compaction replay).
                self.catalog.insert(meta.clip_id, (meta, offset));
            }
            TAG_SESSION => {
                let session_id = r.get_u64()?;
                let clip_id = r.get_u64()?;
                self.sessions.push((session_id, clip_id, offset));
            }
            TAG_TOMBSTONE => {
                let clip_id = r.get_u64()?;
                self.catalog.remove(&clip_id);
                self.video_segments.retain(|&(cid, _, _, _)| cid != clip_id);
                self.indexes.remove(&clip_id);
            }
            TAG_VIDEO => {
                let clip_id = r.get_u64()?;
                let start_frame = r.get_u32()?;
                let frame_count = r.get_u32()?;
                self.video_segments
                    .push((clip_id, start_frame, frame_count, offset));
            }
            TAG_INDEX => {
                // Only the header is decoded here; the full segment is
                // decode-checked lazily at load time (and by `verify`).
                if r.get_u32()? != INDEX_MAGIC || r.get_u32()? != INDEX_FORMAT_VERSION {
                    return Err(DbError::BadMagic);
                }
                let clip_id = r.get_u64()?;
                self.indexes.insert(clip_id, offset);
            }
            TAG_INDEX_C => {
                if r.get_u32()? != INDEX_MAGIC || r.get_u32()? != INDEX_COMPRESSED_VERSION {
                    return Err(DbError::BadMagic);
                }
                let clip_id = r.get_u64()?;
                self.indexes.insert(clip_id, offset);
            }
            t => return Err(DbError::UnknownRecordType(t)),
        }
        Ok(())
    }

    /// Stores a clip bundle. Fails on duplicate clip ids.
    pub fn put_clip(&mut self, bundle: &ClipBundle) -> Result<()> {
        let _span = tsvr_obs::span!("viddb.put_clip");
        let id = bundle.meta.clip_id;
        if self.catalog.contains_key(&id) {
            return Err(DbError::DuplicateClip(id));
        }
        let mut w = Writer::new();
        w.put_u8(TAG_CLIP);
        // The metadata is encoded first so the catalog can be rebuilt
        // without decoding whole bundles.
        bundle.meta.encode(&mut w)?;
        w.put_len(bundle.tracks.len(), "bundle tracks")?;
        for t in &bundle.tracks {
            t.encode(&mut w)?;
        }
        w.put_len(bundle.windows.len(), "bundle windows")?;
        for win in &bundle.windows {
            win.encode(&mut w)?;
        }
        w.put_len(bundle.incidents.len(), "bundle incidents")?;
        for inc in &bundle.incidents {
            inc.encode(&mut w)?;
        }
        let offset = self.log.append(&w.into_bytes())?;
        self.catalog.insert(id, (bundle.meta.clone(), offset));
        // Re-ingesting a quarantined clip repairs it: the fresh record
        // supersedes the corrupt one.
        self.quarantined.remove(&id);
        Ok(())
    }

    fn decode_bundle(payload: &[u8]) -> Result<ClipBundle> {
        let mut r = Reader::new(payload);
        let tag = r.get_u8()?;
        if tag != TAG_CLIP {
            return Err(DbError::UnknownRecordType(tag));
        }
        let meta = ClipMeta::decode(&mut r)?;
        let n = r.get_len_bounded(16)?; // u64 + u32 + u32 header per track
        let mut tracks = Vec::with_capacity(n);
        for _ in 0..n {
            tracks.push(crate::record::TrackRow::decode(&mut r)?);
        }
        let n = r.get_len_bounded(16)?; // 4 × u32 header per window
        let mut windows = Vec::with_capacity(n);
        for _ in 0..n {
            windows.push(crate::record::WindowRow::decode(&mut r)?);
        }
        let n = r.get_len_bounded(16)?; // str len + 3 × u32 per incident
        let mut incidents = Vec::with_capacity(n);
        for _ in 0..n {
            incidents.push(crate::record::IncidentRow::decode(&mut r)?);
        }
        Ok(ClipBundle {
            meta,
            tracks,
            windows,
            incidents,
        })
    }

    /// Loads a full clip bundle (through the buffer cache).
    ///
    /// If the stored record turns out to be corrupt, the clip is
    /// quarantined — removed from the catalog and reported via
    /// [`VideoDb::quarantined`] — and [`DbError::ClipQuarantined`] is
    /// returned. Every other clip stays retrievable.
    pub fn load_clip(&mut self, clip_id: u64) -> Result<Arc<ClipBundle>> {
        if self.quarantined.contains_key(&clip_id) {
            return Err(DbError::ClipQuarantined(clip_id));
        }
        if let Some(b) = self.cache.get(&clip_id) {
            return Ok(b);
        }
        let _span = tsvr_obs::span!("viddb.load_clip");
        let &(_, offset) = self
            .catalog
            .get(&clip_id)
            .ok_or(DbError::ClipNotFound(clip_id))?;
        let bundle = match self
            .log
            .read(offset)
            .and_then(|payload| Self::decode_bundle(&payload))
        {
            Ok(b) => Arc::new(b),
            Err(e) if e.is_corruption() => {
                self.quarantine_clip(clip_id, offset, &e);
                return Err(DbError::ClipQuarantined(clip_id));
            }
            Err(e) => return Err(e),
        };
        self.cache.put(clip_id, Arc::clone(&bundle));
        Ok(bundle)
    }

    /// Moves a clip with a corrupt stored record out of the catalog and
    /// into the quarantine report.
    fn quarantine_clip(&mut self, clip_id: u64, offset: u64, cause: &DbError) {
        tsvr_obs::counter!("viddb.fault.detected").incr();
        tsvr_obs::counter!("viddb.fault.quarantined").incr();
        // Data loss in progress: dump the flight recorder alongside the
        // incident so the faulty window is inspectable post-mortem.
        tsvr_obs::trace::incident_dump(
            "viddb.quarantine",
            &format!("clip {clip_id} at offset {offset}: {cause}"),
        );
        self.catalog.remove(&clip_id);
        self.cache.invalidate(&clip_id);
        self.quarantined.insert(
            clip_id,
            QuarantineEntry {
                clip_id,
                offset,
                reason: cause.to_string(),
            },
        );
    }

    /// Stores (or replaces) the persistent feature index of a clip. The
    /// clip itself must exist — an index is derived data and never
    /// outlives its source record.
    pub fn put_index(&mut self, segment: &IndexSegment) -> Result<()> {
        let _span = tsvr_obs::span!("viddb.put_index");
        if !self.catalog.contains_key(&segment.clip_id) {
            return Err(DbError::ClipNotFound(segment.clip_id));
        }
        let mut w = Writer::new();
        // New indexes are written compressed (tag 6). Uncompressed tag-5
        // records from older archives remain readable forever — the tag
        // selects the decode path.
        w.put_u8(TAG_INDEX_C);
        segment.encode_compressed(&mut w)?;
        let offset = self.log.append(&w.into_bytes())?;
        self.indexes.insert(segment.clip_id, offset);
        Ok(())
    }

    /// Decodes an index record payload, dispatching on the record tag
    /// (uncompressed tag 5 vs compressed tag 6).
    fn decode_index_payload(payload: &[u8]) -> Result<IndexSegment> {
        let mut r = Reader::new(payload);
        match r.get_u8()? {
            TAG_INDEX => IndexSegment::decode(&mut r),
            TAG_INDEX_C => IndexSegment::decode_compressed(&mut r),
            t => Err(DbError::UnknownRecordType(t)),
        }
    }

    /// Loads the stored feature index of a clip, if one exists.
    ///
    /// A corrupt index segment is *dropped*, not quarantined: unlike a
    /// clip it is fully re-derivable, so the method reports it as
    /// absent (`Ok(None)`) and the caller rebuilds. The source clip is
    /// untouched. Real I/O errors still propagate.
    pub fn load_index(&mut self, clip_id: u64) -> Result<Option<IndexSegment>> {
        let Some(&offset) = self.indexes.get(&clip_id) else {
            return Ok(None);
        };
        let _span = tsvr_obs::span!("viddb.load_index");
        let decoded = self.log.read(offset).and_then(|payload| {
            let seg = Self::decode_index_payload(&payload)?;
            if seg.clip_id != clip_id {
                return Err(DbError::BadMagic);
            }
            Ok(seg)
        });
        match decoded {
            Ok(seg) => Ok(Some(seg)),
            Err(e) if e.is_corruption() => {
                tsvr_obs::counter!("viddb.fault.detected").incr();
                self.indexes.remove(&clip_id);
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Number of stored feature indexes.
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    /// Deletes a clip (tombstone append; space is reclaimed by
    /// [`VideoDb::compact`]).
    pub fn delete_clip(&mut self, clip_id: u64) -> Result<()> {
        // Deleting a quarantined clip is allowed: the tombstone makes
        // sure the corrupt record can never resurface.
        if !self.catalog.contains_key(&clip_id) && !self.quarantined.contains_key(&clip_id) {
            return Err(DbError::ClipNotFound(clip_id));
        }
        let mut w = Writer::new();
        w.put_u8(TAG_TOMBSTONE);
        w.put_u64(clip_id);
        self.log.append(&w.into_bytes())?;
        self.catalog.remove(&clip_id);
        self.quarantined.remove(&clip_id);
        self.indexes.remove(&clip_id);
        self.cache.invalidate(&clip_id);
        Ok(())
    }

    /// Durability point: flushes and syncs the log. Mutations are only
    /// guaranteed to survive a crash after `sync` returns `Ok`.
    pub fn sync(&mut self) -> Result<()> {
        self.log.sync()
    }

    /// Metadata of one clip.
    pub fn meta(&self, clip_id: u64) -> Option<&ClipMeta> {
        self.catalog.get(&clip_id).map(|(m, _)| m)
    }

    /// All clips, ordered by id.
    pub fn list_clips(&self) -> Vec<&ClipMeta> {
        self.catalog.values().map(|(m, _)| m).collect()
    }

    /// Number of stored clips.
    pub fn clip_count(&self) -> usize {
        self.catalog.len()
    }

    /// Clips captured at a location.
    pub fn find_by_location(&self, location: &str) -> Vec<&ClipMeta> {
        self.catalog
            .values()
            .map(|(m, _)| m)
            .filter(|m| m.location == location)
            .collect()
    }

    /// Clips captured by a camera.
    pub fn find_by_camera(&self, camera: &str) -> Vec<&ClipMeta> {
        self.catalog
            .values()
            .map(|(m, _)| m)
            .filter(|m| m.camera == camera)
            .collect()
    }

    /// Clips whose capture start time falls in `[from, to]`.
    pub fn find_by_time_range(&self, from: u64, to: u64) -> Vec<&ClipMeta> {
        self.catalog
            .values()
            .map(|(m, _)| m)
            .filter(|m| m.start_time >= from && m.start_time <= to)
            .collect()
    }

    /// Persists one retrieval session.
    pub fn put_session(&mut self, session: &SessionRow) -> Result<()> {
        let mut w = Writer::new();
        w.put_u8(TAG_SESSION);
        session.encode(&mut w)?;
        let offset = self.log.append(&w.into_bytes())?;
        self.sessions
            .push((session.session_id, session.clip_id, offset));
        Ok(())
    }

    /// Loads every session recorded against a clip. Corrupt session
    /// records are dropped (and counted via `viddb.fault.*`) rather
    /// than failing the query; real I/O errors still propagate.
    pub fn sessions_for_clip(&mut self, clip_id: u64) -> Result<Vec<SessionRow>> {
        let offsets: Vec<u64> = self
            .sessions
            .iter()
            .filter(|&&(_, cid, _)| cid == clip_id)
            .map(|&(_, _, off)| off)
            .collect();
        let mut out = Vec::with_capacity(offsets.len());
        for off in offsets {
            match self.log.read(off).and_then(|payload| {
                let mut r = Reader::new(&payload);
                let tag = r.get_u8()?;
                if tag != TAG_SESSION {
                    return Err(DbError::UnknownRecordType(tag));
                }
                SessionRow::decode(&mut r)
            }) {
                Ok(row) => out.push(row),
                Err(e) if e.is_corruption() => {
                    tsvr_obs::counter!("viddb.fault.detected").incr();
                    self.sessions.retain(|&(_, _, o)| o != off);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Number of stored sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// The highest session id the database has recorded, `0` when no
    /// sessions exist. A session service mints fresh ids above this so
    /// restarts never collide with persisted checkpoints.
    pub fn max_session_id(&self) -> u64 {
        self.sessions.iter().map(|&(sid, _, _)| sid).max().unwrap_or(0)
    }

    /// `(session_id, clip_id)` of every stored session record, in log
    /// order — checkpointed sessions appear once per checkpoint, later
    /// entries superseding earlier ones. Cheap (reads the in-memory
    /// index only); decode the rows you need via
    /// [`VideoDb::sessions_for_clip`].
    pub fn session_index(&self) -> Vec<(u64, u64)> {
        self.sessions.iter().map(|&(sid, cid, _)| (sid, cid)).collect()
    }

    /// Stores a segment of video frames for a clip (the clip must
    /// already exist). Frames are quantized/delta/RLE compressed by
    /// `codec`; `start_frame` is the absolute index of the first frame.
    pub fn put_video_segment(
        &mut self,
        clip_id: u64,
        start_frame: u32,
        frames: &[StoredFrame],
        codec: FrameCodec,
    ) -> Result<()> {
        if !self.catalog.contains_key(&clip_id) {
            return Err(DbError::ClipNotFound(clip_id));
        }
        let payload = codec.encode_segment(frames)?;
        let mut w = Writer::new();
        w.put_u8(TAG_VIDEO);
        w.put_u64(clip_id);
        w.put_u32(start_frame);
        w.put_len(frames.len(), "video frames")?;
        w.put_bytes(&payload)?;
        let offset = self.log.append(&w.into_bytes())?;
        self.video_segments
            .push((clip_id, start_frame, frames.len() as u32, offset));
        Ok(())
    }

    /// Loads the frames of a clip overlapping `[from, to)`, returned as
    /// `(absolute_frame_index, frame)` pairs in frame order. Frames the
    /// database never stored are simply absent from the result.
    pub fn load_frames(
        &mut self,
        clip_id: u64,
        from: u32,
        to: u32,
    ) -> Result<Vec<(u32, StoredFrame)>> {
        let segments: Vec<(u32, u32, u64)> = self
            .video_segments
            .iter()
            .filter(|&&(cid, start, count, _)| cid == clip_id && start < to && start + count > from)
            .map(|&(_, start, count, off)| (start, count, off))
            .collect();
        let mut out = Vec::new();
        for (start, _, off) in segments {
            let decoded = self.log.read(off).and_then(|record| {
                let mut r = Reader::new(&record);
                let tag = r.get_u8()?;
                if tag != TAG_VIDEO {
                    return Err(DbError::UnknownRecordType(tag));
                }
                let _clip = r.get_u64()?;
                let _start = r.get_u32()?;
                let _count = r.get_u32()?;
                FrameCodec::decode_segment(r.get_bytes()?)
            });
            match decoded {
                Ok(frames) => {
                    for (i, f) in frames.into_iter().enumerate() {
                        let abs = start + i as u32;
                        if abs >= from && abs < to {
                            out.push((abs, f));
                        }
                    }
                }
                // A corrupt segment drops out of the result (those
                // frames are simply absent) instead of failing the
                // whole playback query.
                Err(e) if e.is_corruption() => {
                    tsvr_obs::counter!("viddb.fault.detected").incr();
                    tsvr_obs::trace::incident(
                        "viddb.segment.dropped",
                        &format!("corrupt segment at offset {off} dropped from playback: {e}"),
                    );
                    self.video_segments.retain(|&(_, _, _, o)| o != off);
                }
                Err(e) => return Err(e),
            }
        }
        out.sort_by_key(|&(abs, _)| abs);
        Ok(out)
    }

    /// Number of stored video segments.
    pub fn video_segment_count(&self) -> usize {
        self.video_segments.len()
    }

    /// Bytes in the log (including dead records awaiting compaction).
    pub fn log_size(&self) -> u64 {
        self.log.len()
    }

    /// Rewrites the log keeping only live, *intact* records — reclaims
    /// space from deleted clips and drops corrupt records for good
    /// (quarantined clips whose bytes are damaged are not carried
    /// over; re-ingest them to repair). The rewritten log is synced.
    pub fn compact(&mut self) -> Result<()> {
        let _span = tsvr_obs::span!("viddb.compact");
        // Collect live payloads before resetting, dropping any record
        // that no longer passes integrity checks.
        let mut live: Vec<Vec<u8>> = Vec::new();
        let clip_offsets: Vec<(u64, u64)> = self
            .catalog
            .iter()
            .map(|(&id, &(_, off))| (id, off))
            .collect();
        for (id, off) in clip_offsets {
            match self
                .log
                .read(off)
                .and_then(|p| Self::decode_bundle(&p).map(|_| p))
            {
                Ok(payload) => live.push(payload),
                Err(e) if e.is_corruption() => self.quarantine_clip(id, off, &e),
                Err(e) => return Err(e),
            }
        }
        let session_offsets: Vec<u64> = self.sessions.iter().map(|&(_, _, off)| off).collect();
        for off in session_offsets {
            match self.log.read(off) {
                Ok(payload) => live.push(payload),
                Err(e) if e.is_corruption() => {
                    tsvr_obs::counter!("viddb.fault.detected").incr();
                    self.sessions.retain(|&(_, _, o)| o != off);
                }
                Err(e) => return Err(e),
            }
        }
        let video_offsets: Vec<u64> = self
            .video_segments
            .iter()
            .map(|&(_, _, _, off)| off)
            .collect();
        for off in video_offsets {
            match self.log.read(off) {
                Ok(payload) => live.push(payload),
                Err(e) if e.is_corruption() => {
                    tsvr_obs::counter!("viddb.fault.detected").incr();
                    self.video_segments.retain(|&(_, _, _, o)| o != off);
                }
                Err(e) => return Err(e),
            }
        }
        // Index segments are decode-checked like clips: a corrupt index
        // silently vanishes (it is re-derivable), an intact one is
        // carried over.
        let index_offsets: Vec<(u64, u64)> =
            self.indexes.iter().map(|(&id, &off)| (id, off)).collect();
        for (id, off) in index_offsets {
            match self
                .log
                .read(off)
                .and_then(|p| Self::decode_index_payload(&p).map(|_| p))
            {
                Ok(payload) => live.push(payload),
                Err(e) if e.is_corruption() => {
                    tsvr_obs::counter!("viddb.fault.detected").incr();
                    self.indexes.remove(&id);
                }
                Err(e) => return Err(e),
            }
        }
        self.log.reset()?;
        self.catalog.clear();
        self.sessions.clear();
        self.video_segments.clear();
        self.indexes.clear();
        self.cache.clear();
        for payload in live {
            self.log.append(&payload)?;
        }
        // Rebuild offsets and make the rewrite durable.
        self.rebuild_catalog()?;
        self.log.sync()
    }

    /// Full-database integrity pass: decode-checks every clip, session,
    /// and video segment record, quarantining/dropping what fails. The
    /// database keeps serving everything that passed.
    pub fn verify(&mut self) -> Result<VerifyReport> {
        let _span = tsvr_obs::span!("viddb.verify");
        let mut report = VerifyReport {
            corrupt_regions: self.log.recovery_report().regions.len(),
            clips_quarantined: self.quarantined.len(),
            ..VerifyReport::default()
        };
        let clip_offsets: Vec<(u64, u64)> = self
            .catalog
            .iter()
            .map(|(&id, &(_, off))| (id, off))
            .collect();
        for (id, off) in clip_offsets {
            report.records_checked += 1;
            match self
                .log
                .read(off)
                .and_then(|p| Self::decode_bundle(&p).map(|_| ()))
            {
                Ok(()) => report.clips_intact += 1,
                Err(e) if e.is_corruption() => {
                    self.quarantine_clip(id, off, &e);
                    report.clips_quarantined += 1;
                }
                Err(e) => return Err(e),
            }
        }
        let session_offsets: Vec<u64> = self.sessions.iter().map(|&(_, _, off)| off).collect();
        for off in session_offsets {
            report.records_checked += 1;
            let ok = self.log.read(off).and_then(|p| {
                let mut r = Reader::new(&p);
                let tag = r.get_u8()?;
                if tag != TAG_SESSION {
                    return Err(DbError::UnknownRecordType(tag));
                }
                SessionRow::decode(&mut r).map(|_| ())
            });
            match ok {
                Ok(()) => {}
                Err(e) if e.is_corruption() => {
                    tsvr_obs::counter!("viddb.fault.detected").incr();
                    self.sessions.retain(|&(_, _, o)| o != off);
                    report.sessions_dropped += 1;
                }
                Err(e) => return Err(e),
            }
        }
        let video_offsets: Vec<u64> = self
            .video_segments
            .iter()
            .map(|&(_, _, _, off)| off)
            .collect();
        for off in video_offsets {
            report.records_checked += 1;
            let ok = self.log.read(off).and_then(|p| {
                let mut r = Reader::new(&p);
                let tag = r.get_u8()?;
                if tag != TAG_VIDEO {
                    return Err(DbError::UnknownRecordType(tag));
                }
                let _ = r.get_u64()?;
                let _ = r.get_u32()?;
                let _ = r.get_u32()?;
                FrameCodec::decode_segment(r.get_bytes()?).map(|_| ())
            });
            match ok {
                Ok(()) => {}
                Err(e) if e.is_corruption() => {
                    tsvr_obs::counter!("viddb.fault.detected").incr();
                    self.video_segments.retain(|&(_, _, _, o)| o != off);
                    report.segments_dropped += 1;
                }
                Err(e) => return Err(e),
            }
        }
        let index_offsets: Vec<(u64, u64)> =
            self.indexes.iter().map(|(&id, &off)| (id, off)).collect();
        for (id, off) in index_offsets {
            report.records_checked += 1;
            let ok = self
                .log
                .read(off)
                .and_then(|p| Self::decode_index_payload(&p).map(|_| ()));
            match ok {
                Ok(()) => {}
                Err(e) if e.is_corruption() => {
                    tsvr_obs::counter!("viddb.fault.detected").incr();
                    self.indexes.remove(&id);
                    report.indexes_dropped += 1;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(report)
    }

    /// Clips currently quarantined (corrupt stored records), ordered by
    /// clip id.
    pub fn quarantined(&self) -> Vec<&QuarantineEntry> {
        self.quarantined.values().collect()
    }

    /// Everything currently known about stored-data damage: quarantined
    /// clips plus what open-time recovery found.
    pub fn fault_report(&self) -> FaultReport {
        let recovery = self.log.recovery_report();
        FaultReport {
            quarantined_clips: self.quarantined.values().cloned().collect(),
            corrupt_regions: recovery.regions.clone(),
            truncated_tail_bytes: recovery.truncated_tail,
            recovered_header: recovery.recovered_header,
        }
    }

    /// Hit/miss/occupancy statistics of the buffer cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::test_fixtures::{sample_bundle, sample_index};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tsvr-db-test-{}-{name}.db", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn put_and_load_round_trip() {
        let mut db = VideoDb::in_memory();
        let b = sample_bundle(1);
        db.put_clip(&b).unwrap();
        let loaded = db.load_clip(1).unwrap();
        assert_eq!(*loaded, b);
        assert_eq!(db.clip_count(), 1);
    }

    #[test]
    fn duplicate_clip_rejected() {
        let mut db = VideoDb::in_memory();
        db.put_clip(&sample_bundle(1)).unwrap();
        assert!(matches!(
            db.put_clip(&sample_bundle(1)).unwrap_err(),
            DbError::DuplicateClip(1)
        ));
    }

    #[test]
    fn missing_clip_errors() {
        let mut db = VideoDb::in_memory();
        assert!(matches!(
            db.load_clip(9).unwrap_err(),
            DbError::ClipNotFound(9)
        ));
        assert!(db.meta(9).is_none());
    }

    #[test]
    fn cache_serves_repeat_loads() {
        let mut db = VideoDb::in_memory();
        db.put_clip(&sample_bundle(1)).unwrap();
        let a = db.load_clip(1).unwrap();
        let b = db.load_clip(1).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second load not served from cache");
        let stats = db.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.len, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn metadata_queries() {
        let mut db = VideoDb::in_memory();
        let mut b1 = sample_bundle(1);
        b1.meta.location = "tunnel-17".into();
        b1.meta.camera = "cam-a".into();
        b1.meta.start_time = 100;
        let mut b2 = sample_bundle(2);
        b2.meta.location = "intersection-3".into();
        b2.meta.camera = "cam-b".into();
        b2.meta.start_time = 200;
        db.put_clip(&b1).unwrap();
        db.put_clip(&b2).unwrap();

        assert_eq!(db.find_by_location("tunnel-17").len(), 1);
        assert_eq!(db.find_by_location("nowhere").len(), 0);
        assert_eq!(db.find_by_camera("cam-b")[0].clip_id, 2);
        assert_eq!(db.find_by_time_range(0, 150).len(), 1);
        assert_eq!(db.find_by_time_range(0, 300).len(), 2);
        assert_eq!(db.list_clips().len(), 2);
    }

    #[test]
    fn delete_and_compact_reclaims_space() {
        let mut db = VideoDb::in_memory();
        db.put_clip(&sample_bundle(1)).unwrap();
        db.put_clip(&sample_bundle(2)).unwrap();
        let before = db.log_size();
        db.delete_clip(1).unwrap();
        assert!(db.meta(1).is_none());
        assert!(db.load_clip(1).is_err());
        db.compact().unwrap();
        assert!(db.log_size() < before, "compaction did not shrink the log");
        // Clip 2 survives compaction intact.
        let b2 = db.load_clip(2).unwrap();
        assert_eq!(b2.meta.clip_id, 2);
    }

    #[test]
    fn delete_missing_clip_errors() {
        let mut db = VideoDb::in_memory();
        assert!(db.delete_clip(5).is_err());
    }

    #[test]
    fn sessions_round_trip() {
        let mut db = VideoDb::in_memory();
        db.put_clip(&sample_bundle(1)).unwrap();
        let s = SessionRow {
            session_id: 100,
            clip_id: 1,
            query: "accident".into(),
            learner: "MIL_OneClassSVM".into(),
            feedback: vec![vec![(0, true)]],
            accuracies: vec![0.4, 0.6],
        };
        db.put_session(&s).unwrap();
        let got = db.sessions_for_clip(1).unwrap();
        assert_eq!(got, vec![s.clone()]);
        assert!(db.sessions_for_clip(2).unwrap().is_empty());
        assert_eq!(db.session_count(), 1);
        assert_eq!(db.max_session_id(), 100);
        // A checkpointed session appears once per stored row.
        db.put_session(&SessionRow {
            session_id: 100,
            feedback: vec![vec![(0, true)], vec![(1, false)]],
            ..s
        })
        .unwrap();
        assert_eq!(db.session_index(), vec![(100, 1), (100, 1)]);
        assert_eq!(db.max_session_id(), 100);
    }

    #[test]
    fn max_session_id_empty_db_is_zero() {
        let db = VideoDb::in_memory();
        assert_eq!(db.max_session_id(), 0);
        assert!(db.session_index().is_empty());
    }

    #[test]
    fn file_db_persists_catalog_and_sessions() {
        let path = temp_path("persist");
        {
            let mut db = VideoDb::open(&path).unwrap();
            db.put_clip(&sample_bundle(7)).unwrap();
            db.put_session(&SessionRow {
                session_id: 1,
                clip_id: 7,
                query: "accident".into(),
                learner: "Weighted_RF".into(),
                feedback: vec![],
                accuracies: vec![0.4],
            })
            .unwrap();
        }
        {
            let mut db = VideoDb::open(&path).unwrap();
            assert_eq!(db.clip_count(), 1);
            assert_eq!(db.meta(7).unwrap().location, "tunnel-17");
            let bundle = db.load_clip(7).unwrap();
            assert_eq!(bundle.tracks.len(), 2);
            assert_eq!(db.sessions_for_clip(7).unwrap().len(), 1);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn deletion_survives_reopen() {
        let path = temp_path("tombstone");
        {
            let mut db = VideoDb::open(&path).unwrap();
            db.put_clip(&sample_bundle(1)).unwrap();
            db.put_clip(&sample_bundle(2)).unwrap();
            db.delete_clip(1).unwrap();
        }
        {
            let db = VideoDb::open(&path).unwrap();
            assert_eq!(db.clip_count(), 1);
            assert!(db.meta(1).is_none());
            assert!(db.meta(2).is_some());
        }
        std::fs::remove_file(&path).unwrap();
    }

    fn tiny_frame(v: u8) -> StoredFrame {
        StoredFrame::new(8, 6, vec![v; 48]).unwrap()
    }

    #[test]
    fn video_segments_round_trip() {
        let mut db = VideoDb::in_memory();
        db.put_clip(&sample_bundle(1)).unwrap();
        let frames: Vec<StoredFrame> = (0..10).map(|i| tiny_frame(40 + i * 8)).collect();
        db.put_video_segment(1, 100, &frames, FrameCodec { quant_step: 1 })
            .unwrap();
        assert_eq!(db.video_segment_count(), 1);

        // Full range.
        let got = db.load_frames(1, 100, 110).unwrap();
        assert_eq!(got.len(), 10);
        assert_eq!(got[0].0, 100);
        assert_eq!(got[0].1, frames[0]);
        assert_eq!(got[9].1, frames[9]);

        // Partial overlap.
        let got = db.load_frames(1, 105, 200).unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(got[0].0, 105);

        // Disjoint range and wrong clip.
        assert!(db.load_frames(1, 0, 50).unwrap().is_empty());
        assert!(db.load_frames(2, 100, 110).unwrap().is_empty());
    }

    #[test]
    fn video_segments_require_existing_clip() {
        let mut db = VideoDb::in_memory();
        let frames = vec![tiny_frame(90)];
        assert!(matches!(
            db.put_video_segment(9, 0, &frames, FrameCodec::default())
                .unwrap_err(),
            DbError::ClipNotFound(9)
        ));
    }

    #[test]
    fn video_segments_span_multiple_records() {
        let mut db = VideoDb::in_memory();
        db.put_clip(&sample_bundle(1)).unwrap();
        let codec = FrameCodec { quant_step: 1 };
        db.put_video_segment(1, 0, &[tiny_frame(10), tiny_frame(20)], codec)
            .unwrap();
        db.put_video_segment(1, 2, &[tiny_frame(30), tiny_frame(40)], codec)
            .unwrap();
        let got = db.load_frames(1, 1, 4).unwrap();
        assert_eq!(
            got.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(got[0].1.pixels[0], 20);
        assert_eq!(got[2].1.pixels[0], 40);
    }

    #[test]
    fn video_survives_reopen_and_compaction() {
        let path = temp_path("video");
        {
            let mut db = VideoDb::open(&path).unwrap();
            db.put_clip(&sample_bundle(1)).unwrap();
            db.put_clip(&sample_bundle(2)).unwrap();
            db.put_video_segment(1, 0, &[tiny_frame(77)], FrameCodec { quant_step: 1 })
                .unwrap();
            db.delete_clip(2).unwrap();
            db.compact().unwrap();
        }
        {
            let mut db = VideoDb::open(&path).unwrap();
            assert_eq!(db.video_segment_count(), 1);
            let got = db.load_frames(1, 0, 1).unwrap();
            assert_eq!(got[0].1.pixels[0], 77);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn deleting_clip_drops_its_video_on_reopen() {
        let path = temp_path("video-del");
        {
            let mut db = VideoDb::open(&path).unwrap();
            db.put_clip(&sample_bundle(1)).unwrap();
            db.put_video_segment(1, 0, &[tiny_frame(9)], FrameCodec::default())
                .unwrap();
            db.delete_clip(1).unwrap();
        }
        {
            let db = VideoDb::open(&path).unwrap();
            assert_eq!(db.video_segment_count(), 0);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn index_put_load_round_trip() {
        let mut db = VideoDb::in_memory();
        db.put_clip(&sample_bundle(1)).unwrap();
        assert_eq!(db.load_index(1).unwrap(), None, "no index yet");
        let seg = sample_index(1);
        db.put_index(&seg).unwrap();
        assert_eq!(db.index_count(), 1);
        assert_eq!(db.load_index(1).unwrap(), Some(seg));
        assert_eq!(db.load_index(2).unwrap(), None);
    }

    #[test]
    fn index_requires_existing_clip() {
        let mut db = VideoDb::in_memory();
        assert!(matches!(
            db.put_index(&sample_index(4)).unwrap_err(),
            DbError::ClipNotFound(4)
        ));
    }

    #[test]
    fn index_replacement_latest_wins() {
        let mut db = VideoDb::in_memory();
        db.put_clip(&sample_bundle(1)).unwrap();
        db.put_index(&sample_index(1)).unwrap();
        let mut newer = sample_index(1);
        newer.config_hash = 42;
        db.put_index(&newer).unwrap();
        assert_eq!(db.index_count(), 1);
        assert_eq!(db.load_index(1).unwrap().unwrap().config_hash, 42);
    }

    #[test]
    fn deleting_clip_drops_its_index() {
        let mut db = VideoDb::in_memory();
        db.put_clip(&sample_bundle(1)).unwrap();
        db.put_index(&sample_index(1)).unwrap();
        db.delete_clip(1).unwrap();
        assert_eq!(db.index_count(), 0);
        assert_eq!(db.load_index(1).unwrap(), None);
    }

    #[test]
    fn legacy_uncompressed_index_records_still_load() {
        // Archives written before compression existed hold tag-5
        // records; they must keep loading, verifying, and surviving
        // compaction unchanged.
        let mut db = VideoDb::in_memory();
        db.put_clip(&sample_bundle(1)).unwrap();
        let seg = sample_index(1);
        let mut w = Writer::new();
        w.put_u8(TAG_INDEX);
        seg.encode(&mut w).unwrap();
        let off = db.log.append(&w.into_bytes()).unwrap();
        db.indexes.insert(1, off);
        assert_eq!(db.load_index(1).unwrap(), Some(seg.clone()));
        assert!(db.verify().unwrap().is_clean());
        db.compact().unwrap();
        assert_eq!(db.load_index(1).unwrap(), Some(seg));
    }

    #[test]
    fn compressed_index_smaller_than_uncompressed_for_regular_rows() {
        // Index features are regular measurement series; the tag-6
        // record must beat the tag-5 encoding for them.
        let mut seg = sample_index(1);
        seg.windows[0].track_ids = (0..32).collect();
        seg.windows[0].features = (0..32 * 9).map(|i| i as f64 * 0.25).collect();
        seg.windows[1].track_ids = (0..16).collect();
        seg.windows[1].features = (0..16 * 9).map(|i| 40.0 + i as f64 * 0.5).collect();
        let mut wu = Writer::new();
        seg.encode(&mut wu).unwrap();
        let mut wc = Writer::new();
        seg.encode_compressed(&mut wc).unwrap();
        assert!(
            wc.len() < wu.len(),
            "compressed {} >= uncompressed {}",
            wc.len(),
            wu.len()
        );
    }

    #[test]
    fn index_survives_reopen_and_compaction() {
        let path = temp_path("index");
        {
            let mut db = VideoDb::open(&path).unwrap();
            db.put_clip(&sample_bundle(1)).unwrap();
            db.put_clip(&sample_bundle(2)).unwrap();
            db.put_index(&sample_index(1)).unwrap();
            db.delete_clip(2).unwrap();
            db.compact().unwrap();
        }
        {
            let mut db = VideoDb::open(&path).unwrap();
            assert_eq!(db.index_count(), 1);
            let seg = db.load_index(1).unwrap().expect("index survived");
            assert_eq!(seg, sample_index(1));
            let report = db.verify().unwrap();
            assert!(report.is_clean(), "{report:?}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compacted_file_db_reopens() {
        let path = temp_path("compact");
        {
            let mut db = VideoDb::open(&path).unwrap();
            for id in 1..=5 {
                db.put_clip(&sample_bundle(id)).unwrap();
            }
            for id in 1..=4 {
                db.delete_clip(id).unwrap();
            }
            db.compact().unwrap();
        }
        {
            let mut db = VideoDb::open(&path).unwrap();
            assert_eq!(db.clip_count(), 1);
            assert_eq!(db.load_clip(5).unwrap().meta.clip_id, 5);
        }
        std::fs::remove_file(&path).unwrap();
    }
}
