//! Append-only checksummed record log.
//!
//! Layout:
//!
//! ```text
//! [8-byte magic "TSVRDB01"]
//! repeated records:
//!   [u32 payload_len][u32 crc32(payload)][payload bytes]
//! ```
//!
//! Recovery: on open, the log is scanned record by record; the first
//! record with a bad length or checksum ends the valid prefix and the
//! log is truncated there (torn-write recovery, the standard WAL rule).

use crate::codec::{crc32, MAX_LEN};
use crate::error::{DbError, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// File magic: identifies a tsvr video database, version 01.
pub const MAGIC: &[u8; 8] = b"TSVRDB01";

/// Storage backend: a real file or an in-memory buffer (for tests and
/// ephemeral databases).
#[derive(Debug)]
enum Backend {
    Memory(Vec<u8>),
    File(File),
}

/// The append-only log.
#[derive(Debug)]
pub struct Log {
    backend: Backend,
    /// Logical end of the valid data.
    len: u64,
}

impl Log {
    /// Creates an empty in-memory log.
    pub fn in_memory() -> Log {
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC);
        Log {
            len: data.len() as u64,
            backend: Backend::Memory(data),
        }
    }

    /// Opens (or creates) a file-backed log, running torn-write
    /// recovery on existing content.
    pub fn open(path: &Path) -> Result<Log> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let file_len = file.metadata()?.len();
        if file_len == 0 {
            file.write_all(MAGIC)?;
            file.flush()?;
            return Ok(Log {
                backend: Backend::File(file),
                len: MAGIC.len() as u64,
            });
        }
        let mut magic = [0u8; 8];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut magic).map_err(|_| DbError::BadMagic)?;
        if &magic != MAGIC {
            return Err(DbError::BadMagic);
        }
        let mut log = Log {
            backend: Backend::File(file),
            len: file_len,
        };
        let _span = tsvr_obs::span!("viddb.recover");
        let valid = log.scan_valid_prefix()?;
        if valid < file_len {
            // Torn tail: truncate it away.
            if let Backend::File(f) = &mut log.backend {
                f.set_len(valid)?;
            }
            log.len = valid;
        }
        Ok(log)
    }

    /// Total valid bytes (including the magic).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len <= MAGIC.len() as u64
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()> {
        match &mut self.backend {
            Backend::Memory(data) => {
                let start = offset as usize;
                let end = start + buf.len();
                if end > data.len() {
                    return Err(DbError::UnexpectedEof { context: "log" });
                }
                buf.copy_from_slice(&data[start..end]);
                Ok(())
            }
            Backend::File(f) => {
                f.seek(SeekFrom::Start(offset))?;
                f.read_exact(buf)
                    .map_err(|_| DbError::UnexpectedEof { context: "log" })
            }
        }
    }

    /// Appends one record; returns its offset.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        let _span = tsvr_obs::span!("viddb.append");
        let offset = self.len;
        let mut framed = Vec::with_capacity(payload.len() + 8);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(payload).to_le_bytes());
        framed.extend_from_slice(payload);
        match &mut self.backend {
            Backend::Memory(data) => data.extend_from_slice(&framed),
            Backend::File(f) => {
                f.seek(SeekFrom::Start(offset))?;
                f.write_all(&framed)?;
                f.flush()?;
            }
        }
        self.len += framed.len() as u64;
        tsvr_obs::counter!("viddb.log.records").incr();
        tsvr_obs::counter!("viddb.log.bytes").add(framed.len() as u64);
        Ok(offset)
    }

    /// Reads the record at `offset`, verifying its checksum.
    pub fn read(&mut self, offset: u64) -> Result<Vec<u8>> {
        let mut header = [0u8; 8];
        self.read_at(offset, &mut header)?;
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as u64;
        let stored_crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_LEN || offset + 8 + len > self.len {
            return Err(DbError::ChecksumMismatch { offset });
        }
        let mut payload = vec![0u8; len as usize];
        self.read_at(offset + 8, &mut payload)?;
        if crc32(&payload) != stored_crc {
            return Err(DbError::ChecksumMismatch { offset });
        }
        Ok(payload)
    }

    /// Iterates over all records, returning `(offset, payload)` pairs.
    pub fn scan(&mut self) -> Result<Vec<(u64, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut offset = MAGIC.len() as u64;
        while offset + 8 <= self.len {
            match self.read(offset) {
                Ok(payload) => {
                    let advance = 8 + payload.len() as u64;
                    out.push((offset, payload));
                    offset += advance;
                }
                Err(_) => break,
            }
        }
        Ok(out)
    }

    /// Discards every record (used by compaction before rewriting the
    /// live set).
    pub fn reset(&mut self) -> Result<()> {
        match &mut self.backend {
            Backend::Memory(data) => data.truncate(MAGIC.len()),
            Backend::File(f) => {
                f.set_len(MAGIC.len() as u64)?;
                f.flush()?;
            }
        }
        self.len = MAGIC.len() as u64;
        Ok(())
    }

    /// Length of the valid prefix (used by recovery).
    fn scan_valid_prefix(&mut self) -> Result<u64> {
        let mut offset = MAGIC.len() as u64;
        while offset + 8 <= self.len {
            match self.read(offset) {
                Ok(payload) => offset += 8 + payload.len() as u64,
                Err(_) => break,
            }
        }
        Ok(offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tsvr-log-test-{}-{name}.db", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn memory_append_read_round_trip() {
        let mut log = Log::in_memory();
        assert!(log.is_empty());
        let a = log.append(b"hello").unwrap();
        let b = log.append(b"world!").unwrap();
        assert!(!log.is_empty());
        assert_eq!(log.read(a).unwrap(), b"hello");
        assert_eq!(log.read(b).unwrap(), b"world!");
    }

    #[test]
    fn scan_returns_records_in_order() {
        let mut log = Log::in_memory();
        log.append(b"one").unwrap();
        log.append(b"two").unwrap();
        log.append(b"three").unwrap();
        let all = log.scan().unwrap();
        let payloads: Vec<&[u8]> = all.iter().map(|(_, p)| p.as_slice()).collect();
        assert_eq!(payloads, vec![b"one".as_slice(), b"two", b"three"]);
    }

    #[test]
    fn file_log_persists_across_reopen() {
        let path = temp_path("persist");
        {
            let mut log = Log::open(&path).unwrap();
            log.append(b"alpha").unwrap();
            log.append(b"beta").unwrap();
        }
        {
            let mut log = Log::open(&path).unwrap();
            let all = log.scan().unwrap();
            assert_eq!(all.len(), 2);
            assert_eq!(all[1].1, b"beta");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = temp_path("torn");
        let full_len;
        {
            let mut log = Log::open(&path).unwrap();
            log.append(b"good record").unwrap();
            full_len = log.len();
            log.append(b"this one will be torn").unwrap();
        }
        // Corrupt the second record's tail.
        {
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(full_len + 10).unwrap(); // mid-record cut
        }
        {
            let mut log = Log::open(&path).unwrap();
            let all = log.scan().unwrap();
            assert_eq!(all.len(), 1, "torn record not dropped");
            assert_eq!(all[0].1, b"good record");
            assert_eq!(log.len(), full_len);
            // The log accepts fresh appends after recovery.
            log.append(b"after recovery").unwrap();
            assert_eq!(log.scan().unwrap().len(), 2);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_payload_detected() {
        let path = temp_path("corrupt");
        let offset;
        {
            let mut log = Log::open(&path).unwrap();
            offset = log.append(b"pristine payload").unwrap();
        }
        {
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(offset + 8 + 2)).unwrap();
            f.write_all(b"X").unwrap();
        }
        {
            let mut log = Log::open(&path).unwrap();
            // Recovery truncates the bad record away entirely.
            assert!(log.is_empty() || log.scan().unwrap().is_empty());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_magic_rejected() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOTADB!!whatever").unwrap();
        assert!(matches!(Log::open(&path).unwrap_err(), DbError::BadMagic));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_payload_round_trips() {
        let mut log = Log::in_memory();
        let off = log.append(b"").unwrap();
        assert_eq!(log.read(off).unwrap(), b"");
        assert_eq!(log.scan().unwrap().len(), 1);
    }
}
