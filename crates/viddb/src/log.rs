//! Append-only checksummed record log.
//!
//! Layout:
//!
//! ```text
//! [8-byte magic "TSVRDB01"]
//! repeated records:
//!   [u32 payload_len][u32 crc32(payload)][payload bytes]
//! ```
//!
//! The log talks to its medium through the [`Storage`] trait, so the
//! same recovery logic runs over files, memory buffers, and the
//! fault-injecting test backend.
//!
//! Recovery on open distinguishes three damage classes:
//!
//! * a **torn header** (file shorter than the 8-byte magic) is the
//!   remains of a crashed first write — the file is re-initialised and
//!   the event reported via [`RecoveryReport::recovered_header`];
//! * a **torn tail** (the last record cut mid-write) is truncated away,
//!   the standard WAL rule;
//! * **mid-log corruption** (a bit-flipped record with intact
//!   neighbours) is *quarantined*, not truncated: the scanner resyncs
//!   to the next plausible record header so every record after the
//!   damage stays readable, and the corrupt byte range is reported as a
//!   [`CorruptRegion`].
//!
//! Transient I/O errors (`ErrorKind::Interrupted`) are retried up to
//! [`MAX_IO_RETRIES`] times. A failed append is rolled back by
//! truncating the partial frame; if even the rollback fails the log is
//! *poisoned* — reads still work but further appends return
//! [`DbError::LogPoisoned`].
//!
//! [`Log::sync`] is the durability point: data is only guaranteed to
//! survive a crash once `sync` has returned `Ok`.

use crate::codec::{crc32, MAX_LEN};
use crate::error::{DbError, Result};
use crate::storage::{FileStorage, MemStorage, Storage};
use std::io;
use std::path::Path;

/// File magic: identifies a tsvr video database, version 01.
pub const MAGIC: &[u8; 8] = b"TSVRDB01";

/// How many times a transient (`Interrupted`) storage error is retried
/// before surfacing as [`DbError::Io`].
pub const MAX_IO_RETRIES: u32 = 4;

/// How far past a corrupt record the scanner searches byte-by-byte for
/// the next plausible record header before giving up and treating the
/// rest of the log as a torn tail.
pub const RESYNC_WINDOW: u64 = 4096;

/// A byte range of the log that failed integrity checks during the
/// open-time scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptRegion {
    /// Start offset of the damaged range.
    pub offset: u64,
    /// Length of the damaged range in bytes.
    pub len: u64,
}

/// What open-time recovery found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Mid-log ranges that failed checksum/framing checks and were
    /// skipped (quarantined) by the scanner.
    pub regions: Vec<CorruptRegion>,
    /// Bytes of torn tail truncated away.
    pub truncated_tail: u64,
    /// Whether the file was shorter than the magic (a crashed first
    /// write) and was re-initialised.
    pub recovered_header: bool,
}

impl RecoveryReport {
    /// Whether recovery found nothing to repair.
    pub fn is_clean(&self) -> bool {
        self.regions.is_empty() && self.truncated_tail == 0 && !self.recovered_header
    }
}

/// The append-only log.
#[derive(Debug)]
pub struct Log {
    storage: Box<dyn Storage>,
    /// Logical end of the valid data.
    len: u64,
    /// Set when a failed append could not be rolled back.
    poisoned: bool,
    recovery: RecoveryReport,
}

/// Retries `op` on `Interrupted` up to [`MAX_IO_RETRIES`] times.
fn with_retry<T>(mut op: impl FnMut() -> io::Result<T>) -> Result<T> {
    let mut attempts = 0;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                attempts += 1;
                tsvr_obs::counter!("viddb.retry.attempts").incr();
                if attempts > MAX_IO_RETRIES {
                    tsvr_obs::counter!("viddb.retry.exhausted").incr();
                    tsvr_obs::trace::incident(
                        "viddb.retry.exhausted",
                        &format!("{attempts} interrupted attempts: {e}"),
                    );
                    return Err(DbError::Io(e));
                }
            }
            Err(e) => return Err(DbError::Io(e)),
        }
    }
}

impl Log {
    /// Creates an empty in-memory log.
    pub fn in_memory() -> Log {
        Log::with_storage(Box::new(MemStorage::new()))
            .expect("in-memory log creation cannot fail")
    }

    /// Opens (or creates) a file-backed log, running recovery on
    /// existing content.
    pub fn open(path: &Path) -> Result<Log> {
        Log::with_storage(Box::new(FileStorage::open(path)?))
    }

    /// Opens a log over any [`Storage`] backend, running recovery on
    /// existing content.
    pub fn with_storage(mut storage: Box<dyn Storage>) -> Result<Log> {
        let mut recovery = RecoveryReport::default();
        let len = with_retry(|| storage.len())?;
        if len < MAGIC.len() as u64 {
            // Shorter than the magic: either a brand-new file or the
            // torn remains of a crashed first write. Both are
            // recoverable — re-initialise. (Satellite fix: this is NOT
            // BadMagic, and a real I/O error must surface as Io.)
            if len > 0 {
                recovery.recovered_header = true;
                with_retry(|| storage.truncate(0))?;
            }
            with_retry(|| storage.append(MAGIC))?;
            with_retry(|| storage.flush())?;
            return Ok(Log {
                storage,
                len: MAGIC.len() as u64,
                poisoned: false,
                recovery,
            });
        }
        let mut log = Log {
            storage,
            len,
            poisoned: false,
            recovery,
        };
        let mut magic = [0u8; 8];
        log.read_exact_at(0, &mut magic)?;
        if &magic != MAGIC {
            return Err(DbError::BadMagic);
        }
        let _span = tsvr_obs::span!("viddb.recover");
        let (regions, valid_end) = log.scan_damage()?;
        if valid_end < log.len {
            log.recovery.truncated_tail = log.len - valid_end;
            with_retry(|| log.storage.truncate(valid_end))?;
            log.len = valid_end;
        }
        log.recovery.regions = regions;
        Ok(log)
    }

    /// What open-time recovery found and did.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Total valid bytes (including the magic).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len <= MAGIC.len() as u64
    }

    /// Whether a failed append could not be rolled back; a poisoned log
    /// rejects further appends until reopened.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Reads exactly `buf.len()` bytes at `offset`, looping over short
    /// reads and retrying transient errors.
    fn read_exact_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let mut done = 0;
        while done < buf.len() {
            let n = with_retry(|| self.storage.read_at(offset + done as u64, &mut buf[done..]))?;
            if n == 0 {
                return Err(DbError::UnexpectedEof { context: "log" });
            }
            done += n;
        }
        Ok(())
    }

    /// Appends all of `data`, looping over short writes and retrying
    /// transient errors.
    fn write_raw(&mut self, data: &[u8]) -> Result<()> {
        let mut done = 0;
        while done < data.len() {
            let n = with_retry(|| self.storage.append(&data[done..]))?;
            if n == 0 {
                return Err(DbError::Io(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "storage accepted zero bytes",
                )));
            }
            done += n;
        }
        Ok(())
    }

    /// Appends one record; returns its offset.
    ///
    /// On failure the partial frame is rolled back (truncated), so a
    /// failed append leaves the log exactly as it was. If the rollback
    /// itself fails the log is poisoned.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        if self.poisoned {
            return Err(DbError::LogPoisoned);
        }
        // The frame length prefix is u32 and readers reject anything
        // over MAX_LEN — refuse such payloads up front instead of
        // letting `as u32` truncate the prefix and corrupt the frame.
        if payload.len() as u64 > MAX_LEN {
            return Err(DbError::TooLarge {
                context: "record payload",
                len: payload.len(),
            });
        }
        // Zero-length frames are reserved as a corruption signature: an
        // all-zero 8-byte window IS a checksum-valid empty frame (len 0,
        // crc32("") == 0), so recovery treats such frames as damage. A
        // zero run at a torn tail would otherwise resync onto phantom
        // empty records instead of being truncated.
        if payload.is_empty() {
            return Err(DbError::EmptyRecord);
        }
        let _span = tsvr_obs::tspan!("viddb.append");
        let offset = self.len;
        let mut framed = Vec::with_capacity(payload.len() + 8);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(payload).to_le_bytes());
        framed.extend_from_slice(payload);
        let result = self
            .write_raw(&framed)
            .and_then(|_| with_retry(|| self.storage.flush()));
        if let Err(e) = result {
            tsvr_obs::counter!("viddb.fault.detected").incr();
            // Roll the torn frame back so the on-storage state is
            // unchanged by the failed append.
            let rolled_back = with_retry(|| self.storage.truncate(offset)).is_ok();
            if !rolled_back {
                self.poisoned = true;
            }
            tsvr_obs::trace::incident(
                "viddb.append.rollback",
                &format!(
                    "append at {offset} failed ({e}); rollback {}",
                    if rolled_back { "ok" } else { "FAILED, log poisoned" }
                ),
            );
            return Err(e);
        }
        self.len += framed.len() as u64;
        tsvr_obs::counter!("viddb.log.records").incr();
        tsvr_obs::counter!("viddb.log.bytes").add(framed.len() as u64);
        Ok(offset)
    }

    /// Durability point: flushes appended records down to the medium.
    /// Data is only guaranteed to survive a crash after `sync` returns
    /// `Ok`.
    pub fn sync(&mut self) -> Result<()> {
        if self.poisoned {
            return Err(DbError::LogPoisoned);
        }
        let _span = tsvr_obs::tspan!("viddb.sync");
        tsvr_obs::counter!("viddb.sync.calls").incr();
        with_retry(|| self.storage.sync())
    }

    /// Reads the record at `offset`, verifying its checksum.
    pub fn read(&mut self, offset: u64) -> Result<Vec<u8>> {
        let mut header = [0u8; 8];
        self.read_exact_at(offset, &mut header)?;
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as u64;
        let stored_crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        // len == 0 is reserved: `append` never writes empty frames, so a
        // zero-length header (which an all-zero window satisfies, since
        // crc32 of empty input is zero) can only be damage.
        if len == 0 || len > MAX_LEN || offset + 8 + len > self.len {
            return Err(DbError::ChecksumMismatch { offset });
        }
        let mut payload = vec![0u8; len as usize];
        self.read_exact_at(offset + 8, &mut payload)?;
        if crc32(&payload) != stored_crc {
            return Err(DbError::ChecksumMismatch { offset });
        }
        Ok(payload)
    }

    /// Iterates over all intact records, returning `(offset, payload)`
    /// pairs. Corrupt regions found at open time are skipped.
    pub fn scan(&mut self) -> Result<Vec<(u64, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut offset = MAGIC.len() as u64;
        while offset + 8 <= self.len {
            match self.read(offset) {
                Ok(payload) => {
                    let advance = 8 + payload.len() as u64;
                    out.push((offset, payload));
                    offset += advance;
                }
                Err(e) if e.is_corruption() => match self.resync_from(offset)? {
                    Some(next) => offset = next,
                    None => break,
                },
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Discards every record (used by compaction before rewriting the
    /// live set).
    pub fn reset(&mut self) -> Result<()> {
        with_retry(|| self.storage.truncate(MAGIC.len() as u64))?;
        with_retry(|| self.storage.flush())?;
        self.len = MAGIC.len() as u64;
        self.poisoned = false;
        self.recovery = RecoveryReport::default();
        Ok(())
    }

    /// Whether a record header at `offset` is plausible: its length is
    /// in bounds and the frame fits in the log.
    fn header_plausible(&mut self, offset: u64) -> Result<Option<u64>> {
        if offset + 8 > self.len {
            return Ok(None);
        }
        let mut header = [0u8; 8];
        self.read_exact_at(offset, &mut header)?;
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as u64;
        if (1..=MAX_LEN).contains(&len) && offset + 8 + len <= self.len {
            Ok(Some(offset + 8 + len))
        } else {
            Ok(None)
        }
    }

    /// After a corrupt record at `offset`, finds the next offset that
    /// starts a chain of records parsing cleanly to the end of the log.
    /// `None` means no resync point exists (torn tail).
    ///
    /// Strategy: first trust the corrupt record's own length field (a
    /// payload bit flip leaves the framing intact); if that doesn't
    /// land on a valid chain, scan byte-by-byte over a bounded window.
    /// The CRC on every subsequent record makes a false resync
    /// astronomically unlikely.
    fn resync_from(&mut self, offset: u64) -> Result<Option<u64>> {
        let mut candidates = Vec::new();
        if let Some(next) = self.header_plausible(offset)? {
            candidates.push(next);
        }
        let window_end = (offset + RESYNC_WINDOW).min(self.len.saturating_sub(8));
        let mut probe = offset + 1;
        while probe <= window_end {
            candidates.push(probe);
            probe += 1;
        }
        for cand in candidates {
            if cand == self.len || self.chain_parses(cand)? {
                return Ok(Some(cand));
            }
        }
        Ok(None)
    }

    /// Whether an unbroken chain of checksum-valid records runs from
    /// `offset` to the exact end of the log.
    fn chain_parses(&mut self, mut offset: u64) -> Result<bool> {
        while offset + 8 <= self.len {
            match self.read(offset) {
                Ok(payload) => offset += 8 + payload.len() as u64,
                Err(e) if e.is_corruption() => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        Ok(offset == self.len)
    }

    /// Open-time damage scan: walks the log, collecting mid-log corrupt
    /// regions (where resync succeeded) and the end of the valid data
    /// (before any torn tail).
    fn scan_damage(&mut self) -> Result<(Vec<CorruptRegion>, u64)> {
        let mut regions = Vec::new();
        let mut offset = MAGIC.len() as u64;
        while offset + 8 <= self.len {
            match self.read(offset) {
                Ok(payload) => offset += 8 + payload.len() as u64,
                Err(e) if e.is_corruption() => match self.resync_from(offset)? {
                    Some(next) => {
                        regions.push(CorruptRegion {
                            offset,
                            len: next - offset,
                        });
                        tsvr_obs::counter!("viddb.fault.regions").incr();
                        offset = next;
                    }
                    None => return Ok((regions, offset)),
                },
                Err(e) => return Err(e),
            }
        }
        // A dangling sub-header tail (< 8 bytes) is torn.
        Ok((regions, offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{FaultKind, FaultyStorage};
    use std::fs::OpenOptions;
    use std::io::{Seek, SeekFrom, Write};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tsvr-log-test-{}-{name}.db", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn memory_append_read_round_trip() {
        let mut log = Log::in_memory();
        assert!(log.is_empty());
        let a = log.append(b"hello").unwrap();
        let b = log.append(b"world!").unwrap();
        assert!(!log.is_empty());
        assert_eq!(log.read(a).unwrap(), b"hello");
        assert_eq!(log.read(b).unwrap(), b"world!");
    }

    #[test]
    fn scan_returns_records_in_order() {
        let mut log = Log::in_memory();
        log.append(b"one").unwrap();
        log.append(b"two").unwrap();
        log.append(b"three").unwrap();
        let all = log.scan().unwrap();
        let payloads: Vec<&[u8]> = all.iter().map(|(_, p)| p.as_slice()).collect();
        assert_eq!(payloads, vec![b"one".as_slice(), b"two", b"three"]);
    }

    #[test]
    fn file_log_persists_across_reopen() {
        let path = temp_path("persist");
        {
            let mut log = Log::open(&path).unwrap();
            log.append(b"alpha").unwrap();
            log.append(b"beta").unwrap();
            log.sync().unwrap();
        }
        {
            let mut log = Log::open(&path).unwrap();
            let all = log.scan().unwrap();
            assert_eq!(all.len(), 2);
            assert_eq!(all[1].1, b"beta");
            assert!(log.recovery_report().is_clean());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = temp_path("torn");
        let full_len;
        {
            let mut log = Log::open(&path).unwrap();
            log.append(b"good record").unwrap();
            full_len = log.len();
            log.append(b"this one will be torn").unwrap();
        }
        // Corrupt the second record's tail.
        {
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(full_len + 10).unwrap(); // mid-record cut
        }
        {
            let mut log = Log::open(&path).unwrap();
            let all = log.scan().unwrap();
            assert_eq!(all.len(), 1, "torn record not dropped");
            assert_eq!(all[0].1, b"good record");
            assert_eq!(log.len(), full_len);
            assert_eq!(log.recovery_report().truncated_tail, 10);
            // The log accepts fresh appends after recovery.
            log.append(b"after recovery").unwrap();
            assert_eq!(log.scan().unwrap().len(), 2);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_payload_detected() {
        let path = temp_path("corrupt");
        let offset;
        {
            let mut log = Log::open(&path).unwrap();
            offset = log.append(b"pristine payload").unwrap();
        }
        {
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(offset + 8 + 2)).unwrap();
            f.write_all(b"X").unwrap();
        }
        {
            let mut log = Log::open(&path).unwrap();
            // The sole record is corrupt, so no records are served.
            assert!(log.is_empty() || log.scan().unwrap().is_empty());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_quarantined_not_truncated() {
        let path = temp_path("midlog");
        let (first, second);
        {
            let mut log = Log::open(&path).unwrap();
            first = log.append(b"first record payload").unwrap();
            second = log.append(b"second record payload").unwrap();
            log.append(b"third record payload").unwrap();
        }
        // Flip a payload byte in the FIRST record.
        {
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(first + 8 + 3)).unwrap();
            f.write_all(b"\xff").unwrap();
        }
        {
            let mut log = Log::open(&path).unwrap();
            let report = log.recovery_report().clone();
            assert_eq!(report.regions.len(), 1, "one corrupt region expected");
            assert_eq!(report.regions[0].offset, first);
            assert_eq!(report.truncated_tail, 0);
            // The two later records survive.
            let all = log.scan().unwrap();
            assert_eq!(all.len(), 2, "records after damage must survive");
            assert_eq!(all[0].1, b"second record payload");
            assert_eq!(all[1].1, b"third record payload");
            assert_eq!(all[0].0, second);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_magic_rejected() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOTADB!!whatever").unwrap();
        assert!(matches!(Log::open(&path).unwrap_err(), DbError::BadMagic));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sub_magic_file_is_recovered_not_bad_magic() {
        // Satellite fix: a <8-byte file is a torn first write, not a
        // foreign format.
        let path = temp_path("tornmagic");
        std::fs::write(&path, b"TSVR").unwrap();
        let mut log = Log::open(&path).unwrap();
        assert!(log.is_empty());
        assert!(log.recovery_report().recovered_header);
        log.append(b"fresh").unwrap();
        assert_eq!(log.scan().unwrap().len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn real_io_error_is_io_not_bad_magic() {
        // Satellite fix: an I/O failure while reading the magic must
        // surface as Io, not BadMagic.
        let mut image = Vec::new();
        image.extend_from_slice(MAGIC);
        image.extend_from_slice(&[0u8; 16]);
        let (storage, handle) = FaultyStorage::with_image(image, 7);
        // Exhaust retries on the very first reads.
        for op in 0..=(MAX_IO_RETRIES as u64 + 1) {
            handle.schedule(op, FaultKind::TransientIo);
        }
        match Log::with_storage(Box::new(storage)) {
            Err(DbError::Io(_)) => {}
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn transient_errors_are_retried() {
        let (storage, handle) = FaultyStorage::new(11);
        let mut log = Log::with_storage(Box::new(storage)).unwrap();
        handle.schedule(handle.op_count(), FaultKind::TransientIo);
        let off = log.append(b"retried").unwrap();
        assert_eq!(log.read(off).unwrap(), b"retried");
        assert_eq!(handle.injected().len(), 1);
    }

    #[test]
    fn torn_append_is_rolled_back() {
        let (storage, handle) = FaultyStorage::new(12);
        let mut log = Log::with_storage(Box::new(storage)).unwrap();
        let off = log.append(b"keep me").unwrap();
        let before = log.len();
        handle.schedule(handle.op_count(), FaultKind::TornAppend);
        assert!(log.append(b"torn away entirely").is_err());
        assert_eq!(log.len(), before, "failed append must not grow the log");
        assert!(!log.is_poisoned());
        // Storage image matches: no torn bytes left behind.
        assert_eq!(handle.snapshot().len() as u64, before);
        // The log still works.
        assert_eq!(log.read(off).unwrap(), b"keep me");
        log.append(b"after rollback").unwrap();
        assert_eq!(log.scan().unwrap().len(), 2);
    }

    #[test]
    fn empty_payload_is_rejected() {
        // Zero-length frames are reserved as a corruption signature
        // (see `append`): an all-zero 8-byte window decodes as a
        // checksum-valid empty frame, so recovery must never have to
        // distinguish a real empty record from a zero run left by a
        // torn write.
        let mut log = Log::in_memory();
        let before = log.len();
        assert!(matches!(log.append(b""), Err(DbError::EmptyRecord)));
        assert_eq!(log.len(), before, "rejected append must not grow the log");
        // The log still works afterwards.
        let off = log.append(b"real").unwrap();
        assert_eq!(log.read(off).unwrap(), b"real");
        assert_eq!(log.scan().unwrap().len(), 1);
    }

    #[test]
    fn tail_tear_over_zero_run_truncates_instead_of_phantom_resync() {
        // A record whose payload ends in a zero run (ubiquitous in real
        // records: empty-vec length prefixes, zero u64 fields) is torn
        // mid-frame. The surviving suffix contains 8-byte windows that
        // are all zero — each one a checksum-valid *empty* frame (len 0,
        // crc32("") == 0). Resync must not chain through those phantom
        // records and report a mid-log corrupt region; the damage is a
        // torn tail and must be truncated.
        let path = temp_path("zero-run-tear");
        {
            let mut log = Log::open(&path).unwrap();
            let mut payload = vec![1u8, 2, 3, 4, 5, 6, 7, 8];
            payload.extend_from_slice(&[0u8; 24]);
            log.append(&payload).unwrap();
            log.sync().unwrap();
        }
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 4).unwrap();
        drop(f);

        let mut log = Log::open(&path).unwrap();
        let report = log.recovery_report().clone();
        assert!(
            report.regions.is_empty(),
            "tail tear misclassified as mid-log corruption: {report:?}"
        );
        assert!(report.truncated_tail > 0, "torn tail bytes must be counted");
        assert_eq!(log.scan().unwrap().len(), 0, "no phantom records may survive");
        // The truncated log accepts new records cleanly.
        let off = log.append(b"after recovery").unwrap();
        assert_eq!(log.read(off).unwrap(), b"after recovery");
        let _ = std::fs::remove_file(&path);
    }

    // ---- resync tail-bound regression tests (satellite 3) ----------------
    //
    // The resync window is bounded by `self.len.saturating_sub(8)`. That
    // bound is correct — a valid record header needs 8 bytes, so no
    // resync *candidate* can start past len-8 — but corruption *within*
    // the last 8 bytes of the file exercises the edge the bound guards.
    // Two cases pin the behavior:

    #[test]
    fn trailing_record_corrupt_payload_near_eof_is_quarantined() {
        // Flip a payload byte of the FINAL record, inside the last 8
        // bytes of the file. The record's length field is intact, so
        // header_plausible yields `next == len` and the `cand ==
        // self.len` arm quarantines exactly the damaged record — the
        // earlier record must survive and nothing may be truncated.
        let path = temp_path("tail-payload");
        let (first_off, tail_off, file_len);
        {
            let mut log = Log::open(&path).unwrap();
            first_off = log.append(b"earlier record that must survive").unwrap();
            tail_off = log.append(b"tail").unwrap();
            file_len = log.len();
            log.sync().unwrap();
        }
        {
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            // Last payload byte of the final record — within 8 bytes of EOF.
            f.seek(SeekFrom::Start(file_len - 1)).unwrap();
            f.write_all(b"\xff").unwrap();
        }
        {
            let mut log = Log::open(&path).unwrap();
            let report = log.recovery_report().clone();
            assert_eq!(report.truncated_tail, 0, "tail must be quarantined, not truncated");
            assert_eq!(report.regions.len(), 1);
            assert_eq!(report.regions[0].offset, tail_off);
            assert_eq!(report.regions[0].len, file_len - tail_off);
            let all = log.scan().unwrap();
            assert_eq!(all.len(), 1, "record before the damage must survive");
            assert_eq!(all[0].0, first_off);
            assert_eq!(all[0].1, b"earlier record that must survive");
            // The log keeps accepting appends after the damaged tail.
            log.append(b"new record").unwrap();
            assert_eq!(log.scan().unwrap().len(), 2);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn trailing_record_corrupt_header_near_eof_is_torn_tail() {
        // Corrupt the FINAL record's length field so the frame no
        // longer fits the file. No plausible resync candidate exists at
        // or before len-8, which is indistinguishable from a torn
        // write — the record is truncated away (standard WAL rule) and
        // everything before it survives.
        let path = temp_path("tail-header");
        let (first_off, tail_off);
        {
            let mut log = Log::open(&path).unwrap();
            first_off = log.append(b"earlier record that must survive").unwrap();
            tail_off = log.append(b"x").unwrap(); // 9-byte frame: header ends within 8 bytes of EOF
            log.sync().unwrap();
        }
        {
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(tail_off)).unwrap();
            f.write_all(&u32::MAX.to_le_bytes()).unwrap(); // hostile length
        }
        {
            let mut log = Log::open(&path).unwrap();
            let report = log.recovery_report().clone();
            assert_eq!(report.regions.len(), 0);
            assert_eq!(report.truncated_tail, 9, "damaged final frame truncated");
            assert_eq!(log.len(), tail_off);
            let all = log.scan().unwrap();
            assert_eq!(all.len(), 1);
            assert_eq!(all[0].0, first_off);
            log.append(b"new record").unwrap();
            assert_eq!(log.scan().unwrap().len(), 2);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn oversized_payload_rejected_before_framing() {
        // MAX_LEN + 1 bytes would truncate the u32 length prefix (or be
        // rejected by every reader); append must refuse up front and
        // leave the log untouched.
        let mut log = Log::in_memory();
        log.append(b"keep").unwrap();
        let before = log.len();
        let huge = vec![0u8; (MAX_LEN + 1) as usize];
        assert!(matches!(
            log.append(&huge).unwrap_err(),
            DbError::TooLarge { context: "record payload", .. }
        ));
        assert_eq!(log.len(), before);
        assert!(!log.is_poisoned());
        assert_eq!(log.scan().unwrap().len(), 1);
    }
}
