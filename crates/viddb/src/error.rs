//! Database error type.

use std::fmt;

/// Errors produced by the video database.
#[derive(Debug)]
pub enum DbError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Decoding ran past the end of a buffer.
    UnexpectedEof {
        /// What was being decoded.
        context: &'static str,
    },
    /// A stored checksum did not match the payload.
    ChecksumMismatch {
        /// Byte offset of the corrupt record in the log.
        offset: u64,
    },
    /// The file does not start with the expected magic bytes.
    BadMagic,
    /// A record carried an unknown type tag.
    UnknownRecordType(u8),
    /// The requested clip does not exist.
    ClipNotFound(u64),
    /// A clip with this id already exists.
    DuplicateClip(u64),
    /// A string field failed UTF-8 validation.
    InvalidUtf8,
    /// A length field exceeded sanity bounds (corrupt or hostile data).
    LengthOutOfBounds(u64),
    /// The clip's stored record failed integrity checks and has been
    /// quarantined; re-ingesting the clip repairs it.
    ClipQuarantined(u64),
    /// A failed append could not be rolled back; the log refuses
    /// further writes (reads still work) until reopened.
    LogPoisoned,
    /// A collection handed to the encoder exceeds the `u32` length
    /// prefix (or the codec's sanity bound). This is a caller mistake
    /// caught before any bytes hit the log — previously the length was
    /// cast with `as u32` and silently truncated, corrupting the record.
    TooLarge {
        /// What was being encoded.
        context: &'static str,
        /// The offending element count.
        len: usize,
    },
    /// An empty payload was handed to [`crate::log::Log::append`].
    /// Zero-length frames are reserved as a corruption signature: an
    /// all-zero 8-byte window decodes as a "valid" empty frame (length
    /// zero plus the CRC-32 of empty input, which is zero), so recovery
    /// must be able to treat them as damage, never as data.
    EmptyRecord,
    /// A shard of a [`crate::shard::ShardedDb`] failed to open and was
    /// quarantined; operations routed to it fail while the remaining
    /// shards keep serving.
    ShardUnavailable {
        /// Shard file name within the database directory.
        file: String,
        /// Why the shard was quarantined (the stringified open error).
        reason: String,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "io error: {e}"),
            DbError::UnexpectedEof { context } => {
                write!(f, "unexpected end of buffer while decoding {context}")
            }
            DbError::ChecksumMismatch { offset } => {
                write!(f, "checksum mismatch at log offset {offset}")
            }
            DbError::BadMagic => write!(f, "not a tsvr video database (bad magic)"),
            DbError::UnknownRecordType(t) => write!(f, "unknown record type {t}"),
            DbError::ClipNotFound(id) => write!(f, "clip {id} not found"),
            DbError::DuplicateClip(id) => write!(f, "clip {id} already exists"),
            DbError::InvalidUtf8 => write!(f, "invalid utf-8 in string field"),
            DbError::LengthOutOfBounds(n) => write!(f, "length field {n} out of bounds"),
            DbError::ClipQuarantined(id) => {
                write!(f, "clip {id} is quarantined (corrupt record; re-ingest to repair)")
            }
            DbError::LogPoisoned => {
                write!(f, "log poisoned by an unrecoverable append failure; reopen to recover")
            }
            DbError::TooLarge { context, len } => {
                write!(f, "{context} with {len} elements exceeds the u32 length prefix")
            }
            DbError::EmptyRecord => {
                write!(f, "empty record payloads are not supported (zero-length frames are reserved as a corruption signature)")
            }
            DbError::ShardUnavailable { file, reason } => {
                write!(f, "shard {file} is quarantined: {reason}")
            }
        }
    }
}

impl DbError {
    /// Whether this error indicates corrupt stored data (as opposed to
    /// an environmental failure or a caller mistake). Corruption errors
    /// trigger quarantine; others propagate.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            DbError::UnexpectedEof { .. }
                | DbError::ChecksumMismatch { .. }
                | DbError::UnknownRecordType(_)
                | DbError::InvalidUtf8
                | DbError::LengthOutOfBounds(_)
                | DbError::BadMagic
        )
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e)
    }
}

/// Result alias for database operations.
pub type Result<T> = std::result::Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_details() {
        assert!(DbError::ClipNotFound(42).to_string().contains("42"));
        assert!(DbError::ChecksumMismatch { offset: 128 }
            .to_string()
            .contains("128"));
        assert!(DbError::UnknownRecordType(9).to_string().contains('9'));
        assert!(DbError::UnexpectedEof { context: "meta" }
            .to_string()
            .contains("meta"));
    }

    #[test]
    fn corruption_classification_is_stable() {
        assert!(DbError::ChecksumMismatch { offset: 0 }.is_corruption());
        assert!(DbError::UnexpectedEof { context: "x" }.is_corruption());
        assert!(DbError::LengthOutOfBounds(1).is_corruption());
        assert!(DbError::InvalidUtf8.is_corruption());
        assert!(DbError::UnknownRecordType(200).is_corruption());
        assert!(DbError::BadMagic.is_corruption());
        assert!(!DbError::Io(std::io::Error::other("x")).is_corruption());
        assert!(!DbError::ClipNotFound(1).is_corruption());
        assert!(!DbError::ClipQuarantined(1).is_corruption());
        assert!(!DbError::LogPoisoned.is_corruption());
        // TooLarge and EmptyRecord are caller mistakes caught on encode,
        // not stored-data corruption — they must never trigger quarantine.
        assert!(!DbError::TooLarge { context: "rows", len: 5 }.is_corruption());
        assert!(!DbError::EmptyRecord.is_corruption());
    }

    #[test]
    fn io_error_round_trips_source() {
        let e: DbError = std::io::Error::other("boom").into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("boom"));
    }
}
