//! Durable record types and their binary encodings.

use crate::codec::{Reader, Writer};
use crate::error::{DbError, Result};

/// Metadata of one stored clip — "the time and place a video is taken"
/// (paper §1) plus camera identity, which the paper's future work needs
/// for cross-camera normalization.
#[derive(Debug, Clone, PartialEq)]
pub struct ClipMeta {
    /// Unique clip id.
    pub clip_id: u64,
    /// Human-readable name.
    pub name: String,
    /// Capture location (e.g. "tunnel-17" or "intersection-taipei-3").
    pub location: String,
    /// Camera identifier.
    pub camera: String,
    /// Capture start time, seconds since the epoch.
    pub start_time: u64,
    /// Number of frames.
    pub frame_count: u32,
    /// Frame width, px.
    pub width: u32,
    /// Frame height, px.
    pub height: u32,
}

/// One tracked vehicle trajectory (centroids packed as f32 pairs — half
/// the storage of f64 at far-sub-pixel precision loss).
#[derive(Debug, Clone, PartialEq)]
pub struct TrackRow {
    /// Tracker id within the clip.
    pub track_id: u64,
    /// Frame of the first centroid.
    pub start_frame: u32,
    /// Consecutive per-frame centroids.
    pub centroids: Vec<(f32, f32)>,
}

/// One trajectory sequence inside a window: per-checkpoint α rows.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceRow {
    /// Track id the sequence came from.
    pub track_id: u64,
    /// `[1/mdist, vdiff, θ]` per checkpoint.
    pub alphas: Vec<[f64; 3]>,
}

/// One extracted video sequence (retrieval window).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRow {
    /// Dense window index within the clip.
    pub window_index: u32,
    /// First covered frame.
    pub start_frame: u32,
    /// Last covered frame (inclusive).
    pub end_frame: u32,
    /// Contained trajectory sequences.
    pub sequences: Vec<SequenceRow>,
}

/// Ground-truth (or analyst-annotated) incident.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentRow {
    /// Incident kind name (e.g. "wall_crash").
    pub kind: String,
    /// First frame.
    pub start_frame: u32,
    /// Last frame (inclusive).
    pub end_frame: u32,
    /// Involved vehicle/track ids.
    pub vehicle_ids: Vec<u64>,
}

/// A persisted retrieval session: which clip was queried, what feedback
/// each round collected, and the accuracy trace. Persisting sessions is
/// what lets the database "customize the search engine for the need of
/// individual users" across visits (§1).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRow {
    /// Unique session id.
    pub session_id: u64,
    /// Clip the session queried.
    pub clip_id: u64,
    /// Query event type (e.g. "accident").
    pub query: String,
    /// Learner name used.
    pub learner: String,
    /// Per-round labeled feedback: `(window_index, relevant)`.
    pub feedback: Vec<Vec<(u32, bool)>>,
    /// Accuracy@n per round (initial + feedback rounds).
    pub accuracies: Vec<f64>,
}

/// Format magic of persisted feature-index segments: the bytes `TSIX`.
pub const INDEX_MAGIC: u32 = u32::from_le_bytes(*b"TSIX");

/// Current `TSIX` segment format version. Bump on any layout change so
/// old segments are rejected (and rebuilt) instead of misdecoded.
pub const INDEX_FORMAT_VERSION: u32 = 1;

/// Format version of *compressed* `TSIX` segments (XOR-delta +
/// bit-packed feature rows, stored under their own record tag). Kept
/// distinct from [`INDEX_FORMAT_VERSION`] so a compressed payload can
/// never be misread through the uncompressed path or vice versa.
pub const INDEX_COMPRESSED_VERSION: u32 = 2;

/// One window's worth of precomputed retrieval features inside an index
/// segment: the frame span, the per-trajectory-sequence track ids, and
/// the flat concatenation of their α feature vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexWindowRow {
    /// Dense window index within the clip.
    pub window_index: u32,
    /// First checkpoint (inclusive) on the global grid.
    pub start_checkpoint: u64,
    /// First covered frame. Stored wide (u64): index spans come from
    /// the unbounded checkpoint grid, unlike the u32 clip-frame rows.
    pub start_frame: u64,
    /// Last covered frame (inclusive).
    pub end_frame: u64,
    /// Track id of each trajectory sequence, in sequence order.
    pub track_ids: Vec<u64>,
    /// Flat raw feature matrix: `track_ids.len() × feature_dim` values,
    /// row-major (one `feature_dim`-long vector per trajectory
    /// sequence). Bit-exact f64s — index-served features are identical
    /// to freshly extracted ones.
    pub features: Vec<f64>,
}

/// A persisted feature index for one clip — the extracted `Dataset`
/// (paper §5.1) serialized so queries can skip vision and segmentation
/// entirely. Stored under its own record tag with a `TSIX` magic +
/// format version header, and invalidated via `config_hash` (computed
/// over clip id, window/feature configuration, and pipeline version).
#[derive(Debug, Clone, PartialEq)]
pub struct IndexSegment {
    /// Clip the index was built from.
    pub clip_id: u64,
    /// Invalidation hash: anything that changes extraction output
    /// changes this hash, so stale indexes are rebuilt, never served.
    pub config_hash: u64,
    /// Feature vector length per trajectory sequence
    /// (`3 × window_size`).
    pub feature_dim: u32,
    /// Per-window feature rows, in temporal order.
    pub windows: Vec<IndexWindowRow>,
}

/// A complete clip's worth of derived data.
#[derive(Debug, Clone, PartialEq)]
pub struct ClipBundle {
    /// Clip metadata.
    pub meta: ClipMeta,
    /// Tracked trajectories.
    pub tracks: Vec<TrackRow>,
    /// Extracted retrieval windows.
    pub windows: Vec<WindowRow>,
    /// Incident annotations.
    pub incidents: Vec<IncidentRow>,
}

// ---- encodings ----------------------------------------------------------

impl ClipMeta {
    /// Serializes the record.
    pub fn encode(&self, w: &mut Writer) -> Result<()> {
        w.put_u64(self.clip_id);
        w.put_str(&self.name)?;
        w.put_str(&self.location)?;
        w.put_str(&self.camera)?;
        w.put_u64(self.start_time);
        w.put_u32(self.frame_count);
        w.put_u32(self.width);
        w.put_u32(self.height);
        Ok(())
    }

    /// Deserializes the record.
    pub fn decode(r: &mut Reader) -> Result<ClipMeta> {
        Ok(ClipMeta {
            clip_id: r.get_u64()?,
            name: r.get_str()?,
            location: r.get_str()?,
            camera: r.get_str()?,
            start_time: r.get_u64()?,
            frame_count: r.get_u32()?,
            width: r.get_u32()?,
            height: r.get_u32()?,
        })
    }
}

impl TrackRow {
    /// Serializes the record.
    pub fn encode(&self, w: &mut Writer) -> Result<()> {
        w.put_u64(self.track_id);
        w.put_u32(self.start_frame);
        w.put_len(self.centroids.len(), "track centroids")?;
        for &(x, y) in &self.centroids {
            w.put_u32(x.to_bits());
            w.put_u32(y.to_bits());
        }
        Ok(())
    }

    /// Deserializes the record.
    pub fn decode(r: &mut Reader) -> Result<TrackRow> {
        let track_id = r.get_u64()?;
        let start_frame = r.get_u32()?;
        let n = r.get_len_bounded(8)?; // (f32, f32) per centroid
        let mut centroids = Vec::with_capacity(n);
        for _ in 0..n {
            let x = f32::from_bits(r.get_u32()?);
            let y = f32::from_bits(r.get_u32()?);
            centroids.push((x, y));
        }
        Ok(TrackRow {
            track_id,
            start_frame,
            centroids,
        })
    }
}

impl SequenceRow {
    fn encode(&self, w: &mut Writer) -> Result<()> {
        w.put_u64(self.track_id);
        w.put_len(self.alphas.len(), "sequence alphas")?;
        for a in &self.alphas {
            for &v in a {
                w.put_f64(v);
            }
        }
        Ok(())
    }

    fn decode(r: &mut Reader) -> Result<SequenceRow> {
        let track_id = r.get_u64()?;
        let n = r.get_len_bounded(24)?; // 3 × f64 per alpha row
        let mut alphas = Vec::with_capacity(n);
        for _ in 0..n {
            alphas.push([r.get_f64()?, r.get_f64()?, r.get_f64()?]);
        }
        Ok(SequenceRow { track_id, alphas })
    }
}

impl WindowRow {
    /// Serializes the record.
    pub fn encode(&self, w: &mut Writer) -> Result<()> {
        w.put_u32(self.window_index);
        w.put_u32(self.start_frame);
        w.put_u32(self.end_frame);
        w.put_len(self.sequences.len(), "window sequences")?;
        for s in &self.sequences {
            s.encode(w)?;
        }
        Ok(())
    }

    /// Deserializes the record.
    pub fn decode(r: &mut Reader) -> Result<WindowRow> {
        let window_index = r.get_u32()?;
        let start_frame = r.get_u32()?;
        let end_frame = r.get_u32()?;
        let n = r.get_len_bounded(12)?; // u64 id + u32 count per sequence
        let mut sequences = Vec::with_capacity(n);
        for _ in 0..n {
            sequences.push(SequenceRow::decode(r)?);
        }
        Ok(WindowRow {
            window_index,
            start_frame,
            end_frame,
            sequences,
        })
    }
}

impl IncidentRow {
    /// Serializes the record.
    pub fn encode(&self, w: &mut Writer) -> Result<()> {
        w.put_str(&self.kind)?;
        w.put_u32(self.start_frame);
        w.put_u32(self.end_frame);
        w.put_len(self.vehicle_ids.len(), "incident vehicle ids")?;
        for &id in &self.vehicle_ids {
            w.put_u64(id);
        }
        Ok(())
    }

    /// Deserializes the record.
    pub fn decode(r: &mut Reader) -> Result<IncidentRow> {
        let kind = r.get_str()?;
        let start_frame = r.get_u32()?;
        let end_frame = r.get_u32()?;
        let n = r.get_len_bounded(8)?; // u64 per vehicle id
        let mut vehicle_ids = Vec::with_capacity(n);
        for _ in 0..n {
            vehicle_ids.push(r.get_u64()?);
        }
        Ok(IncidentRow {
            kind,
            start_frame,
            end_frame,
            vehicle_ids,
        })
    }
}

impl IndexWindowRow {
    fn encode(&self, w: &mut Writer) -> Result<()> {
        w.put_u32(self.window_index);
        w.put_u64(self.start_checkpoint);
        w.put_u64(self.start_frame);
        w.put_u64(self.end_frame);
        w.put_len(self.track_ids.len(), "index track ids")?;
        for &id in &self.track_ids {
            w.put_u64(id);
        }
        w.put_len(self.features.len(), "index features")?;
        for &v in &self.features {
            w.put_f64(v);
        }
        Ok(())
    }

    fn decode(r: &mut Reader, feature_dim: u32) -> Result<IndexWindowRow> {
        let window_index = r.get_u32()?;
        let start_checkpoint = r.get_u64()?;
        let start_frame = r.get_u64()?;
        let end_frame = r.get_u64()?;
        let n = r.get_len_bounded(8)?; // u64 per track id
        let mut track_ids = Vec::with_capacity(n);
        for _ in 0..n {
            track_ids.push(r.get_u64()?);
        }
        let m = r.get_len_bounded(8)?; // f64 per feature
        // The flat matrix must be exactly sequences × feature_dim; any
        // other shape is a corrupt segment, not a usable index.
        if m != n.saturating_mul(feature_dim as usize) {
            return Err(DbError::LengthOutOfBounds(m as u64));
        }
        let mut features = Vec::with_capacity(m);
        for _ in 0..m {
            features.push(r.get_f64()?);
        }
        Ok(IndexWindowRow {
            window_index,
            start_checkpoint,
            start_frame,
            end_frame,
            track_ids,
            features,
        })
    }
}

impl IndexSegment {
    /// Serializes the segment, magic + format version first.
    pub fn encode(&self, w: &mut Writer) -> Result<()> {
        w.put_u32(INDEX_MAGIC);
        w.put_u32(INDEX_FORMAT_VERSION);
        w.put_u64(self.clip_id);
        w.put_u64(self.config_hash);
        w.put_u32(self.feature_dim);
        w.put_len(self.windows.len(), "index windows")?;
        for win in &self.windows {
            win.encode(w)?;
        }
        Ok(())
    }

    /// Deserializes a segment. A wrong magic or an unknown format
    /// version fails with [`DbError::BadMagic`] — classified as
    /// corruption, so the database drops (and callers rebuild) the
    /// segment instead of serving a misdecoded index.
    pub fn decode(r: &mut Reader) -> Result<IndexSegment> {
        if r.get_u32()? != INDEX_MAGIC {
            return Err(DbError::BadMagic);
        }
        if r.get_u32()? != INDEX_FORMAT_VERSION {
            return Err(DbError::BadMagic);
        }
        let clip_id = r.get_u64()?;
        let config_hash = r.get_u64()?;
        let feature_dim = r.get_u32()?;
        let n = r.get_len_bounded(32)?; // fixed window header alone is 32 bytes
        let mut windows = Vec::with_capacity(n);
        for _ in 0..n {
            windows.push(IndexWindowRow::decode(r, feature_dim)?);
        }
        Ok(IndexSegment {
            clip_id,
            config_hash,
            feature_dim,
            windows,
        })
    }
}

impl IndexSegment {
    /// Serializes the segment with compressed feature rows: identical
    /// header and per-window layout to [`IndexSegment::encode`], except
    /// the format version is [`INDEX_COMPRESSED_VERSION`] and each
    /// window's flat f64 matrix is a length-prefixed
    /// [`crate::compress`] buffer instead of raw 8-byte values.
    pub fn encode_compressed(&self, w: &mut Writer) -> Result<()> {
        w.put_u32(INDEX_MAGIC);
        w.put_u32(INDEX_COMPRESSED_VERSION);
        w.put_u64(self.clip_id);
        w.put_u64(self.config_hash);
        w.put_u32(self.feature_dim);
        w.put_len(self.windows.len(), "index windows")?;
        for win in &self.windows {
            w.put_u32(win.window_index);
            w.put_u64(win.start_checkpoint);
            w.put_u64(win.start_frame);
            w.put_u64(win.end_frame);
            w.put_len(win.track_ids.len(), "index track ids")?;
            for &id in &win.track_ids {
                w.put_u64(id);
            }
            w.put_bytes(&crate::compress::compress_f64s(&win.features)?)?;
        }
        Ok(())
    }

    /// Deserializes a compressed segment. Decompressed feature rows are
    /// bit-exact; shape mismatches, bad magic, and corrupt compressed
    /// streams all fail as corruption (so the database drops and
    /// rebuilds the segment).
    pub fn decode_compressed(r: &mut Reader) -> Result<IndexSegment> {
        if r.get_u32()? != INDEX_MAGIC {
            return Err(DbError::BadMagic);
        }
        if r.get_u32()? != INDEX_COMPRESSED_VERSION {
            return Err(DbError::BadMagic);
        }
        let clip_id = r.get_u64()?;
        let config_hash = r.get_u64()?;
        let feature_dim = r.get_u32()?;
        let n = r.get_len_bounded(32)?; // fixed window header alone is 32 bytes
        let mut windows = Vec::with_capacity(n);
        for _ in 0..n {
            let window_index = r.get_u32()?;
            let start_checkpoint = r.get_u64()?;
            let start_frame = r.get_u64()?;
            let end_frame = r.get_u64()?;
            let t = r.get_len_bounded(8)?; // u64 per track id
            let mut track_ids = Vec::with_capacity(t);
            for _ in 0..t {
                track_ids.push(r.get_u64()?);
            }
            let features = crate::compress::decompress_f64s(r.get_bytes()?)?;
            if features.len() != t.saturating_mul(feature_dim as usize) {
                return Err(DbError::LengthOutOfBounds(features.len() as u64));
            }
            windows.push(IndexWindowRow {
                window_index,
                start_checkpoint,
                start_frame,
                end_frame,
                track_ids,
                features,
            });
        }
        Ok(IndexSegment {
            clip_id,
            config_hash,
            feature_dim,
            windows,
        })
    }
}

impl SessionRow {
    /// Serializes the record.
    pub fn encode(&self, w: &mut Writer) -> Result<()> {
        w.put_u64(self.session_id);
        w.put_u64(self.clip_id);
        w.put_str(&self.query)?;
        w.put_str(&self.learner)?;
        w.put_len(self.feedback.len(), "session rounds")?;
        for round in &self.feedback {
            w.put_len(round.len(), "session round items")?;
            for &(win, rel) in round {
                w.put_u32(win);
                w.put_bool(rel);
            }
        }
        w.put_len(self.accuracies.len(), "session accuracies")?;
        for &a in &self.accuracies {
            w.put_f64(a);
        }
        Ok(())
    }

    /// Deserializes the record.
    pub fn decode(r: &mut Reader) -> Result<SessionRow> {
        let session_id = r.get_u64()?;
        let clip_id = r.get_u64()?;
        let query = r.get_str()?;
        let learner = r.get_str()?;
        let rounds = r.get_len_bounded(4)?; // u32 count per round
        let mut feedback = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let n = r.get_len_bounded(5)?; // u32 + bool per item
            let mut round = Vec::with_capacity(n);
            for _ in 0..n {
                round.push((r.get_u32()?, r.get_bool()?));
            }
            feedback.push(round);
        }
        let n = r.get_len_bounded(8)?; // f64 per accuracy
        let mut accuracies = Vec::with_capacity(n);
        for _ in 0..n {
            accuracies.push(r.get_f64()?);
        }
        Ok(SessionRow {
            session_id,
            clip_id,
            query,
            learner,
            feedback,
            accuracies,
        })
    }
}

#[cfg(test)]
pub(crate) mod test_fixtures {
    use super::*;

    /// A small but fully populated bundle for round-trip tests.
    pub fn sample_bundle(clip_id: u64) -> ClipBundle {
        ClipBundle {
            meta: ClipMeta {
                clip_id,
                name: format!("clip-{clip_id}"),
                location: "tunnel-17".into(),
                camera: "cam-03".into(),
                start_time: 1_167_609_600,
                frame_count: 400,
                width: 320,
                height: 240,
            },
            tracks: vec![
                TrackRow {
                    track_id: 1,
                    start_frame: 10,
                    centroids: vec![(10.0, 104.5), (13.9, 104.4), (18.1, 104.6)],
                },
                TrackRow {
                    track_id: 2,
                    start_frame: 42,
                    centroids: vec![(5.0, 136.0)],
                },
            ],
            windows: vec![WindowRow {
                window_index: 0,
                start_frame: 0,
                end_frame: 14,
                sequences: vec![SequenceRow {
                    track_id: 1,
                    alphas: vec![[0.0, 0.0, 0.0], [0.1, 0.8, 0.4], [0.05, 0.2, 0.1]],
                }],
            }],
            incidents: vec![IncidentRow {
                kind: "wall_crash".into(),
                start_frame: 120,
                end_frame: 142,
                vehicle_ids: vec![1],
            }],
        }
    }

    /// A small index segment (2 windows, feature_dim 9) for round-trip
    /// and corruption tests.
    pub fn sample_index(clip_id: u64) -> IndexSegment {
        IndexSegment {
            clip_id,
            config_hash: 0xfeed_beef_dead_cafe,
            feature_dim: 9,
            windows: vec![
                IndexWindowRow {
                    window_index: 0,
                    start_checkpoint: 0,
                    start_frame: 0,
                    end_frame: 14,
                    track_ids: vec![1, 2],
                    features: (0..18).map(|i| i as f64 * 0.25).collect(),
                },
                IndexWindowRow {
                    window_index: 1,
                    start_checkpoint: 3,
                    start_frame: 15,
                    end_frame: 29,
                    track_ids: vec![2],
                    features: (0..9).map(|i| -(i as f64)).collect(),
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixtures::sample_bundle;
    use super::*;

    fn round_trip<T: PartialEq + std::fmt::Debug>(
        v: &T,
        enc: impl Fn(&T, &mut Writer) -> Result<()>,
        dec: impl Fn(&mut Reader) -> Result<T>,
    ) {
        let mut w = Writer::new();
        enc(v, &mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = dec(&mut r).unwrap();
        assert_eq!(&back, v);
        assert!(r.is_exhausted(), "trailing bytes after decode");
    }

    #[test]
    fn clip_meta_round_trip() {
        let b = sample_bundle(9);
        round_trip(&b.meta, ClipMeta::encode, ClipMeta::decode);
    }

    #[test]
    fn track_round_trip() {
        let b = sample_bundle(9);
        for t in &b.tracks {
            round_trip(t, TrackRow::encode, TrackRow::decode);
        }
        // Empty centroids edge case.
        let empty = TrackRow {
            track_id: 3,
            start_frame: 0,
            centroids: vec![],
        };
        round_trip(&empty, TrackRow::encode, TrackRow::decode);
    }

    #[test]
    fn window_round_trip() {
        let b = sample_bundle(9);
        round_trip(&b.windows[0], WindowRow::encode, WindowRow::decode);
    }

    #[test]
    fn incident_round_trip() {
        let b = sample_bundle(9);
        round_trip(&b.incidents[0], IncidentRow::encode, IncidentRow::decode);
    }

    #[test]
    fn session_round_trip() {
        let s = SessionRow {
            session_id: 77,
            clip_id: 9,
            query: "accident".into(),
            learner: "MIL_OneClassSVM".into(),
            feedback: vec![vec![(0, true), (3, false)], vec![(5, true)]],
            accuracies: vec![0.4, 0.5, 0.6],
        };
        round_trip(&s, SessionRow::encode, SessionRow::decode);
    }

    #[test]
    fn index_segment_round_trip() {
        let seg = test_fixtures::sample_index(9);
        round_trip(&seg, IndexSegment::encode, IndexSegment::decode);
        // Empty segment edge case (clip with no extractable windows).
        let empty = IndexSegment {
            clip_id: 1,
            config_hash: 7,
            feature_dim: 9,
            windows: vec![],
        };
        round_trip(&empty, IndexSegment::encode, IndexSegment::decode);
    }

    #[test]
    fn index_segment_rejects_wrong_magic_and_version() {
        let seg = test_fixtures::sample_index(9);
        let mut w = Writer::new();
        seg.encode(&mut w).unwrap();
        let bytes = w.into_bytes();

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            IndexSegment::decode(&mut Reader::new(&bad_magic)),
            Err(DbError::BadMagic)
        ));

        let mut bad_version = bytes.clone();
        bad_version[4] = 0xfe; // version 1 -> garbage
        assert!(matches!(
            IndexSegment::decode(&mut Reader::new(&bad_version)),
            Err(DbError::BadMagic)
        ));
    }

    #[test]
    fn index_segment_rejects_feature_shape_mismatch() {
        let mut seg = test_fixtures::sample_index(9);
        seg.windows[0].features.pop(); // 17 values for 2 × 9 slots
        let mut w = Writer::new();
        seg.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let err = IndexSegment::decode(&mut Reader::new(&bytes)).unwrap_err();
        assert!(err.is_corruption(), "shape mismatch not corruption: {err:?}");
    }

    #[test]
    fn truncated_index_segment_fails_cleanly() {
        let seg = test_fixtures::sample_index(9);
        let mut w = Writer::new();
        seg.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        for cut in [0usize, 3, 8, 20, bytes.len() / 2, bytes.len() - 1] {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(
                IndexSegment::decode(&mut r).is_err(),
                "cut at {cut} succeeded"
            );
        }
    }

    #[test]
    fn truncated_record_fails_cleanly() {
        let b = sample_bundle(9);
        let mut w = Writer::new();
        b.windows[0].encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        for cut in [1usize, 5, bytes.len() / 2, bytes.len() - 1] {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(WindowRow::decode(&mut r).is_err(), "cut at {cut} succeeded");
        }
    }

    #[test]
    fn compressed_index_segment_round_trips_bit_exact() {
        let seg = test_fixtures::sample_index(9);
        round_trip(&seg, IndexSegment::encode_compressed, IndexSegment::decode_compressed);
        let empty = IndexSegment {
            clip_id: 1,
            config_hash: 7,
            feature_dim: 9,
            windows: vec![],
        };
        round_trip(&empty, IndexSegment::encode_compressed, IndexSegment::decode_compressed);
        // NaN payloads and signed zeros in feature rows survive bitwise.
        let mut special = test_fixtures::sample_index(2);
        special.windows[1].features = vec![
            f64::from_bits(0x7ff8_0000_dead_beef),
            -0.0,
            f64::NEG_INFINITY,
            5e-324,
            0.0,
            1.5,
            -2.25,
            f64::MAX,
            f64::MIN_POSITIVE,
        ];
        let mut w = Writer::new();
        special.encode_compressed(&mut w).unwrap();
        let back = IndexSegment::decode_compressed(&mut Reader::new(&w.into_bytes())).unwrap();
        for (a, b) in special.windows[1].features.iter().zip(&back.windows[1].features) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn compressed_and_uncompressed_cannot_cross_decode() {
        let seg = test_fixtures::sample_index(9);
        let mut wc = Writer::new();
        seg.encode_compressed(&mut wc).unwrap();
        let compressed = wc.into_bytes();
        let mut wu = Writer::new();
        seg.encode(&mut wu).unwrap();
        let uncompressed = wu.into_bytes();
        // The version field firewalls the two framings.
        assert!(matches!(
            IndexSegment::decode(&mut Reader::new(&compressed)),
            Err(DbError::BadMagic)
        ));
        assert!(matches!(
            IndexSegment::decode_compressed(&mut Reader::new(&uncompressed)),
            Err(DbError::BadMagic)
        ));
    }

    #[test]
    fn truncated_compressed_segment_fails_cleanly() {
        let seg = test_fixtures::sample_index(9);
        let mut w = Writer::new();
        seg.encode_compressed(&mut w).unwrap();
        let bytes = w.into_bytes();
        for cut in [0usize, 3, 8, 20, bytes.len() / 2, bytes.len() - 1] {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(
                IndexSegment::decode_compressed(&mut r).is_err(),
                "cut at {cut} succeeded"
            );
        }
    }

    #[test]
    fn oversized_collection_fails_typed_not_truncated() {
        // A centroid vector whose length exceeds the u32 prefix would
        // previously have been silently truncated by `as u32`; the
        // checked encoder must refuse with TooLarge before any bytes
        // are framed. Exercised via put_len directly — allocating 2^32
        // centroids is not practical in a unit test, and put_len is the
        // single choke point every record encoder now routes through.
        let mut w = Writer::new();
        let err = w.put_len(u32::MAX as usize + 1, "track centroids").unwrap_err();
        assert!(matches!(
            err,
            DbError::TooLarge { context: "track centroids", .. }
        ));
        assert!(!err.is_corruption());
    }
}
