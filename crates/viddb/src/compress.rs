//! XOR-delta + bit-packed compression for flat f64 feature rows.
//!
//! The raw-α feature matrices stored in `TSIX` index segments are
//! highly regular: consecutive values share sign, exponent, and most
//! mantissa bits, so the XOR of adjacent IEEE-754 bit patterns is a
//! narrow field of significant bits surrounded by zeros (the classic
//! Gorilla observation). The codec exploits that per fixed-size chunk:
//!
//! ```text
//! [u32 value count]
//! repeated chunks of up to CHUNK values:
//!   [u8 mode]
//!     mode 0 (raw):    [8 bytes LE per value]
//!     mode 1 (packed): [8 bytes first value]
//!                      [u8 shift][u8 width]
//!                      [ceil((n-1)·width / 8) bytes of packed deltas]
//! ```
//!
//! Packed deltas are `(xor >> shift)` fields of `width` bits, LSB-first
//! in a little-endian bit stream; `shift` strips trailing zero bits
//! common to every delta in the chunk and `width` covers the widest
//! remaining field. A chunk where packing would not save bytes is
//! stored raw (mode 0) — the "store raw if compression loses" fallback
//! — so the codec never does worse than `8 × n + O(n / CHUNK)` bytes.
//!
//! Decompression is bit-exact: every value round-trips to its original
//! bit pattern, NaN payloads and signed zeros included. Corrupt input
//! fails with a typed error wherever the structure permits detection
//! (impossible lengths, over-wide fields, truncated streams); bit flips
//! inside a packed field decode to *different values* and are caught by
//! the record CRC that frames every log payload.

use crate::codec::{Reader, Writer};
use crate::error::{DbError, Result};

/// Values per compression chunk. Small enough that one pathological
/// value (a width-64 outlier) only forces one chunk raw, large enough
/// to amortize the per-chunk header.
pub const CHUNK: usize = 256;

/// Compresses a slice of f64s. Infallible short of a slice longer than
/// the u32 count prefix, which surfaces as [`DbError::TooLarge`].
pub fn compress_f64s(values: &[f64]) -> Result<Vec<u8>> {
    let mut w = Writer::new();
    w.put_len(values.len(), "compressed f64 values")?;
    for chunk in values.chunks(CHUNK) {
        compress_chunk(chunk, &mut w);
    }
    Ok(w.into_bytes())
}

fn compress_chunk(chunk: &[f64], w: &mut Writer) {
    debug_assert!(!chunk.is_empty());
    let bits: Vec<u64> = chunk.iter().map(|v| v.to_bits()).collect();
    // XOR deltas against the previous value in the chunk.
    let xors: Vec<u64> = bits.windows(2).map(|p| p[0] ^ p[1]).collect();
    let or_all = xors.iter().fold(0u64, |a, &x| a | x);
    let (shift, width) = if or_all == 0 {
        (0u32, 0u32)
    } else {
        let shift = or_all.trailing_zeros();
        (shift, 64 - or_all.leading_zeros() - shift)
    };
    let packed_bytes = (xors.len() * width as usize).div_ceil(8);
    let packed_total = 8 + 2 + packed_bytes;
    let raw_total = 8 * chunk.len();
    if packed_total >= raw_total {
        // Compression loses (irregular data or a tiny chunk): store raw.
        w.put_u8(0);
        for &b in &bits {
            w.put_u64(b);
        }
        return;
    }
    w.put_u8(1);
    w.put_u64(bits[0]);
    w.put_u8(shift as u8);
    w.put_u8(width as u8);
    // LSB-first little-endian bit stream. The accumulator is u128 so a
    // width-64 field appended onto up to 7 pending bits never
    // overflows.
    let mut acc: u128 = 0;
    let mut acc_bits: u32 = 0;
    for &x in &xors {
        acc |= ((x >> shift) as u128) << acc_bits;
        acc_bits += width;
        while acc_bits >= 8 {
            w.put_u8((acc & 0xFF) as u8);
            acc >>= 8;
            acc_bits -= 8;
        }
    }
    if acc_bits > 0 {
        w.put_u8((acc & 0xFF) as u8);
    }
}

/// Decompresses a buffer produced by [`compress_f64s`]. Bit-exact.
pub fn decompress_f64s(data: &[u8]) -> Result<Vec<f64>> {
    let mut r = Reader::new(data);
    let count = r.get_len()?;
    // A count that could not possibly fit the remaining bytes is
    // corrupt: every chunk costs at least 9 bytes (mode + first value).
    if count.div_ceil(CHUNK).saturating_mul(9) > r.remaining() {
        return Err(DbError::LengthOutOfBounds(count as u64));
    }
    // Capacity is bounded so a hostile count cannot drive a giant
    // up-front allocation; pushes grow the vec as real data decodes.
    let mut out = Vec::with_capacity(count.min(1 << 20));
    while out.len() < count {
        let n = (count - out.len()).min(CHUNK);
        decompress_chunk(&mut r, n, &mut out)?;
    }
    if !r.is_exhausted() {
        return Err(DbError::LengthOutOfBounds(r.remaining() as u64));
    }
    Ok(out)
}

fn decompress_chunk(r: &mut Reader, n: usize, out: &mut Vec<f64>) -> Result<()> {
    match r.get_u8()? {
        0 => {
            for _ in 0..n {
                out.push(f64::from_bits(r.get_u64()?));
            }
            Ok(())
        }
        1 => {
            let first = r.get_u64()?;
            let shift = r.get_u8()? as u32;
            let width = r.get_u8()? as u32;
            // shift alone must stay under 64: `field << shift` with a
            // corrupt shift of 64+ would overflow even for zero fields.
            if shift >= 64 || shift + width > 64 {
                return Err(DbError::LengthOutOfBounds((shift + width) as u64));
            }
            out.push(f64::from_bits(first));
            let mut prev = first;
            let mut acc: u128 = 0;
            let mut acc_bits: u32 = 0;
            let mask: u128 = if width == 64 {
                u64::MAX as u128
            } else {
                (1u128 << width) - 1
            };
            for _ in 1..n {
                while acc_bits < width {
                    acc |= (r.get_u8()? as u128) << acc_bits;
                    acc_bits += 8;
                }
                let field = (acc & mask) as u64;
                acc >>= width;
                acc_bits -= width;
                let cur = prev ^ (field << shift);
                out.push(f64::from_bits(cur));
                prev = cur;
            }
            // Padding bits in the final partial byte must be zero —
            // anything else is a corrupt stream.
            if acc != 0 {
                return Err(DbError::ChecksumMismatch { offset: 0 });
            }
            Ok(())
        }
        m => Err(DbError::UnknownRecordType(m)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift for seeded property tests (no rand crate).
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn f64(&mut self) -> f64 {
            (self.next() % 10_000) as f64 / 100.0 - 50.0
        }
    }

    fn round_trip(values: &[f64]) -> Vec<u8> {
        let buf = compress_f64s(values).unwrap();
        let back = decompress_f64s(&buf).unwrap();
        assert_eq!(back.len(), values.len());
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-exactness violated");
        }
        buf
    }

    #[test]
    fn empty_and_singleton() {
        round_trip(&[]);
        round_trip(&[42.0]);
        round_trip(&[f64::NAN]);
        round_trip(&[-0.0]);
    }

    #[test]
    fn regular_rows_compress_well() {
        // Quarter-step values like real α rows: huge shared prefixes.
        let values: Vec<f64> = (0..4096).map(|i| i as f64 * 0.25).collect();
        let buf = round_trip(&values);
        assert!(
            buf.len() * 2 < values.len() * 8,
            "regular data must compress at least 2x, got {} of {}",
            buf.len(),
            values.len() * 8
        );
    }

    #[test]
    fn constant_rows_compress_extremely() {
        let values = vec![std::f64::consts::PI; 2048];
        let buf = round_trip(&values);
        // All XOR deltas are zero: ~9 bytes per 256-value chunk + count.
        assert!(buf.len() < values.len(), "{} bytes", buf.len());
    }

    #[test]
    fn adversarial_random_bits_fall_back_to_raw() {
        // Full-entropy bit patterns cannot compress; the per-chunk raw
        // fallback caps the overhead at 1 byte per chunk + the count.
        let mut rng = Rng(0x5eed);
        let values: Vec<f64> = (0..1000).map(|_| f64::from_bits(rng.next())).collect();
        let buf = round_trip(&values);
        let raw = values.len() * 8;
        let max_overhead = 4 + values.len().div_ceil(CHUNK);
        assert!(
            buf.len() <= raw + max_overhead,
            "fallback overhead too large: {} vs raw {raw}",
            buf.len()
        );
    }

    #[test]
    fn special_values_round_trip_bitwise() {
        let values = [
            0.0,
            -0.0,
            f64::NAN,
            f64::from_bits(0x7ff8_0000_dead_beef), // NaN payload
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::MAX,
            5e-324, // subnormal
        ];
        round_trip(&values);
    }

    #[test]
    fn seeded_property_round_trips() {
        for seed in 1..=20u64 {
            let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let n = (rng.next() % 2000) as usize;
            let mode = rng.next() % 3;
            let values: Vec<f64> = (0..n)
                .map(|i| match mode {
                    0 => rng.f64(),                       // regular measurements
                    1 => (i / 7) as f64,                  // stepped plateaus
                    _ => f64::from_bits(rng.next()),      // adversarial
                })
                .collect();
            round_trip(&values);
        }
    }

    #[test]
    fn chunk_boundaries_round_trip() {
        for n in [CHUNK - 1, CHUNK, CHUNK + 1, 2 * CHUNK, 2 * CHUNK + 3] {
            let values: Vec<f64> = (0..n).map(|i| (i as f64).sqrt()).collect();
            round_trip(&values);
        }
    }

    #[test]
    fn seeded_corruption_never_round_trips_silently() {
        // Flip one byte at every position; the decoder must either
        // error or produce different values — never return the original
        // data from corrupt bytes. (In the database the record CRC
        // catches the "different values" cases before decode; this
        // checks the codec's own detection surface.)
        let values: Vec<f64> = (0..600).map(|i| i as f64 * 0.5).collect();
        let buf = compress_f64s(&values).unwrap();
        let mut silent = 0usize;
        for pos in 0..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 0x41;
            match decompress_f64s(&bad) {
                Err(_) => {}
                Ok(back) => {
                    let same = back.len() == values.len()
                        && back
                            .iter()
                            .zip(&values)
                            .all(|(a, b)| a.to_bits() == b.to_bits());
                    if same {
                        silent += 1;
                    }
                }
            }
        }
        assert_eq!(silent, 0, "{silent} corruptions round-tripped silently");
    }

    #[test]
    fn truncation_detected() {
        let values: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let buf = compress_f64s(&values).unwrap();
        for cut in [0, 2, 4, 10, buf.len() / 2, buf.len() - 1] {
            assert!(
                decompress_f64s(&buf[..cut]).is_err(),
                "cut at {cut} succeeded"
            );
        }
        // Trailing garbage is also rejected.
        let mut padded = buf.clone();
        padded.push(0xAB);
        assert!(decompress_f64s(&padded).is_err());
    }

    #[test]
    fn hostile_count_rejected_without_huge_allocation() {
        let mut w = Writer::new();
        w.put_u32(100_000_000); // claims 10^8 values, no data behind it
        assert!(matches!(
            decompress_f64s(&w.into_bytes()).unwrap_err(),
            DbError::LengthOutOfBounds(_)
        ));
    }

    #[test]
    fn width_64_fields_round_trip() {
        // Alternating bit patterns force shift 0 / width 64 — the
        // accumulator straddle path.
        let values: Vec<f64> = (0..CHUNK + 5)
            .map(|i| {
                if i % 2 == 0 {
                    f64::from_bits(0xAAAA_AAAA_AAAA_AAAA)
                } else {
                    f64::from_bits(0x5555_5555_5555_5555)
                }
            })
            .collect();
        round_trip(&values);
    }
}
