//! A tiny seeded-RNG property-test harness.
//!
//! The workspace must build and test fully offline, so instead of an
//! external property-testing framework each crate's `tests/proptests.rs`
//! drives its invariant checks through [`cases`]: a fixed number of
//! deterministic cases, each with its own [`Pcg32`] derived from the
//! case index. Failures are ordinary panics; the harness wraps them so
//! the panic message names the failing case index, which is enough to
//! reproduce it exactly (same index ⇒ same RNG stream, forever).
//!
//! ```
//! use tsvr_sim::check;
//!
//! check::cases(64, |case, rng| {
//!     let x = rng.uniform(0.0, 100.0);
//!     assert!(x >= 0.0 && x < 100.0, "case {case}: x = {x}");
//! });
//! ```

use crate::rng::Pcg32;

/// Base seed mixed into every per-case RNG; changing it reshuffles all
/// generated inputs at once.
pub const HARNESS_SEED: u64 = 0x7375_7276_6569_6c00; // "surveil"

/// Run `n` deterministic property cases.
///
/// Each case receives its index and a fresh [`Pcg32`] seeded from
/// [`HARNESS_SEED`] and the index, so any failure reproduces in
/// isolation. Panics (assertion failures) propagate after an eprintln
/// naming the case.
pub fn cases<F: FnMut(u64, &mut Pcg32)>(n: u64, mut f: F) {
    for case in 0..n {
        let mut rng = Pcg32::new(HARNESS_SEED ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15), case);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            f(case, &mut rng);
        }));
        if let Err(payload) = outcome {
            eprintln!("property case {case}/{n} failed (seed derives from case index)");
            std::panic::resume_unwind(payload);
        }
    }
}

/// A vector of `len` floats uniform in `[lo, hi)`.
pub fn vec_f64(rng: &mut Pcg32, len: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..len).map(|_| rng.uniform(lo, hi)).collect()
}

/// A vector of `len` booleans, each set with probability `p`.
pub fn vec_bool(rng: &mut Pcg32, len: usize, p: f64) -> Vec<bool> {
    (0..len).map(|_| rng.chance(p)).collect()
}

/// A length in `[lo, hi)` — convenience for sizing generated inputs.
pub fn len_in(rng: &mut Pcg32, lo: usize, hi: usize) -> usize {
    lo + rng.uniform_usize(hi - lo)
}
