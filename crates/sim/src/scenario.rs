//! Scenario configuration and the two paper-calibrated presets.
//!
//! The presets are calibrated to the clip statistics reported in §6.2:
//!
//! * clip 1 — tunnel, 2504 frames, sparse traffic, accidents mostly
//!   involve a single vehicle (wall crashes after speeding, sudden
//!   stops); sampling 5 frames/checkpoint and window size 3 yield 109
//!   trajectory sequences;
//! * clip 2 — road intersection, 592 frames, denser traffic, accidents
//!   "often involve two or more vehicles"; 168 trajectory sequences.

use crate::idm::IdmParams;
use crate::incident::{IncidentKind, IncidentSpec};
use crate::road::{intersection_network, tunnel_network, RoadNetwork};
use crate::signal::SignalController;

/// Which scene layout a scenario uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Straight two-lane tunnel (paper clip 1).
    Tunnel,
    /// Signalized four-approach intersection (paper clip 2).
    Intersection,
}

/// Complete description of a simulation run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scene layout.
    pub kind: ScenarioKind,
    /// Number of frames to simulate.
    pub total_frames: u32,
    /// RNG seed; two runs with the same scenario are bit-identical.
    pub seed: u64,
    /// Mean frames between vehicle spawns per lane.
    pub mean_spawn_interval: f64,
    /// Baseline driver model; per-vehicle parameters jitter around it.
    pub idm: IdmParams,
    /// Relative standard deviation of per-vehicle desired speed.
    pub speed_jitter: f64,
    /// Incidents to inject.
    pub incidents: Vec<IncidentSpec>,
    /// Frames a crashed (stopped) vehicle remains in the scene before
    /// being removed ("towed").
    pub crash_hold_frames: u32,
    /// Std-dev of the per-frame lateral drift random walk (px), the
    /// source of normal-driving heading noise.
    pub lateral_jitter: f64,
    /// PCG32 stream id the world's RNG runs on. Fleet scenarios derive
    /// this from their name via [`crate::rng::split_stream`], so each
    /// member's trajectories are independent of every other member at
    /// the same seed. The paper presets pin the legacy
    /// [`crate::rng::DEFAULT_STREAM`] so their worlds replay
    /// byte-identically to every earlier release.
    pub rng_stream: u64,
}

impl Scenario {
    /// The road network for this scenario's layout.
    pub fn network(&self) -> RoadNetwork {
        match self.kind {
            ScenarioKind::Tunnel => tunnel_network(),
            ScenarioKind::Intersection => intersection_network(),
        }
    }

    /// The signal controller, if the layout is signalized.
    pub fn signal(&self) -> Option<SignalController> {
        match self.kind {
            ScenarioKind::Tunnel => None,
            ScenarioKind::Intersection => Some(SignalController::default()),
        }
    }

    /// Paper clip 1: tunnel, 2504 frames.
    ///
    /// Sparse highway-speed traffic; accidents are single-vehicle wall
    /// crashes and sudden stops, with a couple of speeding / U-turn
    /// distractors so the accident query has confusable negatives.
    pub fn tunnel_paper(seed: u64) -> Scenario {
        let mut incidents = Vec::new();
        // Six single-vehicle accidents spread through the clip. Each
        // spans ~2 retrieval windows (15 frames each), giving ~12-14
        // accident windows out of ~166 — consistent with the 40%→60%
        // top-20 accuracy range in Fig. 8.
        for (i, &f) in [230u32, 560, 935, 1320, 1710, 2120].iter().enumerate() {
            let kind = if i % 2 == 0 {
                IncidentKind::WallCrash
            } else {
                IncidentKind::SuddenStop
            };
            incidents.push(IncidentSpec::new(kind, f));
        }
        // Distractors: anomalous but not accidents, so the initial
        // square-sum heuristic confuses them with the query target and
        // the learners must tell them apart.
        incidents.push(IncidentSpec::new(IncidentKind::Speeding, 420));
        incidents.push(IncidentSpec::new(IncidentKind::Speeding, 1530));
        incidents.push(IncidentSpec::new(IncidentKind::Speeding, 2250));
        incidents.push(IncidentSpec::new(IncidentKind::UTurn, 1080));
        incidents.push(IncidentSpec::new(IncidentKind::UTurn, 1900));

        Scenario {
            kind: ScenarioKind::Tunnel,
            total_frames: 2504,
            seed,
            mean_spawn_interval: 172.0,
            idm: IdmParams {
                desired_speed: 4.0,
                ..IdmParams::default()
            },
            speed_jitter: 0.12,
            incidents,
            crash_hold_frames: 45,
            lateral_jitter: 0.18,
            rng_stream: crate::rng::DEFAULT_STREAM,
        }
    }

    /// Paper clip 2: intersection, 592 frames.
    ///
    /// Dense urban traffic; accidents are multi-vehicle (side collisions
    /// in the conflict zone and rear-end crashes at the stop line).
    pub fn intersection_paper(seed: u64) -> Scenario {
        let incidents = vec![
            IncidentSpec::new(IncidentKind::SideCollision, 90),
            IncidentSpec::new(IncidentKind::RearEndCrash, 210),
            IncidentSpec::new(IncidentKind::SideCollision, 330),
            IncidentSpec::new(IncidentKind::RearEndCrash, 450),
            IncidentSpec::new(IncidentKind::UTurn, 160),
            IncidentSpec::new(IncidentKind::Speeding, 390),
        ];
        Scenario {
            kind: ScenarioKind::Intersection,
            total_frames: 592,
            seed,
            mean_spawn_interval: 103.0,
            idm: IdmParams {
                desired_speed: 2.6,
                max_accel: 0.12,
                comfortable_decel: 0.25,
                min_gap: 7.0,
                time_headway: 7.0,
                exponent: 4.0,
            },
            speed_jitter: 0.15,
            incidents,
            crash_hold_frames: 40,
            lateral_jitter: 0.15,
            rng_stream: crate::rng::DEFAULT_STREAM,
        }
    }

    /// A tiny smoke-test scenario (fast to simulate in unit tests).
    pub fn tunnel_small(seed: u64) -> Scenario {
        let mut s = Scenario::tunnel_paper(seed);
        s.total_frames = 400;
        s.incidents = vec![
            IncidentSpec::new(IncidentKind::WallCrash, 120),
            IncidentSpec::new(IncidentKind::SuddenStop, 260),
        ];
        s.mean_spawn_interval = 120.0;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tunnel_preset_matches_paper_frame_count() {
        let s = Scenario::tunnel_paper(1);
        assert_eq!(s.total_frames, 2504);
        assert_eq!(s.kind, ScenarioKind::Tunnel);
        assert!(s.signal().is_none());
        assert_eq!(s.network().lane_count(), 2);
    }

    #[test]
    fn intersection_preset_matches_paper_frame_count() {
        let s = Scenario::intersection_paper(1);
        assert_eq!(s.total_frames, 592);
        assert_eq!(s.kind, ScenarioKind::Intersection);
        assert!(s.signal().is_some());
        assert_eq!(s.network().lane_count(), 4);
    }

    #[test]
    fn tunnel_accidents_are_single_vehicle_kinds() {
        let s = Scenario::tunnel_paper(1);
        for spec in s.incidents.iter().filter(|i| i.kind.is_accident()) {
            assert!(
                matches!(
                    spec.kind,
                    IncidentKind::WallCrash | IncidentKind::SuddenStop
                ),
                "unexpected tunnel accident {:?}",
                spec.kind
            );
        }
    }

    #[test]
    fn intersection_accidents_are_multi_vehicle_kinds() {
        let s = Scenario::intersection_paper(1);
        for spec in s.incidents.iter().filter(|i| i.kind.is_accident()) {
            assert!(
                matches!(
                    spec.kind,
                    IncidentKind::SideCollision | IncidentKind::RearEndCrash
                ),
                "unexpected intersection accident {:?}",
                spec.kind
            );
        }
    }

    #[test]
    fn incident_triggers_inside_clip() {
        for s in [Scenario::tunnel_paper(1), Scenario::intersection_paper(1)] {
            for spec in &s.incidents {
                assert!(spec.at_frame + spec.kind.nominal_duration() < s.total_frames);
            }
        }
    }

    #[test]
    fn presets_contain_distractors() {
        // Both clips need non-accident anomalies so the accident query
        // is not trivially separable.
        for s in [Scenario::tunnel_paper(1), Scenario::intersection_paper(1)] {
            assert!(s.incidents.iter().any(|i| !i.kind.is_accident()));
        }
    }
}
