//! Fixed-cycle two-phase signal controller for the intersection scenario.

/// Signal state for one approach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalState {
    /// Proceed.
    Green,
    /// Clear the intersection.
    Yellow,
    /// Stop at the stop line.
    Red,
}

/// A two-phase fixed-time signal alternating between the "ns" and "ew"
/// approaches, with a yellow interval and an all-red clearance interval.
#[derive(Debug, Clone)]
pub struct SignalController {
    /// Green duration per phase, frames.
    pub green: u32,
    /// Yellow duration, frames.
    pub yellow: u32,
    /// All-red clearance, frames.
    pub all_red: u32,
}

impl Default for SignalController {
    fn default() -> Self {
        SignalController {
            green: 120,
            yellow: 20,
            all_red: 10,
        }
    }
}

impl SignalController {
    /// Full cycle length in frames.
    pub fn cycle(&self) -> u32 {
        2 * (self.green + self.yellow + self.all_red)
    }

    /// State of the given approach ("ns" or "ew") at a frame index.
    /// Unknown approaches are treated as unsignalized (always green).
    pub fn state(&self, approach: &str, frame: u32) -> SignalState {
        if approach != "ns" && approach != "ew" {
            return SignalState::Green;
        }
        let half = self.green + self.yellow + self.all_red;
        let t = frame % self.cycle();
        let (phase_t, active) = if t < half {
            (t, "ew")
        } else {
            (t - half, "ns")
        };
        if approach == active {
            if phase_t < self.green {
                SignalState::Green
            } else if phase_t < self.green + self.yellow {
                SignalState::Yellow
            } else {
                SignalState::Red
            }
        } else {
            SignalState::Red
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_alternate() {
        let s = SignalController::default();
        assert_eq!(s.state("ew", 0), SignalState::Green);
        assert_eq!(s.state("ns", 0), SignalState::Red);
        let half = s.green + s.yellow + s.all_red;
        assert_eq!(s.state("ns", half), SignalState::Green);
        assert_eq!(s.state("ew", half), SignalState::Red);
    }

    #[test]
    fn yellow_follows_green() {
        let s = SignalController::default();
        assert_eq!(s.state("ew", s.green), SignalState::Yellow);
        assert_eq!(s.state("ew", s.green + s.yellow), SignalState::Red);
    }

    #[test]
    fn all_red_interval_has_no_green() {
        let s = SignalController::default();
        let t = s.green + s.yellow + s.all_red / 2;
        assert_eq!(s.state("ew", t), SignalState::Red);
        assert_eq!(s.state("ns", t), SignalState::Red);
    }

    #[test]
    fn cycle_repeats() {
        let s = SignalController::default();
        for f in 0..s.cycle() {
            assert_eq!(s.state("ew", f), s.state("ew", f + s.cycle()));
            assert_eq!(s.state("ns", f), s.state("ns", f + s.cycle()));
        }
    }

    #[test]
    fn unsignalized_approach_always_green() {
        let s = SignalController::default();
        for f in (0..s.cycle()).step_by(13) {
            assert_eq!(s.state("", f), SignalState::Green);
            assert_eq!(s.state("tunnel", f), SignalState::Green);
        }
    }

    #[test]
    fn exactly_one_approach_green_at_any_time() {
        let s = SignalController::default();
        for f in 0..s.cycle() {
            let greens = ["ns", "ew"]
                .iter()
                .filter(|a| s.state(a, f) == SignalState::Green)
                .count();
            assert!(greens <= 1, "frame {f}: {greens} greens");
        }
    }
}
