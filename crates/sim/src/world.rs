//! The frame-stepped simulation engine.
//!
//! [`World`] owns the vehicles, the incident scheduler and the ground
//! truth log. Each [`World::step`] advances one frame and returns a
//! [`FrameObservation`] — the list of vehicles visible in the camera
//! image with their poses. Downstream, `tsvr-vision` rasterizes these
//! observations into pixels and re-detects the vehicles, so the learning
//! pipeline never touches the simulator state directly.

use crate::geometry::{wrap_angle, Vec2};
use crate::idm::{self, IdmParams, Leader};
use crate::incident::{IncidentKind, IncidentRecord, IncidentSpec};
use crate::rng::Pcg32;
use crate::road::{LaneId, RoadNetwork, TUNNEL_WALL_BOTTOM, TUNNEL_WALL_TOP};
use crate::scenario::{Scenario, ScenarioKind};
use crate::signal::{SignalController, SignalState};

/// Coarse vehicle class, assigned at spawn time and recoverable by the
/// PCA classifier in `tsvr-vision` (paper §3.1, citing \[13\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VehicleClass {
    /// Sedan/compact.
    Car,
    /// Sport-utility vehicle.
    Suv,
    /// Pick-up truck.
    Pickup,
}

impl VehicleClass {
    /// Body half-extents (half length, half width) in pixels.
    pub fn half_extents(self) -> (f64, f64) {
        match self {
            VehicleClass::Car => (11.0, 5.0),
            VehicleClass::Suv => (12.5, 6.0),
            VehicleClass::Pickup => (14.0, 6.0),
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            VehicleClass::Car => "car",
            VehicleClass::Suv => "suv",
            VehicleClass::Pickup => "pickup",
        }
    }

    /// Inverse of [`VehicleClass::name`].
    pub fn from_name(name: &str) -> Option<VehicleClass> {
        VehicleClass::ALL.into_iter().find(|c| c.name() == name)
    }

    /// Every class, in display order.
    pub const ALL: [VehicleClass; 3] =
        [VehicleClass::Car, VehicleClass::Suv, VehicleClass::Pickup];
}

/// One vehicle as seen in the camera image at a given frame.
#[derive(Debug, Clone, PartialEq)]
pub struct VehicleObs {
    /// Stable simulator id.
    pub id: u64,
    /// Ground-truth class.
    pub class: VehicleClass,
    /// Center of the vehicle footprint, image pixels.
    pub center: Vec2,
    /// Heading angle in radians (direction of motion).
    pub heading: f64,
    /// Half length along the heading, px.
    pub half_len: f64,
    /// Half width across the heading, px.
    pub half_wid: f64,
    /// Actual displacement magnitude this frame, px/frame.
    pub speed: f64,
}

/// All vehicles visible at one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameObservation {
    /// Frame index, starting at 0.
    pub frame: u32,
    /// Visible vehicles.
    pub vehicles: Vec<VehicleObs>,
}

/// Result of a full simulation run.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// One observation per simulated frame.
    pub frames: Vec<FrameObservation>,
    /// Ground-truth incident log.
    pub incidents: Vec<IncidentRecord>,
}

impl SimOutput {
    /// Splits one recording at a frame boundary into two clips, as if
    /// two cameras with adjacent (non-overlapping) coverage filmed the
    /// same scene — the multi-camera handoff substrate. Frames of the
    /// second clip are re-based to start at 0, and each ground-truth
    /// record is carried into every clip whose span it overlaps, with
    /// its frame span clamped to that clip (so an incident straddling
    /// the boundary is ground truth on *both* sides of the handoff).
    pub fn split_at(&self, frame: u32) -> (SimOutput, SimOutput) {
        let cut = (frame as usize).min(self.frames.len());
        let first_frames: Vec<FrameObservation> = self.frames[..cut].to_vec();
        let second_frames: Vec<FrameObservation> = self.frames[cut..]
            .iter()
            .map(|f| FrameObservation {
                frame: f.frame - cut as u32,
                vehicles: f.vehicles.clone(),
            })
            .collect();
        let cut = cut as u32;
        let mut first_inc = Vec::new();
        let mut second_inc = Vec::new();
        for rec in &self.incidents {
            if rec.start_frame < cut {
                first_inc.push(IncidentRecord {
                    end_frame: rec.end_frame.min(cut.saturating_sub(1)),
                    ..rec.clone()
                });
            }
            if rec.end_frame >= cut {
                second_inc.push(IncidentRecord {
                    start_frame: rec.start_frame.max(cut) - cut,
                    end_frame: rec.end_frame - cut,
                    ..rec.clone()
                });
            }
        }
        (
            SimOutput {
                width: self.width,
                height: self.height,
                frames: first_frames,
                incidents: first_inc,
            },
            SimOutput {
                width: self.width,
                height: self.height,
                frames: second_frames,
                incidents: second_inc,
            },
        )
    }
}

/// How a vehicle's pose is driven.
#[derive(Debug, Clone)]
enum Mode {
    /// Following a lane centerline at arc length `s` with lateral offset
    /// `lat` (px, positive to the left of travel).
    Lane { lane: LaneId, s: f64, lat: f64 },
    /// Free motion with an explicit pose (used during/after U-turns).
    Free { pos: Vec2, heading: f64 },
}

/// Scripted behaviour override. `None` means normal IDM driving.
#[derive(Debug, Clone)]
enum Maneuver {
    None,
    /// Brake at `decel` until standstill, then hold position.
    Stopping {
        decel: f64,
    },
    /// Veer laterally at `lat_rate` until reaching `target_lat`, then
    /// crash (switch to `Stopping`).
    WallVeer {
        lat_rate: f64,
        target_lat: f64,
    },
    /// Ignore the leader until the gap falls below `stop_gap`, then
    /// crash-brake at `decel`.
    Distracted {
        stop_gap: f64,
        decel: f64,
    },
    /// Drive at constant speed ignoring signals/leaders until reaching
    /// arc length `stop_s` or colliding with `partner`, then crash.
    RunThrough {
        stop_s: f64,
        partner: u64,
    },
    /// Rotate heading by `remaining` radians at `rate` rad/frame.
    UTurn {
        rate: f64,
        remaining: f64,
    },
    /// Elevated desired speed for `frames_left` frames.
    Speeding {
        factor: f64,
        frames_left: u32,
    },
    /// Brake at `decel` to a crawl, hold the crawl for `hold` frames,
    /// then release back to normal IDM driving. Unlike [`Maneuver::Stopping`]
    /// the vehicle never becomes a wreck — this is the near-miss leader
    /// and the pedestrian-yield behaviour.
    BrakeRelease {
        decel: f64,
        hold: u32,
    },
    /// Hold speed ignoring the leader until the gap falls below
    /// `trigger_gap`, then brake-and-release — the near-miss follower
    /// whose late reaction still resolves the conflict without contact.
    LateBrake {
        trigger_gap: f64,
        decel: f64,
        hold: u32,
    },
    /// Veer laterally to `out_lat` at `lat_rate`, hold for `hold`
    /// frames, then steer back to the centerline (evasive swerve).
    Swerve {
        lat_rate: f64,
        out_lat: f64,
        hold: u32,
        returning: bool,
    },
    /// Steer the lateral offset back to the centerline at `lat_rate`
    /// after a cut-in to an adjacent lane (occlusion-heavy merge).
    MergeIn {
        lat_rate: f64,
    },
    /// Pulse between a crawl and cruise `cycles` times — the stop-and-go
    /// shockwave leader. `phase`: 0 = braking, 1 = crawling, 2 =
    /// re-accelerating.
    StopAndGo {
        cycles: u32,
        phase: u8,
        timer: u32,
    },
}

#[derive(Debug, Clone)]
struct Vehicle {
    id: u64,
    class: VehicleClass,
    half_len: f64,
    half_wid: f64,
    idm: IdmParams,
    mode: Mode,
    speed: f64,
    maneuver: Maneuver,
    /// Frames remaining before a stopped (crashed) vehicle is removed.
    hold_left: Option<u32>,
    prev_center: Option<Vec2>,
}

/// The simulation engine.
pub struct World {
    scenario: Scenario,
    network: RoadNetwork,
    signal: Option<SignalController>,
    rng: Pcg32,
    frame: u32,
    next_id: u64,
    vehicles: Vec<Vehicle>,
    /// Next spawn frame per lane.
    next_spawn: Vec<u32>,
    pending: Vec<IncidentSpec>,
    incidents: Vec<IncidentRecord>,
    /// Arc length of each lane's closest approach to the image center
    /// (conflict-zone anchor for side collisions).
    lane_center_s: Vec<f64>,
}

/// Frames after the scheduled trigger during which the world keeps
/// looking for candidate vehicles before dropping an incident spec.
const TRIGGER_PATIENCE: u32 = 400;

impl World {
    /// Builds a world for a scenario (spawns begin on the first step).
    ///
    /// ```
    /// use tsvr_sim::{Scenario, World};
    ///
    /// let out = World::run(Scenario::tunnel_small(7));
    /// assert_eq!(out.frames.len(), 400);
    /// assert!(out.incidents.iter().any(|r| r.kind.is_accident()));
    /// // Deterministic: same seed, same world.
    /// assert_eq!(World::run(Scenario::tunnel_small(7)).incidents, out.incidents);
    /// ```
    pub fn new(scenario: Scenario) -> World {
        let network = scenario.network();
        let signal = scenario.signal();
        let mut rng = Pcg32::new(scenario.seed, scenario.rng_stream);
        let next_spawn = (0..network.lane_count())
            .map(|_| rng.exponential(1.0 / scenario.mean_spawn_interval).round() as u32)
            .collect();
        let lane_center_s = network
            .lanes
            .iter()
            .map(|lane| {
                let c = Vec2::new(network.width as f64 / 2.0, network.height as f64 / 2.0);
                let n = 200;
                let mut best = (0.0, f64::INFINITY);
                for i in 0..=n {
                    let s = lane.length() * i as f64 / n as f64;
                    let d = lane.position(s).dist(c);
                    if d < best.1 {
                        best = (s, d);
                    }
                }
                best.0
            })
            .collect();
        let pending = scenario.incidents.clone();
        World {
            scenario,
            network,
            signal,
            rng,
            frame: 0,
            next_id: 1,
            vehicles: Vec::new(),
            next_spawn,
            pending,
            incidents: Vec::new(),
            lane_center_s,
        }
    }

    /// Runs a scenario to completion.
    pub fn run(scenario: Scenario) -> SimOutput {
        let total = scenario.total_frames;
        let mut world = World::new(scenario);
        let mut frames = Vec::with_capacity(total as usize);
        for _ in 0..total {
            frames.push(world.step());
        }
        SimOutput {
            width: world.network.width,
            height: world.network.height,
            frames,
            incidents: world.incidents.clone(),
        }
    }

    /// Ground-truth incidents triggered so far.
    pub fn incidents(&self) -> &[IncidentRecord] {
        &self.incidents
    }

    /// Current frame index (frames simulated so far).
    pub fn frame(&self) -> u32 {
        self.frame
    }

    /// Number of live vehicles.
    pub fn vehicle_count(&self) -> usize {
        self.vehicles.len()
    }

    /// Advances the world by one frame and reports what the camera sees.
    pub fn step(&mut self) -> FrameObservation {
        self.trigger_incidents();
        self.advance_vehicles();
        self.despawn();
        self.spawn();
        let obs = self.observe();
        self.frame += 1;
        obs
    }

    // ---- incident triggering -------------------------------------------------

    fn trigger_incidents(&mut self) {
        let frame = self.frame;
        let mut remaining = Vec::new();
        let pending = std::mem::take(&mut self.pending);
        for spec in pending {
            if frame < spec.at_frame {
                remaining.push(spec);
                continue;
            }
            if frame > spec.at_frame + TRIGGER_PATIENCE {
                continue; // drop: no candidate appeared in time
            }
            if !self.try_trigger(spec.kind) {
                remaining.push(spec);
            }
        }
        self.pending = remaining;
    }

    fn try_trigger(&mut self, kind: IncidentKind) -> bool {
        match kind {
            IncidentKind::WallCrash => self.trigger_wall_crash(),
            IncidentKind::SuddenStop => self.trigger_sudden_stop(),
            IncidentKind::RearEndCrash => self.trigger_rear_end(),
            IncidentKind::SideCollision => self.trigger_side_collision(),
            IncidentKind::UTurn => self.trigger_u_turn(),
            IncidentKind::Speeding => self.trigger_speeding(),
            IncidentKind::NearMissBrake => self.trigger_near_miss_brake(),
            IncidentKind::NearMissSwerve => self.trigger_near_miss_swerve(),
            IncidentKind::OcclusionMerge => self.trigger_occlusion_merge(),
            IncidentKind::Shockwave => self.trigger_shockwave(),
            IncidentKind::WrongWay => self.trigger_wrong_way(),
            IncidentKind::Pedestrian => self.trigger_pedestrian(),
        }
    }

    fn record(&mut self, kind: IncidentKind, ids: Vec<u64>) {
        self.incidents.push(IncidentRecord {
            kind,
            start_frame: self.frame,
            end_frame: self.frame + kind.nominal_duration(),
            vehicle_ids: ids,
        });
    }

    /// Indices of vehicles in normal lane driving within the mid-region
    /// of their lane (visible, with room for the event to play out).
    fn candidates(&self) -> Vec<usize> {
        self.vehicles
            .iter()
            .enumerate()
            .filter(|(_, v)| {
                matches!(v.maneuver, Maneuver::None)
                    && v.hold_left.is_none()
                    && match &v.mode {
                        Mode::Lane { lane, s, lat } => {
                            let l = self.network.lane(*lane);
                            *s > 0.28 * l.length() && *s < 0.62 * l.length() && lat.abs() < 4.0
                        }
                        Mode::Free { .. } => false,
                    }
            })
            .map(|(i, _)| i)
            .collect()
    }

    fn trigger_wall_crash(&mut self) -> bool {
        if self.scenario.kind != ScenarioKind::Tunnel {
            return false;
        }
        let cands = self.candidates();
        // Fastest candidate: the paper's wall crashes follow speeding.
        let Some(&idx) = cands.iter().max_by(|&&a, &&b| {
            self.vehicles[a]
                .speed
                .partial_cmp(&self.vehicles[b].speed)
                .unwrap()
        }) else {
            return false;
        };
        let v = &mut self.vehicles[idx];
        let Mode::Lane { lane, .. } = v.mode else {
            return false;
        };
        let lane_y = self.network.lane(lane).position(0.0).y;
        let target_lat = if lane_y < 120.0 {
            // Upper lane: veer to the top wall. Lane heading is +x, so
            // "left of travel" (positive lat) is +y; the top wall needs
            // negative lat.
            TUNNEL_WALL_TOP + v.half_wid - lane_y
        } else {
            TUNNEL_WALL_BOTTOM - v.half_wid - lane_y
        };
        v.speed = (v.speed * 1.6).min(7.0); // loses control while speeding
        v.maneuver = Maneuver::WallVeer {
            lat_rate: target_lat / 12.0,
            target_lat,
        };
        let id = v.id;
        // The *scene* reads as an accident from mid-veer through the
        // impact; the initial drift alone is not yet labeled (a viewer
        // cannot distinguish it from a lane change).
        let start = self.frame + 6;
        self.incidents.push(IncidentRecord {
            kind: IncidentKind::WallCrash,
            start_frame: start,
            end_frame: start + IncidentKind::WallCrash.nominal_duration(),
            vehicle_ids: vec![id],
        });
        true
    }

    fn trigger_sudden_stop(&mut self) -> bool {
        // Slowest eligible vehicle: sudden stops from moderate speeds
        // produce the paper's "graded" event strength (strong wall
        // crashes dominate the initial query; milder stops are only
        // retrieved once the learner has seen similar examples).
        let cands = self.candidates();
        let Some(&idx) = cands
            .iter()
            .filter(|&&i| self.vehicles[i].speed > 1.8)
            .min_by(|&&a, &&b| {
                self.vehicles[a]
                    .speed
                    .partial_cmp(&self.vehicles[b].speed)
                    .unwrap()
            })
        else {
            return false;
        };
        let v = &mut self.vehicles[idx];
        v.maneuver = Maneuver::Stopping { decel: 0.7 };
        let id = v.id;
        self.record(IncidentKind::SuddenStop, vec![id]);
        true
    }

    /// Finds a (leader, follower) pair on a shared lane whose gap lies
    /// in `(min_gap, max_gap)`, both driving normally at or above
    /// `min_speed`; the closest qualifying pair wins. Shared by the
    /// rear-end crash and near-miss triggers — the same geometry with
    /// different resolutions.
    fn following_pair(
        &self,
        min_gap: f64,
        max_gap: f64,
        min_speed: f64,
    ) -> Option<(usize, usize)> {
        let snapshot: Vec<(usize, LaneId, f64, f64)> = self
            .vehicles
            .iter()
            .enumerate()
            .filter_map(|(i, v)| match (&v.mode, &v.maneuver) {
                (Mode::Lane { lane, s, .. }, Maneuver::None) if v.hold_left.is_none() => {
                    Some((i, *lane, *s, v.speed))
                }
                _ => None,
            })
            .collect();
        let mut best: Option<(usize, usize, f64)> = None;
        for &(fi, fl, fs, fv) in &snapshot {
            if fv < min_speed {
                continue;
            }
            for &(li, ll, ls, lv) in &snapshot {
                if li == fi || ll != fl || ls <= fs || lv < min_speed {
                    continue;
                }
                let gap = ls - fs;
                if (min_gap..max_gap).contains(&gap) {
                    match best {
                        Some((_, _, g)) if g <= gap => {}
                        _ => best = Some((li, fi, gap)),
                    }
                }
            }
        }
        best.map(|(li, fi, _)| (li, fi))
    }

    fn trigger_rear_end(&mut self) -> bool {
        // A (leader, follower) pair on the same lane with a medium gap,
        // both driving normally and at speed.
        let Some((li, fi)) = self.following_pair(20.0, 90.0, 1.5) else {
            return false;
        };
        let (lid, fid) = (self.vehicles[li].id, self.vehicles[fi].id);
        self.vehicles[li].maneuver = Maneuver::Stopping { decel: 0.8 };
        self.vehicles[fi].maneuver = Maneuver::Distracted {
            stop_gap: 2.5,
            decel: 2.2,
        };
        // Keep the follower moving briskly into the impact.
        self.vehicles[fi].speed = self.vehicles[fi].speed.max(2.2);
        self.record(IncidentKind::RearEndCrash, vec![lid, fid]);
        true
    }

    fn trigger_side_collision(&mut self) -> bool {
        if self.scenario.kind != ScenarioKind::Intersection {
            return false;
        }
        // One vehicle per crossing approach, both upstream of the
        // conflict zone.
        let mut ew: Vec<(usize, f64)> = Vec::new(); // (index, dist to conflict)
        let mut ns: Vec<(usize, f64)> = Vec::new();
        for (i, v) in self.vehicles.iter().enumerate() {
            let (Mode::Lane { lane, s, .. }, Maneuver::None) = (&v.mode, &v.maneuver) else {
                continue;
            };
            if v.hold_left.is_some() || v.speed < 1.0 {
                continue;
            }
            let dist = self.lane_center_s[*lane] - s;
            if !(25.0..150.0).contains(&dist) {
                continue;
            }
            match self.network.lane(*lane).approach.as_str() {
                "ew" => ew.push((i, dist)),
                "ns" => ns.push((i, dist)),
                _ => {}
            }
        }
        let (Some(&(ei, ed)), Some(&(ni, nd))) = (ew.first(), ns.first()) else {
            return false;
        };
        // Synchronize arrival: both reach the conflict point in T frames.
        let t = (ed / self.vehicles[ei].speed)
            .max(nd / self.vehicles[ni].speed)
            .clamp(10.0, 70.0);
        let (eid, nid) = (self.vehicles[ei].id, self.vehicles[ni].id);
        for (&i, d, partner) in [(&ei, ed, nid), (&ni, nd, eid)] {
            let v = &mut self.vehicles[i];
            v.speed = (d / t).clamp(1.2, 5.5);
            let Mode::Lane { lane, .. } = v.mode else {
                unreachable!()
            };
            // Stop short of the exact conflict point: the bodies end up
            // nearly touching but not overlapping, which matches real
            // collisions as a segmenter sees them (two adjacent blobs,
            // not one merged blob) and keeps both vehicles trackable
            // through the event.
            v.maneuver = Maneuver::RunThrough {
                stop_s: self.lane_center_s[lane] - 10.0,
                partner,
            };
        }
        self.record(IncidentKind::SideCollision, vec![eid, nid]);
        true
    }

    fn trigger_u_turn(&mut self) -> bool {
        let cands = self.candidates();
        let Some(&idx) = cands.first() else {
            return false;
        };
        let v = &mut self.vehicles[idx];
        let Mode::Lane { lane, s, lat } = v.mode else {
            return false;
        };
        let l = self.network.lane(lane);
        let pos = l.offset_position(s, lat);
        let heading = l.heading(s).angle();
        v.mode = Mode::Free { pos, heading };
        v.speed = v.speed.clamp(1.5, 2.5);
        v.maneuver = Maneuver::UTurn {
            rate: std::f64::consts::PI / 26.0,
            remaining: std::f64::consts::PI,
        };
        let id = v.id;
        self.record(IncidentKind::UTurn, vec![id]);
        true
    }

    fn trigger_speeding(&mut self) -> bool {
        // Prefer a vehicle early in its lane so the speeding phase stays
        // in view.
        let Some(idx) = self
            .vehicles
            .iter()
            .enumerate()
            .filter(|(_, v)| {
                matches!(v.maneuver, Maneuver::None)
                    && v.hold_left.is_none()
                    && match &v.mode {
                        Mode::Lane { lane, s, .. } => *s < 0.45 * self.network.lane(*lane).length(),
                        _ => false,
                    }
            })
            .map(|(i, _)| i)
            .next()
        else {
            return false;
        };
        let v = &mut self.vehicles[idx];
        v.maneuver = Maneuver::Speeding {
            factor: 2.0,
            frames_left: IncidentKind::Speeding.nominal_duration(),
        };
        let id = v.id;
        self.record(IncidentKind::Speeding, vec![id]);
        true
    }

    fn trigger_near_miss_brake(&mut self) -> bool {
        // Wider gap than the rear-end crash: the follower reacts late
        // but still has room to resolve by braking alone.
        let Some((li, fi)) = self.following_pair(35.0, 110.0, 1.5) else {
            return false;
        };
        let (lid, fid) = (self.vehicles[li].id, self.vehicles[fi].id);
        self.vehicles[li].maneuver = Maneuver::BrakeRelease {
            decel: 0.9,
            hold: 22,
        };
        self.vehicles[fi].maneuver = Maneuver::LateBrake {
            trigger_gap: 14.0,
            decel: 1.1,
            hold: 10,
        };
        self.vehicles[fi].speed = self.vehicles[fi].speed.max(2.0);
        self.record(IncidentKind::NearMissBrake, vec![lid, fid]);
        true
    }

    fn trigger_near_miss_swerve(&mut self) -> bool {
        let Some((li, fi)) = self.following_pair(30.0, 100.0, 1.5) else {
            return false;
        };
        let Mode::Lane { lane, .. } = self.vehicles[fi].mode else {
            return false;
        };
        let (lid, fid) = (self.vehicles[li].id, self.vehicles[fi].id);
        self.vehicles[li].maneuver = Maneuver::BrakeRelease {
            decel: 0.9,
            hold: 26,
        };
        // Swerve toward the road center, away from the nearer wall
        // (positive lat is +y for the tunnel's +x heading).
        let lane_y = self.network.lane(lane).position(0.0).y;
        let out_lat = if lane_y < 120.0 { 10.0 } else { -10.0 };
        self.vehicles[fi].maneuver = Maneuver::Swerve {
            lat_rate: 1.1,
            out_lat,
            hold: 16,
            returning: false,
        };
        self.vehicles[fi].speed = self.vehicles[fi].speed.max(2.2);
        self.record(IncidentKind::NearMissSwerve, vec![lid, fid]);
        true
    }

    fn trigger_occlusion_merge(&mut self) -> bool {
        if self.scenario.kind != ScenarioKind::Tunnel {
            return false;
        }
        // A vehicle slightly ahead of one in the adjacent lane cuts in
        // just in front of it; during the lateral transit their blobs
        // pass close enough to merge in the segmenter.
        let snapshot: Vec<(usize, LaneId, f64)> = self
            .vehicles
            .iter()
            .enumerate()
            .filter_map(|(i, v)| match (&v.mode, &v.maneuver) {
                (Mode::Lane { lane, s, .. }, Maneuver::None)
                    if v.hold_left.is_none() && v.speed > 1.2 =>
                {
                    Some((i, *lane, *s))
                }
                _ => None,
            })
            .collect();
        let mut best: Option<(usize, usize, f64)> = None;
        for &(ai, al, as_) in &snapshot {
            for &(bi, bl, bs) in &snapshot {
                if ai == bi || al == bl {
                    continue;
                }
                let gap = as_ - bs;
                if (5.0..45.0).contains(&gap) {
                    match best {
                        Some((_, _, g)) if g <= gap => {}
                        _ => best = Some((ai, bi, gap)),
                    }
                }
            }
        }
        let Some((ai, bi, _)) = best else {
            return false;
        };
        let (aid, bid) = (self.vehicles[ai].id, self.vehicles[bi].id);
        let Mode::Lane { lane: al, .. } = self.vehicles[ai].mode else {
            return false;
        };
        let Mode::Lane { lane: bl, .. } = self.vehicles[bi].mode else {
            return false;
        };
        let ya = self.network.lane(al).position(0.0).y;
        let yb = self.network.lane(bl).position(0.0).y;
        if let Mode::Lane { lane, lat, .. } = &mut self.vehicles[ai].mode {
            // Re-home onto the target lane at the physical y it already
            // occupies, then steer the offset back to the centerline.
            *lane = bl;
            *lat = ya - yb;
        }
        self.vehicles[ai].maneuver = Maneuver::MergeIn { lat_rate: 2.2 };
        self.record(IncidentKind::OcclusionMerge, vec![aid, bid]);
        true
    }

    fn trigger_shockwave(&mut self) -> bool {
        // The leader with the largest platoon behind it: the wave needs
        // followers to propagate through.
        let cands = self.candidates();
        let mut best: Option<(usize, Vec<u64>)> = None;
        for &i in &cands {
            let Mode::Lane { lane, s, .. } = self.vehicles[i].mode else {
                continue;
            };
            let followers: Vec<u64> = self
                .vehicles
                .iter()
                .filter(|o| match &o.mode {
                    Mode::Lane {
                        lane: ol, s: os, ..
                    } => *ol == lane && *os < s && s - *os <= 160.0,
                    Mode::Free { .. } => false,
                })
                .map(|o| o.id)
                .collect();
            match &best {
                Some((_, f)) if f.len() >= followers.len() => {}
                _ => best = Some((i, followers)),
            }
        }
        let Some((i, followers)) = best else {
            return false;
        };
        if followers.is_empty() {
            return false;
        }
        let mut ids = vec![self.vehicles[i].id];
        ids.extend(followers);
        self.vehicles[i].maneuver = Maneuver::StopAndGo {
            cycles: 2,
            phase: 0,
            timer: 0,
        };
        self.record(IncidentKind::Shockwave, ids);
        true
    }

    fn trigger_wrong_way(&mut self) -> bool {
        let cands = self.candidates();
        let Some(&idx) = cands.first() else {
            return false;
        };
        let v = &mut self.vehicles[idx];
        let Mode::Lane { lane, s, lat } = v.mode else {
            return false;
        };
        let l = self.network.lane(lane);
        let pos = l.offset_position(s, lat);
        let heading = l.heading(s).angle();
        // Turn around faster than a leisurely U-turn, then keep driving
        // against the flow until leaving the scene (the `Free` despawn
        // margin removes it past the image edge).
        v.mode = Mode::Free { pos, heading };
        v.speed = v.speed.clamp(1.8, 2.6);
        v.maneuver = Maneuver::UTurn {
            rate: std::f64::consts::PI / 14.0,
            remaining: std::f64::consts::PI,
        };
        let id = v.id;
        self.record(IncidentKind::WrongWay, vec![id]);
        true
    }

    fn trigger_pedestrian(&mut self) -> bool {
        if self.scenario.kind != ScenarioKind::Tunnel {
            return false;
        }
        // An approaching vehicle with road ahead of it yields to the
        // crossing pedestrian.
        let Some(idx) = self
            .vehicles
            .iter()
            .enumerate()
            .filter(|(_, v)| {
                matches!(v.maneuver, Maneuver::None)
                    && v.hold_left.is_none()
                    && v.speed > 1.5
                    && match &v.mode {
                        Mode::Lane { .. } => {
                            let c = self.center_of(v);
                            (60.0..200.0).contains(&c.x)
                        }
                        Mode::Free { .. } => false,
                    }
            })
            .map(|(i, _)| i)
            .next()
        else {
            return false;
        };
        let veh_x = self.center_of(&self.vehicles[idx]).x;
        let vid = self.vehicles[idx].id;
        self.vehicles[idx].maneuver = Maneuver::BrakeRelease {
            decel: 0.55,
            hold: 30,
        };
        // A pedestrian-scale mover entering at the top wall and crossing
        // the roadway ahead of the yielding vehicle. Class is nominal
        // (the vision classifier will see a blob far below car size).
        let ped_id = self.next_id;
        self.next_id += 1;
        let mut idm = self.scenario.idm;
        idm.desired_speed = 1.2;
        idm.max_accel = 0.05;
        self.vehicles.push(Vehicle {
            id: ped_id,
            class: VehicleClass::Car,
            half_len: 2.5,
            half_wid: 2.0,
            idm,
            mode: Mode::Free {
                pos: Vec2::new((veh_x + 55.0).min(290.0), TUNNEL_WALL_TOP - 4.0),
                heading: std::f64::consts::FRAC_PI_2,
            },
            speed: 1.2,
            maneuver: Maneuver::None,
            hold_left: None,
            prev_center: None,
        });
        self.record(IncidentKind::Pedestrian, vec![ped_id, vid]);
        true
    }

    // ---- dynamics -------------------------------------------------------------

    /// Leader search: nearest in-lane vehicle ahead of `s` on `lane`,
    /// excluding vehicles far off the centerline (crashed into a wall).
    fn find_leader(&self, me: usize, lane: LaneId, s: f64) -> Option<Leader> {
        let my_half = self.vehicles[me].half_len;
        let mut best: Option<(f64, f64, f64)> = None; // (s', speed, half_len)
        for (i, v) in self.vehicles.iter().enumerate() {
            if i == me {
                continue;
            }
            let Mode::Lane {
                lane: vl,
                s: vs,
                lat,
            } = v.mode
            else {
                continue;
            };
            if vl != lane || vs <= s || lat.abs() > 6.0 {
                continue;
            }
            match best {
                Some((bs, _, _)) if bs <= vs => {}
                _ => best = Some((vs, v.speed, v.half_len)),
            }
        }
        best.map(|(vs, speed, half)| Leader {
            gap: (vs - s - my_half - half).max(0.0),
            speed,
        })
    }

    /// Signal stop line acting as a virtual stationary leader.
    fn signal_leader(&self, lane: LaneId, s: f64, half_len: f64) -> Option<Leader> {
        let signal = self.signal.as_ref()?;
        let l = self.network.lane(lane);
        let stop = l.stop_line?;
        if l.approach.is_empty() {
            return None;
        }
        let state = signal.state(&l.approach, self.frame);
        if state == SignalState::Green {
            return None;
        }
        // Already past (or braking cannot help): proceed.
        if s + half_len >= stop {
            return None;
        }
        Some(Leader {
            gap: (stop - s - half_len).max(0.0),
            speed: 0.0,
        })
    }

    fn advance_vehicles(&mut self) {
        let n = self.vehicles.len();
        // Pass 1: pure queries against the immutable state.
        #[derive(Clone, Copy)]
        struct Plan {
            leader: Option<Leader>,
            signal: Option<Leader>,
            partner_dist: Option<f64>,
        }
        let mut plans = Vec::with_capacity(n);
        for i in 0..n {
            let v = &self.vehicles[i];
            let plan = match &v.mode {
                Mode::Lane { lane, s, .. } => {
                    let leader = self.find_leader(i, *lane, *s);
                    let signal = self.signal_leader(*lane, *s, v.half_len);
                    let partner_dist = match &v.maneuver {
                        Maneuver::RunThrough { partner, .. } => {
                            let me = self.center_of(v);
                            self.vehicles
                                .iter()
                                .find(|o| o.id == *partner)
                                .map(|o| self.center_of(o).dist(me))
                        }
                        _ => None,
                    };
                    Plan {
                        leader,
                        signal,
                        partner_dist,
                    }
                }
                Mode::Free { .. } => Plan {
                    leader: None,
                    signal: None,
                    partner_dist: None,
                },
            };
            plans.push(plan);
        }

        // Pass 2: mutate.
        #[allow(clippy::needless_range_loop)] // parallel arrays: plans[i] drives vehicles[i]
        for i in 0..n {
            let plan = plans[i];
            let lateral_jitter = self.scenario.lateral_jitter;
            let crash_hold = self.scenario.crash_hold_frames;
            let jitter = self.rng.normal(0.0, lateral_jitter);
            let v = &mut self.vehicles[i];
            if v.hold_left.is_some() {
                continue; // parked wreck
            }
            match v.maneuver.clone() {
                Maneuver::None => {
                    // IDM against the nearer of leader and signal line.
                    let constraint = match (plan.leader, plan.signal) {
                        (Some(a), Some(b)) => Some(if a.gap < b.gap { a } else { b }),
                        (a, b) => a.or(b),
                    };
                    let (_, nv) = idm::step(&v.idm, 0.0, v.speed, constraint, 1.0);
                    v.speed = nv;
                    if let Mode::Lane { s, lat, .. } = &mut v.mode {
                        *s += v.speed;
                        *lat = (*lat + jitter).clamp(-2.5, 2.5);
                    } else if let Mode::Free { pos, heading } = &mut v.mode {
                        *pos = *pos + Vec2::new(heading.cos(), heading.sin()) * v.speed;
                    }
                }
                Maneuver::Stopping { decel } => {
                    v.speed = (v.speed - decel).max(0.0);
                    if let Mode::Lane { s, .. } = &mut v.mode {
                        *s += v.speed;
                    } else if let Mode::Free { pos, heading } = &mut v.mode {
                        *pos = *pos + Vec2::new(heading.cos(), heading.sin()) * v.speed;
                    }
                    if v.speed == 0.0 {
                        v.maneuver = Maneuver::None;
                        v.hold_left = Some(crash_hold);
                    }
                }
                Maneuver::WallVeer {
                    lat_rate,
                    target_lat,
                } => {
                    if let Mode::Lane { s, lat, .. } = &mut v.mode {
                        *s += v.speed;
                        *lat += lat_rate;
                        if (target_lat >= 0.0 && *lat >= target_lat)
                            || (target_lat < 0.0 && *lat <= target_lat)
                        {
                            *lat = target_lat;
                            v.maneuver = Maneuver::Stopping { decel: 2.0 };
                        }
                    }
                }
                Maneuver::Distracted { stop_gap, decel } => {
                    let gap = plan.leader.map(|l| l.gap).unwrap_or(f64::INFINITY);
                    if gap <= stop_gap {
                        // Impact: crash-brake from now on.
                        v.maneuver = Maneuver::Stopping { decel };
                    }
                    if let Mode::Lane { s, .. } = &mut v.mode {
                        *s += v.speed;
                    }
                }
                Maneuver::RunThrough { stop_s, .. } => {
                    let collided = plan
                        .partner_dist
                        .map(|d| d < v.half_len * 2.0)
                        .unwrap_or(false);
                    let reached = matches!(&v.mode, Mode::Lane { s, .. } if *s >= stop_s - 2.0);
                    if collided || reached {
                        v.maneuver = Maneuver::Stopping { decel: 2.5 };
                    } else if let Mode::Lane { s, .. } = &mut v.mode {
                        *s += v.speed;
                    }
                }
                Maneuver::UTurn { rate, remaining } => {
                    if let Mode::Free { pos, heading } = &mut v.mode {
                        *heading = wrap_angle(*heading + rate);
                        *pos = *pos + Vec2::new(heading.cos(), heading.sin()) * v.speed;
                    }
                    let left = remaining - rate.abs();
                    v.maneuver = if left <= 0.0 {
                        Maneuver::None
                    } else {
                        Maneuver::UTurn {
                            rate,
                            remaining: left,
                        }
                    };
                }
                Maneuver::Speeding {
                    factor,
                    frames_left,
                } => {
                    let mut p = v.idm;
                    p.desired_speed *= factor;
                    p.max_accel *= 2.0;
                    let (_, nv) = idm::step(&p, 0.0, v.speed, plan.leader, 1.0);
                    v.speed = nv;
                    if let Mode::Lane { s, lat, .. } = &mut v.mode {
                        *s += v.speed;
                        *lat = (*lat + jitter).clamp(-2.5, 2.5);
                    }
                    v.maneuver = if frames_left <= 1 {
                        Maneuver::None
                    } else {
                        Maneuver::Speeding {
                            factor,
                            frames_left: frames_left - 1,
                        }
                    };
                }
                Maneuver::BrakeRelease { decel, hold } => {
                    if v.speed > 0.35 {
                        v.speed = (v.speed - decel).max(0.3);
                    } else if hold > 0 {
                        v.maneuver = Maneuver::BrakeRelease {
                            decel,
                            hold: hold - 1,
                        };
                    } else {
                        v.maneuver = Maneuver::None;
                    }
                    if let Mode::Lane { s, .. } = &mut v.mode {
                        *s += v.speed;
                    } else if let Mode::Free { pos, heading } = &mut v.mode {
                        *pos = *pos + Vec2::new(heading.cos(), heading.sin()) * v.speed;
                    }
                }
                Maneuver::LateBrake {
                    trigger_gap,
                    decel,
                    hold,
                } => {
                    let gap = plan.leader.map(|l| l.gap).unwrap_or(f64::INFINITY);
                    if gap <= trigger_gap {
                        v.speed = (v.speed - decel).max(0.3);
                        v.maneuver = Maneuver::BrakeRelease { decel, hold };
                    }
                    if let Mode::Lane { s, .. } = &mut v.mode {
                        *s += v.speed;
                    }
                }
                Maneuver::Swerve {
                    lat_rate,
                    out_lat,
                    hold,
                    returning,
                } => {
                    if let Mode::Lane { s, lat, .. } = &mut v.mode {
                        *s += v.speed;
                        let step = lat_rate * out_lat.signum();
                        if !returning {
                            *lat += step;
                            let reached = (out_lat >= 0.0 && *lat >= out_lat)
                                || (out_lat < 0.0 && *lat <= out_lat);
                            if reached {
                                *lat = out_lat;
                                v.maneuver = if hold > 0 {
                                    Maneuver::Swerve {
                                        lat_rate,
                                        out_lat,
                                        hold: hold - 1,
                                        returning: false,
                                    }
                                } else {
                                    Maneuver::Swerve {
                                        lat_rate,
                                        out_lat,
                                        hold: 0,
                                        returning: true,
                                    }
                                };
                            }
                        } else {
                            *lat -= step;
                            let back = (out_lat >= 0.0 && *lat <= 0.0)
                                || (out_lat < 0.0 && *lat >= 0.0);
                            if back {
                                *lat = 0.0;
                                v.maneuver = Maneuver::None;
                            }
                        }
                    }
                }
                Maneuver::MergeIn { lat_rate } => {
                    if let Mode::Lane { s, lat, .. } = &mut v.mode {
                        *s += v.speed;
                        if lat.abs() <= lat_rate {
                            *lat = 0.0;
                            v.maneuver = Maneuver::None;
                        } else {
                            *lat -= lat_rate * lat.signum();
                        }
                    }
                }
                Maneuver::StopAndGo {
                    cycles,
                    phase,
                    timer,
                } => {
                    let mut next = Maneuver::StopAndGo {
                        cycles,
                        phase,
                        timer,
                    };
                    match phase {
                        0 => {
                            v.speed = (v.speed - 0.5).max(0.3);
                            if v.speed <= 0.35 {
                                next = Maneuver::StopAndGo {
                                    cycles,
                                    phase: 1,
                                    timer: 12,
                                };
                            }
                        }
                        1 => {
                            next = if timer > 0 {
                                Maneuver::StopAndGo {
                                    cycles,
                                    phase: 1,
                                    timer: timer - 1,
                                }
                            } else {
                                Maneuver::StopAndGo {
                                    cycles,
                                    phase: 2,
                                    timer: 0,
                                }
                            };
                        }
                        _ => {
                            v.speed = (v.speed + 0.2).min(v.idm.desired_speed);
                            if v.speed >= v.idm.desired_speed {
                                next = if cycles <= 1 {
                                    Maneuver::None
                                } else {
                                    Maneuver::StopAndGo {
                                        cycles: cycles - 1,
                                        phase: 0,
                                        timer: 0,
                                    }
                                };
                            }
                        }
                    }
                    v.maneuver = next;
                    if let Mode::Lane { s, .. } = &mut v.mode {
                        *s += v.speed;
                    }
                }
            }
        }

        // Decrement wreck-hold counters.
        for v in &mut self.vehicles {
            if let Some(h) = &mut v.hold_left {
                *h = h.saturating_sub(1);
            }
        }
    }

    fn center_of(&self, v: &Vehicle) -> Vec2 {
        match &v.mode {
            Mode::Lane { lane, s, lat } => self.network.lane(*lane).offset_position(*s, *lat),
            Mode::Free { pos, .. } => *pos,
        }
    }

    fn heading_of(&self, v: &Vehicle) -> f64 {
        match &v.mode {
            Mode::Lane { lane, s, .. } => self.network.lane(*lane).heading(*s).angle(),
            Mode::Free { heading, .. } => *heading,
        }
    }

    fn despawn(&mut self) {
        let net = &self.network;
        let margin = 50.0;
        let w = net.width as f64;
        let h = net.height as f64;
        self.vehicles.retain(|v| {
            if matches!(v.hold_left, Some(0)) {
                return false;
            }
            match &v.mode {
                Mode::Lane { lane, s, .. } => *s < net.lane(*lane).length(),
                Mode::Free { pos, .. } => {
                    pos.x > -margin && pos.x < w + margin && pos.y > -margin && pos.y < h + margin
                }
            }
        });
    }

    fn spawn(&mut self) {
        for lane_id in 0..self.network.lane_count() {
            if self.frame < self.next_spawn[lane_id] {
                continue;
            }
            // Entry must be clear.
            let entry_blocked = self.vehicles.iter().any(
                |v| matches!(&v.mode, Mode::Lane { lane, s, .. } if *lane == lane_id && *s < 45.0),
            );
            if entry_blocked {
                self.next_spawn[lane_id] = self.frame + 3;
                continue;
            }
            let class = match self.rng.uniform_u32(100) {
                0..=59 => VehicleClass::Car,
                60..=84 => VehicleClass::Suv,
                _ => VehicleClass::Pickup,
            };
            let (half_len, half_wid) = class.half_extents();
            let mut idm = self.scenario.idm;
            let jitter = 1.0 + self.rng.normal(0.0, self.scenario.speed_jitter);
            idm.desired_speed = (idm.desired_speed * jitter).max(1.0);
            let v = Vehicle {
                id: self.next_id,
                class,
                half_len,
                half_wid,
                speed: idm.desired_speed,
                idm,
                mode: Mode::Lane {
                    lane: lane_id,
                    s: 0.0,
                    lat: self.rng.uniform(-1.0, 1.0),
                },
                maneuver: Maneuver::None,
                hold_left: None,
                prev_center: None,
            };
            self.next_id += 1;
            self.vehicles.push(v);
            let gap = self
                .rng
                .exponential(1.0 / self.scenario.mean_spawn_interval)
                .round()
                .max(1.0) as u32;
            self.next_spawn[lane_id] = self.frame + gap;
        }
    }

    fn observe(&mut self) -> FrameObservation {
        let w = self.network.width as f64;
        let h = self.network.height as f64;
        let mut out = Vec::new();
        let centers: Vec<Vec2> = self.vehicles.iter().map(|v| self.center_of(v)).collect();
        let headings: Vec<f64> = self.vehicles.iter().map(|v| self.heading_of(v)).collect();
        for (i, v) in self.vehicles.iter_mut().enumerate() {
            let center = centers[i];
            // Report heading from the actual displacement when the
            // vehicle moved (captures veering), else the nominal one.
            let (heading, speed) = match v.prev_center {
                Some(p) if center.dist(p) > 1e-9 => ((center - p).angle(), center.dist(p)),
                _ => (headings[i], 0.0),
            };
            v.prev_center = Some(center);
            if center.x < 0.0 || center.x >= w || center.y < 0.0 || center.y >= h {
                continue;
            }
            out.push(VehicleObs {
                id: v.id,
                class: v.class,
                center,
                heading,
                half_len: v.half_len,
                half_wid: v.half_wid,
                speed,
            });
        }
        FrameObservation {
            frame: self.frame,
            vehicles: out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn run_small(seed: u64) -> SimOutput {
        World::run(Scenario::tunnel_small(seed))
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_small(7);
        let b = run_small(7);
        assert_eq!(a.frames.len(), b.frames.len());
        for (fa, fb) in a.frames.iter().zip(&b.frames) {
            assert_eq!(fa, fb);
        }
        assert_eq!(a.incidents, b.incidents);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_small(1);
        let b = run_small(2);
        let same = a
            .frames
            .iter()
            .zip(&b.frames)
            .filter(|(x, y)| x == y)
            .count();
        assert!(same < a.frames.len());
    }

    #[test]
    fn produces_one_observation_per_frame() {
        let out = run_small(3);
        assert_eq!(out.frames.len(), 400);
        for (i, f) in out.frames.iter().enumerate() {
            assert_eq!(f.frame as usize, i);
        }
    }

    #[test]
    fn vehicles_stay_inside_image() {
        let out = run_small(4);
        for f in &out.frames {
            for v in &f.vehicles {
                assert!(v.center.x >= 0.0 && v.center.x < out.width as f64);
                assert!(v.center.y >= 0.0 && v.center.y < out.height as f64);
            }
        }
    }

    #[test]
    fn traffic_actually_flows() {
        let out = run_small(5);
        let total: usize = out.frames.iter().map(|f| f.vehicles.len()).sum();
        assert!(total > 100, "only {total} vehicle-frames observed");
        // Some vehicle crosses the whole image.
        let mut max_x = 0.0f64;
        for f in &out.frames {
            for v in &f.vehicles {
                max_x = max_x.max(v.center.x);
            }
        }
        assert!(max_x > 250.0);
    }

    #[test]
    fn scheduled_incidents_trigger() {
        let out = run_small(6);
        let kinds: Vec<IncidentKind> = out.incidents.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&IncidentKind::WallCrash), "{kinds:?}");
        assert!(kinds.contains(&IncidentKind::SuddenStop), "{kinds:?}");
    }

    #[test]
    fn incident_records_reference_live_vehicles() {
        let out = run_small(8);
        for rec in &out.incidents {
            assert!(!rec.vehicle_ids.is_empty());
            assert!(rec.end_frame > rec.start_frame);
            // The vehicle must be observed at (or just before) the start
            // frame.
            let seen = out.frames[rec.start_frame as usize]
                .vehicles
                .iter()
                .chain(&out.frames[(rec.start_frame as usize).saturating_sub(1)].vehicles)
                .any(|v| rec.vehicle_ids.contains(&v.id));
            assert!(seen, "incident {rec:?} vehicle never observed at start");
        }
    }

    #[test]
    fn wall_crash_vehicle_stops_near_wall() {
        let out = run_small(9);
        let Some(rec) = out
            .incidents
            .iter()
            .find(|r| r.kind == IncidentKind::WallCrash)
        else {
            panic!("no wall crash triggered");
        };
        let vid = rec.vehicle_ids[0];
        // Find the vehicle's last observation: it should be close to a
        // wall (y near 80 or 160) and nearly stopped.
        let mut last: Option<&VehicleObs> = None;
        for f in &out.frames {
            for v in &f.vehicles {
                if v.id == vid {
                    last = Some(v);
                }
            }
        }
        let last = last.expect("crashed vehicle never observed");
        let near_top = (last.center.y - TUNNEL_WALL_TOP).abs() < 12.0;
        let near_bottom = (last.center.y - TUNNEL_WALL_BOTTOM).abs() < 12.0;
        assert!(near_top || near_bottom, "final y = {}", last.center.y);
        assert!(last.speed < 0.3, "final speed = {}", last.speed);
    }

    #[test]
    fn sudden_stop_vehicle_decelerates_sharply() {
        let out = run_small(10);
        let rec = out
            .incidents
            .iter()
            .find(|r| r.kind == IncidentKind::SuddenStop)
            .expect("no sudden stop");
        let vid = rec.vehicle_ids[0];
        let speeds: Vec<f64> = out
            .frames
            .iter()
            .flat_map(|f| f.vehicles.iter())
            .filter(|v| v.id == vid)
            .map(|v| v.speed)
            .collect();
        let vmax = speeds.iter().cloned().fold(0.0, f64::max);
        let vmin = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(vmax > 1.8, "vmax {vmax}");
        assert!(vmin < 0.1, "vmin {vmin}");
    }

    #[test]
    fn intersection_side_collision_brings_two_vehicles_together() {
        let out = World::run(Scenario::intersection_paper(11));
        let rec = out
            .incidents
            .iter()
            .find(|r| r.kind == IncidentKind::SideCollision)
            .expect("no side collision triggered");
        assert_eq!(rec.vehicle_ids.len(), 2);
        // After the nominal duration both vehicles should be near each
        // other (collided in the conflict zone).
        let probe = (rec.end_frame as usize + 10).min(out.frames.len() - 1);
        let mut pos = Vec::new();
        for f in &out.frames[rec.start_frame as usize..=probe] {
            let ps: Vec<Vec2> = f
                .vehicles
                .iter()
                .filter(|v| rec.vehicle_ids.contains(&v.id))
                .map(|v| v.center)
                .collect();
            if ps.len() == 2 {
                pos.push(ps[0].dist(ps[1]));
            }
        }
        let min_dist = pos.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min_dist < 40.0, "vehicles never got close: {min_dist}");
    }

    #[test]
    fn u_turn_reverses_heading() {
        let out = World::run(Scenario::intersection_paper(12));
        let rec = out
            .incidents
            .iter()
            .find(|r| r.kind == IncidentKind::UTurn)
            .expect("no u-turn");
        let vid = rec.vehicle_ids[0];
        let headings: Vec<f64> = out.frames[rec.start_frame as usize..]
            .iter()
            .flat_map(|f| f.vehicles.iter())
            .filter(|v| v.id == vid && v.speed > 0.1)
            .map(|v| v.heading)
            .collect();
        assert!(headings.len() > 5);
        let first = headings[1];
        let last = *headings.last().unwrap();
        let diff = crate::geometry::wrap_angle(last - first).abs();
        assert!(diff > 2.0, "heading change only {diff} rad");
    }

    #[test]
    fn wrecks_eventually_removed() {
        let out = run_small(13);
        let rec = out
            .incidents
            .iter()
            .find(|r| r.kind == IncidentKind::WallCrash)
            .expect("no wall crash");
        let vid = rec.vehicle_ids[0];
        let last_seen = out
            .frames
            .iter()
            .rev()
            .find(|f| f.vehicles.iter().any(|v| v.id == vid))
            .map(|f| f.frame)
            .unwrap();
        assert!(
            last_seen < rec.end_frame + 3 * Scenario::tunnel_small(13).crash_hold_frames,
            "wreck still visible at {last_seen}"
        );
    }

    /// FNV-1a over every observation and incident of a run — a compact
    /// stand-in for byte comparison against a pinned golden value.
    fn fingerprint(out: &SimOutput) -> u64 {
        fn mix(h: u64, x: u64) -> u64 {
            (h ^ x).wrapping_mul(0x100000001b3)
        }
        let mut h: u64 = 0xcbf29ce484222325;
        for f in &out.frames {
            h = mix(h, u64::from(f.frame));
            for v in &f.vehicles {
                h = mix(h, v.id);
                h = mix(h, v.center.x.to_bits());
                h = mix(h, v.center.y.to_bits());
                h = mix(h, v.heading.to_bits());
                h = mix(h, v.speed.to_bits());
            }
        }
        for r in &out.incidents {
            h = mix(h, u64::from(r.start_frame));
            h = mix(h, u64::from(r.end_frame));
            for id in &r.vehicle_ids {
                h = mix(h, *id);
            }
        }
        h
    }

    #[test]
    fn preset_worlds_replay_on_the_legacy_stream() {
        // The per-scenario RNG stream refactor must never move the
        // paper presets off the legacy stream: pin the stream id and a
        // golden fingerprint of a full tunnel_small replay, so any
        // future fleet change that perturbs existing trajectories fails
        // here instead of silently shifting every calibrated number.
        for s in [
            Scenario::tunnel_paper(1),
            Scenario::intersection_paper(1),
            Scenario::tunnel_small(1),
        ] {
            assert_eq!(s.rng_stream, crate::rng::DEFAULT_STREAM);
        }
        let fp = fingerprint(&run_small(7));
        assert_eq!(
            fp, 0x09a3df3fb83b0674,
            "tunnel_small(7) drifted from the pinned replay: fp = {fp:#x}"
        );
    }

    #[test]
    fn split_at_partitions_frames_and_clamps_records() {
        let out = run_small(6);
        let (a, b) = out.split_at(150);
        assert_eq!(a.frames.len(), 150);
        assert_eq!(b.frames.len(), 250);
        assert_eq!(b.frames[0].frame, 0);
        assert_eq!(b.frames.last().unwrap().frame, 249);
        // Same vehicles on both sides of the boundary.
        assert_eq!(b.frames[0].vehicles, out.frames[150].vehicles);
        for r in &a.incidents {
            assert!(r.end_frame < 150);
        }
        // Splitting past the end keeps everything in the first half.
        let (c, d) = out.split_at(10_000);
        assert_eq!(c.frames.len(), out.frames.len());
        assert!(d.frames.is_empty());
        assert_eq!(c.incidents.len(), out.incidents.len());
    }

    #[test]
    fn paper_presets_run_to_completion() {
        let t = World::run(Scenario::tunnel_paper(42));
        assert_eq!(t.frames.len(), 2504);
        assert!(t.incidents.iter().filter(|r| r.kind.is_accident()).count() >= 4);
        let i = World::run(Scenario::intersection_paper(42));
        assert_eq!(i.frames.len(), 592);
        assert!(i.incidents.iter().filter(|r| r.kind.is_accident()).count() >= 2);
    }
}
