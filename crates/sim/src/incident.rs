//! Incident taxonomy, scheduling and the ground-truth event log.
//!
//! The paper's query target is "traffic incidents … such as car crash,
//! bumping, U-turn and speeding" (§1). Clip 1 features single-vehicle
//! accidents ("speeding vehicles lost control and hit on the sidewalls of
//! the tunnel"), clip 2 multi-vehicle intersection accidents (§6.2). Each
//! of those behaviours is scripted here as a maneuver override applied to
//! one or two simulated vehicles, and every triggered incident is logged
//! as an [`IncidentRecord`] — the ground truth the relevance-feedback
//! oracle consults in place of the paper's human user.

/// The kinds of semantic events the simulator can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IncidentKind {
    /// Single vehicle veers off its lane and crashes into the tunnel
    /// side wall (clip 1's dominant accident type).
    WallCrash,
    /// Single vehicle brakes abruptly to a standstill.
    SuddenStop,
    /// A follower fails to brake and rear-ends a suddenly stopping
    /// leader (two vehicles).
    RearEndCrash,
    /// Two vehicles on crossing approaches collide inside the
    /// intersection conflict zone (clip 2's dominant accident type).
    SideCollision,
    /// A vehicle makes a U-turn (anomalous but not an accident; a
    /// distractor for accident queries and a target for U-turn queries).
    UTurn,
    /// A vehicle exceeds the desired speed substantially (distractor /
    /// alternative query target).
    Speeding,
    /// Near-miss, low risk grade: a leader brakes to a crawl and the
    /// follower resolves the conflict by braking hard — no contact,
    /// both resume (Kataoka-style near-miss taxonomy).
    NearMissBrake,
    /// Near-miss, high risk grade: the follower resolves the conflict
    /// by swerving around the braking leader at speed.
    NearMissSwerve,
    /// Occlusion-heavy merge: a vehicle cuts laterally into the
    /// adjacent lane just ahead of another, the two footprints passing
    /// close enough that the segmenter sees merged/occluded blobs.
    OcclusionMerge,
    /// Stop-and-go shockwave: the platoon leader pulses to a crawl and
    /// back, propagating a braking wave through its followers.
    Shockwave,
    /// Wrong-way driver: a vehicle turns around and travels against the
    /// flow until it leaves the scene.
    WrongWay,
    /// Pedestrian incursion: a pedestrian-scale mover crosses the
    /// roadway while an approaching vehicle brakes for it.
    Pedestrian,
}

impl IncidentKind {
    /// Whether this kind is an *accident* — the event class queried in
    /// the paper's experiments.
    pub fn is_accident(self) -> bool {
        matches!(
            self,
            IncidentKind::WallCrash
                | IncidentKind::SuddenStop
                | IncidentKind::RearEndCrash
                | IncidentKind::SideCollision
        )
    }

    /// Nominal duration, in frames, of the dynamic (anomalous) phase —
    /// roughly the paper's "typical length of an event" (§5.1: a car
    /// crash covers about 15 frames).
    pub fn nominal_duration(self) -> u32 {
        match self {
            IncidentKind::WallCrash => 22,
            IncidentKind::SuddenStop => 18,
            IncidentKind::RearEndCrash => 35,
            IncidentKind::SideCollision => 35,
            IncidentKind::UTurn => 30,
            IncidentKind::Speeding => 80,
            IncidentKind::NearMissBrake => 25,
            IncidentKind::NearMissSwerve => 25,
            IncidentKind::OcclusionMerge => 30,
            IncidentKind::Shockwave => 55,
            IncidentKind::WrongWay => 60,
            IncidentKind::Pedestrian => 40,
        }
    }

    /// Every kind, in a stable order (registry/driver convenience).
    pub const ALL: [IncidentKind; 12] = [
        IncidentKind::WallCrash,
        IncidentKind::SuddenStop,
        IncidentKind::RearEndCrash,
        IncidentKind::SideCollision,
        IncidentKind::UTurn,
        IncidentKind::Speeding,
        IncidentKind::NearMissBrake,
        IncidentKind::NearMissSwerve,
        IncidentKind::OcclusionMerge,
        IncidentKind::Shockwave,
        IncidentKind::WrongWay,
        IncidentKind::Pedestrian,
    ];

    /// Parses a name produced by [`IncidentKind::name`].
    pub fn from_name(name: &str) -> Option<IncidentKind> {
        Some(match name {
            "wall_crash" => IncidentKind::WallCrash,
            "sudden_stop" => IncidentKind::SuddenStop,
            "rear_end_crash" => IncidentKind::RearEndCrash,
            "side_collision" => IncidentKind::SideCollision,
            "u_turn" => IncidentKind::UTurn,
            "speeding" => IncidentKind::Speeding,
            "near_miss_brake" => IncidentKind::NearMissBrake,
            "near_miss_swerve" => IncidentKind::NearMissSwerve,
            "occlusion_merge" => IncidentKind::OcclusionMerge,
            "shockwave" => IncidentKind::Shockwave,
            "wrong_way" => IncidentKind::WrongWay,
            "pedestrian" => IncidentKind::Pedestrian,
            _ => return None,
        })
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            IncidentKind::WallCrash => "wall_crash",
            IncidentKind::SuddenStop => "sudden_stop",
            IncidentKind::RearEndCrash => "rear_end_crash",
            IncidentKind::SideCollision => "side_collision",
            IncidentKind::UTurn => "u_turn",
            IncidentKind::Speeding => "speeding",
            IncidentKind::NearMissBrake => "near_miss_brake",
            IncidentKind::NearMissSwerve => "near_miss_swerve",
            IncidentKind::OcclusionMerge => "occlusion_merge",
            IncidentKind::Shockwave => "shockwave",
            IncidentKind::WrongWay => "wrong_way",
            IncidentKind::Pedestrian => "pedestrian",
        }
    }
}

/// A scheduled request for the world to inject an incident at (or as soon
/// as possible after) a given frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncidentSpec {
    /// Kind to inject.
    pub kind: IncidentKind,
    /// Earliest frame at which to look for candidate vehicles.
    pub at_frame: u32,
}

impl IncidentSpec {
    /// Convenience constructor.
    pub fn new(kind: IncidentKind, at_frame: u32) -> Self {
        IncidentSpec { kind, at_frame }
    }
}

/// Ground truth for one incident that actually happened in a simulation
/// run.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentRecord {
    /// Kind of the incident.
    pub kind: IncidentKind,
    /// First frame of the anomalous phase.
    pub start_frame: u32,
    /// Last frame (inclusive) of the anomalous phase.
    pub end_frame: u32,
    /// Simulator ids of the involved vehicles.
    pub vehicle_ids: Vec<u64>,
}

impl IncidentRecord {
    /// Whether the record's frame span overlaps `[lo, hi]` (inclusive).
    /// Takes u64 bounds so callers holding widened window frame spans
    /// (which can exceed `u32` on long recordings) compare losslessly.
    pub fn overlaps(&self, lo: u64, hi: u64) -> bool {
        u64::from(self.start_frame) <= hi && lo <= u64::from(self.end_frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accident_classification() {
        assert!(IncidentKind::WallCrash.is_accident());
        assert!(IncidentKind::SuddenStop.is_accident());
        assert!(IncidentKind::RearEndCrash.is_accident());
        assert!(IncidentKind::SideCollision.is_accident());
        assert!(!IncidentKind::UTurn.is_accident());
        assert!(!IncidentKind::Speeding.is_accident());
    }

    #[test]
    fn durations_are_event_scale() {
        // Paper §5.1: an event covers roughly 15 frames; all accident
        // kinds should be the same order of magnitude.
        for k in [
            IncidentKind::WallCrash,
            IncidentKind::SuddenStop,
            IncidentKind::RearEndCrash,
            IncidentKind::SideCollision,
        ] {
            let d = k.nominal_duration();
            assert!((10..=60).contains(&d), "{:?} duration {d}", k);
        }
    }

    #[test]
    fn overlap_logic() {
        let r = IncidentRecord {
            kind: IncidentKind::WallCrash,
            start_frame: 100,
            end_frame: 120,
            vehicle_ids: vec![1],
        };
        assert!(r.overlaps(110, 130));
        assert!(r.overlaps(90, 100));
        assert!(r.overlaps(120, 125));
        assert!(r.overlaps(0, 1000));
        assert!(!r.overlaps(121, 130));
        assert!(!r.overlaps(0, 99));
    }

    #[test]
    fn names_unique() {
        let names: std::collections::HashSet<_> =
            IncidentKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), IncidentKind::ALL.len());
    }

    #[test]
    fn name_round_trips() {
        for k in IncidentKind::ALL {
            assert_eq!(IncidentKind::from_name(k.name()), Some(k));
        }
        assert_eq!(IncidentKind::from_name("ufo_landing"), None);
    }

    #[test]
    fn fleet_kinds_are_not_accidents() {
        // Near-misses resolve without contact; the other fleet kinds
        // are anomalies, not collisions. Keeping them out of the
        // accident class preserves the paper query's semantics.
        for k in [
            IncidentKind::NearMissBrake,
            IncidentKind::NearMissSwerve,
            IncidentKind::OcclusionMerge,
            IncidentKind::Shockwave,
            IncidentKind::WrongWay,
            IncidentKind::Pedestrian,
        ] {
            assert!(!k.is_accident(), "{k:?} must not be an accident");
            assert!(k.nominal_duration() >= 15);
        }
    }
}
