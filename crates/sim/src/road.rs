//! Road geometry: polyline lanes with arc-length parameterization and the
//! two scene layouts used in the paper's evaluation (tunnel, signalized
//! intersection).
//!
//! World units are image pixels: the surveillance camera's image plane is
//! the simulation plane, so the renderer in `tsvr-vision` draws vehicle
//! footprints directly.

use crate::geometry::Vec2;

/// Identifier of a lane within a [`RoadNetwork`].
pub type LaneId = usize;

/// A directed lane described by a polyline centerline.
#[derive(Debug, Clone)]
pub struct Lane {
    /// Polyline waypoints in travel order.
    points: Vec<Vec2>,
    /// Cumulative arc length at each waypoint (`cum[0] == 0`).
    cum: Vec<f64>,
    /// Which approach/movement this lane belongss to (free-form tag used
    /// by signal control, e.g. "ns" or "ew"). Empty = unsignalized.
    pub approach: String,
    /// Arc length at which the signal stop line sits, if any.
    pub stop_line: Option<f64>,
}

impl Lane {
    /// Builds a lane from waypoints. Panics if fewer than 2 points.
    pub fn new(points: Vec<Vec2>) -> Self {
        assert!(points.len() >= 2, "lane needs at least 2 waypoints");
        let mut cum = Vec::with_capacity(points.len());
        let mut acc = 0.0;
        cum.push(0.0);
        for w in points.windows(2) {
            acc += w[0].dist(w[1]);
            cum.push(acc);
        }
        Lane {
            points,
            cum,
            approach: String::new(),
            stop_line: None,
        }
    }

    /// Tags the lane with an approach id (builder style).
    pub fn with_approach(mut self, approach: &str, stop_line: f64) -> Self {
        self.approach = approach.to_string();
        self.stop_line = Some(stop_line);
        self
    }

    /// Total arc length.
    pub fn length(&self) -> f64 {
        *self.cum.last().unwrap()
    }

    /// Position at arc length `s` (clamped to the lane extent).
    pub fn position(&self, s: f64) -> Vec2 {
        let (i, t) = self.locate(s);
        self.points[i].lerp(self.points[i + 1], t)
    }

    /// Unit heading (tangent) at arc length `s`.
    pub fn heading(&self, s: f64) -> Vec2 {
        let (i, _) = self.locate(s);
        (self.points[i + 1] - self.points[i]).normalized()
    }

    /// Position offset laterally from the centerline; positive offsets
    /// are to the left of the travel direction.
    pub fn offset_position(&self, s: f64, lateral: f64) -> Vec2 {
        self.position(s) + self.heading(s).perp() * lateral
    }

    /// Finds the segment index and interpolation parameter for `s`.
    fn locate(&self, s: f64) -> (usize, f64) {
        let s = s.clamp(0.0, self.length());
        // Binary search over cumulative lengths.
        let mut i = match self.cum.binary_search_by(|c| c.partial_cmp(&s).unwrap()) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        if i >= self.points.len() - 1 {
            i = self.points.len() - 2;
        }
        let seg = self.cum[i + 1] - self.cum[i];
        let t = if seg > 0.0 {
            (s - self.cum[i]) / seg
        } else {
            0.0
        };
        (i, t)
    }
}

/// A set of lanes plus the image bounds they live in.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    /// All lanes, indexed by [`LaneId`].
    pub lanes: Vec<Lane>,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
}

impl RoadNetwork {
    /// Convenience accessor.
    pub fn lane(&self, id: LaneId) -> &Lane {
        &self.lanes[id]
    }

    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }
}

/// Image dimensions used by both presets (QVGA, typical for 2007-era
/// surveillance hardware).
pub const IMAGE_W: u32 = 320;
/// See [`IMAGE_W`].
pub const IMAGE_H: u32 = 240;

/// Builds the tunnel layout: two parallel straight lanes crossing the
/// image left→right, with tunnel walls just outside the outer lanes.
/// Matches the paper's clip 1 ("taken in a tunnel", single direction,
/// accidents are speeding vehicles hitting the side walls).
pub fn tunnel_network() -> RoadNetwork {
    let w = IMAGE_W as f64;
    let lane_ys = [104.0, 136.0];
    let lanes = lane_ys
        .iter()
        .map(|&y| Lane::new(vec![Vec2::new(-40.0, y), Vec2::new(w + 40.0, y)]))
        .collect();
    RoadNetwork {
        lanes,
        width: IMAGE_W,
        height: IMAGE_H,
    }
}

/// Y coordinate of the upper tunnel wall.
pub const TUNNEL_WALL_TOP: f64 = 80.0;
/// Y coordinate of the lower tunnel wall.
pub const TUNNEL_WALL_BOTTOM: f64 = 160.0;

/// Builds the intersection layout: one east–west road (two lanes, one per
/// direction) crossing one north–south road, with stop lines at the
/// conflict-zone boundary. Matches the paper's clip 2 ("a road
/// intersection in Taiwan", multi-vehicle accidents).
pub fn intersection_network() -> RoadNetwork {
    let w = IMAGE_W as f64;
    let h = IMAGE_H as f64;
    let cx = w / 2.0;
    let cy = h / 2.0;
    // Conflict zone is a square around (cx, cy).
    let half = 28.0;

    let lanes = vec![
        // Eastbound (left -> right), south side of the EW road.
        Lane::new(vec![
            Vec2::new(-40.0, cy + 12.0),
            Vec2::new(w + 40.0, cy + 12.0),
        ])
        .with_approach("ew", cx - half + 40.0),
        // Westbound (right -> left), north side of the EW road.
        Lane::new(vec![
            Vec2::new(w + 40.0, cy - 12.0),
            Vec2::new(-40.0, cy - 12.0),
        ])
        .with_approach("ew", w + 40.0 - (cx + half)),
        // Southbound (top -> bottom), west side of the NS road.
        Lane::new(vec![
            Vec2::new(cx - 12.0, -40.0),
            Vec2::new(cx - 12.0, h + 40.0),
        ])
        .with_approach("ns", cy - half + 40.0),
        // Northbound (bottom -> top), east side of the NS road.
        Lane::new(vec![
            Vec2::new(cx + 12.0, h + 40.0),
            Vec2::new(cx + 12.0, -40.0),
        ])
        .with_approach("ns", h + 40.0 - (cy + half)),
    ];
    RoadNetwork {
        lanes,
        width: IMAGE_W,
        height: IMAGE_H,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_arc_length() {
        let lane = Lane::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(3.0, 0.0),
            Vec2::new(3.0, 4.0),
        ]);
        assert_eq!(lane.length(), 7.0);
    }

    #[test]
    fn lane_position_interpolates() {
        let lane = Lane::new(vec![Vec2::new(0.0, 0.0), Vec2::new(10.0, 0.0)]);
        assert_eq!(lane.position(0.0), Vec2::new(0.0, 0.0));
        assert_eq!(lane.position(5.0), Vec2::new(5.0, 0.0));
        assert_eq!(lane.position(10.0), Vec2::new(10.0, 0.0));
        // Clamping outside the extent.
        assert_eq!(lane.position(-5.0), Vec2::new(0.0, 0.0));
        assert_eq!(lane.position(15.0), Vec2::new(10.0, 0.0));
    }

    #[test]
    fn lane_position_multisegment() {
        let lane = Lane::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(4.0, 0.0),
            Vec2::new(4.0, 4.0),
        ]);
        assert_eq!(lane.position(6.0), Vec2::new(4.0, 2.0));
        let h = lane.heading(6.0);
        assert!((h.x).abs() < 1e-12 && (h.y - 1.0).abs() < 1e-12);
        let h0 = lane.heading(1.0);
        assert!((h0.x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lane_heading_at_vertex_uses_next_segment() {
        let lane = Lane::new(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(4.0, 0.0),
            Vec2::new(4.0, 4.0),
        ]);
        // Exactly at the corner (s=4): either segment is acceptable; the
        // locate() convention picks the second.
        let h = lane.heading(4.0);
        assert!(h.norm() > 0.99);
    }

    #[test]
    fn lateral_offset_is_perpendicular() {
        let lane = Lane::new(vec![Vec2::new(0.0, 0.0), Vec2::new(10.0, 0.0)]);
        let p = lane.offset_position(5.0, 2.0);
        assert_eq!(p, Vec2::new(5.0, 2.0));
        let q = lane.offset_position(5.0, -2.0);
        assert_eq!(q, Vec2::new(5.0, -2.0));
    }

    #[test]
    #[should_panic]
    fn lane_requires_two_points() {
        let _ = Lane::new(vec![Vec2::ZERO]);
    }

    #[test]
    fn tunnel_layout_sane() {
        let net = tunnel_network();
        assert_eq!(net.lane_count(), 2);
        for lane in &net.lanes {
            // Both lanes are between the walls.
            let y = lane.position(lane.length() / 2.0).y;
            assert!(y > TUNNEL_WALL_TOP && y < TUNNEL_WALL_BOTTOM);
            // Lanes span the image horizontally.
            assert!(lane.length() > net.width as f64);
        }
    }

    #[test]
    fn intersection_layout_sane() {
        let net = intersection_network();
        assert_eq!(net.lane_count(), 4);
        let approaches: Vec<&str> = net.lanes.iter().map(|l| l.approach.as_str()).collect();
        assert_eq!(approaches.iter().filter(|a| **a == "ew").count(), 2);
        assert_eq!(approaches.iter().filter(|a| **a == "ns").count(), 2);
        // Every lane has a stop line strictly inside its extent.
        for lane in &net.lanes {
            let sl = lane.stop_line.unwrap();
            assert!(
                sl > 0.0 && sl < lane.length(),
                "stop line {sl} outside lane"
            );
        }
        // Lanes all pass near the image center (conflict zone).
        let c = Vec2::new(IMAGE_W as f64 / 2.0, IMAGE_H as f64 / 2.0);
        for lane in &net.lanes {
            let mut best = f64::INFINITY;
            let n = 100;
            for i in 0..=n {
                let s = lane.length() * i as f64 / n as f64;
                best = best.min(lane.position(s).dist(c));
            }
            assert!(best < 20.0, "lane misses conflict zone: {best}");
        }
    }
}
