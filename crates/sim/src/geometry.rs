//! Planar geometry primitives shared by the simulator and the renderer.

use std::ops::{Add, Mul, Neg, Sub};

/// A 2-D vector / point in world coordinates (pixels; the simulator works
/// directly in camera-image units so the renderer needs no projection).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Vec2 {
    /// Constructs a vector.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec2) -> f64 {
        self.x * o.x + self.y * o.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    #[inline]
    pub fn cross(self, o: Vec2) -> f64 {
        self.x * o.y - self.y * o.x
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared length.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    #[inline]
    pub fn dist(self, o: Vec2) -> f64 {
        (self - o).norm()
    }

    /// Unit vector in this direction; `ZERO` stays `ZERO`.
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n == 0.0 {
            Vec2::ZERO
        } else {
            self * (1.0 / n)
        }
    }

    /// Rotates by `angle` radians counter-clockwise.
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// Angle of this vector in radians, in `(-pi, pi]`.
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Absolute angle in radians between two vectors, in `[0, pi]`.
    ///
    /// This is exactly the paper's θ — "the change of motion vector is
    /// denoted as the angle between the current motion vector and the
    /// previous motion vector" (Fig. 3), recorded as an absolute
    /// difference with no axis normalization.
    pub fn angle_between(self, o: Vec2) -> f64 {
        let na = self.norm();
        let nb = o.norm();
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        let cos = (self.dot(o) / (na * nb)).clamp(-1.0, 1.0);
        cos.acos()
    }

    /// Linear interpolation: `self + t * (o - self)`.
    pub fn lerp(self, o: Vec2, t: f64) -> Vec2 {
        self + (o - self) * t
    }

    /// Perpendicular vector (rotated +90°).
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x + o.x, self.y + o.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x - o.x, self.y - o.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

/// Axis-aligned bounding box (used for image bounds and MBRs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner (inclusive).
    pub min: Vec2,
    /// Maximum corner (inclusive).
    pub max: Vec2,
}

impl Aabb {
    /// Builds a box from two opposite corners in any order.
    pub fn from_corners(a: Vec2, b: Vec2) -> Self {
        Aabb {
            min: Vec2::new(a.x.min(b.x), a.y.min(b.y)),
            max: Vec2::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Center point.
    pub fn center(&self) -> Vec2 {
        (self.min + self.max) * 0.5
    }

    /// Width (x extent).
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (y extent).
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area.
    pub fn area(&self) -> f64 {
        self.width().max(0.0) * self.height().max(0.0)
    }

    /// Whether the point is inside (inclusive of edges).
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether two boxes overlap (touching edges count).
    pub fn intersects(&self, o: &Aabb) -> bool {
        self.min.x <= o.max.x
            && o.min.x <= self.max.x
            && self.min.y <= o.max.y
            && o.min.y <= self.max.y
    }

    /// Smallest box containing both.
    pub fn union(&self, o: &Aabb) -> Aabb {
        Aabb {
            min: Vec2::new(self.min.x.min(o.min.x), self.min.y.min(o.min.y)),
            max: Vec2::new(self.max.x.max(o.max.x), self.max.y.max(o.max.y)),
        }
    }

    /// Expands the box by `margin` on all sides.
    pub fn inflated(&self, margin: f64) -> Aabb {
        Aabb {
            min: self.min - Vec2::new(margin, margin),
            max: self.max + Vec2::new(margin, margin),
        }
    }
}

/// Wraps an angle into `(-pi, pi]`.
pub fn wrap_angle(a: f64) -> f64 {
    use std::f64::consts::PI;
    let mut a = a % (2.0 * PI);
    if a <= -PI {
        a += 2.0 * PI;
    } else if a > PI {
        a -= 2.0 * PI;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn vector_arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        assert_eq!(a.dot(b), 1.0);
        assert_eq!(a.cross(b), -7.0);
    }

    #[test]
    fn norms_and_distance() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(Vec2::ZERO.dist(v), 5.0);
        assert!((v.normalized().norm() - 1.0).abs() < 1e-12);
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
    }

    #[test]
    fn rotation_quarter_turn() {
        let v = Vec2::new(1.0, 0.0).rotated(FRAC_PI_2);
        assert!((v.x).abs() < 1e-12);
        assert!((v.y - 1.0).abs() < 1e-12);
        assert_eq!(Vec2::new(1.0, 0.0).perp(), Vec2::new(0.0, 1.0));
    }

    #[test]
    fn angle_between_is_absolute() {
        let a = Vec2::new(1.0, 0.0);
        assert!((a.angle_between(Vec2::new(0.0, 1.0)) - FRAC_PI_2).abs() < 1e-12);
        assert!((a.angle_between(Vec2::new(0.0, -1.0)) - FRAC_PI_2).abs() < 1e-12);
        assert!((a.angle_between(Vec2::new(-1.0, 0.0)) - PI).abs() < 1e-12);
        assert_eq!(a.angle_between(Vec2::ZERO), 0.0);
        assert_eq!(a.angle_between(a), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, -2.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(5.0, -1.0));
    }

    #[test]
    fn aabb_basics() {
        let b = Aabb::from_corners(Vec2::new(4.0, 1.0), Vec2::new(0.0, 3.0));
        assert_eq!(b.min, Vec2::new(0.0, 1.0));
        assert_eq!(b.width(), 4.0);
        assert_eq!(b.height(), 2.0);
        assert_eq!(b.area(), 8.0);
        assert_eq!(b.center(), Vec2::new(2.0, 2.0));
        assert!(b.contains(Vec2::new(2.0, 2.0)));
        assert!(b.contains(b.min));
        assert!(!b.contains(Vec2::new(-0.1, 2.0)));
    }

    #[test]
    fn aabb_intersection_and_union() {
        let a = Aabb::from_corners(Vec2::ZERO, Vec2::new(2.0, 2.0));
        let b = Aabb::from_corners(Vec2::new(1.0, 1.0), Vec2::new(3.0, 3.0));
        let c = Aabb::from_corners(Vec2::new(5.0, 5.0), Vec2::new(6.0, 6.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        let u = a.union(&b);
        assert_eq!(u.min, Vec2::ZERO);
        assert_eq!(u.max, Vec2::new(3.0, 3.0));
        // Touching edges count as intersecting.
        let d = Aabb::from_corners(Vec2::new(2.0, 0.0), Vec2::new(4.0, 2.0));
        assert!(a.intersects(&d));
    }

    #[test]
    fn aabb_inflate() {
        let a = Aabb::from_corners(Vec2::ZERO, Vec2::new(1.0, 1.0)).inflated(1.0);
        assert_eq!(a.min, Vec2::new(-1.0, -1.0));
        assert_eq!(a.max, Vec2::new(2.0, 2.0));
    }

    #[test]
    fn wrap_angle_range() {
        assert!((wrap_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_angle(-3.0 * PI) - PI).abs() < 1e-12);
        assert_eq!(wrap_angle(0.0), 0.0);
        for k in -10..10 {
            let a = wrap_angle(k as f64 * 1.7);
            assert!(a > -PI - 1e-12 && a <= PI + 1e-12);
        }
    }
}
