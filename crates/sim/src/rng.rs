//! Deterministic pseudo-random number generation.
//!
//! The whole evaluation pipeline must be reproducible from a single seed
//! (the paper's clips are fixed footage; our substitute must be equally
//! fixed given a scenario). PCG32 (O'Neill 2014, `PCG-XSH-RR`) is small,
//! statistically solid for simulation purposes, and has a trivially
//! portable implementation — which keeps the `rand` crate out of the
//! library's dependency graph entirely.

/// A PCG-XSH-RR 64/32 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

/// The stream id [`Pcg32::seeded`] uses — the stream every scenario ran
/// on before per-scenario streams existed. The paper-calibrated presets
/// pin this stream so their worlds replay byte-identically forever.
pub const DEFAULT_STREAM: u64 = 0xda3e39cb94b95bdb;

/// Derives an independent RNG stream id from a scenario name (FNV-1a
/// 64). Fleet scenarios key their stream on their own name, so adding a
/// new fleet member — or reordering the registry — can never perturb
/// another scenario's trajectories: the (seed, name) pair alone fixes
/// the world.
pub fn split_stream(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl Pcg32 {
    /// Creates a generator from a seed and a stream id. Distinct stream
    /// ids yield independent sequences for the same seed.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Creates a generator from a seed on the default stream.
    pub fn seeded(seed: u64) -> Self {
        Self::new(seed, DEFAULT_STREAM)
    }

    /// Next raw 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next raw 64-bit output (two 32-bit draws).
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, bound)` via Lemire rejection; panics on
    /// `bound == 0`.
    pub fn uniform_u32(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "uniform_u32 bound must be positive");
        // Rejection sampling to remove modulo bias.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u32();
            if r >= threshold {
                return r % bound;
            }
        }
    }

    /// Uniform usize in `[0, bound)`; panics on `bound == 0`.
    pub fn uniform_usize(&mut self, bound: usize) -> usize {
        assert!(bound > 0);
        assert!(bound <= u32::MAX as usize, "bound too large");
        self.uniform_u32(bound as u32) as usize
    }

    /// Standard normal draw via Box–Muller (one value per call; the
    /// paired value is discarded for simplicity).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        // Avoid ln(0).
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Exponential inter-arrival draw with the given rate (events per
    /// unit time). Used for Poisson vehicle spawning.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / rate
    }

    /// Bernoulli draw with success probability `p` (clamped to \[0,1\]).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.uniform_usize(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Pcg32::seeded(42);
        let mut b = Pcg32::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg32::seeded(1);
        let mut b = Pcg32::seeded(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = Pcg32::new(7, 1);
        let mut b = Pcg32::new(7, 2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg32::seeded(3);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Pcg32::seeded(4);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
        assert_eq!(rng.uniform(3.0, 3.0), 3.0);
        assert_eq!(rng.uniform(5.0, 1.0), 5.0);
    }

    #[test]
    fn uniform_u32_unbiased_coverage() {
        let mut rng = Pcg32::seeded(5);
        let mut counts = [0usize; 7];
        for _ in 0..7000 {
            counts[rng.uniform_u32(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "count {c} outside expectation");
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Pcg32::seeded(6);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Pcg32::seeded(7);
        let n = 20_000;
        let rate = 0.5;
        let m = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((m - 2.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Pcg32::seeded(8);
        assert!((0..100).all(|_| rng.chance(1.5)));
        assert!((0..100).all(|_| !rng.chance(-0.5)));
    }

    #[test]
    fn split_streams_are_distinct_and_stable() {
        // The derivation is pure: same name, same stream, forever.
        assert_eq!(split_stream("near_miss_brake"), split_stream("near_miss_brake"));
        // Distinct fleet names land on distinct streams (and none on the
        // legacy default stream, which the presets reserve).
        let names = [
            "near_miss_brake",
            "near_miss_swerve",
            "occlusion_merge",
            "shockwave",
            "wrong_way",
            "pedestrian",
            "handoff",
        ];
        let streams: std::collections::HashSet<u64> =
            names.iter().map(|n| split_stream(n)).collect();
        assert_eq!(streams.len(), names.len());
        assert!(!streams.contains(&DEFAULT_STREAM));
        // Same seed, different stream: independent sequences.
        for name in names {
            let mut a = Pcg32::new(2007, split_stream(name));
            let mut b = Pcg32::new(2007, DEFAULT_STREAM);
            let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
            assert!(same < 4, "stream for {name} shadows the default stream");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg32::seeded(9);
        let mut xs: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(xs, (0..20).collect::<Vec<_>>()); // astronomically unlikely
    }
}
