//! The scenario fleet: named, seeded, deterministic `World` recipes that
//! are deliberately *hard* for the retrieval pipeline, each wired to the
//! oracle through its ground-truth incident log.
//!
//! The paper evaluates on two staged clips; the fleet extends that with
//! the near-miss taxonomy of Kataoka et al. (two risk grades: the
//! conflict resolves by braking vs. by swerving), occlusion-heavy
//! merges, stop-and-go shockwaves, wrong-way drivers, pedestrian
//! incursions, and a multi-camera handoff where the incident spans a
//! camera boundary. Every member derives its RNG stream from its own
//! name ([`crate::rng::split_stream`]), so adding or reordering members
//! can never perturb another member's — or a preset's — trajectories.

use crate::incident::{IncidentKind, IncidentSpec};
use crate::rng::split_stream;
use crate::scenario::Scenario;
use crate::world::SimOutput;

/// One named member of the scenario fleet.
#[derive(Debug, Clone, Copy)]
pub struct FleetMember {
    /// Registry name; also the CLI spelling (`tsvr sim --scenario <name>`)
    /// and the RNG stream key.
    pub name: &'static str,
    /// One-line description for `tsvr sim --list`.
    pub summary: &'static str,
    /// The incident kind a retrieval query over this member targets.
    pub target: IncidentKind,
    /// Number of cameras the recording is split across (1, or 2 for the
    /// handoff member whose incident spans the camera boundary).
    pub cameras: u32,
}

/// The full fleet, in registry order.
pub fn members() -> &'static [FleetMember] {
    &[
        FleetMember {
            name: "near_miss_brake",
            summary: "leader brakes to a crawl; follower resolves by late hard braking",
            target: IncidentKind::NearMissBrake,
            cameras: 1,
        },
        FleetMember {
            name: "near_miss_swerve",
            summary: "leader brakes; follower resolves by swerving around at speed",
            target: IncidentKind::NearMissSwerve,
            cameras: 1,
        },
        FleetMember {
            name: "occlusion_merge",
            summary: "cut-in to the adjacent lane with blob-merging proximity",
            target: IncidentKind::OcclusionMerge,
            cameras: 1,
        },
        FleetMember {
            name: "shockwave",
            summary: "stop-and-go wave pulsing through a platoon",
            target: IncidentKind::Shockwave,
            cameras: 1,
        },
        FleetMember {
            name: "wrong_way",
            summary: "driver turns around and travels against the flow",
            target: IncidentKind::WrongWay,
            cameras: 1,
        },
        FleetMember {
            name: "pedestrian",
            summary: "pedestrian crosses the roadway; a vehicle yields",
            target: IncidentKind::Pedestrian,
            cameras: 1,
        },
        FleetMember {
            name: "handoff",
            summary: "wrong-way incident spanning a two-camera boundary (sharded retrieval)",
            target: IncidentKind::WrongWay,
            cameras: 2,
        },
    ]
}

/// Looks up a member by name.
pub fn member(name: &str) -> Option<FleetMember> {
    members().iter().copied().find(|m| m.name == name)
}

/// Builds the world recipe for a fleet member. Returns `None` for
/// unknown names. Same `(name, seed)`, same world — bit-identically,
/// on any thread count.
pub fn scenario(name: &str, seed: u64) -> Option<Scenario> {
    let mut s = Scenario::tunnel_paper(seed);
    s.rng_stream = split_stream(name);
    // Distractor placement is shared: the target query must always have
    // confusable negatives (other anomalies) in the same clip.
    match name {
        "near_miss_brake" => {
            s.total_frames = 480;
            s.mean_spawn_interval = 70.0;
            s.incidents = vec![
                IncidentSpec::new(IncidentKind::NearMissBrake, 110),
                IncidentSpec::new(IncidentKind::SuddenStop, 210),
                IncidentSpec::new(IncidentKind::NearMissBrake, 300),
                IncidentSpec::new(IncidentKind::Speeding, 390),
            ];
        }
        "near_miss_swerve" => {
            s.total_frames = 480;
            s.mean_spawn_interval = 70.0;
            s.incidents = vec![
                IncidentSpec::new(IncidentKind::NearMissSwerve, 110),
                IncidentSpec::new(IncidentKind::Speeding, 210),
                IncidentSpec::new(IncidentKind::NearMissSwerve, 300),
                IncidentSpec::new(IncidentKind::SuddenStop, 390),
            ];
        }
        "occlusion_merge" => {
            s.total_frames = 480;
            // Denser traffic: the cut-in needs adjacent-lane pairs.
            s.mean_spawn_interval = 55.0;
            s.incidents = vec![
                IncidentSpec::new(IncidentKind::OcclusionMerge, 110),
                IncidentSpec::new(IncidentKind::UTurn, 200),
                IncidentSpec::new(IncidentKind::OcclusionMerge, 290),
                IncidentSpec::new(IncidentKind::Speeding, 380),
            ];
        }
        "shockwave" => {
            s.total_frames = 520;
            // Densest traffic: the wave needs platoons to run through.
            s.mean_spawn_interval = 40.0;
            s.incidents = vec![
                IncidentSpec::new(IncidentKind::Shockwave, 140),
                IncidentSpec::new(IncidentKind::SuddenStop, 260),
                IncidentSpec::new(IncidentKind::Shockwave, 360),
            ];
        }
        "wrong_way" => {
            s.total_frames = 480;
            s.mean_spawn_interval = 75.0;
            s.incidents = vec![
                IncidentSpec::new(IncidentKind::WrongWay, 110),
                IncidentSpec::new(IncidentKind::UTurn, 210),
                IncidentSpec::new(IncidentKind::WrongWay, 300),
                IncidentSpec::new(IncidentKind::Speeding, 390),
            ];
        }
        "pedestrian" => {
            s.total_frames = 480;
            s.mean_spawn_interval = 75.0;
            s.incidents = vec![
                IncidentSpec::new(IncidentKind::Pedestrian, 110),
                IncidentSpec::new(IncidentKind::SuddenStop, 210),
                IncidentSpec::new(IncidentKind::Pedestrian, 300),
                IncidentSpec::new(IncidentKind::Speeding, 390),
            ];
        }
        "handoff" => {
            s.total_frames = 520;
            s.mean_spawn_interval = 65.0;
            s.incidents = vec![
                IncidentSpec::new(IncidentKind::WallCrash, 100),
                IncidentSpec::new(IncidentKind::Speeding, 180),
                // The target: splitting the recording at the middle of
                // this record puts the incident on both cameras.
                IncidentSpec::new(IncidentKind::WrongWay, 250),
                IncidentSpec::new(IncidentKind::SuddenStop, 410),
            ];
        }
        _ => return None,
    }
    Some(s)
}

/// The camera-boundary frame for a two-camera member: the midpoint of
/// the first target-kind record, so the incident provably spans both
/// cameras. Falls back to the clip midpoint if the target never fired.
pub fn handoff_split_frame(out: &SimOutput, target: IncidentKind) -> u32 {
    out.incidents
        .iter()
        .find(|r| r.kind == target)
        .map(|r| (r.start_frame + r.end_frame) / 2)
        .unwrap_or(out.frames.len() as u32 / 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DEFAULT_STREAM;
    use crate::world::World;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names: std::collections::HashSet<_> =
            members().iter().map(|m| m.name).collect();
        assert_eq!(names.len(), members().len());
        for m in members() {
            let s = scenario(m.name, 1).expect("member must build a scenario");
            assert_eq!(s.rng_stream, split_stream(m.name));
            assert_ne!(s.rng_stream, DEFAULT_STREAM);
            let targets = s.incidents.iter().filter(|i| i.kind == m.target).count();
            assert!(targets >= 1, "{} has no target incident", m.name);
            assert!(
                s.incidents.iter().any(|i| i.kind != m.target),
                "{} has no distractors",
                m.name
            );
        }
        assert!(scenario("ufo_landing", 1).is_none());
        assert!(member("near_miss_brake").is_some());
        assert!(member("ufo_landing").is_none());
    }

    #[test]
    fn every_member_triggers_its_target() {
        for m in members() {
            let out = World::run(scenario(m.name, 2007).unwrap());
            let hits = out.incidents.iter().filter(|r| r.kind == m.target).count();
            assert!(hits >= 1, "{}: target {:?} never triggered", m.name, m.target);
        }
    }

    #[test]
    fn handoff_split_spans_both_cameras() {
        let m = member("handoff").unwrap();
        let out = World::run(scenario("handoff", 2007).unwrap());
        let cut = handoff_split_frame(&out, m.target);
        let (a, b) = out.split_at(cut);
        assert_eq!(a.frames.len() + b.frames.len(), out.frames.len());
        assert!(
            a.incidents.iter().any(|r| r.kind == m.target),
            "target missing from camera A"
        );
        assert!(
            b.incidents.iter().any(|r| r.kind == m.target),
            "target missing from camera B"
        );
        // Frame indices re-based per camera.
        assert_eq!(b.frames[0].frame, 0);
        for r in &b.incidents {
            assert!(r.end_frame < b.frames.len() as u32 + 120);
        }
    }

    #[test]
    fn members_replay_bit_identically() {
        for m in members() {
            let a = World::run(scenario(m.name, 5).unwrap());
            let b = World::run(scenario(m.name, 5).unwrap());
            assert_eq!(a.frames, b.frames, "{} replay diverged", m.name);
            assert_eq!(a.incidents, b.incidents);
        }
    }
}
