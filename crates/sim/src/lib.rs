//! # tsvr-sim
//!
//! Deterministic 2-D traffic micro-simulation.
//!
//! The paper evaluates on two real surveillance clips (a tunnel and a
//! signalized intersection in Taiwan) that are not available. This crate
//! is the substitution documented in `DESIGN.md`: it generates vehicle
//! motion with the same spatio-temporal phenomenology the paper's feature
//! model keys on — sudden velocity changes, sudden heading changes and
//! small inter-vehicle distances around incidents — plus a ground-truth
//! incident log that stands in for the human relevance-feedback oracle.
//!
//! Components:
//!
//! * [`rng`] — a small deterministic PCG32 generator so every experiment
//!   is reproducible from a seed;
//! * [`check`] — a seeded property-test harness built on [`rng`], used by
//!   every crate's `tests/proptests.rs` (the workspace tests offline, so
//!   no external property-testing framework);
//! * [`geometry`] — `Vec2` / axis-aligned boxes / angle helpers;
//! * [`road`] — polyline lanes with arc-length parameterization, plus the
//!   tunnel and intersection layouts;
//! * [`idm`] — the Intelligent Driver Model for car following;
//! * [`signal`] — a fixed-cycle signal controller for the intersection;
//! * [`incident`] — scripted incident injection (wall crash, sudden stop,
//!   rear-end crash, side collision, U-turn, speeding) and the ground
//!   truth event log;
//! * [`scenario`] — scenario configuration and the two paper-calibrated
//!   presets;
//! * [`fleet`] — the named registry of hard retrieval-quality scenarios
//!   (near-misses, occluded merges, shockwaves, wrong-way drivers,
//!   pedestrian incursions, multi-camera handoffs);
//! * [`world`] — the frame-stepped simulation engine producing per-frame
//!   vehicle observations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod fleet;
pub mod geometry;
pub mod idm;
pub mod incident;
pub mod rng;
pub mod road;
pub mod scenario;
pub mod signal;
pub mod world;

pub use fleet::FleetMember;
pub use geometry::{Aabb, Vec2};
pub use incident::{IncidentKind, IncidentRecord};
pub use rng::Pcg32;
pub use scenario::{Scenario, ScenarioKind};
pub use world::{FrameObservation, SimOutput, VehicleClass, VehicleObs, World};
