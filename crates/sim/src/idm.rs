//! Intelligent Driver Model (Treiber, Hennecke & Helbing 2000).
//!
//! The IDM gives smooth, collision-free car following for the background
//! ("normal") traffic; incidents are injected on top of it by overriding
//! individual vehicles (see [`crate::incident`]). Smooth background
//! motion matters for the reproduction: the paper's event model assumes
//! that *normal* driving has small `vdiff` and `θ`, so outliers stand
//! out.

/// Parameters of the Intelligent Driver Model. Units are pixels and
/// frames (the simulation's native units); the presets in
/// [`crate::scenario`] pick values that correspond to plausible highway /
/// urban speeds at the assumed camera scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdmParams {
    /// Desired (free-flow) speed, px/frame.
    pub desired_speed: f64,
    /// Maximum acceleration, px/frame².
    pub max_accel: f64,
    /// Comfortable deceleration, px/frame².
    pub comfortable_decel: f64,
    /// Minimum bumper-to-bumper jam distance, px.
    pub min_gap: f64,
    /// Desired time headway, frames.
    pub time_headway: f64,
    /// Acceleration exponent (4 in the original model).
    pub exponent: f64,
}

impl Default for IdmParams {
    fn default() -> Self {
        IdmParams {
            desired_speed: 4.0,
            max_accel: 0.15,
            comfortable_decel: 0.3,
            min_gap: 8.0,
            time_headway: 8.0,
            exponent: 4.0,
        }
    }
}

/// State of the leading vehicle as seen by a follower.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Leader {
    /// Bumper-to-bumper gap to the leader, px (>= 0).
    pub gap: f64,
    /// Leader speed, px/frame.
    pub speed: f64,
}

/// Computes the IDM acceleration for a vehicle travelling at `speed`
/// with an optional leader.
///
/// Free road: `a = a_max (1 - (v/v0)^δ)`.
/// With leader: adds the interaction term `-(s*/s)²` where
/// `s* = s0 + v T + v Δv / (2 sqrt(a b))`.
pub fn acceleration(p: &IdmParams, speed: f64, leader: Option<Leader>) -> f64 {
    let free = 1.0 - (speed / p.desired_speed).max(0.0).powf(p.exponent);
    let interaction = match leader {
        Some(l) => {
            let dv = speed - l.speed;
            let s_star = p.min_gap
                + (speed * p.time_headway
                    + speed * dv / (2.0 * (p.max_accel * p.comfortable_decel).sqrt()))
                .max(0.0);
            let s = l.gap.max(0.1);
            let ratio = s_star / s;
            ratio * ratio
        }
        None => 0.0,
    };
    p.max_accel * (free - interaction)
}

/// Advances `(position, speed)` by one frame of IDM dynamics, clamping
/// speed at zero (the IDM can momentarily request negative speeds near
/// standstill).
pub fn step(p: &IdmParams, pos: f64, speed: f64, leader: Option<Leader>, dt: f64) -> (f64, f64) {
    let a = acceleration(p, speed, leader);
    let new_speed = (speed + a * dt).max(0.0);
    let new_pos = pos + new_speed * dt;
    (new_pos, new_speed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_road_accelerates_to_desired_speed() {
        let p = IdmParams::default();
        let mut v = 0.0;
        let mut s = 0.0;
        for _ in 0..2000 {
            let (ns, nv) = step(&p, s, v, None, 1.0);
            s = ns;
            v = nv;
        }
        assert!((v - p.desired_speed).abs() < 0.05, "v = {v}");
    }

    #[test]
    fn at_desired_speed_accel_is_zero() {
        let p = IdmParams::default();
        let a = acceleration(&p, p.desired_speed, None);
        assert!(a.abs() < 1e-12);
    }

    #[test]
    fn above_desired_speed_decelerates() {
        let p = IdmParams::default();
        assert!(acceleration(&p, p.desired_speed * 1.5, None) < 0.0);
    }

    #[test]
    fn close_leader_forces_braking() {
        let p = IdmParams::default();
        let a = acceleration(
            &p,
            p.desired_speed,
            Some(Leader {
                gap: p.min_gap,
                speed: 0.0,
            }),
        );
        assert!(a < -p.comfortable_decel, "a = {a}");
    }

    #[test]
    fn follower_never_collides_with_stopped_leader() {
        let p = IdmParams::default();
        let leader_pos = 500.0;
        let mut pos = 0.0;
        let mut v = p.desired_speed;
        for _ in 0..3000 {
            let gap = leader_pos - pos;
            let (np, nv) = step(&p, pos, v, Some(Leader { gap, speed: 0.0 }), 1.0);
            pos = np;
            v = nv;
            assert!(pos < leader_pos, "collision at pos {pos}");
        }
        // Settles near the jam distance.
        assert!(
            leader_pos - pos < p.min_gap * 3.0,
            "gap = {}",
            leader_pos - pos
        );
        assert!(v < 0.05);
    }

    #[test]
    fn platoon_follows_at_headway() {
        let p = IdmParams::default();
        // Leader cruising at a fixed speed; follower should converge to
        // roughly s0 + v*T behind.
        let lead_speed = 3.0;
        let mut lead_pos = 200.0;
        let mut pos = 0.0;
        let mut v = 0.0;
        for _ in 0..5000 {
            lead_pos += lead_speed;
            let gap = lead_pos - pos;
            let (np, nv) = step(
                &p,
                pos,
                v,
                Some(Leader {
                    gap,
                    speed: lead_speed,
                }),
                1.0,
            );
            pos = np;
            v = nv;
        }
        assert!((v - lead_speed).abs() < 0.05, "v = {v}");
        let gap = lead_pos - pos;
        let expected = p.min_gap + lead_speed * p.time_headway;
        assert!(
            (gap - expected).abs() < expected * 0.2,
            "gap {gap} vs {expected}"
        );
    }

    #[test]
    fn speed_never_negative() {
        let p = IdmParams::default();
        let (_, v) = step(
            &p,
            0.0,
            0.01,
            Some(Leader {
                gap: 0.1,
                speed: 0.0,
            }),
            1.0,
        );
        assert!(v >= 0.0);
    }
}
