//! Property-based tests for the traffic simulation substrate.

use proptest::prelude::*;
use tsvr_sim::idm::{self, IdmParams, Leader};
use tsvr_sim::{Pcg32, Scenario, Vec2, World};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn rng_uniform_respects_bounds(seed in any::<u64>(), lo in -100.0f64..100.0, span in 0.001f64..100.0) {
        let mut rng = Pcg32::seeded(seed);
        for _ in 0..100 {
            let x = rng.uniform(lo, lo + span);
            prop_assert!(x >= lo && x < lo + span);
        }
    }

    #[test]
    fn rng_uniform_u32_in_range(seed in any::<u64>(), bound in 1u32..10_000) {
        let mut rng = Pcg32::seeded(seed);
        for _ in 0..100 {
            prop_assert!(rng.uniform_u32(bound) < bound);
        }
    }

    #[test]
    fn rng_shuffle_is_permutation(seed in any::<u64>(), n in 0usize..50) {
        let mut rng = Pcg32::seeded(seed);
        let mut xs: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn idm_speed_stays_bounded(
        v0 in 0.5f64..8.0,
        init in 0.0f64..8.0,
        gap in 1.0f64..500.0,
        lead_speed in 0.0f64..8.0,
    ) {
        let p = IdmParams { desired_speed: v0, ..IdmParams::default() };
        let mut v = init;
        let mut pos = 0.0;
        for _ in 0..500 {
            let (np, nv) = idm::step(&p, pos, v, Some(Leader { gap, speed: lead_speed }), 1.0);
            pos = np;
            v = nv;
            prop_assert!(v >= 0.0, "negative speed {v}");
            prop_assert!(v <= v0.max(init) + p.max_accel + 1e-9, "overshoot {v}");
        }
    }

    #[test]
    fn idm_follower_never_passes_stationary_leader(
        v0 in 1.0f64..8.0,
        leader_pos in 100.0f64..800.0,
    ) {
        let p = IdmParams { desired_speed: v0, ..IdmParams::default() };
        let mut pos = 0.0;
        let mut v = v0;
        for _ in 0..3000 {
            let gap = leader_pos - pos;
            let (np, nv) = idm::step(&p, pos, v, Some(Leader { gap, speed: 0.0 }), 1.0);
            pos = np;
            v = nv;
            prop_assert!(pos < leader_pos, "passed the leader at {pos}");
        }
    }

    #[test]
    fn angle_between_is_bounded_and_symmetric(
        ax in -10.0f64..10.0, ay in -10.0f64..10.0,
        bx in -10.0f64..10.0, by in -10.0f64..10.0,
    ) {
        let a = Vec2::new(ax, ay);
        let b = Vec2::new(bx, by);
        let t1 = a.angle_between(b);
        let t2 = b.angle_between(a);
        prop_assert!((t1 - t2).abs() < 1e-9);
        prop_assert!((0.0..=std::f64::consts::PI + 1e-12).contains(&t1));
    }

    #[test]
    fn world_is_deterministic_per_seed(seed in 0u64..500) {
        let mut s = Scenario::tunnel_small(seed);
        s.total_frames = 120;
        let a = World::run(s.clone());
        let b = World::run(s);
        prop_assert_eq!(a.frames, b.frames);
        prop_assert_eq!(a.incidents, b.incidents);
    }

    #[test]
    fn observed_vehicles_stay_in_image(seed in 0u64..200) {
        let mut s = Scenario::tunnel_small(seed);
        s.total_frames = 150;
        let out = World::run(s);
        for f in &out.frames {
            for v in &f.vehicles {
                prop_assert!(v.center.x >= 0.0 && v.center.x < out.width as f64);
                prop_assert!(v.center.y >= 0.0 && v.center.y < out.height as f64);
                prop_assert!(v.speed >= 0.0 && v.speed < 12.0, "speed {}", v.speed);
            }
        }
    }

    #[test]
    fn incident_records_are_well_formed(seed in 0u64..100) {
        let mut s = Scenario::tunnel_small(seed);
        s.total_frames = 350;
        let out = World::run(s);
        for r in &out.incidents {
            prop_assert!(r.end_frame > r.start_frame);
            prop_assert!(!r.vehicle_ids.is_empty());
            prop_assert!(r.start_frame < 350 + 100);
        }
    }
}
