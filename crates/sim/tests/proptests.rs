//! Property-based tests for the traffic simulation substrate, driven by
//! the in-tree seeded harness (`tsvr_sim::check`).

use tsvr_sim::check;
use tsvr_sim::idm::{self, IdmParams, Leader};
use tsvr_sim::{Pcg32, Scenario, Vec2, World};

#[test]
fn rng_uniform_respects_bounds() {
    check::cases(64, |case, rng| {
        let seed = rng.next_u64();
        let lo = rng.uniform(-100.0, 100.0);
        let span = rng.uniform(0.001, 100.0);
        let mut r = Pcg32::seeded(seed);
        for _ in 0..100 {
            let x = r.uniform(lo, lo + span);
            assert!(x >= lo && x < lo + span, "case {case}: {x} outside bounds");
        }
    });
}

#[test]
fn rng_uniform_u32_in_range() {
    check::cases(64, |case, rng| {
        let seed = rng.next_u64();
        let bound = 1 + rng.uniform_u32(9_999);
        let mut r = Pcg32::seeded(seed);
        for _ in 0..100 {
            assert!(r.uniform_u32(bound) < bound, "case {case}: out of range");
        }
    });
}

#[test]
fn rng_shuffle_is_permutation() {
    check::cases(64, |case, rng| {
        let n = rng.uniform_usize(50);
        let mut xs: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "case {case}");
    });
}

#[test]
fn idm_speed_stays_bounded() {
    check::cases(64, |case, rng| {
        let v0 = rng.uniform(0.5, 8.0);
        let init = rng.uniform(0.0, 8.0);
        let gap = rng.uniform(1.0, 500.0);
        let lead_speed = rng.uniform(0.0, 8.0);
        let p = IdmParams {
            desired_speed: v0,
            ..IdmParams::default()
        };
        let mut v = init;
        let mut pos = 0.0;
        for _ in 0..500 {
            let (np, nv) = idm::step(
                &p,
                pos,
                v,
                Some(Leader {
                    gap,
                    speed: lead_speed,
                }),
                1.0,
            );
            pos = np;
            v = nv;
            assert!(v >= 0.0, "case {case}: negative speed {v}");
            assert!(
                v <= v0.max(init) + p.max_accel + 1e-9,
                "case {case}: overshoot {v}"
            );
        }
    });
}

#[test]
fn idm_follower_never_passes_stationary_leader() {
    check::cases(32, |case, rng| {
        let v0 = rng.uniform(1.0, 8.0);
        let leader_pos = rng.uniform(100.0, 800.0);
        let p = IdmParams {
            desired_speed: v0,
            ..IdmParams::default()
        };
        let mut pos = 0.0;
        let mut v = v0;
        for _ in 0..3000 {
            let gap = leader_pos - pos;
            let (np, nv) = idm::step(&p, pos, v, Some(Leader { gap, speed: 0.0 }), 1.0);
            pos = np;
            v = nv;
            assert!(pos < leader_pos, "case {case}: passed the leader at {pos}");
        }
    });
}

#[test]
fn angle_between_is_bounded_and_symmetric() {
    check::cases(128, |case, rng| {
        let a = Vec2::new(rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0));
        let b = Vec2::new(rng.uniform(-10.0, 10.0), rng.uniform(-10.0, 10.0));
        let t1 = a.angle_between(b);
        let t2 = b.angle_between(a);
        assert!((t1 - t2).abs() < 1e-9, "case {case}: not symmetric");
        assert!(
            (0.0..=std::f64::consts::PI + 1e-12).contains(&t1),
            "case {case}: angle {t1} out of range"
        );
    });
}

#[test]
fn world_is_deterministic_per_seed() {
    check::cases(12, |case, rng| {
        let mut s = Scenario::tunnel_small(rng.uniform_u32(500) as u64);
        s.total_frames = 120;
        let a = World::run(s.clone());
        let b = World::run(s);
        assert_eq!(a.frames, b.frames, "case {case}: frames differ");
        assert_eq!(a.incidents, b.incidents, "case {case}: incidents differ");
    });
}

#[test]
fn observed_vehicles_stay_in_image() {
    check::cases(12, |case, rng| {
        let mut s = Scenario::tunnel_small(rng.uniform_u32(200) as u64);
        s.total_frames = 150;
        let out = World::run(s);
        for f in &out.frames {
            for v in &f.vehicles {
                assert!(
                    v.center.x >= 0.0 && v.center.x < out.width as f64,
                    "case {case}: x out of image"
                );
                assert!(
                    v.center.y >= 0.0 && v.center.y < out.height as f64,
                    "case {case}: y out of image"
                );
                assert!(
                    v.speed >= 0.0 && v.speed < 12.0,
                    "case {case}: speed {}",
                    v.speed
                );
            }
        }
    });
}

#[test]
fn incident_records_are_well_formed() {
    check::cases(8, |case, rng| {
        let mut s = Scenario::tunnel_small(rng.uniform_u32(100) as u64);
        s.total_frames = 350;
        let out = World::run(s);
        for r in &out.incidents {
            assert!(r.end_frame > r.start_frame, "case {case}: empty incident");
            assert!(!r.vehicle_ids.is_empty(), "case {case}: no vehicles");
            assert!(r.start_frame < 350 + 100, "case {case}: starts past clip");
        }
    });
}
