//! Edge-case integration tests for the simulation engine: signal
//! compliance, trigger patience, despawn hygiene, and scenario
//! degenerate configurations.

use tsvr_sim::incident::IncidentSpec;
use tsvr_sim::signal::SignalState;
use tsvr_sim::{IncidentKind, Scenario, Vec2, World};

#[test]
fn vehicles_respect_red_lights() {
    // Intersection with no incidents: nobody may cross the conflict zone
    // while their approach shows red (excluding vehicles already inside).
    let mut s = Scenario::intersection_paper(5);
    s.incidents.clear();
    s.total_frames = 400;
    let net = s.network();
    let signal = s.signal().unwrap();
    let out = World::run(s);

    let cx = net.width as f64 / 2.0;
    let cy = net.height as f64 / 2.0;
    let conflict = tsvr_sim::Aabb::from_corners(
        Vec2::new(cx - 24.0, cy - 24.0),
        Vec2::new(cx + 24.0, cy + 24.0),
    );

    // A vehicle ENTERING the conflict zone this frame (outside last
    // frame, inside now) must not face a red that has been red for a
    // while (entering on fresh red/yellow is permitted: it was already
    // committed).
    let mut prev_inside: std::collections::HashSet<u64> = Default::default();
    for f in &out.frames {
        let mut now_inside = std::collections::HashSet::new();
        for v in &f.vehicles {
            if conflict.contains(v.center) {
                now_inside.insert(v.id);
                if !prev_inside.contains(&v.id) {
                    // Determine approach from heading: mostly-horizontal
                    // movement = "ew", vertical = "ns".
                    let approach = if v.heading.cos().abs() > v.heading.sin().abs() {
                        "ew"
                    } else {
                        "ns"
                    };
                    // Was it red for the whole previous second?
                    let long_red = (0..25).all(|dt| {
                        f.frame
                            .checked_sub(dt)
                            .map(|fr| signal.state(approach, fr) == SignalState::Red)
                            .unwrap_or(false)
                    });
                    assert!(
                        !long_red,
                        "vehicle {} entered the conflict zone on a stale red at frame {}",
                        v.id, f.frame
                    );
                }
            }
        }
        prev_inside = now_inside;
    }
}

#[test]
fn impossible_triggers_are_dropped_not_stuck() {
    // A side collision cannot trigger in a tunnel; the world must finish
    // without it and without panicking.
    let mut s = Scenario::tunnel_small(9);
    s.incidents = vec![IncidentSpec::new(IncidentKind::SideCollision, 10)];
    let out = World::run(s);
    assert!(out.incidents.is_empty(), "{:?}", out.incidents);
}

#[test]
fn trigger_waits_for_a_candidate() {
    // Schedule an incident before any vehicle can reach the mid-region;
    // it should still fire later (within patience).
    let mut s = Scenario::tunnel_small(10);
    s.incidents = vec![IncidentSpec::new(IncidentKind::SuddenStop, 0)];
    let out = World::run(s);
    assert_eq!(out.incidents.len(), 1);
    assert!(
        out.incidents[0].start_frame > 0,
        "incident fired with no eligible vehicle"
    );
}

#[test]
fn empty_scenario_is_fine() {
    let mut s = Scenario::tunnel_small(11);
    s.incidents.clear();
    s.mean_spawn_interval = 1e9; // effectively no traffic
    let out = World::run(s);
    assert!(out.incidents.is_empty());
    assert!(out.frames.iter().all(|f| f.vehicles.is_empty()));
}

#[test]
fn vehicle_ids_are_unique_and_stable() {
    let out = World::run(Scenario::tunnel_small(12));
    // A given id always refers to one contiguous lifetime with a
    // consistent class.
    let mut class_of: std::collections::HashMap<u64, tsvr_sim::VehicleClass> = Default::default();
    for f in &out.frames {
        let mut seen = std::collections::HashSet::new();
        for v in &f.vehicles {
            assert!(
                seen.insert(v.id),
                "duplicate id {} in frame {}",
                v.id,
                f.frame
            );
            let prior = class_of.insert(v.id, v.class);
            if let Some(c) = prior {
                assert_eq!(c, v.class, "vehicle {} changed class", v.id);
            }
        }
    }
}

#[test]
fn dense_traffic_does_not_collide_without_incidents() {
    let mut s = Scenario::tunnel_small(13);
    s.incidents.clear();
    s.mean_spawn_interval = 40.0;
    s.total_frames = 600;
    let out = World::run(s);
    // Same-lane vehicles keep positive gaps: no two centers within a
    // body length at the same y-band.
    for f in &out.frames {
        for (i, a) in f.vehicles.iter().enumerate() {
            for b in f.vehicles.iter().skip(i + 1) {
                if (a.center.y - b.center.y).abs() < 4.0 {
                    let gap = (a.center.x - b.center.x).abs();
                    assert!(
                        gap > (a.half_len + b.half_len) * 0.85,
                        "same-lane overlap at frame {}: {} px",
                        f.frame,
                        gap
                    );
                }
            }
        }
    }
}

#[test]
fn speeding_vehicle_actually_speeds() {
    let mut s = Scenario::tunnel_small(14);
    s.incidents = vec![IncidentSpec::new(IncidentKind::Speeding, 60)];
    let out = World::run(s);
    let Some(rec) = out
        .incidents
        .iter()
        .find(|r| r.kind == IncidentKind::Speeding)
    else {
        // Candidate scarcity can drop the spec on some seeds; that is
        // exercised by `trigger_waits_for_a_candidate`.
        return;
    };
    let vid = rec.vehicle_ids[0];
    let speeds: Vec<f64> = out
        .frames
        .iter()
        .flat_map(|f| f.vehicles.iter())
        .filter(|v| v.id == vid)
        .map(|v| v.speed)
        .collect();
    let vmax = speeds.iter().cloned().fold(0.0, f64::max);
    assert!(vmax > 5.5, "speeding vehicle peaked at {vmax} px/frame");
}
