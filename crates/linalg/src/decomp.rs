//! Matrix factorizations: LU with partial pivoting, Householder QR, and
//! Cholesky, each with the solvers the rest of the workspace needs.
//!
//! * LU backs general square solves and determinants/inverses;
//! * QR backs least-squares solves — in particular the polynomial
//!   trajectory fit of paper §3.2 (Eq. 2), where the Vandermonde system is
//!   rectangular and often mildly ill-conditioned;
//! * Cholesky backs solves against symmetric positive-definite matrices
//!   (covariance matrices in the PCA classifier).

// Indexed loops mirror the textbook formulations of these numeric
// kernels; iterator rewrites obscure the subscript structure.
#![allow(clippy::needless_range_loop)]

use crate::{LinalgError, Matrix, Result};

/// LU factorization with partial (row) pivoting: `P * A = L * U`.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed LU factors: strictly-lower part is L (unit diagonal implied),
    /// upper triangle including diagonal is U.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), used by `det`.
    perm_sign: f64,
}

/// Pivot threshold below which a matrix is treated as singular.
const SINGULARITY_EPS: f64 = 1e-12;

impl Lu {
    /// Factorizes a square matrix. Returns [`LinalgError::Singular`] when a
    /// pivot falls below the singularity threshold.
    pub fn factorize(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Find pivot.
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for r in (k + 1)..n {
                let v = lu[(r, k)].abs();
                if v > max {
                    max = v;
                    p = r;
                }
            }
            if max < SINGULARITY_EPS {
                return Err(LinalgError::Singular);
            }
            if p != k {
                lu.swap_rows(p, k);
                perm.swap(p, k);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for r in (k + 1)..n {
                let factor = lu[(r, k)] / pivot;
                lu[(r, k)] = factor;
                for c in (k + 1)..n {
                    let sub = factor * lu[(k, c)];
                    lu[(r, c)] -= sub;
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Solves `A x = b` for one right-hand side.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                left: format!("{n}x{n}"),
                right: format!("{}x1", b.len()),
                op: "lu_solve",
            });
        }
        // Apply permutation, then forward substitution (L has unit diagonal).
        let mut y: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        for r in 1..n {
            for c in 0..r {
                y[r] -= self.lu[(r, c)] * y[c];
            }
        }
        // Back substitution with U.
        let mut x = y;
        for r in (0..n).rev() {
            for c in (r + 1)..n {
                x[r] -= self.lu[(r, c)] * x[c];
            }
            x[r] /= self.lu[(r, r)];
        }
        Ok(x)
    }

    /// Determinant of the factorized matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.rows();
        (0..n).map(|i| self.lu[(i, i)]).product::<f64>() * self.perm_sign
    }

    /// Inverse of the factorized matrix (column-by-column solve).
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.lu.rows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e[c] = 1.0;
            let col = self.solve(&e)?;
            for r in 0..n {
                inv[(r, c)] = col[r];
            }
            e[c] = 0.0;
        }
        Ok(inv)
    }
}

/// Householder QR factorization of an `m x n` matrix with `m >= n`.
///
/// Stores the Householder vectors and `R`; `Q` is applied implicitly,
/// which is all the least-squares solver needs.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed factorization: upper triangle is R; below-diagonal entries
    /// plus `beta` encode the Householder reflectors.
    qr: Matrix,
    /// Householder scalar for each column.
    beta: Vec<f64>,
}

impl Qr {
    /// Factorizes `a` (requires `rows >= cols`).
    pub fn factorize(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::InvalidArgument(format!(
                "QR requires rows >= cols, got {m}x{n}"
            )));
        }
        if m == 0 || n == 0 {
            return Err(LinalgError::EmptyInput);
        }
        let mut qr = a.clone();
        let mut beta = vec![0.0; n];

        for k in 0..n {
            // Build the Householder reflector for column k.
            let mut norm = 0.0;
            for r in k..m {
                norm += qr[(r, k)] * qr[(r, k)];
            }
            let norm = norm.sqrt();
            if norm < SINGULARITY_EPS {
                // Rank-deficient column: reflector is identity.
                beta[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // v = [v0, qr[k+1..m, k]]; normalize so v[0] = 1.
            for r in (k + 1)..m {
                let scaled = qr[(r, k)] / v0;
                qr[(r, k)] = scaled;
            }
            beta[k] = -v0 / alpha;
            qr[(k, k)] = alpha;

            // Apply reflector to the remaining columns.
            for c in (k + 1)..n {
                let mut s = qr[(k, c)];
                for r in (k + 1)..m {
                    s += qr[(r, k)] * qr[(r, c)];
                }
                s *= beta[k];
                qr[(k, c)] -= s;
                for r in (k + 1)..m {
                    let sub = s * qr[(r, k)];
                    qr[(r, c)] -= sub;
                }
            }
        }
        Ok(Qr { qr, beta })
    }

    /// Applies `Q^T` to a vector in place.
    fn apply_qt(&self, b: &mut [f64]) {
        let (m, n) = self.qr.shape();
        for k in 0..n {
            if self.beta[k] == 0.0 {
                continue;
            }
            let mut s = b[k];
            for r in (k + 1)..m {
                s += self.qr[(r, k)] * b[r];
            }
            s *= self.beta[k];
            b[k] -= s;
            for r in (k + 1)..m {
                b[r] -= s * self.qr[(r, k)];
            }
        }
    }

    /// Solves the least-squares problem `min ||A x - b||_2`.
    ///
    /// Returns [`LinalgError::Singular`] when `R` has a (numerically) zero
    /// diagonal entry, i.e. `A` is rank deficient.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                left: format!("{m}x{n}"),
                right: format!("{}x1", b.len()),
                op: "qr_solve",
            });
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        // Back substitution with R (top n x n block).
        let mut x = vec![0.0; n];
        for r in (0..n).rev() {
            let mut s = y[r];
            for c in (r + 1)..n {
                s -= self.qr[(r, c)] * x[c];
            }
            let d = self.qr[(r, r)];
            if d.abs() < SINGULARITY_EPS {
                return Err(LinalgError::Singular);
            }
            x[r] = s / d;
        }
        Ok(x)
    }

    /// Copy of the `n x n` upper-triangular factor `R`.
    pub fn r(&self) -> Matrix {
        let n = self.qr.cols();
        let mut r = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r[(i, j)] = self.qr[(i, j)];
            }
        }
        r
    }
}

/// Cholesky factorization `A = L * L^T` of a symmetric positive-definite
/// matrix. Only the lower triangle of the input is read.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    pub fn factorize(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                left: format!("{n}x{n}"),
                right: format!("{}x1", b.len()),
                op: "cholesky_solve",
            });
        }
        // Forward: L y = b.
        let mut y = b.to_vec();
        for r in 0..n {
            for c in 0..r {
                y[r] -= self.l[(r, c)] * y[c];
            }
            y[r] /= self.l[(r, r)];
        }
        // Backward: L^T x = y.
        let mut x = y;
        for r in (0..n).rev() {
            for c in (r + 1)..n {
                x[r] -= self.l[(c, r)] * x[c];
            }
            x[r] /= self.l[(r, r)];
        }
        Ok(x)
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }
}

/// Convenience: solves the square system `A x = b` via LU.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Lu::factorize(a)?.solve(b)
}

/// Convenience: solves `min ||A x - b||` via QR.
pub fn solve_least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Qr::factorize(a)?.solve_least_squares(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_vec(3, 3, vec![4.0, 1.0, 1.0, 1.0, 3.0, 0.0, 1.0, 0.0, 2.0]).unwrap()
    }

    #[test]
    fn lu_solves_known_system() {
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lu_requires_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn lu_detects_singular() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert_eq!(Lu::factorize(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn lu_rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::factorize(&a).unwrap_err(),
            LinalgError::NotSquare { .. }
        ));
    }

    #[test]
    fn lu_det_and_inverse() {
        let a = Matrix::from_vec(2, 2, vec![4.0, 7.0, 2.0, 6.0]).unwrap();
        let lu = Lu::factorize(&a).unwrap();
        assert!((lu.det() - 10.0).abs() < 1e-10);
        let inv = lu.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(2), 1e-10));
    }

    #[test]
    fn lu_det_sign_with_permutation() {
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let lu = Lu::factorize(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn qr_solves_exact_square_system() {
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let x = solve_least_squares(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn qr_least_squares_matches_normal_equations() {
        // Overdetermined: fit y = c0 + c1*x through 4 points.
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 2.0],
            vec![1.0, 3.0],
        ])
        .unwrap();
        let b = [1.0, 2.9, 5.1, 7.0];
        let x = solve_least_squares(&a, &b).unwrap();
        // Normal equations: (A^T A) x = A^T b.
        let at = a.transpose();
        let ata = at.matmul(&a).unwrap();
        let atb = at.matvec(&b).unwrap();
        let x2 = solve(&ata, &atb).unwrap();
        assert!((x[0] - x2[0]).abs() < 1e-9);
        assert!((x[1] - x2[1]).abs() < 1e-9);
    }

    #[test]
    fn qr_residual_is_orthogonal_to_columns() {
        let a = Matrix::from_rows(&[
            vec![1.0, 0.5],
            vec![1.0, 1.5],
            vec![1.0, 2.5],
            vec![1.0, 4.0],
            vec![1.0, 8.0],
        ])
        .unwrap();
        let b = [0.0, 2.0, 1.0, 5.0, 3.0];
        let x = solve_least_squares(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let r: Vec<f64> = b.iter().zip(&ax).map(|(&bi, &axi)| bi - axi).collect();
        // A^T r must vanish at the least-squares optimum.
        let atr = a.transpose().matvec(&r).unwrap();
        for v in atr {
            assert!(v.abs() < 1e-9, "residual not orthogonal: {v}");
        }
    }

    #[test]
    fn qr_rejects_wide_matrix() {
        assert!(Qr::factorize(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn qr_detects_rank_deficiency() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let qr = Qr::factorize(&a).unwrap();
        assert!(qr.solve_least_squares(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn qr_r_is_upper_triangular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let r = Qr::factorize(&a).unwrap().r();
        assert_eq!(r.shape(), (2, 2));
        assert_eq!(r[(1, 0)], 0.0);
        // R^T R == A^T A (Q orthogonal).
        let ata = a.transpose().matmul(&a).unwrap();
        let rtr = r.transpose().matmul(&r).unwrap();
        assert!(ata.approx_eq(&rtr, 1e-9));
    }

    #[test]
    fn cholesky_factorizes_spd() {
        let a = spd3();
        let ch = Cholesky::factorize(&a).unwrap();
        let l = ch.l();
        let recon = l.matmul(&l.transpose()).unwrap();
        assert!(recon.approx_eq(&a, 1e-10));
    }

    #[test]
    fn cholesky_solve_matches_lu() {
        let a = spd3();
        let b = [1.0, -2.0, 0.5];
        let x1 = Cholesky::factorize(&a).unwrap().solve(&b).unwrap();
        let x2 = solve(&a, &b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert_eq!(
            Cholesky::factorize(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn solvers_validate_rhs_length() {
        let a = Matrix::identity(3);
        assert!(Lu::factorize(&a).unwrap().solve(&[1.0]).is_err());
        assert!(Qr::factorize(&a)
            .unwrap()
            .solve_least_squares(&[1.0])
            .is_err());
        assert!(Cholesky::factorize(&a).unwrap().solve(&[1.0]).is_err());
    }
}
