//! Error type shared by all numerical routines in this crate.

use std::fmt;

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes. Holds `(left, right)` shape
    /// descriptions, e.g. `("3x4", "5x2")`.
    ShapeMismatch {
        /// Shape of the left operand as `rows x cols`.
        left: String,
        /// Shape of the right operand as `rows x cols`.
        right: String,
        /// Which operation was attempted.
        op: &'static str,
    },
    /// The matrix is singular (or numerically so) and cannot be factorized
    /// or solved against.
    Singular,
    /// A routine that requires a square matrix was given a rectangular one.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// Cholesky factorization was attempted on a matrix that is not
    /// (numerically) positive definite.
    NotPositiveDefinite,
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// The input was empty where at least one element is required.
    EmptyInput,
    /// A routine received an argument outside its domain (e.g. polynomial
    /// degree larger than the number of samples).
    InvalidArgument(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { left, right, op } => {
                write!(f, "shape mismatch in {op}: {left} vs {right}")
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "expected square matrix, got {rows}x{cols}")
            }
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            LinalgError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            LinalgError::EmptyInput => write!(f, "empty input"),
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::ShapeMismatch {
            left: "3x4".into(),
            right: "5x2".into(),
            op: "matmul",
        };
        let s = e.to_string();
        assert!(s.contains("matmul") && s.contains("3x4") && s.contains("5x2"));
        assert!(LinalgError::Singular.to_string().contains("singular"));
        assert!(LinalgError::NotSquare { rows: 2, cols: 3 }
            .to_string()
            .contains("2x3"));
        assert!(LinalgError::NoConvergence { iterations: 7 }
            .to_string()
            .contains('7'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&LinalgError::EmptyInput);
    }
}
