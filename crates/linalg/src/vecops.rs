//! Free functions over `&[f64]` vectors.
//!
//! These are the primitive operations shared by the SVM kernels
//! (`tsvr-svm`), the trajectory feature pipeline (`tsvr-trajectory`) and
//! the relevance-feedback scoring code (`tsvr-mil`). They all assume the
//! two slices have equal length and panic (via `debug_assert!`) otherwise;
//! the callers guarantee the invariant because feature dimensionality is
//! fixed per retrieval session.

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two equal-length slices.
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    sq_dist(a, b).sqrt()
}

/// Manhattan (L1) distance.
#[inline]
pub fn l1_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum()
}

/// `out[i] += s * a[i]` (axpy).
#[inline]
pub fn axpy(s: f64, a: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), out.len());
    for (o, &x) in out.iter_mut().zip(a) {
        *o += s * x;
    }
}

/// Scales a vector in place.
#[inline]
pub fn scale_in_place(a: &mut [f64], s: f64) {
    for x in a {
        *x *= s;
    }
}

/// Elementwise weighted squared distance `sum_i w[i] * (a[i]-b[i])^2`.
///
/// This is the similarity core of the weighted relevance-feedback
/// baseline (paper §6.2), where `w` holds the per-feature weights.
#[inline]
pub fn weighted_sq_dist(a: &[f64], b: &[f64], w: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), w.len());
    a.iter()
        .zip(b)
        .zip(w)
        .map(|((&x, &y), &wi)| {
            let d = x - y;
            wi * d * d
        })
        .sum()
}

/// Sum of all elements.
#[inline]
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Index and value of the maximum element; `None` for an empty slice.
/// NaN entries are skipped.
pub fn argmax(a: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best
}

/// Index and value of the minimum element; `None` for an empty slice.
/// NaN entries are skipped.
pub fn argmin(a: &[f64]) -> Option<(usize, f64)> {
    argmax(&a.iter().map(|&x| -x).collect::<Vec<_>>()).map(|(i, v)| (i, -v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn distances() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(sq_dist(&a, &b), 25.0);
        assert_eq!(dist(&a, &b), 5.0);
        assert_eq!(l1_dist(&a, &b), 7.0);
        assert_eq!(dist(&a, &a), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut out = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut out);
        assert_eq!(out, vec![3.0, -1.0]);
    }

    #[test]
    fn scale_works() {
        let mut a = vec![1.0, -2.0];
        scale_in_place(&mut a, -0.5);
        assert_eq!(a, vec![-0.5, 1.0]);
    }

    #[test]
    fn weighted_distance() {
        let a = [1.0, 0.0];
        let b = [0.0, 2.0];
        // weight 0 eliminates the feature, as the paper observes for
        // linearly normalized weights.
        assert_eq!(weighted_sq_dist(&a, &b, &[0.0, 1.0]), 4.0);
        assert_eq!(weighted_sq_dist(&a, &b, &[1.0, 1.0]), 5.0);
    }

    #[test]
    fn argmax_argmin() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some((1, 3.0)));
        assert_eq!(argmin(&[1.0, 3.0, 2.0]), Some((0, 1.0)));
        assert_eq!(argmax(&[]), None);
        // NaN skipped
        assert_eq!(argmax(&[f64::NAN, 2.0]), Some((1, 2.0)));
        // ties resolve to the first occurrence
        assert_eq!(argmax(&[2.0, 2.0]), Some((0, 2.0)));
    }

    #[test]
    fn sum_works() {
        assert_eq!(sum(&[1.5, 2.5]), 4.0);
        assert_eq!(sum(&[]), 0.0);
    }
}
