//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! The PCA vehicle classifier in `tsvr-vision` (paper §3.1, citing \[13\])
//! needs the eigenvectors of small covariance matrices (feature
//! dimensionality ≤ a few dozen), for which Jacobi rotation is accurate,
//! simple and fast enough.

use crate::{LinalgError, Matrix, Result};

/// Result of a symmetric eigendecomposition: `A = V * diag(values) * V^T`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, sorted in descending order.
    pub values: Vec<f64>,
    /// Matrix whose columns are the corresponding orthonormal eigenvectors.
    pub vectors: Matrix,
}

/// Maximum number of full Jacobi sweeps before declaring non-convergence.
const MAX_SWEEPS: usize = 100;

/// Off-diagonal Frobenius norm below which the matrix counts as diagonal.
const OFF_DIAG_TOL: f64 = 1e-12;

/// Computes the eigendecomposition of a symmetric matrix.
///
/// Symmetry is enforced by averaging `a` with its transpose, so inputs
/// that are symmetric only up to rounding (e.g. covariance matrices built
/// by accumulation) are handled gracefully.
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::EmptyInput);
    }

    // Symmetrize.
    let mut m = a.clone();
    for i in 0..n {
        for j in (i + 1)..n {
            let avg = 0.5 * (m[(i, j)] + m[(j, i)]);
            m[(i, j)] = avg;
            m[(j, i)] = avg;
        }
    }

    let mut v = Matrix::identity(n);
    let scale = m.max_abs().max(1.0);

    for _sweep in 0..MAX_SWEEPS {
        let off: f64 = {
            let mut s = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    s += m[(i, j)] * m[(i, j)];
                }
            }
            s.sqrt()
        };
        if off <= OFF_DIAG_TOL * scale {
            return Ok(finish(m, v));
        }

        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= OFF_DIAG_TOL * scale / (n as f64) {
                    continue;
                }
                // Jacobi rotation that annihilates m[p][q].
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Update rows/columns p and q of m.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate rotation into V.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(LinalgError::NoConvergence {
        iterations: MAX_SWEEPS,
    })
}

/// Sorts eigenpairs in descending eigenvalue order.
fn finish(m: Matrix, v: Matrix) -> SymmetricEigen {
    let n = m.rows();
    let mut idx: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    idx.sort_by(|&a, &b| diag[b].partial_cmp(&diag[a]).unwrap());

    let values: Vec<f64> = idx.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_c, &old_c) in idx.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_c)] = v[(r, old_c)];
        }
    }
    SymmetricEigen { values, vectors }
}

impl SymmetricEigen {
    /// Returns the top-`k` eigenvectors as the columns of an `n x k` matrix
    /// (the PCA projection basis).
    pub fn principal_components(&self, k: usize) -> Matrix {
        let n = self.vectors.rows();
        let k = k.min(n);
        let mut basis = Matrix::zeros(n, k);
        for c in 0..k {
            for r in 0..n {
                basis[(r, c)] = self.vectors[(r, c)];
            }
        }
        basis
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigen() {
        let a = Matrix::from_vec(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 2.0).abs() < 1e-10);
        assert!((e.values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for 3 is parallel to (1,1)/sqrt(2).
        let v0 = e.vectors.col_vec(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v0[0] - v0[1]).abs() < 1e-8);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        let a = Matrix::from_vec(
            4,
            4,
            vec![
                4.0, 1.0, 0.5, 0.0, 1.0, 3.0, 0.2, 0.1, 0.5, 0.2, 2.0, 0.3, 0.0, 0.1, 0.3, 1.0,
            ],
        )
        .unwrap();
        let e = symmetric_eigen(&a).unwrap();
        // V^T V == I.
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(4), 1e-9));
        // V diag V^T == A.
        let mut d = Matrix::zeros(4, 4);
        for i in 0..4 {
            d[(i, i)] = e.values[i];
        }
        let recon = e
            .vectors
            .matmul(&d)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        assert!(recon.approx_eq(&a, 1e-8));
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Matrix::from_vec(3, 3, vec![5.0, 2.0, 1.0, 2.0, 4.0, 0.5, 1.0, 0.5, 3.0]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        let sum: f64 = e.values.iter().sum();
        assert!((sum - a.trace().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn handles_nearly_symmetric_input() {
        let mut a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        a[(0, 1)] += 1e-13; // rounding-level asymmetry
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_rectangular_and_empty() {
        assert!(symmetric_eigen(&Matrix::zeros(2, 3)).is_err());
        assert!(symmetric_eigen(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn principal_components_shape() {
        let a = Matrix::identity(3);
        let e = symmetric_eigen(&a).unwrap();
        assert_eq!(e.principal_components(2).shape(), (3, 2));
        // Requesting more than n clamps.
        assert_eq!(e.principal_components(10).shape(), (3, 3));
    }

    #[test]
    fn negative_eigenvalues_sorted_correctly() {
        let a = Matrix::from_vec(2, 2, vec![0.0, 2.0, 2.0, 0.0]).unwrap(); // eig ±2
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 2.0).abs() < 1e-10);
        assert!((e.values[1] + 2.0).abs() < 1e-10);
    }
}
