//! # tsvr-linalg
//!
//! Dense linear-algebra substrate for the tsvr workspace.
//!
//! The incident-retrieval framework needs a small but trustworthy set of
//! numerical kernels:
//!
//! * [`Matrix`] — dense row-major `f64` matrices with the usual arithmetic;
//! * [`decomp`] — LU (with partial pivoting), Householder QR and Cholesky
//!   factorizations, each exposing linear-system / least-squares solvers;
//! * [`eigen`] — the cyclic Jacobi method for symmetric eigenproblems,
//!   used by the PCA vehicle classifier in `tsvr-vision`;
//! * [`polyfit`] — least-squares polynomial fitting of vehicle
//!   trajectories (paper §3.2, Eq. 1–2) plus polynomial evaluation and
//!   differentiation;
//! * [`stats`] — descriptive statistics and feature normalization used by
//!   the weighted relevance-feedback baseline (paper §6.2);
//! * [`vecops`] — free functions over `&[f64]` (dot products, norms,
//!   distances) shared by the SVM kernels.
//!
//! Everything is implemented from scratch on `std` only; no external
//! numerical dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decomp;
pub mod eigen;
pub mod error;
pub mod matrix;
pub mod polyfit;
pub mod stats;
pub mod vecops;

pub use error::LinalgError;
pub use matrix::Matrix;
pub use polyfit::Polynomial;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
