//! Descriptive statistics and feature normalization.
//!
//! The weighted relevance-feedback baseline (paper §6.2) weights each
//! feature by the inverse standard deviation of the relevant samples and
//! then normalizes the weights; the initial heuristic query needs
//! per-clip min–max feature scaling. Those primitives live here, along
//! with the covariance matrix used by the PCA classifier.

use crate::{LinalgError, Matrix, Result};

/// Arithmetic mean; errors on empty input.
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(LinalgError::EmptyInput);
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance (divides by `n`); errors on empty input.
///
/// Population (not sample) variance matches the paper's use: the weights
/// describe the dispersion of the concrete relevant set, not an estimate
/// of a larger population.
pub fn variance(xs: &[f64]) -> Result<f64> {
    let m = mean(xs)?;
    Ok(xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    Ok(variance(xs)?.sqrt())
}

/// Minimum and maximum; errors on empty input. NaNs are propagated as-is.
pub fn min_max(xs: &[f64]) -> Result<(f64, f64)> {
    if xs.is_empty() {
        return Err(LinalgError::EmptyInput);
    }
    Ok(xs
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
            (lo.min(x), hi.max(x))
        }))
}

/// Per-column mean of a set of equal-length feature vectors.
pub fn column_means(rows: &[Vec<f64>]) -> Result<Vec<f64>> {
    if rows.is_empty() {
        return Err(LinalgError::EmptyInput);
    }
    let d = rows[0].len();
    if rows.iter().any(|r| r.len() != d) {
        return Err(LinalgError::InvalidArgument(
            "rows have differing lengths".into(),
        ));
    }
    let mut m = vec![0.0; d];
    for r in rows {
        for (acc, &x) in m.iter_mut().zip(r) {
            *acc += x;
        }
    }
    let n = rows.len() as f64;
    for v in &mut m {
        *v /= n;
    }
    Ok(m)
}

/// Per-column population standard deviation.
pub fn column_std_devs(rows: &[Vec<f64>]) -> Result<Vec<f64>> {
    let means = column_means(rows)?;
    let d = means.len();
    let mut var = vec![0.0; d];
    for r in rows {
        for j in 0..d {
            let e = r[j] - means[j];
            var[j] += e * e;
        }
    }
    let n = rows.len() as f64;
    Ok(var.into_iter().map(|v| (v / n).sqrt()).collect())
}

/// Population covariance matrix of a set of feature vectors (rows =
/// observations, columns = features).
pub fn covariance_matrix(rows: &[Vec<f64>]) -> Result<Matrix> {
    let means = column_means(rows)?;
    let d = means.len();
    let mut cov = Matrix::zeros(d, d);
    for r in rows {
        for i in 0..d {
            let di = r[i] - means[i];
            for j in i..d {
                let dj = r[j] - means[j];
                cov[(i, j)] += di * dj;
            }
        }
    }
    let n = rows.len() as f64;
    for i in 0..d {
        for j in i..d {
            cov[(i, j)] /= n;
            cov[(j, i)] = cov[(i, j)];
        }
    }
    Ok(cov)
}

/// Min–max scaler fit on training data, mapping each feature to [0, 1].
///
/// Constant features map to 0. Out-of-range values at transform time are
/// clamped, which keeps the heuristic scores of unseen checkpoints
/// bounded.
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxScaler {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl MinMaxScaler {
    /// Fits the scaler on a set of feature vectors.
    pub fn fit(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::EmptyInput);
        }
        let d = rows[0].len();
        if rows.iter().any(|r| r.len() != d) {
            return Err(LinalgError::InvalidArgument(
                "rows have differing lengths".into(),
            ));
        }
        let mut lo = vec![f64::INFINITY; d];
        let mut hi = vec![f64::NEG_INFINITY; d];
        for r in rows {
            for j in 0..d {
                lo[j] = lo[j].min(r[j]);
                hi[j] = hi[j].max(r[j]);
            }
        }
        Ok(MinMaxScaler { lo, hi })
    }

    /// Feature dimensionality the scaler was fit on.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Scales one feature vector into [0, 1]^d (clamping out-of-range
    /// values).
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.lo.len());
        x.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .map(|(&v, (&lo, &hi))| {
                let span = hi - lo;
                if span <= 0.0 {
                    0.0
                } else {
                    ((v - lo) / span).clamp(0.0, 1.0)
                }
            })
            .collect()
    }

    /// Scales a batch of feature vectors.
    pub fn transform_all(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }
}

/// Z-score scaler fit on training data: each feature is mapped to
/// `(x - mean) / std`. Constant features map to 0.
///
/// Compared to [`MinMaxScaler`], standardization is robust to a single
/// extreme outlier compressing everything else toward zero, which
/// matters for heavy-tailed features like the inverse vehicle distance.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl StandardScaler {
    /// Fits the scaler on a set of feature vectors.
    pub fn fit(rows: &[Vec<f64>]) -> Result<Self> {
        let mean = column_means(rows)?;
        let mut std = column_std_devs(rows)?;
        for s in &mut std {
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Ok(StandardScaler { mean, std })
    }

    /// Feature dimensionality the scaler was fit on.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Standardizes one feature vector.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.mean.len());
        x.iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect()
    }

    /// Standardizes a batch.
    pub fn transform_all(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_stats() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs).unwrap(), 5.0);
        assert_eq!(variance(&xs).unwrap(), 4.0);
        assert_eq!(std_dev(&xs).unwrap(), 2.0);
        assert_eq!(min_max(&xs).unwrap(), (2.0, 9.0));
        assert!(mean(&[]).is_err());
        assert!(min_max(&[]).is_err());
    }

    #[test]
    fn column_stats() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]];
        assert_eq!(column_means(&rows).unwrap(), vec![3.0, 10.0]);
        let sd = column_std_devs(&rows).unwrap();
        assert!((sd[0] - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(sd[1], 0.0);
        assert!(column_means(&[]).is_err());
        assert!(column_means(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn covariance_known_case() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 6.0], vec![5.0, 10.0]];
        let cov = covariance_matrix(&rows).unwrap();
        // x has variance 8/3; y = 2x so cov(x,y) = 16/3, var(y) = 32/3.
        assert!((cov[(0, 0)] - 8.0 / 3.0).abs() < 1e-12);
        assert!((cov[(0, 1)] - 16.0 / 3.0).abs() < 1e-12);
        assert!((cov[(1, 0)] - 16.0 / 3.0).abs() < 1e-12);
        assert!((cov[(1, 1)] - 32.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_is_psd_diagonal_nonneg() {
        let rows = vec![
            vec![1.0, -1.0, 0.5],
            vec![2.0, 0.0, 0.25],
            vec![0.0, 1.0, -0.5],
            vec![1.5, 0.5, 0.0],
        ];
        let cov = covariance_matrix(&rows).unwrap();
        for i in 0..3 {
            assert!(cov[(i, i)] >= 0.0);
        }
    }

    #[test]
    fn minmax_scaler_basic() {
        let rows = vec![vec![0.0, 100.0], vec![10.0, 200.0]];
        let s = MinMaxScaler::fit(&rows).unwrap();
        assert_eq!(s.dim(), 2);
        assert_eq!(s.transform(&[5.0, 150.0]), vec![0.5, 0.5]);
        assert_eq!(s.transform(&[0.0, 100.0]), vec![0.0, 0.0]);
        assert_eq!(s.transform(&[10.0, 200.0]), vec![1.0, 1.0]);
    }

    #[test]
    fn minmax_scaler_clamps_and_handles_constant() {
        let rows = vec![vec![1.0, 7.0], vec![3.0, 7.0]];
        let s = MinMaxScaler::fit(&rows).unwrap();
        // Out-of-range clamps; constant column maps to 0.
        assert_eq!(s.transform(&[100.0, 7.0]), vec![1.0, 0.0]);
        assert_eq!(s.transform(&[-100.0, 9.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn minmax_scaler_batch() {
        let rows = vec![vec![0.0], vec![2.0]];
        let s = MinMaxScaler::fit(&rows).unwrap();
        assert_eq!(s.transform_all(&rows), vec![vec![0.0], vec![1.0]]);
    }

    #[test]
    fn minmax_scaler_rejects_bad_input() {
        assert!(MinMaxScaler::fit(&[]).is_err());
        assert!(MinMaxScaler::fit(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }
}
