//! Least-squares polynomial fitting (paper §3.2).
//!
//! The paper models each vehicle trajectory with a k-th degree polynomial
//! `y = a_0 + a_1 x + … + a_k x^k` (Eq. 1) fit through the tracked
//! centroids by minimizing the squared deviations (Eq. 2), and uses the
//! first derivative as the tangent/velocity along the curve. This module
//! provides exactly that: [`fit`] builds the Vandermonde design matrix and
//! solves it by Householder QR (numerically safer than the normal
//! equations for the 4th-degree fits the paper uses), and [`Polynomial`]
//! supports evaluation and differentiation.

use crate::decomp::Qr;
use crate::{LinalgError, Matrix, Result};

/// A dense univariate polynomial `c[0] + c[1] x + … + c[k] x^k`.
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients in ascending-power order.
    /// An empty coefficient list denotes the zero polynomial.
    pub fn new(coeffs: Vec<f64>) -> Self {
        Polynomial { coeffs }
    }

    /// Coefficients in ascending-power order.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Degree; 0 for constants and the zero polynomial.
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// Evaluates the polynomial at `x` via Horner's scheme.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// First derivative as a new polynomial.
    ///
    /// For the trajectory model this is the tangent: the instantaneous
    /// rate of change of the fitted coordinate with respect to the
    /// parameter (paper §3.2: "the first derivative … represents the
    /// velocities of that vehicle at different time").
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::new(vec![0.0]);
        }
        Polynomial::new(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(p, &c)| c * p as f64)
                .collect(),
        )
    }

    /// Sum of squared residuals against sample points.
    pub fn sse(&self, xs: &[f64], ys: &[f64]) -> f64 {
        debug_assert_eq!(xs.len(), ys.len());
        xs.iter()
            .zip(ys)
            .map(|(&x, &y)| {
                let e = self.eval(x) - y;
                e * e
            })
            .sum()
    }
}

/// Fits a degree-`k` polynomial through `(xs[i], ys[i])` by least squares.
///
/// Requires at least `k + 1` samples; with exactly `k + 1` distinct
/// abscissae the fit interpolates. Duplicated abscissae are fine as long
/// as the design matrix keeps full column rank.
pub fn fit(xs: &[f64], ys: &[f64], degree: usize) -> Result<Polynomial> {
    if xs.is_empty() {
        return Err(LinalgError::EmptyInput);
    }
    if xs.len() != ys.len() {
        return Err(LinalgError::ShapeMismatch {
            left: format!("{}x1", xs.len()),
            right: format!("{}x1", ys.len()),
            op: "polyfit",
        });
    }
    let n = xs.len();
    let cols = degree + 1;
    if n < cols {
        return Err(LinalgError::InvalidArgument(format!(
            "degree {degree} needs at least {cols} samples, got {n}"
        )));
    }

    // Shift/scale the abscissae to [-1, 1] to keep the Vandermonde matrix
    // well conditioned for the frame indices (0..~2500) we fit against,
    // then compose the transform back into the returned coefficients.
    let (lo, hi) = xs
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
            (lo.min(x), hi.max(x))
        });
    let span = hi - lo;
    let (shift, scale) = if span > 0.0 {
        ((hi + lo) / 2.0, 2.0 / span)
    } else {
        (lo, 1.0)
    };

    let mut design = Matrix::zeros(n, cols);
    for (r, &x) in xs.iter().enumerate() {
        let t = (x - shift) * scale;
        let mut p = 1.0;
        for c in 0..cols {
            design[(r, c)] = p;
            p *= t;
        }
    }
    let sol = Qr::factorize(&design)?.solve_least_squares(ys)?;

    // sol describes q(t) with t = (x - shift) * scale; expand back to x.
    Ok(compose_affine(&sol, scale, -shift * scale))
}

/// Given q(t) = sum c_i t^i, returns p(x) = q(a*x + b) as coefficients of x.
fn compose_affine(c: &[f64], a: f64, b: f64) -> Polynomial {
    // Horner on polynomials: p = c_k; p = p*(a x + b) + c_{k-1}; ...
    let mut p: Vec<f64> = vec![*c.last().unwrap()];
    for &ci in c.iter().rev().skip(1) {
        // p = p * (a x + b)
        let mut next = vec![0.0; p.len() + 1];
        for (i, &pi) in p.iter().enumerate() {
            next[i] += pi * b;
            next[i + 1] += pi * a;
        }
        next[0] += ci;
        p = next;
    }
    Polynomial::new(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn eval_horner() {
        let p = Polynomial::new(vec![1.0, -2.0, 3.0]); // 1 - 2x + 3x^2
        assert_eq!(p.eval(0.0), 1.0);
        assert_eq!(p.eval(1.0), 2.0);
        assert_eq!(p.eval(2.0), 9.0);
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn zero_polynomial() {
        let p = Polynomial::new(vec![]);
        assert_eq!(p.eval(5.0), 0.0);
        assert_eq!(p.degree(), 0);
        assert_eq!(p.derivative().eval(1.0), 0.0);
    }

    #[test]
    fn derivative_rules() {
        let p = Polynomial::new(vec![1.0, 2.0, 3.0, 4.0]); // 1+2x+3x^2+4x^3
        let d = p.derivative();
        assert_eq!(d.coeffs(), &[2.0, 6.0, 12.0]);
        let c = Polynomial::new(vec![7.0]);
        assert_eq!(c.derivative().coeffs(), &[0.0]);
    }

    #[test]
    fn fit_recovers_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let p = fit(&xs, &ys, 1).unwrap();
        assert_close(p.coeffs()[0], 1.0, 1e-9);
        assert_close(p.coeffs()[1], 2.0, 1e-9);
    }

    #[test]
    fn fit_recovers_quartic_exactly() {
        // The paper fits 4th-degree polynomials (Fig. 2).
        let truth = Polynomial::new(vec![3.0, -1.0, 0.5, 0.2, -0.01]);
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| truth.eval(x)).collect();
        let p = fit(&xs, &ys, 4).unwrap();
        for (a, b) in p.coeffs().iter().zip(truth.coeffs()) {
            assert_close(*a, *b, 1e-7);
        }
        assert!(p.sse(&xs, &ys) < 1e-12);
    }

    #[test]
    fn fit_handles_large_abscissae() {
        // Frame indices in the thousands, like clip 1's 2504 frames.
        let xs: Vec<f64> = (2000..2060).map(|i| i as f64).collect();
        let truth = Polynomial::new(vec![100.0, 0.25]);
        let ys: Vec<f64> = xs.iter().map(|&x| truth.eval(x)).collect();
        let p = fit(&xs, &ys, 1).unwrap();
        // Check predictions, not raw coefficients (cancellation is fine).
        for &x in &xs {
            assert_close(p.eval(x), truth.eval(x), 1e-6);
        }
    }

    #[test]
    fn fit_smooths_noise() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        // y = x with deterministic +-0.5 ripple.
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| x + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let p = fit(&xs, &ys, 1).unwrap();
        assert_close(p.coeffs()[1], 1.0, 0.01);
        // Residual must be strictly smaller than a flat fit's.
        let flat = Polynomial::new(vec![ys.iter().sum::<f64>() / ys.len() as f64]);
        assert!(p.sse(&xs, &ys) < flat.sse(&xs, &ys));
    }

    #[test]
    fn fit_interpolates_with_minimum_samples() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [1.0, 0.0, 5.0];
        let p = fit(&xs, &ys, 2).unwrap();
        for (&x, &y) in xs.iter().zip(&ys) {
            assert_close(p.eval(x), y, 1e-9);
        }
    }

    #[test]
    fn fit_rejects_bad_inputs() {
        assert!(fit(&[], &[], 1).is_err());
        assert!(fit(&[1.0, 2.0], &[1.0], 1).is_err());
        assert!(fit(&[1.0, 2.0], &[1.0, 2.0], 3).is_err());
    }

    #[test]
    fn fit_constant_abscissa_is_rank_deficient() {
        // All x equal: degree-1 fit is underdetermined.
        let r = fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0], 1);
        assert!(r.is_err());
    }

    #[test]
    fn fit_degree_zero_is_mean() {
        let p = fit(&[0.0, 1.0, 2.0], &[3.0, 5.0, 7.0], 0).unwrap();
        assert_close(p.coeffs()[0], 5.0, 1e-12);
    }

    #[test]
    fn compose_affine_identity() {
        let p = compose_affine(&[1.0, 2.0, 3.0], 1.0, 0.0);
        assert_eq!(p.coeffs(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn compose_affine_shift() {
        // q(t)=t^2 with t = x - 1  =>  p(x) = x^2 - 2x + 1.
        let p = compose_affine(&[0.0, 0.0, 1.0], 1.0, -1.0);
        assert_eq!(p.coeffs(), &[1.0, -2.0, 1.0]);
    }
}
