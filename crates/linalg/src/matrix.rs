//! Dense row-major matrix of `f64`.
//!
//! [`Matrix`] is deliberately simple: a `Vec<f64>` plus a shape. All the
//! numerical heavy lifting lives in [`crate::decomp`] and [`crate::eigen`];
//! this module only provides storage, indexing and elementwise/structural
//! operations.

use crate::{LinalgError, Result};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidArgument(format!(
                "data length {} does not match shape {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of equally-long rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::EmptyInput);
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(LinalgError::InvalidArgument(
                "rows have differing lengths".into(),
            ));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a single-column matrix from a vector.
    pub fn column(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col_vec(&self, c: usize) -> Vec<f64> {
        debug_assert!(c < self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    fn shape_str(&self) -> String {
        format!("{}x{}", self.rows, self.cols)
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape_str(),
                right: rhs.shape_str(),
                op: "matmul",
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj loop order: streams over contiguous rows of rhs and out.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape_str(),
                right: format!("{}x1", v.len()),
                op: "matvec",
            });
        }
        Ok((0..self.rows)
            .map(|r| crate::vecops::dot(self.row(r), v))
            .collect())
    }

    /// Elementwise sum.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape_str(),
                right: rhs.shape_str(),
                op,
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Frobenius norm: `sqrt(sum of squared entries)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry; 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Trace (sum of diagonal entries). Errors on rectangular matrices.
    pub fn trace(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok((0..self.rows).map(|i| self[(i, i)]).sum())
    }

    /// Swaps rows `a` and `b` in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(b * self.cols);
        head[a * self.cols..(a + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    /// True when every pair of corresponding entries differs by at most `tol`.
    pub fn approx_eq(&self, rhs: &Matrix, tol: f64) -> bool {
        self.shape() == rhs.shape()
            && self
                .data
                .iter()
                .zip(&rhs.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert!(!m.is_square());
        assert!(Matrix::identity(3).is_square());
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_validates() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        let out = m.matmul(&Matrix::identity(3)).unwrap();
        assert_eq!(out, m);
        let out = Matrix::identity(2).matmul(&m).unwrap();
        assert_eq!(out, m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = sample();
        assert!(a.matmul(&sample()).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = sample();
        let v = vec![1.0, 0.5, -1.0];
        let got = m.matvec(&v).unwrap();
        let expect = m.matmul(&Matrix::column(&v)).unwrap();
        assert_eq!(got, expect.col_vec(0));
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let m = sample();
        let s = m.add(&m).unwrap();
        assert_eq!(s[(1, 2)], 12.0);
        let d = s.sub(&m).unwrap();
        assert_eq!(d, m);
        let k = m.scale(2.0);
        assert_eq!(k, s);
        assert!(m.add(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn norms_and_trace() {
        let m = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(m.trace().unwrap(), 7.0);
        assert!(sample().trace().is_err());
    }

    #[test]
    fn swap_rows_works() {
        let mut m = sample();
        m.swap_rows(0, 1);
        assert_eq!(m.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
        m.swap_rows(1, 1); // no-op
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Matrix::identity(2);
        let mut b = a.clone();
        b[(0, 0)] += 1e-9;
        assert!(a.approx_eq(&b, 1e-8));
        assert!(!a.approx_eq(&b, 1e-10));
        assert!(!a.approx_eq(&Matrix::zeros(3, 3), 1.0));
    }

    #[test]
    fn display_renders_rows() {
        let s = Matrix::identity(2).to_string();
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn row_and_col_access() {
        let m = sample();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col_vec(2), vec![3.0, 6.0]);
    }
}
