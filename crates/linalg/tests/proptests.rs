//! Property-based tests for the numerical kernels.

use proptest::prelude::*;
use tsvr_linalg::decomp::{solve, solve_least_squares, Cholesky, Lu};
use tsvr_linalg::eigen::symmetric_eigen;
use tsvr_linalg::polyfit;
use tsvr_linalg::stats::{covariance_matrix, MinMaxScaler};
use tsvr_linalg::{vecops, Matrix};

/// Strategy: a well-conditioned square matrix built as (diagonally
/// dominant) = random entries plus a large diagonal boost.
fn dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let mut m = Matrix::from_vec(n, n, data).unwrap();
        for i in 0..n {
            m[(i, i)] += n as f64 + 1.0;
        }
        m
    })
}

fn vector(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, n)
}

proptest! {
    #[test]
    fn lu_solve_residual_small((a, b) in dominant_matrix(4).prop_flat_map(|a| (Just(a), vector(4)))) {
        let x = solve(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(&b) {
            prop_assert!((got - want).abs() < 1e-8);
        }
    }

    #[test]
    fn lu_inverse_roundtrip(a in dominant_matrix(3)) {
        let inv = Lu::factorize(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        prop_assert!(prod.approx_eq(&Matrix::identity(3), 1e-8));
    }

    #[test]
    fn qr_least_squares_residual_orthogonal(
        cols in prop::collection::vec(vector(6), 2),
        b in vector(6),
    ) {
        // Build a 6x3 design with an intercept column to guarantee rank
        // issues are rare; skip degenerate draws.
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|i| vec![1.0, cols[0][i], cols[1][i]])
            .collect();
        let a = Matrix::from_rows(&rows).unwrap();
        if let Ok(x) = solve_least_squares(&a, &b) {
            let ax = a.matvec(&x).unwrap();
            let r: Vec<f64> = b.iter().zip(&ax).map(|(&bi, &axi)| bi - axi).collect();
            let atr = a.transpose().matvec(&r).unwrap();
            let scale = 1.0 + a.max_abs() * vecops::norm2(&b);
            for v in atr {
                prop_assert!(v.abs() < 1e-6 * scale, "A^T r = {v}");
            }
        }
    }

    #[test]
    fn cholesky_matches_lu_on_spd(a in dominant_matrix(4), b in vector(4)) {
        // Make SPD: S = A A^T + I (dominant A keeps it well conditioned).
        let s = a.matmul(&a.transpose()).unwrap().add(&Matrix::identity(4)).unwrap();
        let x1 = Cholesky::factorize(&s).unwrap().solve(&b).unwrap();
        let x2 = solve(&s, &b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            prop_assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn eigen_reconstructs_symmetric(a in dominant_matrix(4)) {
        let s = a.matmul(&a.transpose()).unwrap();
        let e = symmetric_eigen(&s).unwrap();
        // Eigenvalues sorted descending.
        for w in e.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        // Orthonormal vectors.
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        prop_assert!(vtv.approx_eq(&Matrix::identity(4), 1e-7));
        // Reconstruction.
        let mut d = Matrix::zeros(4, 4);
        for i in 0..4 { d[(i, i)] = e.values[i]; }
        let recon = e.vectors.matmul(&d).unwrap().matmul(&e.vectors.transpose()).unwrap();
        prop_assert!(recon.approx_eq(&s, 1e-6 * (1.0 + s.max_abs())));
    }

    #[test]
    fn polyfit_recovers_exact_polynomials(
        coeffs in prop::collection::vec(-2.0f64..2.0, 1..5),
        n_extra in 0usize..10,
    ) {
        let truth = polyfit::Polynomial::new(coeffs.clone());
        let degree = coeffs.len() - 1;
        let n = degree + 1 + n_extra;
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| truth.eval(x)).collect();
        let p = polyfit::fit(&xs, &ys, degree).unwrap();
        for &x in &xs {
            let scale = 1.0 + truth.eval(x).abs();
            prop_assert!((p.eval(x) - truth.eval(x)).abs() < 1e-6 * scale);
        }
    }

    #[test]
    fn polyfit_derivative_matches_finite_difference(
        coeffs in prop::collection::vec(-2.0f64..2.0, 2..5),
        x in -3.0f64..3.0,
    ) {
        let p = polyfit::Polynomial::new(coeffs);
        let d = p.derivative();
        let h = 1e-6;
        let fd = (p.eval(x + h) - p.eval(x - h)) / (2.0 * h);
        prop_assert!((d.eval(x) - fd).abs() < 1e-4 * (1.0 + fd.abs()));
    }

    #[test]
    fn covariance_diagonal_nonnegative(rows in prop::collection::vec(vector(3), 2..20)) {
        let cov = covariance_matrix(&rows).unwrap();
        for i in 0..3 {
            prop_assert!(cov[(i, i)] >= -1e-12);
        }
        // Symmetry.
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((cov[(i, j)] - cov[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn minmax_transform_in_unit_box(rows in prop::collection::vec(vector(3), 1..20), probe in vector(3)) {
        let s = MinMaxScaler::fit(&rows).unwrap();
        for v in s.transform(&probe) {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        for r in &rows {
            for v in s.transform(r) {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn matmul_associative(a in dominant_matrix(3), b in dominant_matrix(3), c in dominant_matrix(3)) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-6 * (1.0 + left.max_abs())));
    }

    #[test]
    fn transpose_reverses_product(a in dominant_matrix(3), b in dominant_matrix(3)) {
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn vecops_triangle_inequality(a in vector(4), b in vector(4), c in vector(4)) {
        let ab = vecops::dist(&a, &b);
        let bc = vecops::dist(&b, &c);
        let ac = vecops::dist(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn vecops_cauchy_schwarz(a in vector(5), b in vector(5)) {
        let d = vecops::dot(&a, &b).abs();
        let bound = vecops::norm2(&a) * vecops::norm2(&b);
        prop_assert!(d <= bound + 1e-9);
    }
}
