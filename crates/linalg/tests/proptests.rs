//! Property-based tests for the numerical kernels, driven by the
//! in-tree seeded harness (`tsvr_sim::check`).

use tsvr_sim::check::{self, vec_f64};
use tsvr_sim::Pcg32;
use tsvr_linalg::decomp::{solve, solve_least_squares, Cholesky, Lu};
use tsvr_linalg::eigen::symmetric_eigen;
use tsvr_linalg::polyfit;
use tsvr_linalg::stats::{covariance_matrix, MinMaxScaler};
use tsvr_linalg::{vecops, Matrix};

/// A well-conditioned square matrix: random entries plus a large
/// diagonal boost (diagonally dominant).
fn dominant_matrix(rng: &mut Pcg32, n: usize) -> Matrix {
    let data = vec_f64(rng, n * n, -1.0, 1.0);
    let mut m = Matrix::from_vec(n, n, data).unwrap();
    for i in 0..n {
        m[(i, i)] += n as f64 + 1.0;
    }
    m
}

fn vector(rng: &mut Pcg32, n: usize) -> Vec<f64> {
    vec_f64(rng, n, -10.0, 10.0)
}

#[test]
fn lu_solve_residual_small() {
    check::cases(256, |case, rng| {
        let a = dominant_matrix(rng, 4);
        let b = vector(rng, 4);
        let x = solve(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(&b) {
            assert!((got - want).abs() < 1e-8, "case {case}: {got} vs {want}");
        }
    });
}

#[test]
fn lu_inverse_roundtrip() {
    check::cases(256, |case, rng| {
        let a = dominant_matrix(rng, 3);
        let inv = Lu::factorize(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(
            prod.approx_eq(&Matrix::identity(3), 1e-8),
            "case {case}: A * A^-1 != I"
        );
    });
}

#[test]
fn qr_least_squares_residual_orthogonal() {
    check::cases(256, |case, rng| {
        let c0 = vector(rng, 6);
        let c1 = vector(rng, 6);
        let b = vector(rng, 6);
        // A 6x3 design with an intercept column keeps rank issues rare;
        // rank-deficient draws just skip the check.
        let rows: Vec<Vec<f64>> = (0..6).map(|i| vec![1.0, c0[i], c1[i]]).collect();
        let a = Matrix::from_rows(&rows).unwrap();
        if let Ok(x) = solve_least_squares(&a, &b) {
            let ax = a.matvec(&x).unwrap();
            let r: Vec<f64> = b.iter().zip(&ax).map(|(&bi, &axi)| bi - axi).collect();
            let atr = a.transpose().matvec(&r).unwrap();
            let scale = 1.0 + a.max_abs() * vecops::norm2(&b);
            for v in atr {
                assert!(v.abs() < 1e-6 * scale, "case {case}: A^T r = {v}");
            }
        }
    });
}

#[test]
fn cholesky_matches_lu_on_spd() {
    check::cases(256, |case, rng| {
        let a = dominant_matrix(rng, 4);
        let b = vector(rng, 4);
        // Make SPD: S = A A^T + I (dominant A keeps it well conditioned).
        let s = a
            .matmul(&a.transpose())
            .unwrap()
            .add(&Matrix::identity(4))
            .unwrap();
        let x1 = Cholesky::factorize(&s).unwrap().solve(&b).unwrap();
        let x2 = solve(&s, &b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-6, "case {case}: {u} vs {v}");
        }
    });
}

#[test]
fn eigen_reconstructs_symmetric() {
    check::cases(128, |case, rng| {
        let a = dominant_matrix(rng, 4);
        let s = a.matmul(&a.transpose()).unwrap();
        let e = symmetric_eigen(&s).unwrap();
        // Eigenvalues sorted descending.
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-9, "case {case}: not sorted");
        }
        // Orthonormal vectors.
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(
            vtv.approx_eq(&Matrix::identity(4), 1e-7),
            "case {case}: V^T V != I"
        );
        // Reconstruction.
        let mut d = Matrix::zeros(4, 4);
        for i in 0..4 {
            d[(i, i)] = e.values[i];
        }
        let recon = e
            .vectors
            .matmul(&d)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        assert!(
            recon.approx_eq(&s, 1e-6 * (1.0 + s.max_abs())),
            "case {case}: V D V^T != S"
        );
    });
}

#[test]
fn polyfit_recovers_exact_polynomials() {
    check::cases(256, |case, rng| {
        let n_coeffs = check::len_in(rng, 1, 5);
        let coeffs = vec_f64(rng, n_coeffs, -2.0, 2.0);
        let n_extra = rng.uniform_usize(10);
        let truth = polyfit::Polynomial::new(coeffs.clone());
        let degree = coeffs.len() - 1;
        let n = degree + 1 + n_extra;
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| truth.eval(x)).collect();
        let p = polyfit::fit(&xs, &ys, degree).unwrap();
        for &x in &xs {
            let scale = 1.0 + truth.eval(x).abs();
            assert!(
                (p.eval(x) - truth.eval(x)).abs() < 1e-6 * scale,
                "case {case}: mismatch at x = {x}"
            );
        }
    });
}

#[test]
fn polyfit_derivative_matches_finite_difference() {
    check::cases(256, |case, rng| {
        let n_coeffs = check::len_in(rng, 2, 5);
        let coeffs = vec_f64(rng, n_coeffs, -2.0, 2.0);
        let x = rng.uniform(-3.0, 3.0);
        let p = polyfit::Polynomial::new(coeffs);
        let d = p.derivative();
        let h = 1e-6;
        let fd = (p.eval(x + h) - p.eval(x - h)) / (2.0 * h);
        assert!(
            (d.eval(x) - fd).abs() < 1e-4 * (1.0 + fd.abs()),
            "case {case}: derivative mismatch at x = {x}"
        );
    });
}

#[test]
fn covariance_diagonal_nonnegative() {
    check::cases(256, |case, rng| {
        let n_rows = check::len_in(rng, 2, 20);
        let rows: Vec<Vec<f64>> = (0..n_rows).map(|_| vector(rng, 3)).collect();
        let cov = covariance_matrix(&rows).unwrap();
        for i in 0..3 {
            assert!(cov[(i, i)] >= -1e-12, "case {case}: negative variance");
        }
        // Symmetry.
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (cov[(i, j)] - cov[(j, i)]).abs() < 1e-12,
                    "case {case}: not symmetric"
                );
            }
        }
    });
}

#[test]
fn minmax_transform_in_unit_box() {
    check::cases(256, |case, rng| {
        let n_rows = check::len_in(rng, 1, 20);
        let rows: Vec<Vec<f64>> = (0..n_rows).map(|_| vector(rng, 3)).collect();
        let probe = vector(rng, 3);
        let s = MinMaxScaler::fit(&rows).unwrap();
        for v in s.transform(&probe) {
            assert!((0.0..=1.0).contains(&v), "case {case}: probe out of box");
        }
        for r in &rows {
            for v in s.transform(r) {
                assert!((0.0..=1.0).contains(&v), "case {case}: row out of box");
            }
        }
    });
}

#[test]
fn matmul_associative() {
    check::cases(128, |case, rng| {
        let a = dominant_matrix(rng, 3);
        let b = dominant_matrix(rng, 3);
        let c = dominant_matrix(rng, 3);
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        assert!(
            left.approx_eq(&right, 1e-6 * (1.0 + left.max_abs())),
            "case {case}: (AB)C != A(BC)"
        );
    });
}

#[test]
fn transpose_reverses_product() {
    check::cases(128, |case, rng| {
        let a = dominant_matrix(rng, 3);
        let b = dominant_matrix(rng, 3);
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        assert!(lhs.approx_eq(&rhs, 1e-9), "case {case}: (AB)^T != B^T A^T");
    });
}

#[test]
fn vecops_triangle_inequality() {
    check::cases(256, |case, rng| {
        let a = vector(rng, 4);
        let b = vector(rng, 4);
        let c = vector(rng, 4);
        let ab = vecops::dist(&a, &b);
        let bc = vecops::dist(&b, &c);
        let ac = vecops::dist(&a, &c);
        assert!(ac <= ab + bc + 1e-9, "case {case}: triangle violated");
    });
}

#[test]
fn vecops_cauchy_schwarz() {
    check::cases(256, |case, rng| {
        let a = vector(rng, 5);
        let b = vector(rng, 5);
        let d = vecops::dot(&a, &b).abs();
        let bound = vecops::norm2(&a) * vecops::norm2(&b);
        assert!(d <= bound + 1e-9, "case {case}: |<a,b>| > |a||b|");
    });
}
