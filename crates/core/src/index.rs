//! Persistent feature indexes: extract once, serve many queries.
//!
//! The paper's pipeline re-runs segmentation, tracking and feature
//! extraction every time a clip is queried. For a surveillance *database*
//! (§1: "a large amount of transportation surveillance videos") that work
//! is identical across queries, so this module persists each clip's
//! extracted [`Dataset`] as a [`IndexSegment`] record in the video
//! database and serves later queries straight from it — no vision work.
//!
//! Staleness is handled by construction, not by trust: every segment
//! carries a hash over `(clip_id, window/feature configuration, pipeline
//! version)`. [`load_index`] recomputes the hash for the configuration
//! the caller is about to query with and treats any mismatch as a miss,
//! so a stale index is rebuilt rather than silently served.

use tsvr_trajectory::checkpoint::{Alpha, FeatureConfig, VelocitySource};
use tsvr_trajectory::{Dataset, TrajectorySequence, VideoSequence, WindowConfig};
use tsvr_viddb::{ClipBundle, DbError, IndexSegment, IndexWindowRow, VideoDb};

/// Version of the extraction pipeline baked into the invalidation hash.
/// Bump this whenever feature semantics change (new α definition,
/// different normalization of stored rows, …) so every stored index is
/// invalidated at once without a format change.
pub const PIPELINE_VERSION: u32 = 1;

/// FNV-1a, 64-bit. Zero-dependency, stable across platforms and runs —
/// exactly what an on-disk invalidation tag needs (`DefaultHasher` makes
/// no cross-version promise).
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Fnv {
        Fnv(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        // Hash the bit pattern: -0.0 vs 0.0 and NaN payloads are
        // configuration differences too.
        self.u64(v.to_bits());
    }
}

/// The invalidation hash stored with (and demanded from) an index
/// segment: a digest of the clip id, the pipeline version, and every
/// field of the window/feature configuration that influences extracted
/// features. Two configs with the same hash produce the same dataset.
pub fn config_hash(clip_id: u64, config: &WindowConfig) -> u64 {
    let mut h = Fnv::new();
    h.u64(clip_id);
    h.u64(u64::from(PIPELINE_VERSION));
    h.u64(config.window_size as u64);
    h.u64(config.stride as u64);
    let f: &FeatureConfig = &config.features;
    h.u64(u64::from(f.sampling_rate));
    h.f64(f.max_neighbor_dist);
    h.f64(f.min_dist_floor);
    h.f64(f.min_motion);
    h.f64(f.vdiff_cap);
    match f.velocity {
        VelocitySource::PolyfitDerivative { degree } => {
            h.u64(0);
            h.u64(degree as u64);
        }
        VelocitySource::FiniteDifference => h.u64(1),
    }
    h.0
}

/// Flattens a dataset into the on-disk segment form. Feature values are
/// the *raw* α rows (`TrajectorySequence::feature_vector`), stored via
/// `f64::to_bits` by the codec, so the round trip is bit-identical —
/// normalization happens at bag-construction time exactly as on the
/// cold path.
pub fn segment_from_dataset(clip_id: u64, dataset: &Dataset) -> IndexSegment {
    let feature_dim = (dataset.config.window_size * 3) as u32;
    let windows = dataset
        .windows
        .iter()
        .map(|w| IndexWindowRow {
            window_index: u32::try_from(w.index)
                .expect("window index exceeds on-disk u32 range"),
            start_checkpoint: w.start_checkpoint as u64,
            start_frame: w.start_frame,
            end_frame: w.end_frame,
            track_ids: w.sequences.iter().map(|ts| ts.track_id).collect(),
            features: w
                .sequences
                .iter()
                .flat_map(|ts| ts.feature_vector())
                .collect(),
        })
        .collect();
    IndexSegment {
        clip_id,
        config_hash: config_hash(clip_id, &dataset.config),
        feature_dim,
        windows,
    }
}

/// Rebuilds a [`Dataset`] from a stored segment. Inverse of
/// [`segment_from_dataset`] for any segment whose `feature_dim` matches
/// `config.window_size * 3` (which [`load_index`] guarantees via the
/// config hash).
pub fn dataset_from_segment(segment: &IndexSegment, config: WindowConfig) -> Dataset {
    let dim = segment.feature_dim as usize;
    let windows = segment
        .windows
        .iter()
        .map(|row| VideoSequence {
            index: row.window_index as usize,
            start_checkpoint: row.start_checkpoint as usize,
            start_frame: row.start_frame,
            end_frame: row.end_frame,
            sequences: row
                .track_ids
                .iter()
                .enumerate()
                .map(|(i, &track_id)| TrajectorySequence {
                    track_id,
                    alphas: row.features[i * dim..(i + 1) * dim]
                        .chunks_exact(3)
                        .map(|c| Alpha {
                            inv_mdist: c[0],
                            vdiff: c[1],
                            theta: c[2],
                        })
                        .collect(),
                })
                .collect(),
        })
        .collect();
    Dataset { windows, config }
}

/// Persists a clip's extracted dataset as its feature index and syncs
/// the log (an index is only useful if it survives the process).
pub fn build_index(db: &mut VideoDb, clip_id: u64, dataset: &Dataset) -> Result<(), DbError> {
    let _span = tsvr_obs::span!("index.build");
    let segment = segment_from_dataset(clip_id, dataset);
    db.put_index(&segment)?;
    db.sync()?;
    tsvr_obs::counter!("index.built").incr();
    Ok(())
}

/// Serves a clip's dataset from its stored index, if a *fresh* one
/// exists.
///
/// Returns `Ok(None)` — and bumps the matching `index.miss` /
/// `index.stale` counter — when no index is stored, the stored segment
/// is corrupt (viddb drops it), or its config hash does not match
/// `config` under the current [`PIPELINE_VERSION`]. The caller then
/// falls back to cold extraction and (typically) [`build_index`].
pub fn load_index(
    db: &mut VideoDb,
    clip_id: u64,
    config: &WindowConfig,
) -> Result<Option<Dataset>, DbError> {
    let _span = tsvr_obs::span!("index.load");
    let Some(segment) = db.load_index(clip_id)? else {
        tsvr_obs::counter!("index.miss").incr();
        return Ok(None);
    };
    let expected = config_hash(clip_id, config);
    if segment.config_hash != expected
        || segment.feature_dim as usize != config.window_size * 3
    {
        tsvr_obs::counter!("index.stale").incr();
        return Ok(None);
    }
    tsvr_obs::counter!("index.hit").incr();
    Ok(Some(dataset_from_segment(&segment, *config)))
}

/// Reconstructs a dataset from an archived clip bundle's window rows —
/// the ingest-time path for `index build` over clips that are already
/// in the database. Pure data reshaping: no simulation, rendering,
/// segmentation or tracking runs.
pub fn dataset_from_bundle(bundle: &ClipBundle, config: WindowConfig) -> Dataset {
    let rate = u64::from(config.features.sampling_rate.max(1));
    let windows = bundle
        .windows
        .iter()
        .map(|w| VideoSequence {
            index: w.window_index as usize,
            start_checkpoint: (u64::from(w.start_frame) / rate) as usize,
            start_frame: u64::from(w.start_frame),
            end_frame: u64::from(w.end_frame),
            sequences: w
                .sequences
                .iter()
                .map(|s| TrajectorySequence {
                    track_id: s.track_id,
                    alphas: s
                        .alphas
                        .iter()
                        .map(|a| Alpha {
                            inv_mdist: a[0],
                            vdiff: a[1],
                            theta: a[2],
                        })
                        .collect(),
                })
                .collect(),
        })
        .collect();
    Dataset { windows, config }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::bundle_from_clip;
    use crate::pipeline::{prepare_clip, PipelineOptions};
    use tsvr_sim::Scenario;
    use tsvr_viddb::ClipMeta;

    fn meta(clip_id: u64) -> ClipMeta {
        ClipMeta {
            clip_id,
            name: format!("clip {clip_id}"),
            location: "tunnel".into(),
            camera: "cam".into(),
            start_time: 0,
            frame_count: 400,
            width: 320,
            height: 240,
        }
    }

    fn small_dataset() -> Dataset {
        prepare_clip(&Scenario::tunnel_small(7), &PipelineOptions::default()).dataset
    }

    #[test]
    fn segment_round_trip_is_bit_identical() {
        let ds = small_dataset();
        let seg = segment_from_dataset(9, &ds);
        let back = dataset_from_segment(&seg, ds.config);
        assert_eq!(back.windows.len(), ds.windows.len());
        for (a, b) in ds.windows.iter().zip(&back.windows) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.start_checkpoint, b.start_checkpoint);
            assert_eq!(a.start_frame, b.start_frame);
            assert_eq!(a.end_frame, b.end_frame);
            assert_eq!(a.sequences.len(), b.sequences.len());
            for (x, y) in a.sequences.iter().zip(&b.sequences) {
                assert_eq!(x.track_id, y.track_id);
                // Bit-level equality, not approximate: the index must
                // not perturb a single feature.
                let xb: Vec<u64> = x.feature_vector().iter().map(|v| v.to_bits()).collect();
                let yb: Vec<u64> = y.feature_vector().iter().map(|v| v.to_bits()).collect();
                assert_eq!(xb, yb);
            }
        }
    }

    #[test]
    fn hash_is_sensitive_to_every_config_field() {
        let base = WindowConfig::default();
        let h0 = config_hash(1, &base);
        assert_eq!(h0, config_hash(1, &base), "hash is deterministic");
        assert_ne!(h0, config_hash(2, &base), "clip id");

        let mut c = base;
        c.window_size = 4;
        assert_ne!(h0, config_hash(1, &c), "window_size");
        let mut c = base;
        c.stride = 1;
        assert_ne!(h0, config_hash(1, &c), "stride");
        let mut c = base;
        c.features.sampling_rate += 1;
        assert_ne!(h0, config_hash(1, &c), "sampling_rate");
        let mut c = base;
        c.features.max_neighbor_dist += 1.0;
        assert_ne!(h0, config_hash(1, &c), "max_neighbor_dist");
        let mut c = base;
        c.features.min_dist_floor *= 2.0;
        assert_ne!(h0, config_hash(1, &c), "min_dist_floor");
        let mut c = base;
        c.features.min_motion += 0.5;
        assert_ne!(h0, config_hash(1, &c), "min_motion");
        let mut c = base;
        c.features.vdiff_cap += 1.0;
        assert_ne!(h0, config_hash(1, &c), "vdiff_cap");
        let mut c = base;
        c.features.velocity = VelocitySource::FiniteDifference;
        assert_ne!(h0, config_hash(1, &c), "velocity source");
    }

    #[test]
    fn load_index_round_trips_and_detects_staleness() {
        let clip = prepare_clip(&Scenario::tunnel_small(7), &PipelineOptions::default());
        let bundle = bundle_from_clip(&clip, meta(5));
        let mut db = VideoDb::in_memory();
        db.put_clip(&bundle).unwrap();

        let cfg = clip.dataset.config;
        assert!(load_index(&mut db, 5, &cfg).unwrap().is_none(), "cold miss");

        build_index(&mut db, 5, &clip.dataset).unwrap();
        let served = load_index(&mut db, 5, &cfg).unwrap().expect("hit");
        assert_eq!(served.windows.len(), clip.dataset.windows.len());

        // A different feature configuration must not be served the old
        // index.
        let mut stale = cfg;
        stale.features.vdiff_cap += 1.0;
        assert!(
            load_index(&mut db, 5, &stale).unwrap().is_none(),
            "stale config served"
        );
    }

    #[test]
    fn dataset_from_bundle_matches_cold_extraction() {
        let clip = prepare_clip(&Scenario::tunnel_small(7), &PipelineOptions::default());
        let bundle = bundle_from_clip(&clip, meta(3));
        let ds = dataset_from_bundle(&bundle, clip.dataset.config);
        assert_eq!(ds.windows.len(), clip.dataset.windows.len());
        for (a, b) in clip.dataset.windows.iter().zip(&ds.windows) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.start_frame, b.start_frame);
            assert_eq!(a.sequences.len(), b.sequences.len());
            for (x, y) in a.sequences.iter().zip(&b.sequences) {
                assert_eq!(x.track_id, y.track_id);
                assert_eq!(
                    x.feature_vector().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    y.feature_vector().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                );
            }
        }
    }
}
