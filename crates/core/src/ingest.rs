//! Conversion between pipeline artifacts and database records.
//!
//! Ingestion stores *raw* (unnormalized) feature rows; normalization is
//! a per-clip query-time concern, so re-deriving bags from a stored
//! bundle reproduces exactly what [`crate::prepare_clip`] built.

use crate::pipeline::ClipArtifacts;
use crate::query::EventQuery;
use tsvr_mil::{Bag, Instance};
use tsvr_sim::IncidentKind;
use tsvr_trajectory::checkpoint::{Alpha, FeatureConfig};
use tsvr_viddb::{
    ClipBundle, ClipMeta, FrameCodec, IncidentRow, SequenceRow, StoredFrame, TrackRow, VideoDb,
    WindowRow,
};
use tsvr_vision::render::Renderer;

/// Builds a durable bundle from prepared clip artifacts.
pub fn bundle_from_clip(clip: &ClipArtifacts, meta: ClipMeta) -> ClipBundle {
    let tracks = clip
        .vision
        .tracks
        .iter()
        .map(|t| TrackRow {
            track_id: t.id,
            start_frame: t.start_frame(),
            centroids: t
                .points
                .iter()
                .map(|p| (p.centroid.x as f32, p.centroid.y as f32))
                .collect(),
        })
        .collect();

    let windows = clip
        .dataset
        .windows
        .iter()
        .map(|w| WindowRow {
            window_index: u32::try_from(w.index)
                .expect("window index exceeds on-disk u32 range"),
            // The on-disk row keeps its u32 encoding (golden-fixture
            // compatible); clip frame counts are u32 in `ClipMeta`, so
            // any in-range clip fits — a span past u32 is a caller bug.
            start_frame: w
                .start_frame
                .try_into()
                .expect("window start_frame exceeds u32 clip range"),
            end_frame: w
                .end_frame
                .try_into()
                .expect("window end_frame exceeds u32 clip range"),
            sequences: w
                .sequences
                .iter()
                .map(|ts| SequenceRow {
                    track_id: ts.track_id,
                    alphas: ts.alphas.iter().map(|a| a.as_array()).collect(),
                })
                .collect(),
        })
        .collect();

    let incidents = clip
        .sim
        .incidents
        .iter()
        .map(|r| IncidentRow {
            kind: r.kind.name().to_string(),
            start_frame: r.start_frame,
            end_frame: r.end_frame,
            vehicle_ids: r.vehicle_ids.clone(),
        })
        .collect();

    ClipBundle {
        meta,
        tracks,
        windows,
        incidents,
    }
}

/// Reconstructs normalized MIL bags from a stored bundle, exactly as
/// query-time preparation would (records hold *raw* α rows; the fixed
/// ranges in `cfg` are applied here).
pub fn bags_from_bundle(bundle: &ClipBundle, cfg: &FeatureConfig) -> Vec<Bag> {
    bundle
        .windows
        .iter()
        .map(|w| {
            let instances = w
                .sequences
                .iter()
                .map(|ts| {
                    let rows: Vec<Vec<f64>> = ts
                        .alphas
                        .iter()
                        .map(|a| {
                            Alpha {
                                inv_mdist: a[0],
                                vdiff: a[1],
                                theta: a[2],
                            }
                            .normalized(cfg)
                            .to_vec()
                        })
                        .collect();
                    Instance::new(ts.track_id, rows)
                })
                .collect();
            Bag::new(w.window_index as usize, instances)
        })
        .collect()
}

/// Archives a clip's pixel stream into the database: frames are
/// re-rendered deterministically from the simulation observations (the
/// pipeline does not keep them in memory) and stored as compressed
/// segments of `segment_len` frames. Returns the number of segments
/// written. The clip bundle must already be stored under `clip_id`.
/// The log is synced before returning, so archived video survives a
/// crash that follows the call.
pub fn archive_clip_video(
    db: &mut VideoDb,
    clip_id: u64,
    clip: &ClipArtifacts,
    codec: FrameCodec,
    segment_len: usize,
) -> Result<usize, tsvr_viddb::DbError> {
    assert!(segment_len >= 1);
    let renderer = Renderer::new(clip.kind, clip.sim.width, clip.sim.height);
    let mut segments = 0usize;
    let mut buffer: Vec<StoredFrame> = Vec::with_capacity(segment_len);
    let mut segment_start = 0u32;
    for obs in &clip.sim.frames {
        if buffer.is_empty() {
            segment_start = obs.frame;
        }
        let frame = renderer.render(&obs.vehicles, obs.frame);
        buffer.push(
            StoredFrame::new(frame.width(), frame.height(), frame.pixels().to_vec())
                .expect("renderer produces consistent dimensions"),
        );
        if buffer.len() == segment_len {
            db.put_video_segment(clip_id, segment_start, &buffer, codec)?;
            segments += 1;
            buffer.clear();
        }
    }
    if !buffer.is_empty() {
        db.put_video_segment(clip_id, segment_start, &buffer, codec)?;
        segments += 1;
    }
    // Archival is a durability point: a clip whose video the caller was
    // told is archived must survive a crash immediately afterwards.
    db.sync()?;
    Ok(segments)
}

/// Ground-truth labels for a stored bundle's windows under a query.
/// Incident kinds stored with unknown names are ignored.
pub fn labels_from_bundle(bundle: &ClipBundle, query: &EventQuery) -> Vec<bool> {
    bundle
        .windows
        .iter()
        .map(|w| {
            bundle.incidents.iter().any(|r| {
                IncidentKind::from_name(&r.kind)
                    .map(|k| query.matches(k))
                    .unwrap_or(false)
                    && r.start_frame <= w.end_frame
                    && w.start_frame <= r.end_frame
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{prepare_clip, PipelineOptions};
    use tsvr_sim::Scenario;
    use tsvr_viddb::VideoDb;

    fn meta(clip_id: u64) -> ClipMeta {
        ClipMeta {
            clip_id,
            name: "test clip".into(),
            location: "tunnel-x".into(),
            camera: "cam-1".into(),
            start_time: 1_000_000,
            frame_count: 400,
            width: 320,
            height: 240,
        }
    }

    #[test]
    fn bundle_round_trip_preserves_bags_and_labels() {
        let clip = prepare_clip(&Scenario::tunnel_small(33), &PipelineOptions::default());
        let bundle = bundle_from_clip(&clip, meta(1));

        // Store and reload through the database.
        let mut db = VideoDb::in_memory();
        db.put_clip(&bundle).unwrap();
        let loaded = db.load_clip(1).unwrap();

        let bags = bags_from_bundle(&loaded, &FeatureConfig::default());
        assert_eq!(bags, clip.bags, "bags diverge after db round trip");

        let q = EventQuery::accidents();
        let labels = labels_from_bundle(&loaded, &q);
        assert_eq!(labels, clip.labels(&q), "labels diverge after round trip");
    }

    #[test]
    fn bundle_counts_match_artifacts() {
        let clip = prepare_clip(&Scenario::tunnel_small(34), &PipelineOptions::default());
        let bundle = bundle_from_clip(&clip, meta(2));
        assert_eq!(bundle.tracks.len(), clip.vision.tracks.len());
        assert_eq!(bundle.windows.len(), clip.dataset.window_count());
        assert_eq!(bundle.incidents.len(), clip.sim.incidents.len());
        assert_eq!(bundle.meta.clip_id, 2);
    }

    #[test]
    fn unknown_incident_kinds_ignored_in_labels() {
        let clip = prepare_clip(&Scenario::tunnel_small(35), &PipelineOptions::default());
        let mut bundle = bundle_from_clip(&clip, meta(3));
        for inc in &mut bundle.incidents {
            inc.kind = "alien_abduction".into();
        }
        let labels = labels_from_bundle(&bundle, &EventQuery::accidents());
        assert!(labels.iter().all(|&l| !l));
    }

    #[test]
    fn video_archival_round_trips_pixels() {
        let mut scenario = Scenario::tunnel_small(37);
        scenario.total_frames = 60; // keep the render cost tiny
        let clip = prepare_clip(&scenario, &PipelineOptions::default());
        let mut db = VideoDb::in_memory();
        db.put_clip(&bundle_from_clip(&clip, meta(5))).unwrap();

        let codec = FrameCodec { quant_step: 8 };
        let segments = archive_clip_video(&mut db, 5, &clip, codec, 25).unwrap();
        assert_eq!(segments, 3); // 25 + 25 + 10
        assert_eq!(db.video_segment_count(), 3);

        // A retrieved 15-frame span decodes to the quantized rendering
        // (spans crossing a segment boundary included).
        let frames = db.load_frames(5, 20, 35).unwrap();
        assert_eq!(frames.len(), 15);
        assert_eq!(frames[0].0, 20);
        let renderer =
            tsvr_vision::render::Renderer::new(clip.kind, clip.sim.width, clip.sim.height);
        let obs = &clip.sim.frames[20];
        let expect = renderer.render(&obs.vehicles, obs.frame);
        let got = &frames[0].1;
        assert_eq!(got.width, expect.width());
        for (g, e) in got.pixels.iter().zip(expect.pixels()) {
            assert_eq!(*g, codec.reconstruct(*e));
        }
    }

    #[test]
    fn track_centroids_stored_with_f32_precision() {
        let clip = prepare_clip(&Scenario::tunnel_small(36), &PipelineOptions::default());
        let bundle = bundle_from_clip(&clip, meta(4));
        for (row, track) in bundle.tracks.iter().zip(&clip.vision.tracks) {
            assert_eq!(row.centroids.len(), track.points.len());
            for (c, p) in row.centroids.iter().zip(&track.points) {
                assert!((c.0 as f64 - p.centroid.x).abs() < 1e-3);
                assert!((c.1 as f64 - p.centroid.y).abs() < 1e-3);
            }
        }
    }
}
