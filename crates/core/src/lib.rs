//! # tsvr-core
//!
//! The end-to-end incident-retrieval framework (paper Fig. 6): raw video
//! (simulated + rendered) → object segmentation & tracking → trajectory
//! modeling → event features → windows/bags → interactive MIL retrieval
//! with relevance feedback — plus ingestion into, and retrieval from,
//! the `tsvr-viddb` database.
//!
//! The typical flow:
//!
//! ```
//! use tsvr_core::{prepare_clip, run_session, EventQuery, LearnerKind, PipelineOptions};
//! use tsvr_mil::SessionConfig;
//! use tsvr_sim::Scenario;
//!
//! let scenario = Scenario::tunnel_small(7);
//! let clip = prepare_clip(&scenario, &PipelineOptions::default());
//! let query = EventQuery::accidents();
//! let report = run_session(
//!     &clip,
//!     &query,
//!     LearnerKind::OcSvm { gamma: 2.0, z: 0.05 },
//!     SessionConfig { top_n: 5, feedback_rounds: 2, ..SessionConfig::default() },
//! );
//! assert_eq!(report.accuracies.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod ingest;
pub mod labels;
pub mod multiclip;
pub mod pipeline;
pub mod qlang;
pub mod query;
pub mod replay;
pub mod sketch;

pub use index::{
    build_index, config_hash, dataset_from_bundle, dataset_from_segment, load_index,
    segment_from_dataset, PIPELINE_VERSION,
};
pub use ingest::{archive_clip_video, bags_from_bundle, bundle_from_clip, labels_from_bundle};
pub use labels::label_windows;
pub use multiclip::{
    heuristic_topk, learner_topk, sharded_heuristic_topk, sharded_learner_topk, ClipWindows,
    MultiClipIndex, ShardWindows,
};
pub use pipeline::{
    bags_from_dataset, median_heuristic_gamma, prepare_clip, prepare_sim, run_session,
    ClipArtifacts, LearnerKind, PipelineOptions,
};
pub use qlang::{
    classify_tracks, nearest_names, parse as parse_query, Clause, ClassRoster, Cmp, DegradedShard,
    FeatureField, PlanError, PlanOutcome, PlanStats, Planner, Query, QueryError, Scorer,
    NOMINAL_FPS,
};
pub use query::{EventQuery, RankedWindow, TopK, UnknownEventName};
pub use replay::{continue_session, replay_session, ReplayError};
pub use sketch::SketchQuery;
