//! Cross-clip retrieval — the capability the paper names as its main
//! limitation.
//!
//! §6.2: "Ideally, all the video clips in a transportation surveillance
//! video database shall be mined and retrieved as a whole. However … it
//! requires that we normalize all the video clips taken at different
//! locations with different camera parameters." The paper retrieves
//! per clip because its features are camera-relative. This library's
//! features are normalized by *physical* ranges (see
//! `tsvr_trajectory::checkpoint::Alpha::normalized`), so windows from
//! different clips live in the same feature space and one retrieval
//! session can rank the entire database.

use crate::query::{EventQuery, RankedWindow, TopK};
use tsvr_mil::{Bag, Instance, Learner};
use tsvr_trajectory::checkpoint::{Alpha, FeatureConfig};
use tsvr_viddb::ClipBundle;

/// A unified, cross-clip bag database.
#[derive(Debug, Clone)]
pub struct MultiClipIndex {
    /// Unified bags with dense ids 0..n.
    pub bags: Vec<Bag>,
    /// Ground-truth labels aligned with `bags` for the query used to
    /// build the index.
    pub labels: Vec<bool>,
    /// For each unified bag id: the `(clip_id, window_index)` it came
    /// from.
    pub origin: Vec<(u64, u64)>,
}

impl MultiClipIndex {
    /// Builds a unified index over several stored clips.
    pub fn build(
        bundles: &[&ClipBundle],
        query: &EventQuery,
        cfg: &FeatureConfig,
    ) -> MultiClipIndex {
        let mut bags = Vec::new();
        let mut labels = Vec::new();
        let mut origin = Vec::new();
        for bundle in bundles {
            let clip_labels = crate::ingest::labels_from_bundle(bundle, query);
            for (w, label) in bundle.windows.iter().zip(clip_labels) {
                let instances = w
                    .sequences
                    .iter()
                    .map(|ts| {
                        let rows: Vec<Vec<f64>> = ts
                            .alphas
                            .iter()
                            .map(|a| {
                                Alpha {
                                    inv_mdist: a[0],
                                    vdiff: a[1],
                                    theta: a[2],
                                }
                                .normalized(cfg)
                                .to_vec()
                            })
                            .collect();
                        Instance::new(ts.track_id, rows)
                    })
                    .collect();
                let id = bags.len();
                bags.push(Bag::new(id, instances));
                labels.push(label);
                origin.push((bundle.meta.clip_id, u64::from(w.window_index)));
            }
        }
        MultiClipIndex {
            bags,
            labels,
            origin,
        }
    }

    /// Number of unified windows.
    pub fn len(&self) -> usize {
        self.bags.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.bags.is_empty()
    }

    /// Resolves a unified bag id back to its clip and window.
    pub fn resolve(&self, bag_id: usize) -> Option<(u64, u64)> {
        self.origin.get(bag_id).copied()
    }

    /// Builds a unified index from already-converted per-clip parts —
    /// the index-served path, where bags come from stored feature
    /// segments instead of a fresh extraction. Each part is
    /// `(clip_id, bags, labels)` with `bags[i]` being window `i` of
    /// that clip; bag ids are re-densified across clips.
    pub fn from_parts(parts: Vec<(u64, Vec<Bag>, Vec<bool>)>) -> MultiClipIndex {
        let mut bags = Vec::new();
        let mut labels = Vec::new();
        let mut origin = Vec::new();
        for (clip_id, clip_bags, clip_labels) in parts {
            debug_assert_eq!(clip_bags.len(), clip_labels.len());
            for (bag, label) in clip_bags.into_iter().zip(clip_labels) {
                // usize → u64 is lossless on every supported platform;
                // the old `as u32` narrowing aliased windows past 2³².
                let window_index = bag.id as u64;
                let id = bags.len();
                bags.push(Bag::new(id, bag.instances));
                labels.push(label);
                origin.push((clip_id, window_index));
            }
        }
        MultiClipIndex {
            bags,
            labels,
            origin,
        }
    }
}

/// One clip's windows as MIL bags, ready for cross-clip scoring.
/// `bags[i].id` is the window index within the clip (the
/// [`crate::pipeline::bags_from_dataset`] convention).
#[derive(Debug, Clone)]
pub struct ClipWindows {
    /// The clip the bags came from.
    pub clip_id: u64,
    /// Per-window bags in window order.
    pub bags: Vec<Bag>,
}

/// Ranks every window of every clip with the event heuristic and keeps
/// the best `k`.
///
/// Scoring fans out per window inside each clip (via
/// [`tsvr_mil::heuristic::bag_scores`]' order-preserving parallel map),
/// but the merge walks clips and windows in their given order through a
/// bounded [`TopK`] with a full tie-break — so the result is the same
/// byte sequence at any thread count.
pub fn heuristic_topk(clips: &[ClipWindows], k: usize) -> Vec<RankedWindow> {
    let _span = tsvr_obs::span!("query.multiclip");
    let mut topk = TopK::new(k);
    for clip in clips {
        for (bag, score) in clip.bags.iter().zip(tsvr_mil::heuristic::bag_scores(&clip.bags)) {
            topk.push(score, clip.clip_id, bag.id as u64);
        }
    }
    topk.into_sorted()
}

/// Like [`heuristic_topk`] but scoring with a trained learner
/// ([`Learner::score_all`], which batches/parallelizes internally with
/// the same bit-identical-to-`score` contract). Deterministic for the
/// same reason: parallel scoring is order-preserving, the top-k merge
/// is sequential and fully tie-broken.
pub fn learner_topk<L: Learner + ?Sized>(
    clips: &[ClipWindows],
    learner: &L,
    k: usize,
) -> Vec<RankedWindow> {
    let _span = tsvr_obs::span!("query.multiclip");
    let mut topk = TopK::new(k);
    for clip in clips {
        for (bag, score) in clip.bags.iter().zip(learner.score_all(&clip.bags)) {
            topk.push(score, clip.clip_id, bag.id as u64);
        }
    }
    topk.into_sorted()
}

/// One shard's worth of clips, the unit of parallel scatter-gather:
/// the query layer builds one `ShardWindows` per healthy
/// [`tsvr_viddb::ShardedDb`] shard and ranks shards concurrently.
#[derive(Debug, Clone)]
pub struct ShardWindows {
    /// Shard file name (diagnostic only; never affects ranking).
    pub shard: String,
    /// The shard's clips, each with its windows as MIL bags.
    pub clips: Vec<ClipWindows>,
}

/// Merges per-shard local top-k lists into the global top-k.
///
/// This is where the scatter-gather determinism argument lives: any
/// window in the *global* top `k` is necessarily in its own shard's
/// local top `k` (removing other shards' windows can only improve its
/// local rank), so merging locals loses nothing. And [`TopK`] is
/// insertion-order-insensitive — its tie-break covers the full window
/// identity `(score, clip_id, window_index)` — so the merge result
/// does not depend on which shard's list arrives first. Together:
/// sharded ranking is byte-identical to the single-shard path, at any
/// thread count and any partition of clips into shards.
fn merge_local_topk(locals: Vec<Vec<RankedWindow>>, k: usize) -> Vec<RankedWindow> {
    let mut topk = TopK::new(k);
    for local in locals {
        for r in local {
            topk.push(r.score, r.clip_id, r.window_index);
        }
    }
    topk.into_sorted()
}

/// Heuristic top-k over sharded clips: shards scatter across threads
/// via [`tsvr_par::par_map`] (order-preserving), each computes its
/// local top-k *sequentially* (per-window [`tsvr_mil::heuristic::bag_score`],
/// so shard-level parallelism is not nested inside bag-level
/// parallelism), and the locals gather through [`merge_local_topk`].
/// Byte-identical to [`heuristic_topk`] over the concatenated clips.
pub fn sharded_heuristic_topk(shards: &[ShardWindows], k: usize) -> Vec<RankedWindow> {
    let _span = tsvr_obs::span!("query.multiclip.sharded");
    tsvr_obs::counter!("query.scatter.shards").add(shards.len() as u64);
    let locals = tsvr_par::par_map_est(shards, shard_cost_hint_ns(shards), |_, shard| {
        let mut topk = TopK::new(k);
        for clip in &shard.clips {
            for bag in &clip.bags {
                topk.push(tsvr_mil::heuristic::bag_score(bag), clip.clip_id, bag.id as u64);
            }
        }
        topk.into_sorted()
    });
    merge_local_topk(locals, k)
}

/// Learner-scored top-k over sharded clips; same scatter-gather shape
/// and determinism argument as [`sharded_heuristic_topk`]
/// ([`Learner::score_all`] is bit-identical to per-bag
/// [`Learner::score`], which each shard applies sequentially).
/// Byte-identical to [`learner_topk`] over the concatenated clips.
pub fn sharded_learner_topk<L: Learner + Sync + ?Sized>(
    shards: &[ShardWindows],
    learner: &L,
    k: usize,
) -> Vec<RankedWindow> {
    let _span = tsvr_obs::span!("query.multiclip.sharded");
    tsvr_obs::counter!("query.scatter.shards").add(shards.len() as u64);
    let locals = tsvr_par::par_map_est(shards, shard_cost_hint_ns(shards), |_, shard| {
        let mut topk = TopK::new(k);
        for clip in &shard.clips {
            for bag in &clip.bags {
                topk.push(learner.score(bag), clip.clip_id, bag.id as u64);
            }
        }
        topk.into_sorted()
    });
    merge_local_topk(locals, k)
}

/// Estimated nanoseconds to rank one shard: the average bag count per
/// shard at a couple of microseconds per bag (score + top-k push).
/// Coarse on purpose — it only needs to keep a handful of near-empty
/// shards off the fork-join path.
fn shard_cost_hint_ns(shards: &[ShardWindows]) -> u64 {
    let bags: usize = shards
        .iter()
        .map(|s| s.clips.iter().map(|c| c.bags.len()).sum::<usize>())
        .sum();
    let avg = bags as u64 / shards.len().max(1) as u64;
    avg.saturating_mul(2_000).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::bundle_from_clip;
    use crate::pipeline::{prepare_clip, LearnerKind, PipelineOptions};
    use tsvr_mil::{GroundTruthOracle, RetrievalSession, SessionConfig};
    use tsvr_sim::Scenario;
    use tsvr_viddb::ClipMeta;

    fn meta(clip_id: u64, location: &str) -> ClipMeta {
        ClipMeta {
            clip_id,
            name: format!("clip {clip_id}"),
            location: location.into(),
            camera: format!("cam-{clip_id}"),
            start_time: clip_id * 1000,
            frame_count: 400,
            width: 320,
            height: 240,
        }
    }

    fn two_bundles() -> (ClipBundle, ClipBundle) {
        let a = prepare_clip(&Scenario::tunnel_small(11), &PipelineOptions::default());
        let b = prepare_clip(&Scenario::tunnel_small(22), &PipelineOptions::default());
        (
            bundle_from_clip(&a, meta(1, "tunnel-a")),
            bundle_from_clip(&b, meta(2, "tunnel-b")),
        )
    }

    #[test]
    fn unified_index_covers_both_clips() {
        let (a, b) = two_bundles();
        let idx = MultiClipIndex::build(
            &[&a, &b],
            &EventQuery::accidents(),
            &FeatureConfig::default(),
        );
        assert_eq!(idx.len(), a.windows.len() + b.windows.len());
        assert_eq!(idx.labels.len(), idx.len());
        // Bag ids are dense and origin resolves to both clips.
        let clips: std::collections::HashSet<u64> = idx.origin.iter().map(|&(c, _)| c).collect();
        assert_eq!(clips.len(), 2);
        for (i, bag) in idx.bags.iter().enumerate() {
            assert_eq!(bag.id, i);
        }
        assert!(idx.resolve(0).is_some());
        assert!(idx.resolve(idx.len()).is_none());
    }

    #[test]
    fn relevant_windows_from_both_clips_exist() {
        let (a, b) = two_bundles();
        let idx = MultiClipIndex::build(
            &[&a, &b],
            &EventQuery::accidents(),
            &FeatureConfig::default(),
        );
        // Each tunnel_small clip scripts accidents; the unified labels
        // must contain relevant windows attributed to both clips.
        let relevant_clips: std::collections::HashSet<u64> = idx
            .labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l)
            .map(|(i, _)| idx.origin[i].0)
            .collect();
        assert_eq!(relevant_clips.len(), 2, "accidents from both clips");
    }

    #[test]
    fn one_session_retrieves_across_clips() {
        let (a, b) = two_bundles();
        let idx = MultiClipIndex::build(
            &[&a, &b],
            &EventQuery::accidents(),
            &FeatureConfig::default(),
        );
        let oracle = GroundTruthOracle::new(idx.labels.clone());
        let cfg = SessionConfig {
            top_n: 10,
            feedback_rounds: 3,
            ..SessionConfig::default()
        };
        let (report, _) = RetrievalSession::new(
            &idx.bags,
            LearnerKind::paper_ocsvm().build_for(&idx.bags),
            &oracle,
            cfg,
        )
        .run();
        // The final page draws results from more than one camera.
        let final_page: Vec<u64> = report
            .rankings
            .last()
            .unwrap()
            .iter()
            .take(10)
            .map(|&bag| idx.resolve(bag).unwrap().0)
            .collect();
        let distinct: std::collections::HashSet<u64> = final_page.iter().copied().collect();
        assert!(
            distinct.len() >= 2,
            "cross-clip session retrieved from one camera only: {final_page:?}"
        );
        // And retrieval quality beats the base rate.
        let base = idx.labels.iter().filter(|&&l| l).count() as f64 / idx.len() as f64;
        assert!(*report.accuracies.last().unwrap() > base);
    }

    #[test]
    fn empty_input_gives_empty_index() {
        let idx = MultiClipIndex::build(&[], &EventQuery::accidents(), &FeatureConfig::default());
        assert!(idx.is_empty());
    }

    fn two_clip_windows() -> Vec<ClipWindows> {
        let a = prepare_clip(&Scenario::tunnel_small(11), &PipelineOptions::default());
        let b = prepare_clip(&Scenario::tunnel_small(22), &PipelineOptions::default());
        vec![
            ClipWindows {
                clip_id: 1,
                bags: a.bags,
            },
            ClipWindows {
                clip_id: 2,
                bags: b.bags,
            },
        ]
    }

    #[test]
    fn heuristic_topk_ranks_across_clips() {
        let clips = two_clip_windows();
        let total: usize = clips.iter().map(|c| c.bags.len()).sum();
        let k = 8.min(total);
        let top = heuristic_topk(&clips, k);
        assert_eq!(top.len(), k);
        // Best-first, fully ordered.
        for pair in top.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
        // Scores agree with scoring the bag directly.
        for r in &top {
            let clip = clips.iter().find(|c| c.clip_id == r.clip_id).unwrap();
            let bag = clip
                .bags
                .iter()
                .find(|b| b.id as u64 == r.window_index)
                .unwrap();
            assert_eq!(r.score.to_bits(), tsvr_mil::heuristic::bag_score(bag).to_bits());
        }
    }

    #[test]
    fn learner_topk_matches_learner_scores() {
        let clips = two_clip_windows();
        let all_bags: Vec<tsvr_mil::Bag> = clips.iter().flat_map(|c| c.bags.clone()).collect();
        let learner = LearnerKind::paper_weighted_rf().build_for(&all_bags);
        let top = learner_topk(&clips, &learner, 5);
        assert_eq!(top.len(), 5);
        for r in &top {
            let clip = clips.iter().find(|c| c.clip_id == r.clip_id).unwrap();
            let bag = clip
                .bags
                .iter()
                .find(|b| b.id as u64 == r.window_index)
                .unwrap();
            assert_eq!(r.score.to_bits(), learner.score(bag).to_bits());
        }
    }

    /// Byte-level equality of two rankings.
    fn assert_rankings_identical(a: &[RankedWindow], b: &[RankedWindow]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.score.to_bits(), y.score.to_bits());
            assert_eq!((x.clip_id, x.window_index), (y.clip_id, y.window_index));
        }
    }

    /// Every way to split the clips into shards must give the same
    /// bytes as the unsharded path, at one thread and at many.
    #[test]
    fn sharded_topk_byte_identical_to_single_shard_at_any_thread_count() {
        let clips = two_clip_windows();
        let k = 8;
        let flat_h = heuristic_topk(&clips, k);
        let all_bags: Vec<tsvr_mil::Bag> = clips.iter().flat_map(|c| c.bags.clone()).collect();
        let learner = LearnerKind::paper_weighted_rf().build_for(&all_bags);
        let flat_l = learner_topk(&clips, &learner, k);

        let partitions: Vec<Vec<ShardWindows>> = vec![
            // One shard holding everything (the degenerate case).
            vec![ShardWindows { shard: "s0".into(), clips: clips.clone() }],
            // One clip per shard.
            clips
                .iter()
                .map(|c| ShardWindows { shard: format!("s{}", c.clip_id), clips: vec![c.clone()] })
                .collect(),
            // Reversed shard order — merge must not care.
            clips
                .iter()
                .rev()
                .map(|c| ShardWindows { shard: format!("s{}", c.clip_id), clips: vec![c.clone()] })
                .collect(),
            // An empty shard mixed in.
            vec![
                ShardWindows { shard: "empty".into(), clips: vec![] },
                ShardWindows { shard: "all".into(), clips: clips.clone() },
            ],
        ];
        let saved = tsvr_par::current_threads();
        for threads in [1, 4] {
            tsvr_par::set_threads(threads);
            for shards in &partitions {
                assert_rankings_identical(&sharded_heuristic_topk(shards, k), &flat_h);
                assert_rankings_identical(&sharded_learner_topk(shards, &learner, k), &flat_l);
            }
        }
        tsvr_par::set_threads(saved);
    }

    #[test]
    fn sharded_topk_of_nothing_is_empty() {
        assert!(sharded_heuristic_topk(&[], 5).is_empty());
        let shards = [ShardWindows { shard: "empty".into(), clips: vec![] }];
        assert!(sharded_heuristic_topk(&shards, 5).is_empty());
    }

    #[test]
    fn from_parts_matches_build() {
        let (a, b) = two_bundles();
        let query = EventQuery::accidents();
        let cfg = FeatureConfig::default();
        let built = MultiClipIndex::build(&[&a, &b], &query, &cfg);
        let parts = [&a, &b]
            .iter()
            .map(|bundle| {
                (
                    bundle.meta.clip_id,
                    crate::ingest::bags_from_bundle(bundle, &cfg),
                    crate::ingest::labels_from_bundle(bundle, &query),
                )
            })
            .collect();
        let assembled = MultiClipIndex::from_parts(parts);
        assert_eq!(assembled.bags, built.bags);
        assert_eq!(assembled.labels, built.labels);
        assert_eq!(assembled.origin, built.origin);
    }
}
