//! Cross-clip retrieval — the capability the paper names as its main
//! limitation.
//!
//! §6.2: "Ideally, all the video clips in a transportation surveillance
//! video database shall be mined and retrieved as a whole. However … it
//! requires that we normalize all the video clips taken at different
//! locations with different camera parameters." The paper retrieves
//! per clip because its features are camera-relative. This library's
//! features are normalized by *physical* ranges (see
//! `tsvr_trajectory::checkpoint::Alpha::normalized`), so windows from
//! different clips live in the same feature space and one retrieval
//! session can rank the entire database.

use crate::query::EventQuery;
use tsvr_mil::{Bag, Instance};
use tsvr_trajectory::checkpoint::{Alpha, FeatureConfig};
use tsvr_viddb::ClipBundle;

/// A unified, cross-clip bag database.
#[derive(Debug, Clone)]
pub struct MultiClipIndex {
    /// Unified bags with dense ids 0..n.
    pub bags: Vec<Bag>,
    /// Ground-truth labels aligned with `bags` for the query used to
    /// build the index.
    pub labels: Vec<bool>,
    /// For each unified bag id: the `(clip_id, window_index)` it came
    /// from.
    pub origin: Vec<(u64, u32)>,
}

impl MultiClipIndex {
    /// Builds a unified index over several stored clips.
    pub fn build(
        bundles: &[&ClipBundle],
        query: &EventQuery,
        cfg: &FeatureConfig,
    ) -> MultiClipIndex {
        let mut bags = Vec::new();
        let mut labels = Vec::new();
        let mut origin = Vec::new();
        for bundle in bundles {
            let clip_labels = crate::ingest::labels_from_bundle(bundle, query);
            for (w, label) in bundle.windows.iter().zip(clip_labels) {
                let instances = w
                    .sequences
                    .iter()
                    .map(|ts| {
                        let rows: Vec<Vec<f64>> = ts
                            .alphas
                            .iter()
                            .map(|a| {
                                Alpha {
                                    inv_mdist: a[0],
                                    vdiff: a[1],
                                    theta: a[2],
                                }
                                .normalized(cfg)
                                .to_vec()
                            })
                            .collect();
                        Instance::new(ts.track_id, rows)
                    })
                    .collect();
                let id = bags.len();
                bags.push(Bag::new(id, instances));
                labels.push(label);
                origin.push((bundle.meta.clip_id, w.window_index));
            }
        }
        MultiClipIndex {
            bags,
            labels,
            origin,
        }
    }

    /// Number of unified windows.
    pub fn len(&self) -> usize {
        self.bags.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.bags.is_empty()
    }

    /// Resolves a unified bag id back to its clip and window.
    pub fn resolve(&self, bag_id: usize) -> Option<(u64, u32)> {
        self.origin.get(bag_id).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::bundle_from_clip;
    use crate::pipeline::{prepare_clip, LearnerKind, PipelineOptions};
    use tsvr_mil::{GroundTruthOracle, RetrievalSession, SessionConfig};
    use tsvr_sim::Scenario;
    use tsvr_viddb::ClipMeta;

    fn meta(clip_id: u64, location: &str) -> ClipMeta {
        ClipMeta {
            clip_id,
            name: format!("clip {clip_id}"),
            location: location.into(),
            camera: format!("cam-{clip_id}"),
            start_time: clip_id * 1000,
            frame_count: 400,
            width: 320,
            height: 240,
        }
    }

    fn two_bundles() -> (ClipBundle, ClipBundle) {
        let a = prepare_clip(&Scenario::tunnel_small(11), &PipelineOptions::default());
        let b = prepare_clip(&Scenario::tunnel_small(22), &PipelineOptions::default());
        (
            bundle_from_clip(&a, meta(1, "tunnel-a")),
            bundle_from_clip(&b, meta(2, "tunnel-b")),
        )
    }

    #[test]
    fn unified_index_covers_both_clips() {
        let (a, b) = two_bundles();
        let idx = MultiClipIndex::build(
            &[&a, &b],
            &EventQuery::accidents(),
            &FeatureConfig::default(),
        );
        assert_eq!(idx.len(), a.windows.len() + b.windows.len());
        assert_eq!(idx.labels.len(), idx.len());
        // Bag ids are dense and origin resolves to both clips.
        let clips: std::collections::HashSet<u64> = idx.origin.iter().map(|&(c, _)| c).collect();
        assert_eq!(clips.len(), 2);
        for (i, bag) in idx.bags.iter().enumerate() {
            assert_eq!(bag.id, i);
        }
        assert!(idx.resolve(0).is_some());
        assert!(idx.resolve(idx.len()).is_none());
    }

    #[test]
    fn relevant_windows_from_both_clips_exist() {
        let (a, b) = two_bundles();
        let idx = MultiClipIndex::build(
            &[&a, &b],
            &EventQuery::accidents(),
            &FeatureConfig::default(),
        );
        // Each tunnel_small clip scripts accidents; the unified labels
        // must contain relevant windows attributed to both clips.
        let relevant_clips: std::collections::HashSet<u64> = idx
            .labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l)
            .map(|(i, _)| idx.origin[i].0)
            .collect();
        assert_eq!(relevant_clips.len(), 2, "accidents from both clips");
    }

    #[test]
    fn one_session_retrieves_across_clips() {
        let (a, b) = two_bundles();
        let idx = MultiClipIndex::build(
            &[&a, &b],
            &EventQuery::accidents(),
            &FeatureConfig::default(),
        );
        let oracle = GroundTruthOracle::new(idx.labels.clone());
        let cfg = SessionConfig {
            top_n: 10,
            feedback_rounds: 3,
            ..SessionConfig::default()
        };
        let (report, _) = RetrievalSession::new(
            &idx.bags,
            LearnerKind::paper_ocsvm().build_for(&idx.bags),
            &oracle,
            cfg,
        )
        .run();
        // The final page draws results from more than one camera.
        let final_page: Vec<u64> = report
            .rankings
            .last()
            .unwrap()
            .iter()
            .take(10)
            .map(|&bag| idx.resolve(bag).unwrap().0)
            .collect();
        let distinct: std::collections::HashSet<u64> = final_page.iter().copied().collect();
        assert!(
            distinct.len() >= 2,
            "cross-clip session retrieved from one camera only: {final_page:?}"
        );
        // And retrieval quality beats the base rate.
        let base = idx.labels.iter().filter(|&&l| l).count() as f64 / idx.len() as f64;
        assert!(*report.accuracies.last().unwrap() > base);
    }

    #[test]
    fn empty_input_gives_empty_index() {
        let idx = MultiClipIndex::build(&[], &EventQuery::accidents(), &FeatureConfig::default());
        assert!(idx.is_empty());
    }
}
