//! End-to-end clip preparation and retrieval sessions.

use crate::labels::label_windows;
use crate::query::EventQuery;
use tsvr_mil::dd::{DiverseDensityLearner, EmDdLearner};
use tsvr_mil::MiSvmLearner;
use tsvr_mil::{
    Bag, GroundTruthOracle, Instance, Learner, Normalization, OcSvmMilLearner, RetrievalSession,
    SessionConfig, SessionReport, WeightedRfLearner,
};
use tsvr_sim::world::SimOutput;
use tsvr_sim::{Scenario, ScenarioKind, World};
use tsvr_svm::Kernel;
use tsvr_trajectory::{Dataset, WindowConfig};
use tsvr_vision::{PipelineConfig, VisionOutput};

/// Options for the clip-preparation pipeline.
#[derive(Debug, Clone, Default)]
pub struct PipelineOptions {
    /// Vision (render/segment/track) parameters.
    pub vision: PipelineConfig,
    /// Window/feature extraction parameters.
    pub window: WindowConfig,
}

/// Everything derived from one clip, ready for retrieval sessions.
#[derive(Debug, Clone)]
pub struct ClipArtifacts {
    /// Scene layout the clip was produced from.
    pub kind: ScenarioKind,
    /// Simulator output (frames + ground-truth incidents).
    pub sim: SimOutput,
    /// Vision output (tracked trajectories).
    pub vision: VisionOutput,
    /// Extracted windows and trajectory sequences.
    pub dataset: Dataset,
    /// MIL bags with fixed-range-normalized feature rows.
    pub bags: Vec<Bag>,
}

impl ClipArtifacts {
    /// Ground-truth bag labels for a query.
    pub fn labels(&self, query: &EventQuery) -> Vec<bool> {
        label_windows(&self.dataset, &self.sim.incidents, query)
    }
}

/// Runs simulation → rendering → segmentation/tracking → feature
/// extraction → bag construction for one scenario.
pub fn prepare_clip(scenario: &Scenario, opts: &PipelineOptions) -> ClipArtifacts {
    let _span = tsvr_obs::tspan!("core.prepare_clip");
    prepare_sim(World::run(scenario.clone()), scenario.kind, opts)
}

/// Runs the downstream half of [`prepare_clip`] on an already-simulated
/// recording: rendering → segmentation/tracking → feature extraction →
/// bag construction. This is the entry point for recordings that are
/// not one whole `World::run` output — e.g. the per-camera halves of a
/// multi-camera handoff split ([`tsvr_sim::SimOutput::split_at`]).
pub fn prepare_sim(sim: SimOutput, kind: ScenarioKind, opts: &PipelineOptions) -> ClipArtifacts {
    let _span = tsvr_obs::tspan!("core.prepare_sim");
    let vision = tsvr_vision::pipeline::process(&sim, kind, &opts.vision);
    let dataset = Dataset::build(&vision.tracks, opts.window);
    let bags = bags_from_dataset(&dataset);
    ClipArtifacts {
        kind,
        sim,
        vision,
        dataset,
        bags,
    }
}

/// Converts a dataset into MIL bags with fixed-range-normalized rows
/// (see [`tsvr_trajectory::checkpoint::Alpha::normalized`]). Windows
/// are independent, so the conversion fans out per window on the
/// [`tsvr_par`] runtime (order-preserving: `bags[i]` is window `i`).
pub fn bags_from_dataset(dataset: &Dataset) -> Vec<Bag> {
    let cfg = dataset.config.features;
    tsvr_par::par_map(&dataset.windows, |_, w| {
        let instances = w
            .sequences
            .iter()
            .map(|ts| {
                let rows: Vec<Vec<f64>> = ts
                    .alphas
                    .iter()
                    .map(|a| a.normalized(&cfg).to_vec())
                    .collect();
                Instance::new(ts.track_id, rows)
            })
            .collect();
        Bag::new(w.index, instances)
    })
}

/// RBF width from the database-level median heuristic:
/// `γ = ln 2 / median(‖u − v‖²)` over every trajectory-sequence feature
/// vector in the bag database, so the kernel evaluates to ½ at the
/// typical inter-vector distance. Unsupervised — it needs no feedback —
/// and per-clip, which matters because feature spreads differ strongly
/// between scenes (sparse tunnel vs. queueing intersection). Distances
/// are subsampled above 400 vectors to bound the O(n²) scan.
pub fn median_heuristic_gamma(bags: &[Bag]) -> f64 {
    const FALLBACK: f64 = 2.0;
    let vecs: Vec<Vec<f64>> = bags
        .iter()
        .flat_map(|b| b.instances.iter().map(|i| i.concat()))
        .collect();
    if vecs.len() < 2 {
        return FALLBACK;
    }
    // Deterministic stride subsampling.
    let stride = vecs.len().div_ceil(400);
    let sample: Vec<&Vec<f64>> = vecs.iter().step_by(stride).collect();
    // One task per anchor row of the upper-triangle distance scan; rows
    // are flattened back in anchor order, so `dists` holds exactly the
    // sequence the sequential double loop pushed. The cost hint — an
    // average row touches half the sample at a few ns per dimension —
    // keeps tiny clips sequential.
    let dim = sample[0].len().max(1) as u64;
    let est = (sample.len() as u64 / 2).saturating_mul(dim).max(1);
    let mut dists: Vec<f64> = tsvr_par::par_map_index_est(sample.len(), est, |i| {
        let a = sample[i];
        sample[i + 1..]
            .iter()
            .map(|b| tsvr_linalg::vecops::sq_dist(a, b))
            .filter(|&d| d > 1e-12)
            .collect::<Vec<f64>>()
    })
    .into_iter()
    .flatten()
    .collect();
    if dists.is_empty() {
        return FALLBACK;
    }
    dists.sort_by(|a, b| a.total_cmp(b));
    let median = dists[dists.len() / 2];
    // K = 1/16 at the median distance: narrow enough that the learned
    // region hugs the (heterogeneous) relevant signatures instead of
    // averaging them into the quiet-traffic cluster.
    4.0 * (2.0f64).ln() / median
}

/// Learner selection for an experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LearnerKind {
    /// The paper's method: One-class SVM MIL (RBF kernel) with the
    /// kernel width resolved per clip by [`median_heuristic_gamma`].
    OcSvmAuto {
        /// Eq. 9's `z`.
        z: f64,
    },
    /// One-class SVM MIL with a fixed RBF width (for ablations).
    OcSvm {
        /// RBF γ.
        gamma: f64,
        /// Eq. 9's `z`.
        z: f64,
    },
    /// The weighted relevance-feedback baseline.
    WeightedRf(Normalization),
    /// Diverse Density reference baseline.
    DiverseDensity {
        /// Distance scale.
        scale: f64,
    },
    /// EM-DD reference baseline.
    EmDd {
        /// Distance scale.
        scale: f64,
    },
    /// MI-SVM baseline (Andrews et al. \[16\]); the RBF width is resolved
    /// per clip like the one-class learner's.
    MiSvm {
        /// Soft-margin penalty.
        c: f64,
    },
}

impl LearnerKind {
    /// The paper's configuration (RBF kernel, z = 0.05, per-clip width).
    pub fn paper_ocsvm() -> LearnerKind {
        LearnerKind::OcSvmAuto { z: 0.05 }
    }

    /// The paper's best baseline configuration (percentage weights).
    pub fn paper_weighted_rf() -> LearnerKind {
        LearnerKind::WeightedRf(Normalization::Percentage)
    }

    /// The [`Learner::name`] the built learner will report, resolved
    /// without building (building an auto-width learner costs a full
    /// median-heuristic pass). Persisted [`SessionRow`](tsvr_viddb::SessionRow)s
    /// store this name, so it is also the replay-compatibility key.
    pub fn learner_name(self) -> &'static str {
        match self {
            LearnerKind::OcSvmAuto { .. } | LearnerKind::OcSvm { .. } => "MIL_OneClassSVM",
            LearnerKind::WeightedRf(Normalization::None) => "Weighted_RF_raw",
            LearnerKind::WeightedRf(Normalization::Linear) => "Weighted_RF_linear",
            LearnerKind::WeightedRf(Normalization::Percentage) => "Weighted_RF",
            LearnerKind::DiverseDensity { .. } => "DiverseDensity",
            LearnerKind::EmDd { .. } => "EM-DD",
            LearnerKind::MiSvm { .. } => "MI-SVM",
        }
    }

    /// The paper-default configuration whose learner reports `name` —
    /// the inverse of [`LearnerKind::learner_name`], used to rebuild a
    /// session from its persisted row without the caller guessing the
    /// kind. `None` for names no shipped learner reports.
    pub fn from_learner_name(name: &str) -> Option<LearnerKind> {
        Some(match name {
            "MIL_OneClassSVM" => LearnerKind::paper_ocsvm(),
            "Weighted_RF_raw" => LearnerKind::WeightedRf(Normalization::None),
            "Weighted_RF_linear" => LearnerKind::WeightedRf(Normalization::Linear),
            "Weighted_RF" => LearnerKind::WeightedRf(Normalization::Percentage),
            "DiverseDensity" => LearnerKind::DiverseDensity { scale: 8.0 },
            "EM-DD" => LearnerKind::EmDd { scale: 8.0 },
            "MI-SVM" => LearnerKind::MiSvm { c: 10.0 },
            _ => return None,
        })
    }

    /// Instantiates the learner for a given bag database (needed to
    /// resolve the auto kernel width).
    pub fn build_for(self, bags: &[Bag]) -> Box<dyn Learner> {
        match self {
            LearnerKind::OcSvmAuto { z } => {
                let gamma = median_heuristic_gamma(bags);
                Box::new(OcSvmMilLearner::new(Kernel::Rbf { gamma }).with_z(z))
            }
            LearnerKind::OcSvm { gamma, z } => {
                Box::new(OcSvmMilLearner::new(Kernel::Rbf { gamma }).with_z(z))
            }
            LearnerKind::WeightedRf(n) => Box::new(WeightedRfLearner::new(n)),
            LearnerKind::DiverseDensity { scale } => Box::new(DiverseDensityLearner::new(scale)),
            LearnerKind::EmDd { scale } => Box::new(EmDdLearner::new(scale)),
            LearnerKind::MiSvm { c } => {
                let gamma = median_heuristic_gamma(bags);
                Box::new(MiSvmLearner::new(Kernel::Rbf { gamma }, c))
            }
        }
    }
}

/// Runs one interactive retrieval session over a prepared clip.
pub fn run_session(
    clip: &ClipArtifacts,
    query: &EventQuery,
    learner: LearnerKind,
    config: SessionConfig,
) -> SessionReport {
    let _span = tsvr_obs::tspan!("core.run_session");
    let oracle = GroundTruthOracle::new(clip.labels(query));
    let (report, _) =
        RetrievalSession::new(&clip.bags, learner.build_for(&clip.bags), &oracle, config).run();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_clip() -> ClipArtifacts {
        prepare_clip(&Scenario::tunnel_small(31), &PipelineOptions::default())
    }

    #[test]
    fn prepare_clip_produces_consistent_artifacts() {
        let clip = small_clip();
        assert_eq!(clip.bags.len(), clip.dataset.window_count());
        assert!(clip.dataset.sequence_count() > 0, "no trajectory sequences");
        // Bag rows are normalized into [0,1].
        for bag in &clip.bags {
            for inst in &bag.instances {
                for row in &inst.points {
                    assert_eq!(row.len(), 3);
                    for &v in row {
                        assert!((0.0..=1.0).contains(&v), "unnormalized value {v}");
                    }
                }
            }
        }
    }

    #[test]
    fn accident_labels_exist_for_incident_clip() {
        let clip = small_clip();
        let labels = clip.labels(&EventQuery::accidents());
        assert_eq!(labels.len(), clip.bags.len());
        let relevant = labels.iter().filter(|&&l| l).count();
        assert!(
            relevant > 0,
            "no relevant windows despite scripted accidents"
        );
        assert!(relevant < labels.len(), "everything relevant");
    }

    #[test]
    fn ocsvm_session_runs_end_to_end() {
        let clip = small_clip();
        let report = run_session(
            &clip,
            &EventQuery::accidents(),
            LearnerKind::paper_ocsvm(),
            SessionConfig {
                top_n: 5,
                feedback_rounds: 2,
                ..SessionConfig::default()
            },
        );
        assert_eq!(report.accuracies.len(), 3);
        assert_eq!(report.learner, "MIL_OneClassSVM");
        for &a in &report.accuracies {
            assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn all_learner_kinds_run() {
        let clip = small_clip();
        let cfg = SessionConfig {
            top_n: 5,
            feedback_rounds: 1,
            ..SessionConfig::default()
        };
        for kind in [
            LearnerKind::paper_ocsvm(),
            LearnerKind::paper_weighted_rf(),
            LearnerKind::WeightedRf(Normalization::None),
            LearnerKind::WeightedRf(Normalization::Linear),
            LearnerKind::DiverseDensity { scale: 4.0 },
            LearnerKind::EmDd { scale: 4.0 },
        ] {
            let report = run_session(&clip, &EventQuery::accidents(), kind, cfg);
            assert_eq!(report.accuracies.len(), 2, "{:?}", kind);
        }
    }

    #[test]
    fn learner_names_round_trip_through_kinds() {
        let clip = small_clip();
        for kind in [
            LearnerKind::paper_ocsvm(),
            LearnerKind::paper_weighted_rf(),
            LearnerKind::WeightedRf(Normalization::None),
            LearnerKind::WeightedRf(Normalization::Linear),
            LearnerKind::DiverseDensity { scale: 8.0 },
            LearnerKind::EmDd { scale: 8.0 },
            LearnerKind::MiSvm { c: 10.0 },
        ] {
            // The unbuild name matches what the built learner reports…
            assert_eq!(kind.learner_name(), kind.build_for(&clip.bags).name());
            // …and maps back to a kind reporting the same name.
            let back = LearnerKind::from_learner_name(kind.learner_name()).unwrap();
            assert_eq!(back.learner_name(), kind.learner_name());
        }
        assert!(LearnerKind::from_learner_name("NotALearner").is_none());
    }

    #[test]
    fn preparation_is_deterministic() {
        let a = small_clip();
        let b = small_clip();
        assert_eq!(a.bags, b.bags);
        assert_eq!(a.sim.incidents, b.sim.incidents);
    }
}
