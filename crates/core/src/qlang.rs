//! Attribute + motion query language with a shard-pruning progressive
//! planner.
//!
//! The paper only supports query-by-example with relevance feedback,
//! but real operators ask *"pickup, sudden stop, camera 4, 2–3 pm"*.
//! Following the attribute-retrieval line of work (Castañón et al.;
//! PVSS's coarse-to-fine vehicle search), this module compiles such a
//! description into progressively cheaper filters so serving cost
//! scales with query *selectivity*, not archive size:
//!
//! 1. **Shard pruning** — camera and absolute-time predicates eliminate
//!    whole `(camera, bucket)` shards using only the
//!    [`tsvr_viddb::ShardedDb`] manifest routes (plus per-clip metadata
//!    stubs already in memory), before any stored index or bundle
//!    record is read. Clips straddling a bucket boundary are handled
//!    exactly: a clip routes by its *start* bucket but is kept for any
//!    query window its real `[start, end]` span overlaps.
//! 2. **Window pre-filtering** — α-feature, class, event and time
//!    predicates are evaluated per window against the stored TSIX index
//!    rows (flat raw-α values) or, when no fresh index exists, the
//!    archived bundle rows. Zero vision work in either case.
//! 3. **MIL ranking over survivors only** — the surviving windows are
//!    grouped per shard and ranked through the same
//!    [`crate::multiclip::sharded_heuristic_topk`] /
//!    [`crate::multiclip::sharded_learner_topk`] scatter-gather as an
//!    unplanned scan, so the planned ranking is *byte-identical* to a
//!    full scan post-filtered by the same predicates, at any thread
//!    count.
//!
//! The grammar is a conjunction of clauses joined by `and` (or the
//! single keyword `all` for the unfiltered query):
//!
//! ```text
//! query   := "all" | clause ( "and" clause )*
//! clause  := "event"  "=" name                  // incident composite
//!          | "class"  "=" name                  // PCA vehicle class
//!          | "camera" "=" name
//!          | "camera" "in" "(" name, ... ")"
//!          | "time"   "in" "[" int "," int "]"  // epoch seconds
//!          | "time"   cmp int
//!          | field    cmp number                // raw α predicates
//!          | field    "in" "[" number "," number "]"
//! field   := "vdiff" | "theta" | "inv_mdist"    // + aliases
//! cmp     := "<" | "<=" | ">" | ">="
//! ```
//!
//! Parsing never panics: every failure is a typed [`QueryError`], and
//! unknown event/class/clause names carry "did-you-mean" suggestions.

use crate::index::{config_hash, dataset_from_segment};
use crate::ingest::bags_from_bundle;
use crate::multiclip::{sharded_heuristic_topk, sharded_learner_topk, ClipWindows, ShardWindows};
use crate::pipeline::bags_from_dataset;
use crate::query::{EventQuery, RankedWindow, UnknownEventName};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use tsvr_mil::Learner;
use tsvr_sim::VehicleClass;
use tsvr_trajectory::WindowConfig;
use tsvr_viddb::{AnyDb, ClipStub, DbError, RouteStatus, ShardRoute};
use tsvr_vision::pca::PcaClassifier;
use tsvr_vision::tracker::{BlobStats, Track};

/// Nominal capture rate used *only* to convert frame offsets to
/// seconds for absolute-time predicates (`ClipMeta.start_time` is in
/// seconds; frames carry no wall-clock of their own anywhere in the
/// pipeline). 25 fps is the PAL surveillance default. The conversion
/// rounds clip/window *ends* up, so a time filter can only keep more
/// than the true span, never drop a window it should have kept.
pub const NOMINAL_FPS: u64 = 25;

/// End of a clip or window span in epoch seconds: `start_time` plus
/// `frames` at [`NOMINAL_FPS`], rounded up.
pub fn frames_end_time(start_time: u64, frames: u64) -> u64 {
    start_time.saturating_add(frames.div_ceil(NOMINAL_FPS))
}

// ---------------------------------------------------------------------
// Did-you-mean machinery (shared with `EventQuery::from_name`).
// ---------------------------------------------------------------------

/// Levenshtein edit distance, O(|a|·|b|) with one rolling row.
pub(crate) fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// The candidates nearest to `given` by edit distance — at most three,
/// closest first, and only those within a distance that plausibly means
/// a typo (≤ 2, or a third of the name's length for long names).
pub fn nearest_names(given: &str, candidates: &[&'static str]) -> Vec<&'static str> {
    let cutoff = 2.max(given.chars().count() / 3);
    let mut scored: Vec<(usize, &'static str)> = candidates
        .iter()
        .map(|&c| (edit_distance(given, c), c))
        .filter(|&(d, _)| d <= cutoff)
        .collect();
    scored.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(b.1)));
    scored.into_iter().take(3).map(|(_, c)| c).collect()
}

// ---------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------

/// A raw-α feature referenced by a range predicate. Values are the
/// *stored* (unnormalized) α components, exactly as TSIX rows hold
/// them — so the same literal thresholds apply to index-served and
/// bundle-served clips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureField {
    /// `inv_mdist` (alias `proximity`): inverse distance to the nearest
    /// neighboring vehicle, 1/px.
    InvMdist,
    /// `vdiff` (aliases `speed_change`, `speed`): absolute speed change
    /// at a checkpoint, px/frame.
    Vdiff,
    /// `theta` (alias `heading`): absolute heading change, radians.
    Theta,
}

impl FeatureField {
    /// Canonical (display) name.
    pub fn name(self) -> &'static str {
        match self {
            FeatureField::InvMdist => "inv_mdist",
            FeatureField::Vdiff => "vdiff",
            FeatureField::Theta => "theta",
        }
    }

    /// Index of the field within an α triple `[inv_mdist, vdiff, theta]`.
    fn lane(self) -> usize {
        match self {
            FeatureField::InvMdist => 0,
            FeatureField::Vdiff => 1,
            FeatureField::Theta => 2,
        }
    }

    fn from_name(name: &str) -> Option<FeatureField> {
        match name {
            "inv_mdist" | "proximity" => Some(FeatureField::InvMdist),
            "vdiff" | "speed_change" | "speed" => Some(FeatureField::Vdiff),
            "theta" | "heading" => Some(FeatureField::Theta),
            _ => None,
        }
    }
}

/// A comparison operator in a range predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Cmp {
    fn as_str(self) -> &'static str {
        match self {
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
        }
    }

    fn eval(self, v: f64, x: f64) -> bool {
        match self {
            Cmp::Lt => v < x,
            Cmp::Le => v <= x,
            Cmp::Gt => v > x,
            Cmp::Ge => v >= x,
        }
    }
}

/// One conjunct of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    /// `event = accident` — windows overlapping a stored incident of a
    /// matching kind.
    Event(EventQuery),
    /// `class = pickup` — windows containing a track of this vehicle
    /// class (resolved through a [`ClassRoster`]).
    Class(VehicleClass),
    /// `camera = cam-1` / `camera in (cam-1, cam-2)` — clips from these
    /// cameras only.
    Cameras(Vec<String>),
    /// `time in [a, b]` / `time >= a` / `time <= b` — absolute capture
    /// time (epoch seconds), inclusive. `None` means unbounded on that
    /// side; `time < / >` parse as the equivalent inclusive bound.
    Time {
        /// Earliest admitted second, if bounded.
        from: Option<u64>,
        /// Latest admitted second, if bounded.
        to: Option<u64>,
    },
    /// `vdiff >= 3.5` — some α row of the window satisfies the
    /// comparison on this field.
    Feature {
        /// Which α component.
        field: FeatureField,
        /// The comparison.
        op: Cmp,
        /// The literal threshold.
        value: f64,
    },
    /// `theta in [0.5, 1.5]` — some α row falls inside the inclusive
    /// interval on this field.
    FeatureIn {
        /// Which α component.
        field: FeatureField,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Clause::Event(q) => write!(f, "event = {}", q.name),
            Clause::Class(c) => write!(f, "class = {}", c.name()),
            Clause::Cameras(cams) => {
                if cams.len() == 1 {
                    write!(f, "camera = {}", cams[0])
                } else {
                    write!(f, "camera in ({})", cams.join(", "))
                }
            }
            Clause::Time {
                from: Some(a),
                to: Some(b),
            } => write!(f, "time in [{a}, {b}]"),
            Clause::Time {
                from: Some(a),
                to: None,
            } => write!(f, "time >= {a}"),
            Clause::Time {
                from: None,
                to: Some(b),
            } => write!(f, "time <= {b}"),
            Clause::Time {
                from: None,
                to: None,
            } => write!(f, "time >= 0"),
            Clause::Feature { field, op, value } => {
                write!(f, "{} {} {}", field.name(), op.as_str(), value)
            }
            Clause::FeatureIn { field, lo, hi } => {
                write!(f, "{} in [{}, {}]", field.name(), lo, hi)
            }
        }
    }
}

/// A parsed query: the conjunction of its clauses (an empty clause list
/// — the `all` query — matches every window).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    /// The conjuncts, in source order.
    pub clauses: Vec<Clause>,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "all");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Typed parse/plan failure. Never a panic: the fuzz property test
/// feeds the parser arbitrary byte soup and demands one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The expression was empty or all whitespace.
    Empty,
    /// A character no token starts with.
    Lex {
        /// Byte offset of the offending character.
        at: usize,
        /// The character.
        found: char,
    },
    /// The token at `at` was not what the grammar expects here.
    Unexpected {
        /// Byte offset of the token.
        at: usize,
        /// What was found (rendered token or `"end of input"`).
        found: String,
        /// What the parser needed.
        expected: &'static str,
    },
    /// An unknown event name (with nearest valid names).
    UnknownEvent(UnknownEventName),
    /// An unknown clause keyword / class / field name.
    UnknownName {
        /// What kind of name was expected (`"clause"`, `"class"`, ...).
        what: &'static str,
        /// The name as given.
        given: String,
        /// Nearest valid names, best first.
        suggestions: Vec<&'static str>,
    },
    /// A numeric literal that does not parse as the needed type.
    BadNumber {
        /// Byte offset of the literal.
        at: usize,
        /// The literal text.
        text: String,
    },
    /// An `in [lo, hi]` range with `lo > hi`.
    EmptyRange {
        /// The clause, rendered.
        clause: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Empty => write!(f, "empty query"),
            QueryError::Lex { at, found } => {
                write!(f, "unexpected character {found:?} at byte {at}")
            }
            QueryError::Unexpected {
                at,
                found,
                expected,
            } => write!(f, "expected {expected} at byte {at}, found {found}"),
            QueryError::UnknownEvent(e) => write!(f, "{e}"),
            QueryError::UnknownName {
                what,
                given,
                suggestions,
            } => {
                write!(f, "unknown {what} {given:?}")?;
                if !suggestions.is_empty() {
                    write!(f, " (did you mean {}?)", suggestions.join(" or "))?;
                }
                Ok(())
            }
            QueryError::BadNumber { at, text } => {
                write!(f, "bad number {text:?} at byte {at}")
            }
            QueryError::EmptyRange { clause } => {
                write!(f, "empty range in {clause:?} (lo > hi)")
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl From<UnknownEventName> for QueryError {
    fn from(e: UnknownEventName) -> QueryError {
        QueryError::UnknownEvent(e)
    }
}

// ---------------------------------------------------------------------
// Lexer + parser
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(String),
    Lp,
    Rp,
    Lb,
    Rb,
    Comma,
    Eq,
    Cmp(Cmp),
}

impl Tok {
    fn render(&self) -> String {
        match self {
            Tok::Ident(s) => format!("{s:?}"),
            Tok::Num(s) => s.clone(),
            Tok::Lp => "(".into(),
            Tok::Rp => ")".into(),
            Tok::Lb => "[".into(),
            Tok::Rb => "]".into(),
            Tok::Comma => ",".into(),
            Tok::Eq => "=".into(),
            Tok::Cmp(c) => c.as_str().into(),
        }
    }
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, QueryError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'(' => {
                toks.push((i, Tok::Lp));
                i += 1;
            }
            b')' => {
                toks.push((i, Tok::Rp));
                i += 1;
            }
            b'[' => {
                toks.push((i, Tok::Lb));
                i += 1;
            }
            b']' => {
                toks.push((i, Tok::Rb));
                i += 1;
            }
            b',' => {
                toks.push((i, Tok::Comma));
                i += 1;
            }
            b'=' => {
                toks.push((i, Tok::Eq));
                i += 1;
            }
            b'<' | b'>' => {
                let strict = i + 1 >= bytes.len() || bytes[i + 1] != b'=';
                let cmp = match (b, strict) {
                    (b'<', true) => Cmp::Lt,
                    (b'<', false) => Cmp::Le,
                    (b'>', true) => Cmp::Gt,
                    _ => Cmp::Ge,
                };
                toks.push((i, Tok::Cmp(cmp)));
                i += if strict { 1 } else { 2 };
            }
            b'0'..=b'9' | b'-' | b'+' | b'.' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || matches!(bytes[i], b'.' | b'e' | b'E')
                        || (matches!(bytes[i], b'+' | b'-')
                            && matches!(bytes[i - 1], b'e' | b'E')))
                {
                    i += 1;
                }
                toks.push((start, Tok::Num(src[start..i].to_string())));
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || matches!(bytes[i], b'_' | b'-' | b'.'))
                {
                    i += 1;
                }
                toks.push((start, Tok::Ident(src[start..i].to_string())));
            }
            b'"' => {
                // Quoted name: for camera names with unusual characters.
                let start = i;
                i += 1;
                let from = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(QueryError::Unexpected {
                        at: start,
                        found: "unterminated string".into(),
                        expected: "closing '\"'",
                    });
                }
                toks.push((start, Tok::Ident(src[from..i].to_string())));
                i += 1;
            }
            other => {
                // Find the char at this byte offset for the message.
                let found = src[i..].chars().next().unwrap_or(other as char);
                return Err(QueryError::Lex { at: i, found });
            }
        }
    }
    Ok(toks)
}

/// The clause keywords (for did-you-mean on an unknown clause head).
const CLAUSE_NAMES: &[&str] = &[
    "event",
    "class",
    "camera",
    "time",
    "vdiff",
    "theta",
    "inv_mdist",
    "speed_change",
    "heading",
    "proximity",
    "all",
];

struct Parser {
    toks: Vec<(usize, Tok)>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> Option<&(usize, Tok)> {
        self.toks.get(self.i)
    }

    fn next(&mut self) -> Option<(usize, Tok)> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn unexpected(&self, expected: &'static str) -> QueryError {
        match self.peek() {
            Some((at, tok)) => QueryError::Unexpected {
                at: *at,
                found: tok.render(),
                expected,
            },
            None => QueryError::Unexpected {
                at: self.toks.last().map(|(a, _)| *a + 1).unwrap_or(0),
                found: "end of input".into(),
                expected,
            },
        }
    }

    fn expect_eq(&mut self) -> Result<(), QueryError> {
        match self.peek() {
            Some((_, Tok::Eq)) => {
                self.i += 1;
                Ok(())
            }
            _ => Err(self.unexpected("'='")),
        }
    }

    fn expect(&mut self, tok: Tok, expected: &'static str) -> Result<(), QueryError> {
        match self.peek() {
            Some((_, t)) if *t == tok => {
                self.i += 1;
                Ok(())
            }
            _ => Err(self.unexpected(expected)),
        }
    }

    fn ident(&mut self, expected: &'static str) -> Result<(usize, String), QueryError> {
        match self.peek() {
            Some((at, Tok::Ident(s))) => {
                let out = (*at, s.clone());
                self.i += 1;
                Ok(out)
            }
            _ => Err(self.unexpected(expected)),
        }
    }

    fn number(&mut self) -> Result<f64, QueryError> {
        match self.peek() {
            Some((at, Tok::Num(s))) => {
                let (at, s) = (*at, s.clone());
                self.i += 1;
                s.parse::<f64>()
                    .ok()
                    .filter(|v| v.is_finite())
                    .ok_or(QueryError::BadNumber { at, text: s })
            }
            _ => Err(self.unexpected("a number")),
        }
    }

    fn integer(&mut self) -> Result<u64, QueryError> {
        match self.peek() {
            Some((at, Tok::Num(s))) => {
                let (at, s) = (*at, s.clone());
                self.i += 1;
                s.parse::<u64>().map_err(|_| QueryError::BadNumber { at, text: s })
            }
            _ => Err(self.unexpected("an integer (epoch seconds)")),
        }
    }

    fn clause(&mut self) -> Result<Clause, QueryError> {
        let (_, head) = self.ident("a clause (event / class / camera / time / α field)")?;
        let key = head.to_ascii_lowercase();
        match key.as_str() {
            "event" => {
                self.expect_eq()?;
                let (_, name) = self.ident("an event name")?;
                Ok(Clause::Event(EventQuery::from_name(&name)?))
            }
            "class" => {
                self.expect_eq()?;
                let (_, name) = self.ident("a vehicle class")?;
                let lowered = name.to_ascii_lowercase();
                VehicleClass::from_name(&lowered).map(Clause::Class).ok_or(
                    QueryError::UnknownName {
                        what: "vehicle class",
                        given: name,
                        suggestions: nearest_names(
                            &lowered,
                            &VehicleClass::ALL.map(|c| c.name()),
                        ),
                    },
                )
            }
            "camera" => match self.peek() {
                Some((_, Tok::Eq)) => {
                    self.i += 1;
                    let (_, name) = self.ident("a camera name")?;
                    Ok(Clause::Cameras(vec![name]))
                }
                Some((_, Tok::Ident(kw))) if kw.eq_ignore_ascii_case("in") => {
                    self.i += 1;
                    self.expect(Tok::Lp, "'('")?;
                    let mut cams = Vec::new();
                    loop {
                        let (_, name) = self.ident("a camera name")?;
                        cams.push(name);
                        match self.peek() {
                            Some((_, Tok::Comma)) => {
                                self.i += 1;
                            }
                            Some((_, Tok::Rp)) => {
                                self.i += 1;
                                break;
                            }
                            _ => return Err(self.unexpected("',' or ')'")),
                        }
                    }
                    Ok(Clause::Cameras(cams))
                }
                _ => Err(self.unexpected("'=' or 'in'")),
            },
            "time" => match self.next() {
                Some((_, Tok::Eq)) => Err(QueryError::Unexpected {
                    at: 0,
                    found: "=".into(),
                    expected: "'in [a, b]', '<=', '>=', '<' or '>' after 'time'",
                }),
                Some((_, Tok::Ident(kw))) if kw.eq_ignore_ascii_case("in") => {
                    self.expect(Tok::Lb, "'['")?;
                    let a = self.integer()?;
                    self.expect(Tok::Comma, "','")?;
                    let b = self.integer()?;
                    self.expect(Tok::Rb, "']'")?;
                    if a > b {
                        return Err(QueryError::EmptyRange {
                            clause: format!("time in [{a}, {b}]"),
                        });
                    }
                    Ok(Clause::Time {
                        from: Some(a),
                        to: Some(b),
                    })
                }
                Some((_, Tok::Cmp(op))) => {
                    let v = self.integer()?;
                    // Normalize strict bounds to the inclusive form the
                    // AST stores (time is integral seconds).
                    Ok(match op {
                        Cmp::Ge => Clause::Time {
                            from: Some(v),
                            to: None,
                        },
                        Cmp::Gt => Clause::Time {
                            from: Some(v.saturating_add(1)),
                            to: None,
                        },
                        Cmp::Le => Clause::Time {
                            from: None,
                            to: Some(v),
                        },
                        Cmp::Lt => Clause::Time {
                            from: None,
                            to: Some(v.saturating_sub(1)),
                        },
                    })
                }
                _ => {
                    self.i = self.i.saturating_sub(1);
                    Err(self.unexpected("'in', '<=', '>=', '<' or '>' after 'time'"))
                }
            },
            _ => {
                let Some(field) = FeatureField::from_name(&key) else {
                    return Err(QueryError::UnknownName {
                        what: "clause",
                        given: head,
                        suggestions: nearest_names(&key, CLAUSE_NAMES),
                    });
                };
                match self.peek() {
                    Some((_, Tok::Cmp(op))) => {
                        let op = *op;
                        self.i += 1;
                        let value = self.number()?;
                        Ok(Clause::Feature { field, op, value })
                    }
                    Some((_, Tok::Ident(kw))) if kw.eq_ignore_ascii_case("in") => {
                        self.i += 1;
                        self.expect(Tok::Lb, "'['")?;
                        let lo = self.number()?;
                        self.expect(Tok::Comma, "','")?;
                        let hi = self.number()?;
                        self.expect(Tok::Rb, "']'")?;
                        if lo > hi {
                            return Err(QueryError::EmptyRange {
                                clause: format!("{} in [{lo}, {hi}]", field.name()),
                            });
                        }
                        Ok(Clause::FeatureIn { field, lo, hi })
                    }
                    _ => Err(self.unexpected("a comparison or 'in [lo, hi]'")),
                }
            }
        }
    }
}

/// Parses a query expression. See the module docs for the grammar.
pub fn parse(src: &str) -> Result<Query, QueryError> {
    let toks = lex(src)?;
    if toks.is_empty() {
        return Err(QueryError::Empty);
    }
    // The `all` query: no filters.
    if toks.len() == 1 {
        if let Tok::Ident(s) = &toks[0].1 {
            if s.eq_ignore_ascii_case("all") {
                return Ok(Query::default());
            }
        }
    }
    let mut p = Parser { toks, i: 0 };
    let mut clauses = vec![p.clause()?];
    while let Some((_, tok)) = p.peek() {
        match tok {
            Tok::Ident(s) if s.eq_ignore_ascii_case("and") => {
                p.i += 1;
                clauses.push(p.clause()?);
            }
            _ => return Err(p.unexpected("'and' or end of query")),
        }
    }
    Ok(Query { clauses })
}

// ---------------------------------------------------------------------
// Vehicle-class roster
// ---------------------------------------------------------------------

/// Per-clip `track id → vehicle class` assignments, the evaluation
/// source for `class = …` predicates. Classes are a *vision* product
/// (PCA over tracked blob shape, §3.1) that the archive records do not
/// persist, so the roster travels in memory: build it at ingest time
/// with [`classify_tracks`] and hand it to the [`Planner`]. A class
/// predicate over a clip the roster does not cover is a typed
/// [`PlanError::ClassesUnavailable`] — never a silently empty match.
#[derive(Debug, Clone, Default)]
pub struct ClassRoster {
    by_clip: BTreeMap<u64, BTreeMap<u64, VehicleClass>>,
}

impl ClassRoster {
    /// Empty roster.
    pub fn new() -> ClassRoster {
        ClassRoster::default()
    }

    /// Records one clip's track classes.
    pub fn add_clip(&mut self, clip_id: u64, classes: impl IntoIterator<Item = (u64, VehicleClass)>) {
        self.by_clip
            .entry(clip_id)
            .or_default()
            .extend(classes);
    }

    /// The class of `track_id` in `clip_id`, if known.
    pub fn class_of(&self, clip_id: u64, track_id: u64) -> Option<VehicleClass> {
        self.by_clip.get(&clip_id)?.get(&track_id).copied()
    }

    /// Whether the roster covers `clip_id` at all.
    pub fn covers(&self, clip_id: u64) -> bool {
        self.by_clip.contains_key(&clip_id)
    }
}

/// Classifies every track with the PCA nearest-centroid classifier
/// (paper §3.1), trained on the renderer's known class geometry —
/// the same blob widths/heights/intensities the vision pipeline
/// produces — with deterministic jitter. Returns `(track_id, class)`
/// pairs ready for [`ClassRoster::add_clip`].
pub fn classify_tracks(tracks: &[Track]) -> Vec<(u64, VehicleClass)> {
    let mut training = Vec::with_capacity(60);
    for i in 0..20usize {
        for class in VehicleClass::ALL {
            let (hl, hw) = class.half_extents();
            // Rendered blob intensity per class (see vision::render).
            let intensity = match class {
                VehicleClass::Car => 168.0,
                VehicleClass::Suv => 188.0,
                VehicleClass::Pickup => 148.0,
            };
            let j = ((i * 37) % 10) as f64 / 10.0 - 0.5;
            let w = 2.0 * hl + j * 2.0;
            let h = 2.0 * hw + j;
            training.push((
                BlobStats {
                    width: w,
                    height: h,
                    area: w * h * 0.95,
                    fill: 0.95 + j * 0.02,
                    intensity: intensity + j * 6.0,
                },
                class,
            ));
        }
    }
    let clf = PcaClassifier::train(&training, 3).expect("non-empty synthetic training set");
    tracks.iter().map(|t| (t.id, clf.classify(&t.stats))).collect()
}

// ---------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------

/// Typed planner failure.
#[derive(Debug)]
pub enum PlanError {
    /// The database failed mid-plan.
    Db(DbError),
    /// The query itself cannot be planned (today: never produced by a
    /// successfully parsed query, reserved for compile-stage checks).
    Query(QueryError),
    /// A `class = …` predicate over a clip with no roster coverage.
    ClassesUnavailable {
        /// The uncovered clip.
        clip_id: u64,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Db(e) => write!(f, "database error: {e}"),
            PlanError::Query(e) => write!(f, "query error: {e}"),
            PlanError::ClassesUnavailable { clip_id } => write!(
                f,
                "class predicate cannot be evaluated: no vehicle-class roster \
                 covers clip {clip_id} (classes are assigned at ingest by the \
                 PCA classifier and are not persisted in the archive)"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<DbError> for PlanError {
    fn from(e: DbError) -> PlanError {
        PlanError::Db(e)
    }
}

/// What each progressive stage did — the planner's receipt, surfaced
/// through the serve response and the CLI so an operator can see *why*
/// a query was cheap (or was not).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Manifest routes examined (one per `(camera, bucket)` key), or 1
    /// for a single-file database.
    pub shards_total: usize,
    /// Routes eliminated by camera/time predicates alone.
    pub shards_pruned: usize,
    /// Clips in surviving routes.
    pub clips_considered: usize,
    /// Clips eliminated by exact metadata checks (camera, time span).
    pub clips_pruned: usize,
    /// Windows examined against stored rows in stage 2.
    pub windows_scanned: usize,
    /// Windows eliminated by stage-2 predicates.
    pub windows_prefiltered: usize,
    /// Windows that reached MIL ranking.
    pub windows_ranked: usize,
}

/// A shard the query *needed* but could not be served from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedShard {
    /// Shard file name.
    pub file: String,
    /// Camera the route covers.
    pub camera: String,
    /// Time bucket the route covers.
    pub bucket: u64,
    /// Why it is unavailable.
    pub reason: String,
}

/// A planned query's result: the ranking over every *servable* window,
/// the per-stage statistics, and a typed partial-result report naming
/// any relevant-but-unserveable shards. An empty `ranking` with a
/// non-empty `degraded` list means "the healthy part of the archive had
/// nothing, and these shards could not be consulted" — which is a very
/// different answer from a clean miss.
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// Top-k ranking over surviving windows, best first.
    pub ranking: Vec<RankedWindow>,
    /// Per-stage counters.
    pub stats: PlanStats,
    /// Relevant routes that could not be served, in route order.
    pub degraded: Vec<DegradedShard>,
}

/// How stage 3 scores the surviving windows.
pub enum Scorer<'a> {
    /// The stateless event heuristic ([`tsvr_mil::heuristic::bag_score`]).
    Heuristic,
    /// A trained session learner.
    Learner(&'a (dyn Learner + Sync)),
}

/// The progressive query planner. See the module docs for the three
/// stages and the determinism contract.
pub struct Planner<'a> {
    /// Ranking depth (top-k).
    pub top_k: usize,
    /// Window/feature configuration the archive's indexes were built
    /// with (used for index-freshness hashing and bag construction).
    pub config: WindowConfig,
    /// Vehicle-class roster for `class = …` predicates.
    pub classes: Option<&'a ClassRoster>,
}

impl<'a> Planner<'a> {
    /// A planner with the default pipeline configuration and no class
    /// roster.
    pub fn new(top_k: usize) -> Planner<'a> {
        Planner {
            top_k,
            config: WindowConfig::default(),
            classes: None,
        }
    }

    /// Executes `query` over `db` progressively and returns the ranked
    /// survivors plus the plan receipt.
    pub fn run(
        &self,
        db: &mut AnyDb,
        query: &Query,
        scorer: Scorer<'_>,
    ) -> Result<PlanOutcome, PlanError> {
        let _span = tsvr_obs::span!("query.plan");
        let compiled = Compiled::from_query(query);
        let mut stats = PlanStats::default();
        let mut degraded = Vec::new();

        // Stage 1: shard pruning from the manifest routes.
        let mut candidates: Vec<ClipStub> = Vec::new();
        match db.shard_routes() {
            Some((bucket_secs, routes)) => {
                stats.shards_total = routes.len();
                for route in routes {
                    match route_decision(&route, bucket_secs, &compiled) {
                        RouteDecision::Pruned => stats.shards_pruned += 1,
                        RouteDecision::Degraded(reason) => degraded.push(DegradedShard {
                            file: route.file,
                            camera: route.camera,
                            bucket: route.bucket,
                            reason,
                        }),
                        RouteDecision::Clips(stubs) => {
                            stats.clips_considered += stubs.len();
                            for stub in stubs {
                                if compiled.clip_admits(&stub) {
                                    candidates.push(stub);
                                } else {
                                    stats.clips_pruned += 1;
                                }
                            }
                        }
                    }
                }
            }
            None => {
                // Single-file database: one unprunable "shard"; clips
                // are still pruned exactly by metadata.
                stats.shards_total = 1;
                let stubs: Vec<ClipStub> = db
                    .list_clips()
                    .iter()
                    .map(|m| ClipStub {
                        clip_id: m.clip_id,
                        camera: m.camera.clone(),
                        start_time: m.start_time,
                        frame_count: m.frame_count,
                    })
                    .collect();
                stats.clips_considered = stubs.len();
                for stub in stubs {
                    if compiled.clip_admits(&stub) {
                        candidates.push(stub);
                    } else {
                        stats.clips_pruned += 1;
                    }
                }
            }
        }
        candidates.sort_unstable_by_key(|s| s.clip_id);
        tsvr_obs::counter!("query.plan.shards_pruned").add(stats.shards_pruned as u64);
        tsvr_obs::counter!("query.plan.clips_pruned").add(stats.clips_pruned as u64);

        // Stage 2: per-window pre-filtering against stored rows, then
        // bag construction for survivors only.
        let mut clip_windows: Vec<(String, ClipWindows)> = Vec::new();
        for stub in &candidates {
            let shard = db
                .shard_of_clip(stub.clip_id)
                .unwrap_or("-")
                .to_string();
            let survivors = self.filter_clip_windows(db, stub, &compiled, &mut stats)?;
            if !survivors.bags.is_empty() {
                clip_windows.push((shard, survivors));
            }
        }
        tsvr_obs::counter!("query.plan.windows_prefiltered")
            .add(stats.windows_prefiltered as u64);
        tsvr_obs::counter!("query.plan.windows_ranked").add(stats.windows_ranked as u64);

        // Stage 3: MIL ranking over survivors, grouped per shard and
        // merged through the deterministic scatter-gather.
        let mut by_shard: BTreeMap<String, Vec<ClipWindows>> = BTreeMap::new();
        for (shard, cw) in clip_windows {
            by_shard.entry(shard).or_default().push(cw);
        }
        let shards: Vec<ShardWindows> = by_shard
            .into_iter()
            .map(|(shard, clips)| ShardWindows { shard, clips })
            .collect();
        let ranking = match scorer {
            Scorer::Heuristic => sharded_heuristic_topk(&shards, self.top_k),
            Scorer::Learner(l) => sharded_learner_topk(&shards, l, self.top_k),
        };
        if !degraded.is_empty() {
            tsvr_obs::counter!("query.plan.degraded_routes").add(degraded.len() as u64);
        }
        Ok(PlanOutcome {
            ranking,
            stats,
            degraded,
        })
    }

    /// Stage 2 for one clip: evaluate predicates on stored rows and
    /// build bags for the surviving windows only. Bags are built by
    /// the same canonical conversions as an unplanned scan
    /// ([`bags_from_dataset`] over a fresh index, [`bags_from_bundle`]
    /// otherwise), so each surviving window's bag is bit-identical to
    /// what a full scan would have scored.
    fn filter_clip_windows(
        &self,
        db: &mut AnyDb,
        stub: &ClipStub,
        compiled: &Compiled<'_>,
        stats: &mut PlanStats,
    ) -> Result<ClipWindows, PlanError> {
        let clip_id = stub.clip_id;
        // A fresh TSIX segment serves the α rows without touching the
        // bundle; events additionally need the bundle's incident rows.
        let fresh_segment = match db.load_index(clip_id)? {
            Some(seg)
                if seg.config_hash == config_hash(clip_id, &self.config)
                    && seg.feature_dim as usize == self.config.window_size * 3 =>
            {
                Some(seg)
            }
            _ => None,
        };
        let bundle = if fresh_segment.is_none() || !compiled.events.is_empty() {
            Some(db.load_clip(clip_id)?)
        } else {
            None
        };
        let incidents: &[tsvr_viddb::IncidentRow] =
            bundle.as_ref().map(|b| b.incidents.as_slice()).unwrap_or(&[]);

        let mut keep: BTreeSet<u64> = BTreeSet::new();
        let mut scanned_here = 0usize;
        match &fresh_segment {
            Some(seg) => {
                scanned_here += seg.windows.len();
                for row in &seg.windows {
                    let alphas = row.features.chunks_exact(3).map(|c| [c[0], c[1], c[2]]);
                    let admit = compiled.window_admits(
                        stub,
                        u64::from(row.window_index),
                        row.start_frame,
                        row.end_frame,
                        &row.track_ids,
                        alphas,
                        incidents,
                        self.classes,
                    )?;
                    if admit {
                        keep.insert(u64::from(row.window_index));
                    }
                }
            }
            None => {
                let bundle = bundle.as_ref().expect("bundle loaded when no fresh index");
                scanned_here += bundle.windows.len();
                for row in &bundle.windows {
                    let track_ids: Vec<u64> =
                        row.sequences.iter().map(|s| s.track_id).collect();
                    let alphas = row
                        .sequences
                        .iter()
                        .flat_map(|s| s.alphas.iter().copied());
                    let admit = compiled.window_admits(
                        stub,
                        u64::from(row.window_index),
                        u64::from(row.start_frame),
                        u64::from(row.end_frame),
                        &track_ids,
                        alphas,
                        incidents,
                        self.classes,
                    )?;
                    if admit {
                        keep.insert(u64::from(row.window_index));
                    }
                }
            }
        }

        // Build survivor bags through the canonical conversion paths.
        let bags = if keep.is_empty() {
            Vec::new()
        } else {
            match fresh_segment {
                Some(seg) => {
                    let mut dataset = dataset_from_segment(&seg, self.config);
                    dataset
                        .windows
                        .retain(|w| keep.contains(&(w.index as u64)));
                    bags_from_dataset(&dataset)
                }
                None => {
                    let bundle = bundle.as_ref().expect("bundle loaded when no fresh index");
                    let mut bags = bags_from_bundle(bundle, &self.config.features);
                    bags.retain(|b| keep.contains(&(b.id as u64)));
                    bags
                }
            }
        };
        let kept = bags.len();
        stats.windows_scanned += scanned_here;
        stats.windows_ranked += kept;
        stats.windows_prefiltered += scanned_here.saturating_sub(kept);
        Ok(ClipWindows { clip_id, bags })
    }
}

/// Stage-1 verdict for one route.
enum RouteDecision {
    /// Eliminated by camera/time predicates — nothing behind it can
    /// match.
    Pruned,
    /// Relevant to the query but unserveable; the reason travels to the
    /// partial-result report.
    Degraded(String),
    /// Relevant and healthy: these clips proceed to clip-level checks.
    Clips(Vec<ClipStub>),
}

/// Decides a route's fate from the manifest key (camera, bucket) and —
/// for healthy routes — the in-memory clip stubs. Straddle safety: a
/// healthy route is pruned on time only if *no clip's real span*
/// `[start_time, end_time]` overlaps the query window, so a clip that
/// starts in bucket `b` and runs into `b+1` is kept for a query over
/// `b+1` even though its route key says `b`. A quarantined route's clip
/// spans are unknowable, so it is pruned only when even a clip starting
/// at the very end of its bucket and lasting a full extra bucket could
/// not reach the query window (one-bucket slack, conservative by
/// construction for any clip shorter than `bucket_secs`).
fn route_decision(route: &ShardRoute, bucket_secs: u64, compiled: &Compiled<'_>) -> RouteDecision {
    if let Some(cams) = &compiled.cameras {
        if !cams.contains(route.camera.as_str()) {
            return RouteDecision::Pruned;
        }
    }
    let (from, to) = compiled.time_bounds();
    let bucket_start = route.bucket.saturating_mul(bucket_secs);
    match &route.status {
        RouteStatus::Quarantined { reason } => {
            // All clips in this route start inside the bucket, so a
            // query ending before the bucket starts cannot need it.
            if bucket_start > to {
                return RouteDecision::Pruned;
            }
            // One-bucket slack on the tail (unknown clip durations).
            let latest_possible_end = bucket_start
                .saturating_add(bucket_secs)
                .saturating_add(bucket_secs);
            if latest_possible_end < from {
                return RouteDecision::Pruned;
            }
            RouteDecision::Degraded(reason.clone())
        }
        RouteStatus::Healthy { clips } => {
            if bucket_start > to {
                return RouteDecision::Pruned;
            }
            if clips
                .iter()
                .any(|c| clip_overlaps(c.start_time, c.frame_count, from, to))
            {
                RouteDecision::Clips(clips.clone())
            } else {
                RouteDecision::Pruned
            }
        }
    }
}

/// Whether a clip `[start_time, end_time]` (frames converted at
/// [`NOMINAL_FPS`], end rounded up) overlaps `[from, to]`.
fn clip_overlaps(start_time: u64, frame_count: u32, from: u64, to: u64) -> bool {
    let end = frames_end_time(start_time, u64::from(frame_count));
    start_time <= to && end >= from
}

/// The query lowered to evaluation form: predicate sets the planner
/// checks at each stage.
struct Compiled<'q> {
    cameras: Option<BTreeSet<&'q str>>,
    /// Intersection of all time clauses, as inclusive `[from, to]`
    /// (defaults `[0, u64::MAX]`). An empty intersection stays empty —
    /// it admits nothing, pruning everything.
    time: (u64, u64),
    events: Vec<&'q EventQuery>,
    classes: Vec<VehicleClass>,
    features: Vec<&'q Clause>,
}

impl<'q> Compiled<'q> {
    fn from_query(q: &'q Query) -> Compiled<'q> {
        let mut cameras: Option<BTreeSet<&str>> = None;
        let mut time = (0u64, u64::MAX);
        let mut events = Vec::new();
        let mut classes = Vec::new();
        let mut features = Vec::new();
        for clause in &q.clauses {
            match clause {
                Clause::Cameras(cams) => {
                    let set: BTreeSet<&str> = cams.iter().map(|s| s.as_str()).collect();
                    cameras = Some(match cameras.take() {
                        // Two camera clauses intersect.
                        Some(prev) => prev.intersection(&set).copied().collect(),
                        None => set,
                    });
                }
                Clause::Time { from, to } => {
                    if let Some(f) = from {
                        time.0 = time.0.max(*f);
                    }
                    if let Some(t) = to {
                        time.1 = time.1.min(*t);
                    }
                }
                Clause::Event(q) => events.push(q),
                Clause::Class(c) => classes.push(*c),
                f @ (Clause::Feature { .. } | Clause::FeatureIn { .. }) => features.push(f),
            }
        }
        Compiled {
            cameras,
            time,
            events,
            classes,
            features,
        }
    }

    fn time_bounds(&self) -> (u64, u64) {
        self.time
    }

    /// Exact clip-level admission: camera and full-span time overlap.
    fn clip_admits(&self, stub: &ClipStub) -> bool {
        if let Some(cams) = &self.cameras {
            if !cams.contains(stub.camera.as_str()) {
                return false;
            }
        }
        let (from, to) = self.time;
        if from > to {
            return false;
        }
        clip_overlaps(stub.start_time, stub.frame_count, from, to)
    }

    /// Window-level admission against stored rows. Feature clauses are
    /// MIL-existential: a window matches when *some* α row (any track,
    /// any checkpoint) satisfies the clause; different clauses may be
    /// satisfied by different rows. Class clauses likewise: some track
    /// of the window carries the class. Event clauses: some stored
    /// incident of a matching kind overlaps the window's frame span.
    #[allow(clippy::too_many_arguments)]
    fn window_admits(
        &self,
        stub: &ClipStub,
        _window_index: u64,
        start_frame: u64,
        end_frame: u64,
        track_ids: &[u64],
        alphas: impl Iterator<Item = [f64; 3]> + Clone,
        incidents: &[tsvr_viddb::IncidentRow],
        roster: Option<&ClassRoster>,
    ) -> Result<bool, PlanError> {
        // Window-level absolute time: tighter than the clip-level span.
        let (from, to) = self.time;
        if from > to {
            return Ok(false);
        }
        let w_start = stub.start_time.saturating_add(start_frame / NOMINAL_FPS);
        let w_end = frames_end_time(stub.start_time, end_frame);
        if !(w_start <= to && w_end >= from) {
            return Ok(false);
        }
        // Class clauses.
        for class in &self.classes {
            let roster = roster.ok_or(PlanError::ClassesUnavailable {
                clip_id: stub.clip_id,
            })?;
            if !roster.covers(stub.clip_id) {
                return Err(PlanError::ClassesUnavailable {
                    clip_id: stub.clip_id,
                });
            }
            let any = track_ids
                .iter()
                .any(|&t| roster.class_of(stub.clip_id, t) == Some(*class));
            if !any {
                return Ok(false);
            }
        }
        // Event clauses against stored incident rows.
        for event in &self.events {
            let any = incidents.iter().any(|r| {
                tsvr_sim::IncidentKind::from_name(&r.kind)
                    .map(|k| event.matches(k))
                    .unwrap_or(false)
                    && u64::from(r.start_frame) <= end_frame
                    && start_frame <= u64::from(r.end_frame)
            });
            if !any {
                return Ok(false);
            }
        }
        // Feature clauses on raw α rows.
        for clause in &self.features {
            let any = match clause {
                Clause::Feature { field, op, value } => alphas
                    .clone()
                    .any(|a| op.eval(a[field.lane()], *value)),
                Clause::FeatureIn { field, lo, hi } => alphas
                    .clone()
                    .any(|a| a[field.lane()] >= *lo && a[field.lane()] <= *hi),
                _ => unreachable!("only feature clauses collected"),
            };
            if !any {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvr_sim::IncidentKind;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("acident", "accident"), 1);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn nearest_names_ranks_by_distance() {
        let names = ["accident", "speeding", "u_turn", "wrong_way"];
        assert_eq!(nearest_names("acident", &names), vec!["accident"]);
        assert_eq!(nearest_names("speedin", &names), vec!["speeding"]);
        assert!(nearest_names("zzzzzz", &names).is_empty());
    }

    #[test]
    fn parses_every_clause_form() {
        let q = parse(
            "event = accident and class = pickup and camera in (cam-1, cam-2) \
             and time in [100, 200] and vdiff >= 3.5 and theta in [0.5, 1.5] \
             and inv_mdist < 0.25",
        )
        .unwrap();
        assert_eq!(q.clauses.len(), 7);
        assert_eq!(q.clauses[0], Clause::Event(EventQuery::accidents()));
        assert_eq!(q.clauses[1], Clause::Class(VehicleClass::Pickup));
        assert_eq!(
            q.clauses[2],
            Clause::Cameras(vec!["cam-1".into(), "cam-2".into()])
        );
        assert_eq!(
            q.clauses[3],
            Clause::Time {
                from: Some(100),
                to: Some(200)
            }
        );
        assert_eq!(
            q.clauses[4],
            Clause::Feature {
                field: FeatureField::Vdiff,
                op: Cmp::Ge,
                value: 3.5
            }
        );
    }

    #[test]
    fn aliases_and_case_fold() {
        let q = parse("SPEED_CHANGE > 2 and Heading <= 1.0 and proximity >= 0.1").unwrap();
        assert!(matches!(
            q.clauses[0],
            Clause::Feature {
                field: FeatureField::Vdiff,
                ..
            }
        ));
        assert!(matches!(
            q.clauses[1],
            Clause::Feature {
                field: FeatureField::Theta,
                ..
            }
        ));
        assert!(matches!(
            q.clauses[2],
            Clause::Feature {
                field: FeatureField::InvMdist,
                ..
            }
        ));
    }

    #[test]
    fn all_query_is_empty_conjunction() {
        assert_eq!(parse("all").unwrap(), Query::default());
        assert_eq!(parse("  ALL ").unwrap(), Query::default());
        assert_eq!(Query::default().to_string(), "all");
    }

    #[test]
    fn strict_time_bounds_normalize_to_inclusive() {
        assert_eq!(
            parse("time > 100").unwrap().clauses[0],
            Clause::Time {
                from: Some(101),
                to: None
            }
        );
        assert_eq!(
            parse("time < 100").unwrap().clauses[0],
            Clause::Time {
                from: None,
                to: Some(99)
            }
        );
    }

    #[test]
    fn display_round_trips() {
        for src in [
            "all",
            "event = accident",
            "event = wrong_way and camera = cam-1",
            "camera in (a, b, c)",
            "time in [1167609600, 1167613200]",
            "time >= 5",
            "time <= 9",
            "vdiff >= 3.5",
            "theta < 0.75",
            "inv_mdist in [0.1, 0.2]",
            "class = suv and speed_change > 2.25",
        ] {
            let q = parse(src).unwrap();
            let rendered = q.to_string();
            let back = parse(&rendered).unwrap();
            assert_eq!(q, back, "display round trip failed for {src:?} → {rendered:?}");
        }
    }

    #[test]
    fn unknown_names_carry_suggestions() {
        match parse("event = acident") {
            Err(QueryError::UnknownEvent(e)) => {
                assert_eq!(e.suggestions.first().copied(), Some("accident"))
            }
            other => panic!("expected UnknownEvent, got {other:?}"),
        }
        match parse("class = pikup") {
            Err(QueryError::UnknownName { suggestions, .. }) => {
                assert_eq!(suggestions.first().copied(), Some("pickup"))
            }
            other => panic!("expected UnknownName, got {other:?}"),
        }
        match parse("vdif >= 1") {
            Err(QueryError::UnknownName { what, suggestions, .. }) => {
                assert_eq!(what, "clause");
                assert_eq!(suggestions.first().copied(), Some("vdiff"));
            }
            other => panic!("expected UnknownName, got {other:?}"),
        }
    }

    #[test]
    fn malformed_queries_are_typed_errors() {
        for src in [
            "",
            "   ",
            "and",
            "event =",
            "event",
            "camera in (",
            "camera in ()",
            "time in [5, 3]",
            "vdiff in [2, 1]",
            "time in [a, b]",
            "vdiff >= ",
            "vdiff >= banana",
            "event = accident and",
            "event = accident or speeding",
            "time = 100",
            "\"unterminated",
            "camera = cam-1 extra",
            "§",
        ] {
            assert!(parse(src).is_err(), "{src:?} should not parse");
        }
    }

    #[test]
    fn seeded_fuzz_never_panics() {
        // xorshift64* — deterministic byte soup, printable-biased.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let alphabet: Vec<char> =
            "abcdefghijklmnopqrstuvwxyz0123456789_-.,<>=[]() \"\u{1F695}éand"
                .chars()
                .collect();
        for _ in 0..2000 {
            let len = (next() % 40) as usize;
            let s: String = (0..len)
                .map(|_| alphabet[(next() % alphabet.len() as u64) as usize])
                .collect();
            // Must return (Ok or Err) — any panic fails the test.
            let _ = parse(&s);
        }
        // And mutations of a valid query.
        let valid = "event = accident and camera in (cam-1) and vdiff >= 3.5";
        for i in 0..valid.len() {
            let mut s = valid.to_string();
            s.remove(i);
            let _ = parse(&s);
            let mut s = valid.to_string();
            s.insert(i, '[');
            let _ = parse(&s);
        }
    }

    #[test]
    fn compiled_intersects_time_and_cameras() {
        let q = parse("time >= 100 and time <= 200 and camera in (a, b) and camera = b").unwrap();
        let c = Compiled::from_query(&q);
        assert_eq!(c.time_bounds(), (100, 200));
        assert_eq!(
            c.cameras.as_ref().unwrap().iter().copied().collect::<Vec<_>>(),
            vec!["b"]
        );
        // Disjoint camera sets admit nothing.
        let q = parse("camera = a and camera = b").unwrap();
        let c = Compiled::from_query(&q);
        assert!(c.cameras.as_ref().unwrap().is_empty());
    }

    fn stub(clip_id: u64, camera: &str, start_time: u64, frame_count: u32) -> ClipStub {
        ClipStub {
            clip_id,
            camera: camera.into(),
            start_time,
            frame_count,
        }
    }

    #[test]
    fn route_pruning_is_straddle_safe() {
        let bucket_secs = 3600;
        // A clip starting 5s before the bucket boundary, lasting 16s
        // (400 frames at 25fps): it straddles into the next bucket.
        let straddler = stub(7, "cam-1", 2 * bucket_secs - 5, 400);
        let route = ShardRoute {
            camera: "cam-1".into(),
            bucket: 1,
            file: "shard-x".into(),
            status: RouteStatus::Healthy {
                clips: vec![straddler.clone()],
            },
        };
        // Query entirely inside bucket 2 — the route key says bucket 1,
        // but the clip's real span reaches in, so it must be kept.
        let q = parse(&format!(
            "time in [{}, {}]",
            2 * bucket_secs,
            2 * bucket_secs + 100
        ))
        .unwrap();
        let c = Compiled::from_query(&q);
        match route_decision(&route, bucket_secs, &c) {
            RouteDecision::Clips(clips) => assert_eq!(clips[0].clip_id, 7),
            _ => panic!("straddling clip's route was pruned"),
        }
        assert!(c.clip_admits(&straddler));
        // A query before the bucket starts prunes the route.
        let q = parse("time <= 10").unwrap();
        assert!(matches!(
            route_decision(&route, bucket_secs, &Compiled::from_query(&q)),
            RouteDecision::Pruned
        ));
        // Camera mismatch prunes outright.
        let q = parse("camera = cam-2").unwrap();
        assert!(matches!(
            route_decision(&route, bucket_secs, &Compiled::from_query(&q)),
            RouteDecision::Pruned
        ));
    }

    #[test]
    fn quarantined_routes_degrade_only_when_relevant() {
        let bucket_secs = 3600;
        let route = ShardRoute {
            camera: "cam-9".into(),
            bucket: 5,
            file: "shard-q".into(),
            status: RouteStatus::Quarantined {
                reason: "bad magic".into(),
            },
        };
        // Relevant window → degraded with the reason.
        let q = parse(&format!("time in [{}, {}]", 5 * bucket_secs, 6 * bucket_secs)).unwrap();
        match route_decision(&route, bucket_secs, &Compiled::from_query(&q)) {
            RouteDecision::Degraded(reason) => assert_eq!(reason, "bad magic"),
            _ => panic!("relevant quarantined route not degraded"),
        }
        // Way-later query window → pruned despite quarantine (slack is
        // one bucket past the bucket end).
        let q = parse(&format!("time >= {}", 9 * bucket_secs)).unwrap();
        assert!(matches!(
            route_decision(&route, bucket_secs, &Compiled::from_query(&q)),
            RouteDecision::Pruned
        ));
        // Other camera → pruned silently (not degraded).
        let q = parse("camera = cam-1").unwrap();
        assert!(matches!(
            route_decision(&route, bucket_secs, &Compiled::from_query(&q)),
            RouteDecision::Pruned
        ));
    }

    #[test]
    fn event_clause_round_trips_incident_kinds() {
        for kind in IncidentKind::ALL {
            let q = parse(&format!("event = {}", kind.name())).unwrap();
            assert_eq!(q.clauses[0], Clause::Event(EventQuery::for_kind(kind)));
        }
    }

    #[test]
    fn classify_tracks_assigns_renderer_geometry() {
        // Tracks whose average blob stats sit exactly on the renderer's
        // class geometry must classify to that class.
        let mk = |id: u64, class: VehicleClass| {
            let (hl, hw) = class.half_extents();
            let intensity = match class {
                VehicleClass::Car => 168.0,
                VehicleClass::Suv => 188.0,
                VehicleClass::Pickup => 148.0,
            };
            Track {
                id,
                points: Vec::new(),
                stats: BlobStats {
                    width: 2.0 * hl,
                    height: 2.0 * hw,
                    area: 4.0 * hl * hw * 0.95,
                    fill: 0.95,
                    intensity,
                },
            }
        };
        let tracks = vec![
            mk(1, VehicleClass::Car),
            mk(2, VehicleClass::Suv),
            mk(3, VehicleClass::Pickup),
        ];
        let classes = classify_tracks(&tracks);
        assert_eq!(
            classes,
            vec![
                (1, VehicleClass::Car),
                (2, VehicleClass::Suv),
                (3, VehicleClass::Pickup)
            ]
        );
        let mut roster = ClassRoster::new();
        roster.add_clip(42, classes);
        assert_eq!(roster.class_of(42, 2), Some(VehicleClass::Suv));
        assert_eq!(roster.class_of(42, 9), None);
        assert!(roster.covers(42) && !roster.covers(43));
    }
}
