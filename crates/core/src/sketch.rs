//! Query by sketch (paper §7, future work: "query by sketches").
//!
//! The user draws a rough trajectory on the camera image ("show me
//! U-turns shaped like this"); the system ranks tracked vehicles — and
//! the windows containing them — by DTW shape similarity between the
//! sketch and each track's centroid path. Shape matching is translation-
//! and scale-invariant but, deliberately, not rotation-invariant: a
//! sketch is drawn in image space, where direction is meaningful (a
//! westbound U-turn differs from a southbound one).

use crate::pipeline::ClipArtifacts;
use tsvr_sim::Vec2;
use tsvr_trajectory::dtw::shape_distance;
use tsvr_vision::Track;

/// A sketched trajectory query.
#[derive(Debug, Clone)]
pub struct SketchQuery {
    /// The sketched polyline, in image coordinates.
    pub path: Vec<Vec2>,
    /// Resampling resolution for shape comparison.
    pub resolution: usize,
    /// Tracks shorter than this many points are skipped (a 6-point
    /// fragment matches anything).
    pub min_track_len: usize,
}

impl SketchQuery {
    /// Creates a query with default matching parameters.
    pub fn new(path: Vec<Vec2>) -> SketchQuery {
        SketchQuery {
            path,
            resolution: 32,
            min_track_len: 10,
        }
    }

    /// Shape distance between the sketch and one track (lower = more
    /// similar); `None` when the track is too short.
    pub fn track_distance(&self, track: &Track) -> Option<f64> {
        if track.points.len() < self.min_track_len {
            return None;
        }
        let path: Vec<Vec2> = track.points.iter().map(|p| p.centroid).collect();
        Some(shape_distance(&self.path, &path, self.resolution))
    }

    /// Ranks all tracks by ascending shape distance.
    pub fn rank_tracks<'a>(&self, tracks: &'a [Track]) -> Vec<(&'a Track, f64)> {
        let mut scored: Vec<(&Track, f64)> = tracks
            .iter()
            .filter_map(|t| self.track_distance(t).map(|d| (t, d)))
            .collect();
        scored.sort_by(|a, b| {
            tsvr_mil::heuristic::nan_to_highest(a.1)
                .total_cmp(&tsvr_mil::heuristic::nan_to_highest(b.1))
                .then(a.0.id.cmp(&b.0.id))
        });
        scored
    }

    /// Ranks a clip's windows: each window scores as the best (smallest)
    /// shape distance among the tracks crossing it. Windows with no
    /// rankable track go last. Returns `(window_index, distance)` in
    /// ascending-distance order.
    pub fn rank_windows(&self, clip: &ClipArtifacts) -> Vec<(usize, f64)> {
        // Precompute per-track distances once.
        let mut dist_by_track: std::collections::HashMap<u64, f64> = Default::default();
        for t in &clip.vision.tracks {
            if let Some(d) = self.track_distance(t) {
                dist_by_track.insert(t.id, d);
            }
        }
        let mut scored: Vec<(usize, f64)> = clip
            .dataset
            .windows
            .iter()
            .map(|w| {
                let best = w
                    .sequences
                    .iter()
                    .filter_map(|ts| dist_by_track.get(&ts.track_id).copied())
                    .fold(f64::INFINITY, f64::min);
                (w.index, best)
            })
            .collect();
        scored.sort_by(|a, b| {
            tsvr_mil::heuristic::nan_to_highest(a.1)
                .total_cmp(&tsvr_mil::heuristic::nan_to_highest(b.1))
                .then(a.0.cmp(&b.0))
        });
        scored
    }
}

/// Convenience sketches for common queries.
impl SketchQuery {
    /// A straight left-to-right pass (normal tunnel traffic).
    pub fn straight_pass() -> SketchQuery {
        SketchQuery::new(vec![Vec2::new(0.0, 120.0), Vec2::new(320.0, 120.0)])
    }

    /// A U-turn: rightward, 180° arc, leftward.
    pub fn u_turn() -> SketchQuery {
        let mut path: Vec<Vec2> = (0..10).map(|i| Vec2::new(i as f64 * 8.0, 120.0)).collect();
        for k in 1..=8 {
            let a = std::f64::consts::PI * k as f64 / 8.0;
            path.push(Vec2::new(
                72.0 + 12.0 * a.sin(),
                120.0 + 12.0 - 12.0 * a.cos(),
            ));
        }
        for i in 0..10 {
            path.push(Vec2::new(72.0 - i as f64 * 8.0, 144.0));
        }
        SketchQuery::new(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{prepare_clip, PipelineOptions};
    use tsvr_sim::{IncidentKind, Scenario, World};
    use tsvr_vision::pipeline::{match_ground_truth, process, PipelineConfig};

    #[test]
    fn straight_sketch_prefers_straight_tracks() {
        let clip = prepare_clip(&Scenario::tunnel_small(91), &PipelineOptions::default());
        let q = SketchQuery::straight_pass();
        let ranked = q.rank_tracks(&clip.vision.tracks);
        assert!(!ranked.is_empty());
        // Distances ascend.
        for w in ranked.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // The best match is a nearly straight shape.
        assert!(ranked[0].1 < 0.05, "best distance {}", ranked[0].1);
    }

    #[test]
    fn u_turn_sketch_finds_the_u_turn_track() {
        // Intersection preset schedules a U-turn.
        let scenario = Scenario::intersection_paper(2007);
        let sim = World::run(scenario.clone());
        let out = process(&sim, scenario.kind, &PipelineConfig::default());
        let matches = match_ground_truth(&out.tracks, &sim, 15.0);

        let Some(rec) = sim.incidents.iter().find(|r| r.kind == IncidentKind::UTurn) else {
            panic!("preset schedules a u-turn");
        };
        let uturn_vehicle = rec.vehicle_ids[0];
        // Which tracks belong to the u-turning vehicle?
        let uturn_tracks: Vec<u64> = out
            .tracks
            .iter()
            .zip(&matches)
            .filter(|(_, m)| **m == Some(uturn_vehicle))
            .map(|(t, _)| t.id)
            .collect();
        if uturn_tracks.is_empty() {
            // Tracker may have fragmented the maneuver beyond recovery;
            // nothing to assert against in that case.
            return;
        }

        let q = SketchQuery::u_turn();
        let ranked = q.rank_tracks(&out.tracks);
        let pos = ranked
            .iter()
            .position(|(t, _)| uturn_tracks.contains(&t.id))
            .expect("u-turn track was ranked");
        // The U-turn track lands in the top third of the ranking.
        assert!(
            pos * 3 <= ranked.len(),
            "u-turn track ranked {pos} of {}",
            ranked.len()
        );
    }

    #[test]
    fn short_tracks_are_skipped() {
        let clip = prepare_clip(&Scenario::tunnel_small(92), &PipelineOptions::default());
        let mut q = SketchQuery::straight_pass();
        q.min_track_len = usize::MAX;
        assert!(q.rank_tracks(&clip.vision.tracks).is_empty());
    }

    #[test]
    fn window_ranking_covers_all_windows() {
        let clip = prepare_clip(&Scenario::tunnel_small(93), &PipelineOptions::default());
        let q = SketchQuery::straight_pass();
        let ranked = q.rank_windows(&clip);
        assert_eq!(ranked.len(), clip.dataset.window_count());
        for w in ranked.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }
}
