//! Ground-truth window labeling.
//!
//! The paper's user looks at a returned Video Sequence and marks it
//! relevant when it shows the queried event. The simulation equivalent:
//! a window is relevant iff its frame span overlaps an incident of a
//! queried kind. (Overlap of the *scene*, not of a particular tracked
//! vehicle — the user watches pixels, not tracker internals.)

use crate::query::EventQuery;
use tsvr_sim::IncidentRecord;
use tsvr_trajectory::Dataset;

/// Labels every window in a dataset against the ground-truth incident
/// log: `labels[i]` is the relevance of `dataset.windows[i]`.
pub fn label_windows(
    dataset: &Dataset,
    incidents: &[IncidentRecord],
    query: &EventQuery,
) -> Vec<bool> {
    dataset
        .windows
        .iter()
        .map(|w| {
            incidents
                .iter()
                .any(|r| query.matches(r.kind) && r.overlaps(w.start_frame, w.end_frame))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvr_sim::{IncidentKind, Vec2};
    use tsvr_trajectory::{Dataset, WindowConfig};
    use tsvr_vision::{Track, TrackPoint};

    fn straight_track(id: u64, frames: std::ops::Range<u32>) -> Track {
        Track {
            id,
            points: frames
                .map(|f| TrackPoint {
                    frame: f,
                    centroid: Vec2::new(3.0 * f as f64, 100.0),
                    mbr: tsvr_sim::Aabb::from_corners(Vec2::ZERO, Vec2::ZERO),
                    coasted: false,
                })
                .collect(),
            stats: Default::default(),
        }
    }

    fn incident(kind: IncidentKind, start: u32, end: u32) -> IncidentRecord {
        IncidentRecord {
            kind,
            start_frame: start,
            end_frame: end,
            vehicle_ids: vec![1],
        }
    }

    #[test]
    fn windows_overlapping_accidents_are_relevant() {
        // 90 frames -> 6 windows of 15 frames each.
        let ds = Dataset::build(&[straight_track(1, 0..90)], WindowConfig::default());
        assert_eq!(ds.window_count(), 6);
        let incidents = vec![incident(IncidentKind::WallCrash, 40, 55)];
        let labels = label_windows(&ds, &incidents, &EventQuery::accidents());
        // Frames 40..55 span windows 2 (30..44), 3 (45..59).
        assert_eq!(labels, vec![false, false, true, true, false, false]);
    }

    #[test]
    fn non_queried_kinds_are_irrelevant() {
        let ds = Dataset::build(&[straight_track(1, 0..90)], WindowConfig::default());
        let incidents = vec![incident(IncidentKind::UTurn, 40, 55)];
        let labels = label_windows(&ds, &incidents, &EventQuery::accidents());
        assert!(labels.iter().all(|&l| !l));
        // But the U-turn query sees them.
        let labels = label_windows(&ds, &incidents, &EventQuery::u_turns());
        assert_eq!(labels.iter().filter(|&&l| l).count(), 2);
    }

    #[test]
    fn no_incidents_all_irrelevant() {
        let ds = Dataset::build(&[straight_track(1, 0..90)], WindowConfig::default());
        let labels = label_windows(&ds, &[], &EventQuery::accidents());
        assert!(labels.iter().all(|&l| !l));
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn boundary_overlap_is_inclusive() {
        let ds = Dataset::build(&[straight_track(1, 0..90)], WindowConfig::default());
        // Incident exactly at the last frame of window 0 (frame 14).
        let incidents = vec![incident(IncidentKind::SuddenStop, 14, 14)];
        let labels = label_windows(&ds, &incidents, &EventQuery::accidents());
        assert!(labels[0]);
        assert!(!labels[1]);
    }
}
