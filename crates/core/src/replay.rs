//! Session replay: rebuilding a user's customized retrieval state from
//! a persisted [`SessionRow`].
//!
//! The paper's motivation for relevance feedback is that it "customizes
//! the search engine for the need of individual users" (§1). For that
//! customization to survive across visits, the *session* — not just the
//! clip — must be durable. `tsvr-viddb` stores the per-round feedback;
//! this module replays it through a fresh learner, which reproduces the
//! learner's state exactly (all learners here are deterministic
//! functions of their feedback history).

use crate::pipeline::LearnerKind;
use tsvr_mil::{Bag, Learner};
use tsvr_viddb::SessionRow;

/// Why a stored session could not be replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The stored session was trained with a different learner than the
    /// one requested for replay: feeding e.g. OC-SVM feedback through
    /// `weighted_rf` would silently produce a wrong model, so the
    /// mismatch is a typed error instead.
    LearnerMismatch {
        /// Learner name recorded in the [`SessionRow`].
        stored: String,
        /// Learner the caller asked to replay through.
        requested: &'static str,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::LearnerMismatch { stored, requested } => write!(
                f,
                "session was trained with learner {stored:?} but replay was requested \
                 through {requested:?}; replaying feedback through a different learner \
                 would yield a wrong model"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Replays a stored session's feedback through a fresh learner of the
/// given kind, returning the trained learner. The bags must be the same
/// database the session was recorded against (same clip, same
/// extraction parameters) — the normal case, since both are persisted
/// together. The requested kind must match the learner the session was
/// recorded with ([`ReplayError::LearnerMismatch`] otherwise).
pub fn replay_session(
    bags: &[Bag],
    session: &SessionRow,
    kind: LearnerKind,
) -> Result<Box<dyn Learner>, ReplayError> {
    if session.learner != kind.learner_name() {
        return Err(ReplayError::LearnerMismatch {
            stored: session.learner.clone(),
            requested: kind.learner_name(),
        });
    }
    let mut learner = kind.build_for(bags);
    for round in &session.feedback {
        let feedback: Vec<(usize, bool)> = round
            .iter()
            .map(|&(w, relevant)| (w as usize, relevant))
            .collect();
        learner.learn(bags, &feedback);
    }
    Ok(learner)
}

/// Continues a stored session for `extra_rounds` more feedback rounds,
/// returning the updated report (accuracies measured against `oracle`).
pub fn continue_session(
    bags: &[Bag],
    session: &SessionRow,
    kind: LearnerKind,
    oracle: &impl tsvr_mil::Oracle,
    top_n: usize,
    extra_rounds: usize,
) -> Result<tsvr_mil::SessionReport, ReplayError> {
    let learner = replay_session(bags, session, kind)?;
    let cfg = tsvr_mil::SessionConfig {
        top_n,
        feedback_rounds: extra_rounds,
        // The restored learner carries the previous visit's state; its
        // own ranking is the right starting page.
        initial_from_learner: true,
    };
    let (report, _) = tsvr_mil::RetrievalSession::new(bags, learner, oracle, cfg).run();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{prepare_clip, run_session, PipelineOptions};
    use crate::query::EventQuery;
    use tsvr_mil::session::rank_by;
    use tsvr_mil::{GroundTruthOracle, SessionConfig};
    use tsvr_sim::Scenario;

    fn session_row_from(
        report: &tsvr_mil::SessionReport,
        oracle: &GroundTruthOracle,
        top_n: usize,
        rounds: usize,
    ) -> SessionRow {
        use tsvr_mil::Oracle;
        SessionRow {
            session_id: 1,
            clip_id: 1,
            query: "accident".into(),
            learner: report.learner.into(),
            feedback: report
                .rankings
                .iter()
                .take(rounds)
                .map(|r| {
                    r.iter()
                        .take(top_n)
                        .map(|&w| {
                            // On-disk session rows store u32 window ids;
                            // fail loudly rather than alias past 2^32.
                            let id = u32::try_from(w).expect("window id exceeds on-disk u32 range");
                            (id, oracle.label(w))
                        })
                        .collect()
                })
                .collect(),
            accuracies: report.accuracies.clone(),
        }
    }

    #[test]
    fn replay_reproduces_the_original_final_ranking() {
        let clip = prepare_clip(&Scenario::tunnel_small(61), &PipelineOptions::default());
        let query = EventQuery::accidents();
        let oracle = GroundTruthOracle::new(clip.labels(&query));
        let cfg = SessionConfig {
            top_n: 5,
            feedback_rounds: 3,
            ..SessionConfig::default()
        };
        let report = run_session(&clip, &query, LearnerKind::paper_ocsvm(), cfg);
        let row = session_row_from(&report, &oracle, cfg.top_n, cfg.feedback_rounds);

        // Replay in a "new process" and re-rank.
        let learner = replay_session(&clip.bags, &row, LearnerKind::paper_ocsvm()).unwrap();
        let ranking = rank_by(&clip.bags, |b| learner.score(b));
        assert_eq!(
            &ranking,
            report.rankings.last().unwrap(),
            "replayed learner ranks differently from the original session"
        );
    }

    #[test]
    fn replay_through_wrong_learner_is_a_typed_error() {
        let clip = prepare_clip(&Scenario::tunnel_small(61), &PipelineOptions::default());
        let row = SessionRow {
            session_id: 4,
            clip_id: 1,
            query: "accident".into(),
            learner: "MIL_OneClassSVM".into(),
            feedback: vec![vec![(0, true)]],
            accuracies: vec![0.5],
        };
        // An OC-SVM session replayed through weighted_rf must refuse,
        // not silently build a wrong model.
        let err = match replay_session(&clip.bags, &row, LearnerKind::paper_weighted_rf()) {
            Err(e) => e,
            Ok(_) => panic!("mismatched learner kind replayed without error"),
        };
        assert_eq!(
            err,
            ReplayError::LearnerMismatch {
                stored: "MIL_OneClassSVM".into(),
                requested: "Weighted_RF",
            }
        );
        assert!(err.to_string().contains("MIL_OneClassSVM"));
        // continue_session surfaces the same error.
        let oracle = GroundTruthOracle::new(clip.labels(&EventQuery::accidents()));
        assert!(
            continue_session(&clip.bags, &row, LearnerKind::paper_weighted_rf(), &oracle, 5, 1)
                .is_err()
        );
        // The matching kind replays fine.
        assert!(replay_session(&clip.bags, &row, LearnerKind::paper_ocsvm()).is_ok());
    }

    #[test]
    fn continuing_a_session_does_not_regress() {
        let clip = prepare_clip(&Scenario::tunnel_small(62), &PipelineOptions::default());
        let query = EventQuery::accidents();
        let oracle = GroundTruthOracle::new(clip.labels(&query));
        let cfg = SessionConfig {
            top_n: 5,
            feedback_rounds: 2,
            ..SessionConfig::default()
        };
        let report = run_session(&clip, &query, LearnerKind::paper_ocsvm(), cfg);
        let row = session_row_from(&report, &oracle, cfg.top_n, cfg.feedback_rounds);

        let continued =
            continue_session(&clip.bags, &row, LearnerKind::paper_ocsvm(), &oracle, 5, 2).unwrap();
        // The continued session starts where the stored one ended.
        let stored_final = *report.accuracies.last().unwrap();
        assert!(
            continued.accuracies[0] >= stored_final - 1e-9,
            "restore lost quality: {} vs {}",
            continued.accuracies[0],
            stored_final
        );
        assert_eq!(continued.accuracies.len(), 3);
    }

    #[test]
    fn replay_with_empty_feedback_is_the_untrained_learner() {
        let clip = prepare_clip(&Scenario::tunnel_small(63), &PipelineOptions::default());
        let row = SessionRow {
            session_id: 9,
            clip_id: 1,
            query: "accident".into(),
            learner: "MIL_OneClassSVM".into(),
            feedback: vec![],
            accuracies: vec![],
        };
        let learner = replay_session(&clip.bags, &row, LearnerKind::paper_ocsvm()).unwrap();
        // Untrained OCSVM falls back to the heuristic ranking.
        let replayed = rank_by(&clip.bags, |b| learner.score(b));
        let heuristic = rank_by(&clip.bags, tsvr_mil::heuristic::bag_score);
        assert_eq!(replayed, heuristic);
    }
}
