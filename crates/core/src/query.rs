//! Event queries.
//!
//! The paper's user "specifies an event of interest as the query
//! target" (§5.3); the evaluation queries accidents, and §4 notes the
//! event model "may also be adjusted to detect U-turns, speeding and any
//! other event". A query here is a named set of incident kinds that the
//! feedback oracle treats as relevant.

use tsvr_sim::IncidentKind;

/// A named query over incident kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventQuery {
    /// Display name (stored with persisted sessions).
    pub name: &'static str,
    /// Incident kinds considered relevant.
    pub kinds: Vec<IncidentKind>,
}

impl EventQuery {
    /// The paper's evaluation query: traffic accidents.
    pub fn accidents() -> EventQuery {
        EventQuery {
            name: "accident",
            kinds: vec![
                IncidentKind::WallCrash,
                IncidentKind::SuddenStop,
                IncidentKind::RearEndCrash,
                IncidentKind::SideCollision,
            ],
        }
    }

    /// U-turn query (§4's alternative event type).
    pub fn u_turns() -> EventQuery {
        EventQuery {
            name: "u_turn",
            kinds: vec![IncidentKind::UTurn],
        }
    }

    /// Speeding query.
    pub fn speeding() -> EventQuery {
        EventQuery {
            name: "speeding",
            kinds: vec![IncidentKind::Speeding],
        }
    }

    /// Whether an incident kind matches this query.
    pub fn matches(&self, kind: IncidentKind) -> bool {
        self.kinds.contains(&kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accident_query_covers_all_accident_kinds() {
        let q = EventQuery::accidents();
        for k in [
            IncidentKind::WallCrash,
            IncidentKind::SuddenStop,
            IncidentKind::RearEndCrash,
            IncidentKind::SideCollision,
        ] {
            assert!(q.matches(k));
            assert!(k.is_accident());
        }
        assert!(!q.matches(IncidentKind::UTurn));
        assert!(!q.matches(IncidentKind::Speeding));
    }

    #[test]
    fn alternative_queries_are_disjoint_from_accidents() {
        let a = EventQuery::accidents();
        let u = EventQuery::u_turns();
        let s = EventQuery::speeding();
        assert!(u.kinds.iter().all(|&k| !a.matches(k)));
        assert!(s.kinds.iter().all(|&k| !a.matches(k)));
        assert!(u.matches(IncidentKind::UTurn));
        assert!(s.matches(IncidentKind::Speeding));
    }
}
