//! Event queries.
//!
//! The paper's user "specifies an event of interest as the query
//! target" (§5.3); the evaluation queries accidents, and §4 notes the
//! event model "may also be adjusted to detect U-turns, speeding and any
//! other event". A query here is a named set of incident kinds that the
//! feedback oracle treats as relevant.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use tsvr_sim::IncidentKind;

/// Typed failure of [`EventQuery::from_name`]: the (normalized) name
/// matched no composite and no [`IncidentKind`]. Carries the nearest
/// valid names so callers — the CLI, the serve protocol, the query
/// planner — can say "did you mean …" instead of a bare not-found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownEventName {
    /// The name as the caller gave it (before normalization).
    pub given: String,
    /// Valid names closest to `given` by edit distance, best first.
    pub suggestions: Vec<&'static str>,
}

impl fmt::Display for UnknownEventName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown event {:?}", self.given)?;
        if !self.suggestions.is_empty() {
            write!(f, " (did you mean {}?)", self.suggestions.join(" or "))?;
        }
        Ok(())
    }
}

impl std::error::Error for UnknownEventName {}

/// A named query over incident kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventQuery {
    /// Display name (stored with persisted sessions).
    pub name: &'static str,
    /// Incident kinds considered relevant.
    pub kinds: Vec<IncidentKind>,
}

impl EventQuery {
    /// The paper's evaluation query: traffic accidents.
    pub fn accidents() -> EventQuery {
        EventQuery {
            name: "accident",
            kinds: vec![
                IncidentKind::WallCrash,
                IncidentKind::SuddenStop,
                IncidentKind::RearEndCrash,
                IncidentKind::SideCollision,
            ],
        }
    }

    /// U-turn query (§4's alternative event type).
    pub fn u_turns() -> EventQuery {
        EventQuery {
            name: "u_turn",
            kinds: vec![IncidentKind::UTurn],
        }
    }

    /// Speeding query.
    pub fn speeding() -> EventQuery {
        EventQuery {
            name: "speeding",
            kinds: vec![IncidentKind::Speeding],
        }
    }

    /// A single-kind query targeting one incident kind (the fleet
    /// members' queries: each scenario is retrieved by its own target).
    pub fn for_kind(kind: IncidentKind) -> EventQuery {
        EventQuery {
            name: kind.name(),
            kinds: vec![kind],
        }
    }

    /// Every name [`EventQuery::from_name`] accepts: the composites
    /// first, then each [`IncidentKind`] name.
    pub fn valid_names() -> Vec<&'static str> {
        let mut names = vec!["accident"];
        names.extend(IncidentKind::ALL.iter().map(|k| k.name()));
        names
    }

    /// Parses a query name: the named composites (`accident`) first,
    /// then any single [`IncidentKind`] name (`u_turn`, `wrong_way`,
    /// `near_miss_brake`, ...). The name is normalized before matching
    /// — surrounding whitespace is trimmed, ASCII case is folded, and
    /// `-`/space separators become `_` — so `" Wrong-Way "` parses.
    /// An unmatched name is a typed [`UnknownEventName`] carrying the
    /// nearest valid names.
    pub fn from_name(name: &str) -> Result<EventQuery, UnknownEventName> {
        let normalized: String = name
            .trim()
            .chars()
            .map(|c| match c {
                '-' | ' ' => '_',
                c => c.to_ascii_lowercase(),
            })
            .collect();
        match normalized.as_str() {
            "accident" | "accidents" => Ok(EventQuery::accidents()),
            other => IncidentKind::from_name(other)
                .map(EventQuery::for_kind)
                .ok_or_else(|| UnknownEventName {
                    given: name.to_string(),
                    suggestions: crate::qlang::nearest_names(
                        &normalized,
                        &EventQuery::valid_names(),
                    ),
                }),
        }
    }

    /// Whether an incident kind matches this query.
    pub fn matches(&self, kind: IncidentKind) -> bool {
        self.kinds.contains(&kind)
    }
}

/// One retrieval result: a window of a clip with its score.
#[derive(Debug, Clone, Copy)]
pub struct RankedWindow {
    /// Retrieval score; `NaN` inputs are mapped to `-∞` on entry.
    pub score: f64,
    /// Clip the window belongs to.
    pub clip_id: u64,
    /// Window index within that clip. `u64` — not `u32` — so a `usize`
    /// bag id converts losslessly on every supported platform; the old
    /// `as u32` narrowing silently aliased windows past 2³² (the same
    /// class of bug as the pre-widening u32 frame spans).
    pub window_index: u64,
}

impl RankedWindow {
    /// Total rank order: higher score first, ties broken by lower clip
    /// id then lower window index. Because the tie-break covers the
    /// full identity of a window, the order — and therefore any top-k
    /// cut through it — is unique, which is what makes cross-clip
    /// results reproducible at any thread count.
    fn rank(&self, other: &RankedWindow) -> Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.clip_id.cmp(&self.clip_id))
            .then_with(|| other.window_index.cmp(&self.window_index))
    }
}

impl PartialEq for RankedWindow {
    fn eq(&self, other: &Self) -> bool {
        self.rank(other) == Ordering::Equal
    }
}

impl Eq for RankedWindow {}

impl PartialOrd for RankedWindow {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RankedWindow {
    /// `Greater` means *ranks better* (see [`RankedWindow::rank`]).
    fn cmp(&self, other: &Self) -> Ordering {
        self.rank(other)
    }
}

/// A bounded top-k accumulator over [`RankedWindow`]s.
///
/// Internally a min-heap of the k best entries seen so far: the root is
/// the *worst kept* result, so each offer is one comparison in the
/// common case and `O(log k)` when it displaces the root. Scores that
/// are `NaN` are mapped to `-∞` before insertion (the `mil` ranking
/// convention), so an undefined score can never panic the merge or
/// shadow a real result.
#[derive(Debug)]
pub struct TopK {
    capacity: usize,
    heap: BinaryHeap<std::cmp::Reverse<RankedWindow>>,
}

impl TopK {
    /// Creates an accumulator keeping the best `capacity` windows.
    pub fn new(capacity: usize) -> TopK {
        TopK {
            capacity,
            heap: BinaryHeap::with_capacity(capacity.saturating_add(1)),
        }
    }

    /// Offers one scored window.
    pub fn push(&mut self, score: f64, clip_id: u64, window_index: u64) {
        if self.capacity == 0 {
            return;
        }
        tsvr_obs::counter!("query.topk.pushed").incr();
        let entry = RankedWindow {
            score: if score.is_nan() {
                f64::NEG_INFINITY
            } else {
                score
            },
            clip_id,
            window_index,
        };
        if self.heap.len() < self.capacity {
            self.heap.push(std::cmp::Reverse(entry));
        } else if entry > self.heap.peek().expect("non-empty at capacity").0 {
            tsvr_obs::counter!("query.topk.evicted").incr();
            self.heap.pop();
            self.heap.push(std::cmp::Reverse(entry));
        } else {
            tsvr_obs::counter!("query.topk.evicted").incr();
        }
    }

    /// Number of windows currently kept.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been kept.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consumes the accumulator, returning the kept windows best-first.
    pub fn into_sorted(self) -> Vec<RankedWindow> {
        let mut v: Vec<RankedWindow> = self.heap.into_iter().map(|r| r.0).collect();
        v.sort_by(|a, b| b.cmp(a));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accident_query_covers_all_accident_kinds() {
        let q = EventQuery::accidents();
        for k in [
            IncidentKind::WallCrash,
            IncidentKind::SuddenStop,
            IncidentKind::RearEndCrash,
            IncidentKind::SideCollision,
        ] {
            assert!(q.matches(k));
            assert!(k.is_accident());
        }
        assert!(!q.matches(IncidentKind::UTurn));
        assert!(!q.matches(IncidentKind::Speeding));
    }

    #[test]
    fn alternative_queries_are_disjoint_from_accidents() {
        let a = EventQuery::accidents();
        let u = EventQuery::u_turns();
        let s = EventQuery::speeding();
        assert!(u.kinds.iter().all(|&k| !a.matches(k)));
        assert!(s.kinds.iter().all(|&k| !a.matches(k)));
        assert!(u.matches(IncidentKind::UTurn));
        assert!(s.matches(IncidentKind::Speeding));
    }

    #[test]
    fn query_names_round_trip_through_from_name() {
        assert_eq!(EventQuery::from_name("accident"), Ok(EventQuery::accidents()));
        assert_eq!(EventQuery::from_name("u_turn"), Ok(EventQuery::u_turns()));
        assert_eq!(EventQuery::from_name("speeding"), Ok(EventQuery::speeding()));
        assert!(EventQuery::from_name("warp_drive").is_err());
        // Every incident kind — including the fleet kinds — is queryable
        // by name, and the query is the single-kind query.
        for k in IncidentKind::ALL {
            let q = EventQuery::from_name(k.name());
            if k.is_accident() {
                assert!(q.is_ok());
            } else {
                assert_eq!(q, Ok(EventQuery::for_kind(k)));
                assert_eq!(q.unwrap().name, k.name());
            }
        }
    }

    #[test]
    fn from_name_normalizes_case_space_and_hyphens() {
        assert_eq!(EventQuery::from_name("  Accident "), Ok(EventQuery::accidents()));
        assert_eq!(EventQuery::from_name("Wrong-Way"), Ok(EventQuery::for_kind(IncidentKind::WrongWay)));
        assert_eq!(EventQuery::from_name("sudden stop"), Ok(EventQuery::for_kind(IncidentKind::SuddenStop)));
    }

    #[test]
    fn unknown_event_name_carries_nearest_suggestions() {
        let err = EventQuery::from_name("acident").unwrap_err();
        assert_eq!(err.given, "acident");
        assert_eq!(err.suggestions.first().copied(), Some("accident"));
        let msg = err.to_string();
        assert!(msg.contains("acident") && msg.contains("did you mean"), "{msg}");
        // A name nothing resembles still errors (suggestions may be
        // empty or distant, but never panic).
        assert!(EventQuery::from_name("zzzzzzzzzzzzzzzzzzzz").is_err());
    }

    #[test]
    fn topk_order_matches_mil_rank_with_ties() {
        // Single-clip pin: TopK's (score desc, clip id, window index)
        // order must coincide with `mil::metrics::rank_with_ties`'s
        // index tie-break, so a precision@k computed over a mil ranking
        // agrees with what the TopK-served query path would return for
        // the same scores.
        let scores = [0.4, f64::NAN, 0.9, 0.4, 0.4, 0.2, 0.9];
        let mut tk = TopK::new(scores.len());
        for (w, &s) in scores.iter().enumerate() {
            tk.push(s, 0, w as u64);
        }
        let topk_order: Vec<usize> = tk
            .into_sorted()
            .iter()
            .map(|r| r.window_index as usize)
            .collect();
        assert_eq!(topk_order, tsvr_mil::metrics::rank_with_ties(&scores));
    }

    #[test]
    fn topk_keeps_best_and_sorts_descending() {
        let mut tk = TopK::new(3);
        for (i, s) in [0.1, 0.9, 0.5, 0.7, 0.2].into_iter().enumerate() {
            tk.push(s, 1, i as u64);
        }
        let out = tk.into_sorted();
        let scores: Vec<f64> = out.iter().map(|r| r.score).collect();
        assert_eq!(scores, vec![0.9, 0.7, 0.5]);
    }

    #[test]
    fn topk_ties_break_by_clip_then_window() {
        let mut tk = TopK::new(4);
        tk.push(0.5, 2, 7);
        tk.push(0.5, 1, 9);
        tk.push(0.5, 1, 3);
        tk.push(0.5, 2, 1);
        let out = tk.into_sorted();
        let keys: Vec<(u64, u64)> = out.iter().map(|r| (r.clip_id, r.window_index)).collect();
        assert_eq!(keys, vec![(1, 3), (1, 9), (2, 1), (2, 7)]);
    }

    #[test]
    fn topk_maps_nan_to_lowest_and_never_panics() {
        let mut tk = TopK::new(2);
        tk.push(f64::NAN, 1, 0);
        tk.push(0.1, 1, 1);
        tk.push(f64::NAN, 2, 2);
        tk.push(-5.0, 2, 3);
        let out = tk.into_sorted();
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].clip_id, out[0].window_index), (1, 1));
        assert_eq!((out[1].clip_id, out[1].window_index), (2, 3));
        assert_eq!(out[0].score, 0.1);
    }

    #[test]
    fn topk_insertion_order_does_not_matter() {
        let mut entries: Vec<(f64, u64, u64)> = (0u32..40)
            .map(|i| (f64::from(i % 7) * 0.3, u64::from(i / 10), u64::from(i)))
            .collect();
        let mut a = TopK::new(5);
        for &(s, c, w) in &entries {
            a.push(s, c, w);
        }
        entries.reverse();
        let mut b = TopK::new(5);
        for &(s, c, w) in &entries {
            b.push(s, c, w);
        }
        let ka: Vec<(u64, u64)> = a.into_sorted().iter().map(|r| (r.clip_id, r.window_index)).collect();
        let kb: Vec<(u64, u64)> = b.into_sorted().iter().map(|r| (r.clip_id, r.window_index)).collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn topk_zero_capacity_is_inert() {
        let mut tk = TopK::new(0);
        tk.push(1.0, 1, 1);
        assert!(tk.is_empty());
        assert_eq!(tk.len(), 0);
        assert!(tk.into_sorted().is_empty());
    }
}
