//! Property tests for the query language and the progressive planner.
//!
//! The planner's contract is that pruning is *invisible*: for any
//! query, running the three progressive stages over a sharded archive
//! must produce exactly the ranking you would get by scoring every
//! window of every clip and post-filtering — same windows, same order,
//! same score bits. These tests check that contract over randomly
//! generated queries against a real on-disk archive whose clips all
//! straddle shard bucket boundaries (the historically dangerous case),
//! plus a parser round-trip property over randomly generated ASTs.
//!
//! Driven by the in-tree seeded harness (`tsvr_sim::check`).

use std::path::PathBuf;
use tsvr_core::{
    bags_from_bundle, build_index, bundle_from_clip, dataset_from_bundle, heuristic_topk,
    parse_query, prepare_clip, Clause, ClipWindows, Cmp, EventQuery, FeatureField,
    PipelineOptions, Planner, Query, RankedWindow, Scorer, NOMINAL_FPS,
};
use tsvr_sim::check;
use tsvr_sim::{Pcg32, Scenario, VehicleClass};
use tsvr_trajectory::WindowConfig;
use tsvr_viddb::{AnyDb, ClipBundle, ClipMeta, ShardedDb};

/// Short buckets (7 s) against 16 s clips: every clip straddles at
/// least two buckets, so any pruning bug that assumes clips fit inside
/// their route's bucket shows up immediately.
const BUCKET_SECS: u64 = 7;

struct Archive {
    db: AnyDb,
    metas: Vec<ClipMeta>,
    bundles: Vec<ClipBundle>,
    /// Every clip's windows ranked once, unfiltered, in global order.
    full_ranking: Vec<RankedWindow>,
    #[allow(dead_code)]
    dir: PathBuf,
}

/// Builds the shared archive: four pipeline clips on two cameras, at
/// start times chosen to straddle bucket boundaries, half of them with
/// stored TSIX segments (exercising the index-served stage-2 path) and
/// half without (exercising the bundle fallback).
fn build_archive(tag: &str) -> Archive {
    let mut dir = std::env::temp_dir();
    dir.push(format!("tsvr-qlang-props-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = ShardedDb::open_with_bucket(&dir, BUCKET_SECS).expect("open");
    // (camera, start_time): starts sit mid-bucket so clip spans cross
    // into the following bucket(s).
    let placements = [("cam-0", 3u64), ("cam-0", 20), ("cam-1", 6), ("cam-1", 13)];
    let mut metas = Vec::new();
    let mut bundles = Vec::new();
    for (i, (camera, start_time)) in placements.iter().enumerate() {
        let clip_id = i as u64 + 1;
        let clip = prepare_clip(
            &Scenario::tunnel_small(500 + clip_id),
            &PipelineOptions::default(),
        );
        let meta = ClipMeta {
            clip_id,
            name: format!("clip-{clip_id}"),
            location: "props".into(),
            camera: (*camera).into(),
            start_time: *start_time,
            frame_count: clip.sim.frames.len() as u32,
            width: clip.sim.width,
            height: clip.sim.height,
        };
        let bundle = bundle_from_clip(&clip, meta.clone());
        db.put_clip(&bundle).expect("put_clip");
        if clip_id.is_multiple_of(2) {
            let dataset = dataset_from_bundle(&bundle, WindowConfig::default());
            build_index(db.shard_for_clip_mut(clip_id).expect("shard"), clip_id, &dataset)
                .expect("build_index");
        }
        metas.push(meta);
        bundles.push(bundle);
    }
    db.sync().expect("sync");
    let db: AnyDb = db.into();
    let flat: Vec<ClipWindows> = bundles
        .iter()
        .map(|b| ClipWindows {
            clip_id: b.meta.clip_id,
            bags: bags_from_bundle(b, &WindowConfig::default().features),
        })
        .collect();
    let total: usize = flat.iter().map(|c| c.bags.len()).sum();
    let full_ranking = heuristic_topk(&flat, total);
    // Touch the db once so lazily opened shards are warm before cases run.
    assert_eq!(db.list_clips().len(), metas.len());
    Archive {
        db,
        metas,
        bundles,
        full_ranking,
        dir,
    }
}

impl Drop for Archive {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Independent evaluation of a query against raw bundle rows — a
/// deliberate re-implementation of the clause semantics (documented in
/// DESIGN.md §5k), not a call into the planner's compiled form.
fn reference_admits(query: &Query, meta: &ClipMeta, bundle: &ClipBundle, window: u64) -> bool {
    let row = bundle
        .windows
        .iter()
        .find(|w| u64::from(w.window_index) == window)
        .expect("ranked window exists");
    let w_start = meta.start_time + u64::from(row.start_frame) / NOMINAL_FPS;
    let w_end = meta.start_time + u64::from(row.end_frame).div_ceil(NOMINAL_FPS);
    let lane = |f: FeatureField| match f {
        FeatureField::InvMdist => 0usize,
        FeatureField::Vdiff => 1,
        FeatureField::Theta => 2,
    };
    let alphas = row.sequences.iter().flat_map(|s| s.alphas.iter());
    query.clauses.iter().all(|clause| match clause {
        Clause::Cameras(cams) => cams.contains(&meta.camera),
        Clause::Time { from, to } => {
            w_start <= to.unwrap_or(u64::MAX) && w_end >= from.unwrap_or(0)
        }
        Clause::Feature { field, op, value } => {
            let sat = |x: f64| match op {
                Cmp::Lt => x < *value,
                Cmp::Le => x <= *value,
                Cmp::Gt => x > *value,
                Cmp::Ge => x >= *value,
            };
            alphas.clone().any(|a| sat(a[lane(*field)]))
        }
        Clause::FeatureIn { field, lo, hi } => alphas
            .clone()
            .any(|a| a[lane(*field)] >= *lo && a[lane(*field)] <= *hi),
        Clause::Event(ev) => bundle.incidents.iter().any(|inc| {
            tsvr_sim::IncidentKind::from_name(&inc.kind).is_some_and(|k| ev.matches(k))
                && u64::from(inc.start_frame) <= u64::from(row.end_frame)
                && u64::from(row.start_frame) <= u64::from(inc.end_frame)
        }),
        Clause::Class(_) => unreachable!("class clauses not generated here"),
    })
}

/// The ground truth: walk the unfiltered global ranking, keep windows
/// the reference evaluator admits, stop at `k`.
fn reference_topk(archive: &Archive, query: &Query, k: usize) -> Vec<RankedWindow> {
    let mut kept = Vec::new();
    for r in &archive.full_ranking {
        let idx = (r.clip_id - 1) as usize;
        if reference_admits(query, &archive.metas[idx], &archive.bundles[idx], r.window_index) {
            kept.push(*r);
            if kept.len() == k {
                break;
            }
        }
    }
    kept
}

fn assert_same_ranking(planned: &[RankedWindow], reference: &[RankedWindow], ctx: &str) {
    assert_eq!(planned.len(), reference.len(), "{ctx}: lengths differ");
    for (p, r) in planned.iter().zip(reference) {
        assert!(
            p.clip_id == r.clip_id
                && p.window_index == r.window_index
                && p.score.to_bits() == r.score.to_bits(),
            "{ctx}: planned {p:?} != reference {r:?}"
        );
    }
}

/// A random query over the archive's actual value ranges: cameras that
/// exist (plus sometimes one that doesn't), time bounds around the
/// clips' spans, feature thresholds spanning sparse-to-dense
/// selectivity, and incident-kind events.
fn random_query(rng: &mut Pcg32) -> Query {
    let mut clauses = Vec::new();
    if rng.chance(0.6) {
        let cams = match rng.uniform_u32(4) {
            0 => vec!["cam-0".to_string()],
            1 => vec!["cam-1".to_string()],
            2 => vec!["cam-0".to_string(), "cam-1".to_string()],
            _ => vec!["cam-0".to_string(), "cam-9".to_string()],
        };
        clauses.push(Clause::Cameras(cams));
    }
    if rng.chance(0.7) {
        // Clip spans live in [3, 37); bounds beyond that exercise
        // prune-everything and prune-nothing extremes.
        let a = u64::from(rng.uniform_u32(45));
        let b = a + u64::from(rng.uniform_u32(20));
        clauses.push(match rng.uniform_u32(3) {
            0 => Clause::Time {
                from: Some(a),
                to: Some(b),
            },
            1 => Clause::Time {
                from: Some(a),
                to: None,
            },
            _ => Clause::Time {
                from: None,
                to: Some(b),
            },
        });
    }
    for _ in 0..rng.uniform_u32(3) {
        let field = match rng.uniform_u32(3) {
            0 => FeatureField::InvMdist,
            1 => FeatureField::Vdiff,
            _ => FeatureField::Theta,
        };
        // Raw α magnitudes differ per lane; scale thresholds so both
        // all-pass and all-fail outcomes occur.
        let scale = match field {
            FeatureField::InvMdist => 0.2,
            FeatureField::Vdiff => 4.0,
            FeatureField::Theta => 1.0,
        };
        let x = rng.uniform(0.0, scale);
        clauses.push(if rng.chance(0.5) {
            let op = match rng.uniform_u32(4) {
                0 => Cmp::Lt,
                1 => Cmp::Le,
                2 => Cmp::Gt,
                _ => Cmp::Ge,
            };
            Clause::Feature {
                field,
                op,
                value: x,
            }
        } else {
            Clause::FeatureIn {
                field,
                lo: x * 0.25,
                hi: x,
            }
        });
    }
    if rng.chance(0.3) {
        let name = ["accident", "wall_crash", "sudden_stop"][rng.uniform_usize(3)];
        clauses.push(Clause::Event(EventQuery::from_name(name).unwrap()));
    }
    Query { clauses }
}

#[test]
fn planner_equals_post_filtered_full_scan() {
    let mut archive = build_archive("fullscan");
    check::cases(48, |case, rng| {
        let query = random_query(rng);
        let k = 1 + rng.uniform_usize(12);
        let planner = Planner::new(k);
        let out = planner
            .run(&mut archive.db, &query, Scorer::Heuristic)
            .expect("plan");
        assert!(out.degraded.is_empty(), "healthy archive degraded");
        let reference = reference_topk(&archive, &query, k);
        assert_same_ranking(&out.ranking, &reference, &format!("case {case}: {query}"));
        // Sanity on the receipt: counters must add up.
        let s = out.stats;
        assert_eq!(
            s.windows_ranked,
            s.windows_scanned - s.windows_prefiltered,
            "case {case}: stats inconsistent: {s:?}"
        );
    });
}

#[test]
fn bucket_straddling_clips_are_never_pruned() {
    let mut archive = build_archive("straddle");
    // Every clip starts mid-bucket and runs 16 s across ≥2 buckets.
    // Probe single-bucket time windows across the whole timeline: a
    // clip must answer queries for *any* bucket its real span touches,
    // including buckets after the one its route is filed under.
    check::cases(48, |case, rng| {
        let bucket = u64::from(rng.uniform_u32(7));
        let (from, to) = (bucket * BUCKET_SECS, (bucket + 1) * BUCKET_SECS - 1);
        let query = Query {
            clauses: vec![Clause::Time {
                from: Some(from),
                to: Some(to),
            }],
        };
        let out = Planner::new(64)
            .run(&mut archive.db, &query, Scorer::Heuristic)
            .expect("plan");
        let reference = reference_topk(&archive, &query, 64);
        assert_same_ranking(
            &out.ranking,
            &reference,
            &format!("case {case}: bucket {bucket}"),
        );
        // Cross-check coverage directly from stored rows: every clip
        // with at least one window whose absolute time span overlaps
        // the probed bucket must appear in the (uncapped) result — even
        // when that bucket is *after* the one the clip's route is filed
        // under.
        for (meta, bundle) in archive.metas.iter().zip(&archive.bundles) {
            let overlaps = bundle.windows.iter().any(|w| {
                let w_start = meta.start_time + u64::from(w.start_frame) / NOMINAL_FPS;
                let w_end = meta.start_time + u64::from(w.end_frame).div_ceil(NOMINAL_FPS);
                w_start <= to && w_end >= from
            });
            let answered = out.ranking.iter().any(|r| r.clip_id == meta.clip_id);
            if overlaps {
                assert!(
                    answered,
                    "case {case}: clip {} (start {}) dropped for bucket {bucket} [{from}, {to}]",
                    meta.clip_id, meta.start_time
                );
            }
        }
    });
}

/// A random *valid* AST whose `Display` form must parse back to the
/// identical AST (names restricted to lexable idents).
fn random_ast(rng: &mut Pcg32) -> Query {
    let mut clauses = Vec::new();
    let n = rng.uniform_u32(4);
    for _ in 0..n {
        clauses.push(match rng.uniform_u32(6) {
            0 => {
                let name = ["accident", "wall_crash", "sudden_stop", "breakdown"]
                    [rng.uniform_usize(4)];
                match EventQuery::from_name(name) {
                    Ok(ev) => Clause::Event(ev),
                    Err(_) => continue,
                }
            }
            1 => Clause::Class(VehicleClass::ALL[rng.uniform_usize(VehicleClass::ALL.len())]),
            2 => {
                let m = 1 + rng.uniform_usize(3);
                let cams = (0..m)
                    .map(|_| format!("cam-{}.{}", rng.uniform_u32(10), rng.uniform_u32(10)))
                    .collect();
                Clause::Cameras(cams)
            }
            3 => {
                let a = rng.next_u64() % 100_000;
                match rng.uniform_u32(3) {
                    0 => Clause::Time {
                        from: Some(a),
                        to: Some(a + u64::from(rng.uniform_u32(3600))),
                    },
                    1 => Clause::Time {
                        from: Some(a),
                        to: None,
                    },
                    _ => Clause::Time {
                        from: None,
                        to: Some(a),
                    },
                }
            }
            4 => Clause::Feature {
                field: [FeatureField::InvMdist, FeatureField::Vdiff, FeatureField::Theta]
                    [rng.uniform_usize(3)],
                op: [Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge][rng.uniform_usize(4)],
                value: rng.uniform(0.0, 10.0),
            },
            _ => {
                let lo = rng.uniform(0.0, 5.0);
                Clause::FeatureIn {
                    field: [FeatureField::InvMdist, FeatureField::Vdiff, FeatureField::Theta]
                        [rng.uniform_usize(3)],
                    lo,
                    hi: lo + rng.uniform(0.0, 5.0),
                }
            }
        });
    }
    Query { clauses }
}

#[test]
fn display_of_random_asts_parses_back_identically() {
    check::cases(256, |case, rng| {
        let q = random_ast(rng);
        let text = q.to_string();
        let parsed = parse_query(&text)
            .unwrap_or_else(|e| panic!("case {case}: {text:?} failed to re-parse: {e}"));
        assert_eq!(parsed, q, "case {case}: round trip changed {text:?}");
    });
}
