//! Relevance oracles.
//!
//! In the paper a human inspects each returned Video Sequence and marks
//! it relevant if it shows the queried event (Fig. 7). For reproducible
//! experiments the oracle is a function of the ground-truth incident
//! log: a bag is relevant iff its frame span overlaps an incident of a
//! queried kind. A noisy wrapper models imperfect users.

/// A source of bag-level relevance labels.
pub trait Oracle {
    /// Returns the label for a bag id (true = relevant).
    fn label(&self, bag_id: usize) -> bool;

    /// Total number of relevant bags known to the oracle (used for
    /// reporting upper bounds on accuracy@n).
    fn relevant_count(&self) -> usize;
}

/// Oracle backed by a precomputed ground-truth label vector.
#[derive(Debug, Clone)]
pub struct GroundTruthOracle {
    labels: Vec<bool>,
}

impl GroundTruthOracle {
    /// Creates an oracle from per-bag labels (indexed by bag id).
    pub fn new(labels: Vec<bool>) -> GroundTruthOracle {
        GroundTruthOracle { labels }
    }

    /// The label vector.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }
}

impl Oracle for GroundTruthOracle {
    fn label(&self, bag_id: usize) -> bool {
        self.labels.get(bag_id).copied().unwrap_or(false)
    }

    fn relevant_count(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }
}

/// Oracle that flips a deterministic pseudo-random subset of labels,
/// modeling user mistakes at a given error rate.
#[derive(Debug, Clone)]
pub struct NoisyOracle {
    inner: GroundTruthOracle,
    flipped: Vec<bool>,
}

impl NoisyOracle {
    /// Wraps a ground-truth oracle, flipping each label independently
    /// with probability `error_rate` (deterministic in `seed`).
    pub fn new(inner: GroundTruthOracle, error_rate: f64, seed: u64) -> NoisyOracle {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let flipped = (0..inner.labels.len())
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                u < error_rate
            })
            .collect();
        NoisyOracle { inner, flipped }
    }
}

impl Oracle for NoisyOracle {
    fn label(&self, bag_id: usize) -> bool {
        let base = self.inner.label(bag_id);
        if self.flipped.get(bag_id).copied().unwrap_or(false) {
            !base
        } else {
            base
        }
    }

    fn relevant_count(&self) -> usize {
        (0..self.inner.labels.len())
            .filter(|&i| self.label(i))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_oracle_reads_labels() {
        let o = GroundTruthOracle::new(vec![true, false, true]);
        assert!(o.label(0));
        assert!(!o.label(1));
        assert!(o.label(2));
        assert!(!o.label(99)); // out of range = irrelevant
        assert_eq!(o.relevant_count(), 2);
    }

    #[test]
    fn noiseless_noisy_oracle_matches_inner() {
        let inner = GroundTruthOracle::new(vec![true, false, true, false]);
        let o = NoisyOracle::new(inner.clone(), 0.0, 42);
        for i in 0..4 {
            assert_eq!(o.label(i), inner.label(i));
        }
    }

    #[test]
    fn full_noise_flips_everything() {
        let inner = GroundTruthOracle::new(vec![true, false, true, false]);
        let o = NoisyOracle::new(inner.clone(), 1.0, 42);
        for i in 0..4 {
            assert_eq!(o.label(i), !inner.label(i));
        }
    }

    #[test]
    fn noise_is_deterministic_in_seed() {
        let inner = GroundTruthOracle::new(vec![true; 100]);
        let a = NoisyOracle::new(inner.clone(), 0.3, 7);
        let b = NoisyOracle::new(inner.clone(), 0.3, 7);
        let c = NoisyOracle::new(inner, 0.3, 8);
        let la: Vec<bool> = (0..100).map(|i| a.label(i)).collect();
        let lb: Vec<bool> = (0..100).map(|i| b.label(i)).collect();
        let lc: Vec<bool> = (0..100).map(|i| c.label(i)).collect();
        assert_eq!(la, lb);
        assert_ne!(la, lc);
    }

    #[test]
    fn moderate_noise_flips_roughly_expected_fraction() {
        let inner = GroundTruthOracle::new(vec![true; 1000]);
        let o = NoisyOracle::new(inner, 0.2, 3);
        let flipped = (0..1000).filter(|&i| !o.label(i)).count();
        assert!((120..280).contains(&flipped), "flipped {flipped}");
    }
}
