//! The traditional weighted relevance-feedback baseline (paper §6.2).
//!
//! Each of the three α features carries a weight, initially 1 (so the
//! initial round equals the heuristic query). After feedback, "the
//! feature vectors of all relevant trajectory sequences are gathered;
//! the inverse of the standard deviation of each feature is computed and
//! used as the updated weight". Large raw weights bias the score, so the
//! paper compares three normalizations and finds the percentage scheme
//! best:
//!
//! * none — raw `1/σ` weights;
//! * linear — min–max scaled to `[0, 1]` ("a weight that equals zero
//!   will always eliminate the corresponding feature", the flaw the
//!   paper observes);
//! * percentage — `w_i / Σ_j w_j`.

use crate::bag::Bag;
use crate::session::Learner;
use std::collections::HashSet;
use tsvr_linalg::stats::column_std_devs;

/// Weight normalization scheme (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Normalization {
    /// Raw inverse-σ weights.
    None,
    /// Linear min–max normalization to `[0, 1]`.
    Linear,
    /// Each weight as its percentage of the total (the paper's best).
    Percentage,
}

/// Guard added to σ before inversion so constant features get a large
/// (but finite) weight instead of ∞.
const SIGMA_FLOOR: f64 = 1e-6;

/// The weighted-RF baseline learner.
#[derive(Debug, Clone)]
pub struct WeightedRfLearner {
    /// Active normalization scheme.
    pub normalization: Normalization,
    weights: Option<Vec<f64>>,
    relevant_rows: Vec<Vec<f64>>,
    seen: HashSet<usize>,
}

impl WeightedRfLearner {
    /// Creates the baseline with the given normalization.
    pub fn new(normalization: Normalization) -> WeightedRfLearner {
        WeightedRfLearner {
            normalization,
            weights: None,
            relevant_rows: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// Current per-feature weights (all-ones before the first update).
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    fn recompute_weights(&mut self) {
        if self.relevant_rows.is_empty() {
            return;
        }
        let sigma = column_std_devs(&self.relevant_rows).expect("non-empty rows");
        let mut w: Vec<f64> = sigma.iter().map(|s| 1.0 / (s + SIGMA_FLOOR)).collect();
        match self.normalization {
            Normalization::None => {}
            Normalization::Linear => {
                let lo = w.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = w.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let span = hi - lo;
                for x in &mut w {
                    *x = if span > 0.0 { (*x - lo) / span } else { 1.0 };
                }
            }
            Normalization::Percentage => {
                let total: f64 = w.iter().sum();
                if total > 0.0 {
                    for x in &mut w {
                        *x /= total;
                    }
                }
            }
        }
        self.weights = Some(w);
    }

    fn point_score(&self, row: &[f64]) -> f64 {
        match &self.weights {
            Some(w) => row.iter().zip(w).map(|(&x, &wi)| wi * x * x).sum(),
            None => row.iter().map(|x| x * x).sum(),
        }
    }
}

impl Learner for WeightedRfLearner {
    fn learn(&mut self, bags: &[Bag], feedback: &[(usize, bool)]) {
        for &(bag_id, relevant) in feedback {
            if !self.seen.insert(bag_id) || !relevant {
                continue;
            }
            let Some(bag) = bags.iter().find(|b| b.id == bag_id) else {
                continue;
            };
            for inst in &bag.instances {
                for row in &inst.points {
                    self.relevant_rows.push(row.clone());
                }
            }
        }
        self.recompute_weights();
    }

    fn score(&self, bag: &Bag) -> f64 {
        bag.instances
            .iter()
            .map(|inst| {
                inst.points
                    .iter()
                    .map(|p| self.point_score(p))
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .fold(f64::NEG_INFINITY, f64::max)
    }

    fn name(&self) -> &'static str {
        match self.normalization {
            Normalization::None => "Weighted_RF_raw",
            Normalization::Linear => "Weighted_RF_linear",
            Normalization::Percentage => "Weighted_RF",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bag::Instance;

    fn bag_with_rows(id: usize, rows: Vec<Vec<f64>>) -> Bag {
        Bag::new(id, vec![Instance::new(id as u64, rows)])
    }

    #[test]
    fn initial_score_equals_square_sum() {
        let l = WeightedRfLearner::new(Normalization::Percentage);
        let b = bag_with_rows(0, vec![vec![0.3, 0.4, 0.0], vec![0.1, 0.0, 0.0]]);
        assert!((l.score(&b) - 0.25).abs() < 1e-12);
        assert!(l.weights().is_none());
    }

    #[test]
    fn weights_favor_low_variance_features() {
        let mut l = WeightedRfLearner::new(Normalization::Percentage);
        // Relevant rows: feature 0 stable (σ≈0), feature 1 varies, 2 varies more.
        let bags = vec![
            bag_with_rows(0, vec![vec![0.5, 0.1, 0.9], vec![0.5, 0.4, 0.1]]),
            bag_with_rows(1, vec![vec![0.5, 0.9, 0.5], vec![0.5, 0.2, 0.0]]),
        ];
        l.learn(&bags, &[(0, true), (1, true)]);
        let w = l.weights().unwrap();
        assert!(w[0] > w[1] && w[0] > w[2], "weights {w:?}");
        // Percentage normalization sums to 1.
        let total: f64 = w.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_normalization_zeroes_weakest_feature() {
        let mut l = WeightedRfLearner::new(Normalization::Linear);
        let bags = vec![
            bag_with_rows(0, vec![vec![0.5, 0.1, 0.9], vec![0.5, 0.4, 0.1]]),
            bag_with_rows(1, vec![vec![0.5, 0.9, 0.5], vec![0.5, 0.2, 0.0]]),
        ];
        l.learn(&bags, &[(0, true), (1, true)]);
        let w = l.weights().unwrap();
        // The paper's observed flaw: the min weight becomes exactly 0.
        assert!(w.contains(&0.0), "weights {w:?}");
        assert!(w.contains(&1.0));
    }

    #[test]
    fn raw_normalization_keeps_inverse_sigma() {
        let mut l = WeightedRfLearner::new(Normalization::None);
        let bags = vec![bag_with_rows(
            0,
            vec![vec![0.0, 0.0, 0.0], vec![1.0, 2.0, 4.0]],
        )];
        l.learn(&bags, &[(0, true)]);
        let w = l.weights().unwrap();
        // σ = [0.5, 1.0, 2.0] -> w ≈ [2, 1, 0.5].
        assert!((w[0] - 2.0).abs() < 1e-3);
        assert!((w[1] - 1.0).abs() < 1e-3);
        assert!((w[2] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn irrelevant_bags_do_not_update_weights() {
        let mut l = WeightedRfLearner::new(Normalization::Percentage);
        let bags = vec![bag_with_rows(0, vec![vec![0.9, 0.9, 0.9]])];
        l.learn(&bags, &[(0, false)]);
        assert!(l.weights().is_none());
    }

    #[test]
    fn duplicate_feedback_ignored() {
        let mut l = WeightedRfLearner::new(Normalization::None);
        let bags = vec![bag_with_rows(
            0,
            vec![vec![0.1, 0.2, 0.3], vec![0.3, 0.2, 0.1]],
        )];
        l.learn(&bags, &[(0, true)]);
        let w1 = l.weights().unwrap().to_vec();
        l.learn(&bags, &[(0, true)]);
        assert_eq!(l.weights().unwrap(), &w1[..]);
    }

    #[test]
    fn weighting_changes_ranking() {
        let mut l = WeightedRfLearner::new(Normalization::Percentage);
        // Relevant data says feature 1 (vdiff) is the consistent one.
        let bags = vec![
            bag_with_rows(0, vec![vec![0.1, 0.8, 0.3]]),
            bag_with_rows(1, vec![vec![0.6, 0.8, 0.9]]),
        ];
        l.learn(&bags, &[(0, true), (1, true)]);
        // Candidate A is hot in feature 1; candidate B equally hot in
        // feature 2 (which varies, hence downweighted).
        let a = bag_with_rows(10, vec![vec![0.0, 0.8, 0.0]]);
        let b = bag_with_rows(11, vec![vec![0.0, 0.0, 0.8]]);
        assert!(l.score(&a) > l.score(&b));
    }

    #[test]
    fn names_distinguish_normalizations() {
        assert_ne!(
            WeightedRfLearner::new(Normalization::None).name(),
            WeightedRfLearner::new(Normalization::Percentage).name()
        );
    }
}
