//! Query by example (paper §7, future work).
//!
//! "Currently, the framework only supports the user's query by specified
//! event types. We will extend this to include query by example …".
//! Here the user hands the system one or more example Video Sequences
//! ("find more like this window") instead of naming an event type. The
//! scorer is a kernel nearest-neighbour over trajectory sequences: a bag
//! scores as the best kernel similarity between any of its TSs and any
//! example TS. It also implements [`Learner`], folding later relevance
//! feedback into the example set, so an example-seeded session runs
//! through the same protocol as the heuristic-seeded one.

use crate::bag::Bag;
use crate::heuristic;
use crate::session::Learner;
use std::collections::HashSet;
use tsvr_svm::Kernel;

/// Kernel nearest-neighbour scorer over example trajectory sequences.
#[derive(Debug, Clone)]
pub struct QueryByExample {
    /// Similarity kernel.
    pub kernel: Kernel,
    /// How many of a bag's top TSs seed the example set when a bag is
    /// added (the rest of the bag is usually quiet traffic).
    pub per_bag: usize,
    examples: Vec<Vec<f64>>,
    seen: HashSet<usize>,
}

impl QueryByExample {
    /// Creates an empty query (falls back to the heuristic until an
    /// example is added).
    pub fn new(kernel: Kernel) -> QueryByExample {
        QueryByExample {
            kernel,
            per_bag: 2,
            examples: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// Seeds the query with an example bag: its highest-scored
    /// trajectory sequences become exemplars (at most `per_bag`, and
    /// only those within half of the bag's top score — the example's
    /// quiet background traffic must not become an exemplar, or every
    /// quiet window would match the query perfectly).
    pub fn add_example_bag(&mut self, bag: &Bag) {
        let mut scored: Vec<(f64, Vec<f64>)> = bag
            .instances
            .iter()
            .map(|i| (heuristic::instance_score(i), i.concat()))
            .collect();
        scored.sort_by(|a, b| {
            heuristic::nan_to_lowest(b.0).total_cmp(&heuristic::nan_to_lowest(a.0))
        });
        let Some(top) = scored.first().map(|(s, _)| *s) else {
            return;
        };
        for (s, v) in scored.into_iter().take(self.per_bag) {
            if s >= top * 0.5 {
                self.examples.push(v);
            }
        }
    }

    /// Seeds the query with a raw feature vector (e.g. from a stored
    /// session or another clip).
    pub fn add_example_vector(&mut self, v: Vec<f64>) {
        self.examples.push(v);
    }

    /// Number of exemplars currently held.
    pub fn example_count(&self) -> usize {
        self.examples.len()
    }

    /// Best kernel similarity between the bag and any exemplar.
    pub fn similarity(&self, bag: &Bag) -> f64 {
        let mut best = f64::NEG_INFINITY;
        for inst in &bag.instances {
            let v = inst.concat();
            for e in &self.examples {
                best = best.max(self.kernel.eval(e, &v));
            }
        }
        best
    }
}

impl Learner for QueryByExample {
    fn learn(&mut self, bags: &[Bag], feedback: &[(usize, bool)]) {
        for &(bag_id, relevant) in feedback {
            if !self.seen.insert(bag_id) || !relevant {
                continue;
            }
            if let Some(bag) = bags.iter().find(|b| b.id == bag_id) {
                self.add_example_bag(bag);
            }
        }
    }

    fn score(&self, bag: &Bag) -> f64 {
        if self.examples.is_empty() {
            heuristic::bag_score(bag)
        } else {
            self.similarity(bag)
        }
    }

    fn name(&self) -> &'static str {
        "QueryByExample"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bag::Instance;

    fn bag(id: usize, hot_level: Option<f64>) -> Bag {
        let mut instances = vec![Instance::new(
            0,
            vec![vec![0.02, 0.01, 0.0], vec![0.01, 0.02, 0.01]],
        )];
        if let Some(l) = hot_level {
            instances.push(Instance::new(
                1,
                vec![vec![0.05, l, 0.1], vec![l * 0.4, l * 0.9, 0.0]],
            ));
        }
        Bag::new(id, instances)
    }

    fn rbf() -> Kernel {
        Kernel::Rbf { gamma: 4.0 }
    }

    #[test]
    fn example_seeding_picks_top_instances() {
        let mut q = QueryByExample::new(rbf());
        assert_eq!(q.example_count(), 0);
        q.add_example_bag(&bag(0, Some(0.8)));
        // Only the hot instance qualifies; the quiet cover is filtered.
        assert_eq!(q.example_count(), 1);
    }

    #[test]
    fn similar_bags_outrank_dissimilar() {
        let mut q = QueryByExample::new(rbf());
        q.add_example_bag(&bag(0, Some(0.8)));
        let similar = bag(1, Some(0.75));
        let dissimilar = bag(2, None);
        assert!(q.score(&similar) > q.score(&dissimilar));
        // Similarity is bounded by the kernel's K(x,x) = 1.
        assert!(q.score(&similar) <= 1.0 + 1e-12);
    }

    #[test]
    fn empty_query_falls_back_to_heuristic() {
        let q = QueryByExample::new(rbf());
        let hot = bag(0, Some(0.9));
        let cold = bag(1, None);
        assert!(q.score(&hot) > q.score(&cold));
    }

    #[test]
    fn feedback_expands_the_example_set() {
        let mut q = QueryByExample::new(rbf());
        q.add_example_bag(&bag(0, Some(0.8)));
        let n0 = q.example_count();
        let bags = vec![bag(1, Some(0.5)), bag(2, None)];
        q.learn(&bags, &[(1, true), (2, false)]);
        assert!(q.example_count() > n0);
        let n1 = q.example_count();
        // Irrelevant feedback adds nothing; repeated feedback ignored.
        q.learn(&bags, &[(1, true), (2, false)]);
        assert_eq!(q.example_count(), n1);
    }

    #[test]
    fn raw_vector_examples_work() {
        let mut q = QueryByExample::new(rbf());
        q.add_example_vector(vec![0.05, 0.8, 0.1, 0.32, 0.72, 0.0]);
        assert_eq!(q.example_count(), 1);
        assert!(q.score(&bag(0, Some(0.8))) > q.score(&bag(1, None)));
    }
}
