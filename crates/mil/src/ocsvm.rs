//! The proposed learner: One-class SVM over the trajectory sequences of
//! relevant bags (paper §5.2–5.3).
//!
//! After each feedback round the training set is extended with "the
//! highest scored TSs in the 'relevant' VSs" (§5.3): for every newly
//! labeled relevant Video Sequence, its top-scoring Trajectory Sequence
//! plus any other TS scoring at least `collect_ratio` of the bag's top
//! score (multi-vehicle accidents contribute several genuinely relevant
//! TSs; quiet background traffic scores orders of magnitude lower and is
//! excluded). With `h` relevant VSs contributing `H` collected TSs, at
//! least one TS per relevant VS is genuinely relevant, so the expected
//! fraction of mislabeled ("outlier") TSs in the training set is at most
//! `1 − h/H`; Eq. 9 sets the One-class SVM's outlier parameter to
//!
//! ```text
//! δ = 1 − (h/H + z)
//! ```
//!
//! with a small `z` (0.05 in the paper) absorbing multi-vehicle
//! accidents, where more than one TS per relevant VS is genuine.

use crate::bag::Bag;
use crate::heuristic;
use crate::session::Learner;
use std::collections::HashSet;
use tsvr_svm::{Kernel, OneClassModel, OneClassSvm};

/// The true median of an ascending-sorted, non-empty slice: the middle
/// element for odd lengths, the mean of the two middle elements for
/// even lengths (not the upper-middle shortcut, which biases γ low on
/// even-sized training sets).
fn true_median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// The One-class-SVM MIL learner.
#[derive(Debug, Clone)]
pub struct OcSvmMilLearner {
    /// Kernel for the One-class SVM (paper: RBF).
    pub kernel: Kernel,
    /// When set, an RBF kernel's γ is re-derived from the training set
    /// at each retraining with the median heuristic:
    /// `γ = scale / median(‖x_i − x_j‖²)`. The paper does not report its
    /// kernel width; the median heuristic is the standard way to keep
    /// the kernel matched to the data's scale as the training set grows.
    pub adaptive_gamma: Option<f64>,
    /// The `z` adjustment of Eq. 9 (paper: 0.05).
    pub z: f64,
    /// Bounds applied to δ so the SVM stays well-posed.
    pub delta_clamp: (f64, f64),
    /// A TS joins the training set when its heuristic score reaches
    /// this fraction of its bag's top score (1.0 = strictly the single
    /// best TS per relevant bag).
    pub collect_ratio: f64,
    /// Absolute heuristic-score floor for collection. A relevant bag
    /// whose event vehicle was lost by the tracker contains only quiet
    /// trajectories; collecting its "best" TS would anchor the one-class
    /// ball on the quiet cluster and invert the ranking. Such bags
    /// contribute nothing (and do not count toward `h`).
    pub min_collect_score: f64,
    relevant_bags: usize,
    training: Vec<Vec<f64>>,
    seen: HashSet<usize>,
    model: Option<OneClassModel>,
    /// Every pairwise squared distance among `training[..dists_upto]`
    /// above the degeneracy floor, appended incrementally as training
    /// vectors arrive so the median heuristic never rescans the full
    /// O(H²) set.
    pair_dists: Vec<f64>,
    /// How many training vectors `pair_dists` already covers.
    dists_upto: usize,
    /// When set (the default), the training Gram matrix is memoized
    /// across feedback rounds: each retraining only evaluates the
    /// kernel rows of vectors collected since the previous round.
    gram_memo: bool,
    /// The memoized `gram_n × gram_n` Gram matrix over
    /// `training[..gram_n]`, valid for `gram_kernel`.
    gram_cache: Vec<f64>,
    /// How many training vectors `gram_cache` covers.
    gram_n: usize,
    /// The kernel `gram_cache` was computed with. Any change (e.g. an
    /// adaptive-γ re-derivation) invalidates the cache: kernel values
    /// are kernel-dependent, so stale rows cannot be extended.
    gram_kernel: Option<Kernel>,
}

impl OcSvmMilLearner {
    /// Creates the learner with the paper's defaults (`z = 0.05`).
    pub fn new(kernel: Kernel) -> OcSvmMilLearner {
        OcSvmMilLearner {
            kernel,
            adaptive_gamma: None,
            z: 0.05,
            delta_clamp: (0.02, 0.8),
            collect_ratio: 0.85,
            min_collect_score: 0.08,
            relevant_bags: 0,
            training: Vec::new(),
            seen: HashSet::new(),
            model: None,
            pair_dists: Vec::new(),
            dists_upto: 0,
            gram_memo: true,
            gram_cache: Vec::new(),
            gram_n: 0,
            gram_kernel: None,
        }
    }

    /// Disables the cross-round Gram memoization, forcing every
    /// retraining to recompute the full kernel matrix from scratch.
    /// Exists for verification and benchmarking: the memoized and
    /// from-scratch paths must rank bit-identically.
    pub fn without_gram_memo(mut self) -> Self {
        self.gram_memo = false;
        self
    }

    /// Sets `z` (builder style).
    pub fn with_z(mut self, z: f64) -> Self {
        self.z = z;
        self
    }

    /// Enables the training-set median-heuristic γ (re-derived at each
    /// retraining). The preferred calibration is the *database*-level
    /// median heuristic computed by the retrieval engine before the
    /// session (see `tsvr-core`), which also covers unlabeled data.
    pub fn with_adaptive_gamma(mut self, scale: f64) -> Self {
        self.adaptive_gamma = Some(scale);
        self
    }

    /// Extends the pairwise-distance cache to cover every training
    /// vector: each vector added since the last retraining contributes
    /// its distances to all earlier vectors, exactly the pairs a full
    /// upper-triangle rescan would have produced.
    fn extend_pair_dists(&mut self) {
        for j in self.dists_upto..self.training.len() {
            let b = &self.training[j];
            for a in &self.training[..j] {
                let d = tsvr_linalg::vecops::sq_dist(a, b);
                if d > 1e-12 {
                    self.pair_dists.push(d);
                }
            }
        }
        self.dists_upto = self.training.len();
    }

    /// The kernel the next training run will use. Under the adaptive
    /// median heuristic the training-set pairwise distances come from
    /// the incrementally maintained cache, and the median is the true
    /// one (mean of the two middle elements for even-length lists).
    fn effective_kernel(&mut self) -> Kernel {
        match (self.kernel, self.adaptive_gamma) {
            (Kernel::Rbf { gamma }, Some(scale)) => {
                self.extend_pair_dists();
                if self.pair_dists.is_empty() {
                    return Kernel::Rbf { gamma };
                }
                let mut dists = self.pair_dists.clone();
                dists.sort_by(|a, b| a.total_cmp(b));
                let median = true_median(&dists);
                Kernel::Rbf {
                    gamma: scale / median,
                }
            }
            (k, _) => k,
        }
    }

    /// The current Eq. 9 outlier fraction, if any training data exists.
    pub fn delta(&self) -> Option<f64> {
        if self.training.is_empty() {
            return None;
        }
        let h = self.relevant_bags as f64;
        let cap_h = self.training.len() as f64;
        let raw = 1.0 - (h / cap_h + self.z);
        Some(raw.clamp(self.delta_clamp.0, self.delta_clamp.1))
    }

    /// Cumulative training-set size (the paper's `H`).
    pub fn training_size(&self) -> usize {
        self.training.len()
    }

    /// Cumulative relevant-bag count (the paper's `h`).
    pub fn relevant_bag_count(&self) -> usize {
        self.relevant_bags
    }

    /// The trained model, once at least one relevant bag was observed.
    pub fn model(&self) -> Option<&OneClassModel> {
        self.model.as_ref()
    }

    /// Brings the memoized Gram matrix up to date with `training` for
    /// `kernel`. A kernel change (adaptive γ re-derivation — including
    /// the NaN-γ degenerate case, where `PartialEq` reports inequality)
    /// recomputes from scratch; otherwise only the rows of vectors
    /// collected since the last round are evaluated, exactly the
    /// PR-5 pairwise-distance-cache strategy extended to the full
    /// retraining loop. Cache validity is independent of whether the
    /// subsequent SMO fit converges.
    fn update_gram(&mut self, kernel: Kernel) {
        let n = self.training.len();
        if self.gram_kernel != Some(kernel) {
            self.gram_cache = kernel.gram(&self.training);
            self.gram_kernel = Some(kernel);
        } else if self.gram_n < n {
            self.gram_cache = kernel.gram_extend(&self.training, &self.gram_cache, self.gram_n);
        }
        self.gram_n = n;
    }
}

impl Learner for OcSvmMilLearner {
    fn learn(&mut self, bags: &[Bag], feedback: &[(usize, bool)]) {
        for &(bag_id, relevant) in feedback {
            if self.seen.contains(&bag_id) {
                continue; // the user re-confirmed an earlier label
            }
            if !relevant {
                // One-class training uses relevant samples only;
                // irrelevant TSs are treated as outliers implicitly —
                // the label is consumed, just as a deliberate no-op.
                self.seen.insert(bag_id);
                continue;
            }
            // A bag id the database does not (yet) hold is unusable
            // feedback, not consumed feedback: the same label must
            // still count in a later round, e.g. after a re-ingest
            // repairs the tracker output. Do NOT mark it seen.
            let Some(bag) = bags.iter().find(|b| b.id == bag_id) else {
                continue;
            };
            // Collect the highest-scored TSs of this relevant VS.
            let scores: Vec<f64> = bag
                .instances
                .iter()
                .map(heuristic::instance_score)
                .collect();
            let top = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if top < self.min_collect_score {
                // Event vehicle untracked: unusable feedback. Leave the
                // bag unseen so the label is honored once the bag's
                // trajectories are repaired.
                continue;
            }
            self.seen.insert(bag_id);
            self.relevant_bags += 1;
            for (inst, &s) in bag.instances.iter().zip(&scores) {
                if s >= (top * self.collect_ratio).max(self.min_collect_score) {
                    self.training.push(inst.concat());
                }
            }
        }

        if let Some(delta) = self.delta() {
            let kernel = self.effective_kernel();
            let svm = OneClassSvm::new(kernel, delta);
            let fitted = if self.gram_memo {
                self.update_gram(kernel);
                svm.fit_with_gram(&self.training, &self.gram_cache)
            } else {
                svm.fit(&self.training)
            };
            match fitted {
                Ok(m) => self.model = Some(m),
                Err(_) => {
                    // Keep the previous model; the session degrades to
                    // the heuristic ranking rather than panicking.
                }
            }
        }
    }

    fn score(&self, bag: &Bag) -> f64 {
        match &self.model {
            Some(m) => bag
                .instances
                .iter()
                .map(|i| m.decision(&i.concat()))
                .fold(f64::NEG_INFINITY, f64::max),
            // Before any relevant feedback, fall back to the initial
            // heuristic (this matches the session protocol: round 0 is
            // always the heuristic).
            None => heuristic::bag_score(bag),
        }
    }

    fn score_all(&self, bags: &[Bag]) -> Vec<f64> {
        match &self.model {
            Some(m) => {
                // Flatten every instance of the database into one batch
                // so the kernel expansions fan out across worker
                // threads; the per-bag MIL max then folds in instance
                // order, keeping the result bit-identical to `score`.
                let xs: Vec<Vec<f64>> = bags
                    .iter()
                    .flat_map(|b| b.instances.iter().map(|i| i.concat()))
                    .collect();
                let decisions = m.decision_batch(&xs);
                let mut off = 0;
                bags.iter()
                    .map(|b| {
                        let n = b.instances.len();
                        let s = decisions[off..off + n]
                            .iter()
                            .copied()
                            .fold(f64::NEG_INFINITY, f64::max);
                        off += n;
                        s
                    })
                    .collect()
            }
            None => heuristic::bag_scores(bags),
        }
    }

    fn name(&self) -> &'static str {
        "MIL_OneClassSVM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bag::Instance;

    /// A bag whose single instance has the given constant rows.
    fn bag(id: usize, rows: Vec<Vec<f64>>) -> Bag {
        Bag::new(id, vec![Instance::new(id as u64, rows)])
    }

    fn hot_rows(level: f64) -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0, 0.0],
            vec![level, level * 0.8, level * 0.5],
            vec![level * 0.2, 0.1, 0.0],
        ]
    }

    fn quiet_rows(jitter: f64) -> Vec<Vec<f64>> {
        vec![
            vec![0.01 + jitter, 0.0, 0.01],
            vec![0.02, 0.01 + jitter, 0.0],
            vec![0.0, 0.02, 0.01],
        ]
    }

    fn rbf() -> Kernel {
        Kernel::Rbf { gamma: 2.0 }
    }

    #[test]
    fn delta_matches_equation_nine() {
        let mut l = OcSvmMilLearner::new(rbf());
        assert_eq!(l.delta(), None);
        // Two relevant bags: a single-vehicle accident and a
        // two-vehicle accident with background traffic.
        let bags = vec![
            bag(0, hot_rows(0.9)),
            Bag::new(
                1,
                vec![
                    Instance::new(10, hot_rows(0.8)),
                    Instance::new(11, hot_rows(0.78)), // second involved vehicle
                    Instance::new(12, quiet_rows(0.01)), // bystander, excluded
                ],
            ),
        ];
        l.learn(&bags, &[(0, true), (1, true)]);
        assert_eq!(l.relevant_bag_count(), 2);
        assert_eq!(l.training_size(), 3);
        // δ = 1 - (2/3 + 0.05) = 0.2833…
        assert!((l.delta().unwrap() - (1.0 - (2.0 / 3.0 + 0.05))).abs() < 1e-12);
    }

    #[test]
    fn quiet_instances_excluded_from_training() {
        let mut l = OcSvmMilLearner::new(rbf());
        let bags = vec![Bag::new(
            0,
            vec![
                Instance::new(1, hot_rows(0.9)),
                Instance::new(2, quiet_rows(0.0)),
                Instance::new(3, quiet_rows(0.02)),
            ],
        )];
        l.learn(&bags, &[(0, true)]);
        assert_eq!(l.training_size(), 1);
    }

    #[test]
    fn delta_clamped_when_all_singletons() {
        let mut l = OcSvmMilLearner::new(rbf());
        let bags = vec![bag(0, hot_rows(0.9)), bag(1, hot_rows(0.85))];
        l.learn(&bags, &[(0, true), (1, true)]);
        // Raw δ = 1 - (2/2 + 0.05) = -0.05 -> clamped to the floor.
        assert!((l.delta().unwrap() - 0.02).abs() < 1e-12);
        assert!(l.model().is_some());
    }

    #[test]
    fn irrelevant_feedback_not_added_to_training() {
        let mut l = OcSvmMilLearner::new(rbf());
        let bags = vec![bag(0, hot_rows(0.9)), bag(1, quiet_rows(0.0))];
        l.learn(&bags, &[(0, true), (1, false)]);
        assert_eq!(l.training_size(), 1);
        assert_eq!(l.relevant_bag_count(), 1);
    }

    #[test]
    fn repeated_feedback_is_idempotent() {
        let mut l = OcSvmMilLearner::new(rbf());
        let bags = vec![bag(0, hot_rows(0.9))];
        l.learn(&bags, &[(0, true)]);
        l.learn(&bags, &[(0, true)]);
        assert_eq!(l.training_size(), 1);
        assert_eq!(l.relevant_bag_count(), 1);
    }

    #[test]
    fn feedback_for_missing_bag_is_not_consumed() {
        // Round 1 labels a bag id the database does not hold (tracker
        // output lost); the label must not be permanently consumed.
        let mut l = OcSvmMilLearner::new(rbf());
        l.learn(&[], &[(7, true)]);
        assert_eq!(l.training_size(), 0);
        assert_eq!(l.relevant_bag_count(), 0);
        // Round 2: re-ingest repaired the clip and the bag now exists;
        // the identical feedback must be honored.
        let bags = vec![bag(7, hot_rows(0.9))];
        l.learn(&bags, &[(7, true)]);
        assert_eq!(l.training_size(), 1);
        assert_eq!(l.relevant_bag_count(), 1);
    }

    #[test]
    fn feedback_below_collect_floor_is_not_consumed() {
        // Round 1: the relevant bag's event vehicle was untracked, so
        // its best TS scores below `min_collect_score` — unusable.
        let mut l = OcSvmMilLearner::new(rbf());
        let broken = vec![bag(3, quiet_rows(0.0))];
        l.learn(&broken, &[(3, true)]);
        assert_eq!(l.training_size(), 0);
        assert_eq!(l.relevant_bag_count(), 0);
        // Round 2: re-ingest restored the hot trajectory; the same
        // label must now train the model instead of being ignored.
        let repaired = vec![bag(3, hot_rows(0.9))];
        l.learn(&repaired, &[(3, true)]);
        assert_eq!(l.training_size(), 1);
        assert_eq!(l.relevant_bag_count(), 1);
        assert!(l.model().is_some());
    }

    #[test]
    fn irrelevant_label_is_consumed_and_idempotent() {
        let mut l = OcSvmMilLearner::new(rbf());
        let bags = vec![bag(0, hot_rows(0.9)), bag(1, quiet_rows(0.0))];
        l.learn(&bags, &[(1, false)]);
        // A re-confirmed irrelevant label stays a no-op.
        l.learn(&bags, &[(1, false)]);
        assert_eq!(l.training_size(), 0);
    }

    #[test]
    fn adaptive_gamma_matches_from_scratch_median() {
        // The incrementally cached pairwise distances must yield
        // exactly the γ a from-scratch O(H²) rescan with the true
        // median would, across several retraining rounds.
        let mut l = OcSvmMilLearner::new(rbf()).with_adaptive_gamma(1.0);
        let bags: Vec<Bag> = (0..8)
            .map(|i| bag(i, hot_rows(0.5 + 0.05 * i as f64)))
            .collect();
        for round in 0..4 {
            let fb: Vec<(usize, bool)> = (round * 2..round * 2 + 2).map(|i| (i, true)).collect();
            l.learn(&bags, &fb);
            let Kernel::Rbf { gamma } = l.effective_kernel() else {
                panic!("adaptive RBF learner must stay RBF");
            };
            // From-scratch reference over the same training set.
            let mut dists = Vec::new();
            for (i, a) in l.training.iter().enumerate() {
                for b in l.training.iter().skip(i + 1) {
                    let d = tsvr_linalg::vecops::sq_dist(a, b);
                    if d > 1e-12 {
                        dists.push(d);
                    }
                }
            }
            dists.sort_by(|a, b| a.total_cmp(b));
            let expected = 1.0 / true_median(&dists);
            assert_eq!(
                gamma.to_bits(),
                expected.to_bits(),
                "round {round}: cached γ {gamma} != from-scratch γ {expected}"
            );
        }
    }

    #[test]
    fn true_median_of_even_list_averages_middle_pair() {
        assert_eq!(true_median(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(true_median(&[1.0, 2.0, 3.0, 10.0]), 2.5);
        assert_eq!(true_median(&[4.0]), 4.0);
    }

    #[test]
    fn scores_follow_heuristic_before_training() {
        let l = OcSvmMilLearner::new(rbf());
        let hot = bag(0, hot_rows(0.9));
        let quiet = bag(1, quiet_rows(0.0));
        assert!(l.score(&hot) > l.score(&quiet));
    }

    #[test]
    fn after_training_relevant_like_bags_score_higher() {
        let mut l = OcSvmMilLearner::new(rbf());
        // Train on several hot bags.
        let train: Vec<Bag> = (0..6)
            .map(|i| bag(i, hot_rows(0.8 + 0.02 * i as f64)))
            .collect();
        let fb: Vec<(usize, bool)> = (0..6).map(|i| (i, true)).collect();
        l.learn(&train, &fb);
        assert!(l.model().is_some());
        let similar = bag(100, hot_rows(0.83));
        let dissimilar = bag(101, quiet_rows(0.0));
        assert!(
            l.score(&similar) > l.score(&dissimilar),
            "similar {} vs dissimilar {}",
            l.score(&similar),
            l.score(&dissimilar)
        );
    }

    #[test]
    fn multi_instance_bag_scored_by_best_instance() {
        let mut l = OcSvmMilLearner::new(rbf());
        let train: Vec<Bag> = (0..6).map(|i| bag(i, hot_rows(0.8))).collect();
        let fb: Vec<(usize, bool)> = (0..6).map(|i| (i, true)).collect();
        l.learn(&train, &fb);
        // A bag holding one hot and one quiet instance scores like the
        // hot one (MIL max rule).
        let mixed = Bag::new(
            50,
            vec![
                Instance::new(1, quiet_rows(0.0)),
                Instance::new(2, hot_rows(0.8)),
            ],
        );
        let hot_only = bag(51, hot_rows(0.8));
        assert!((l.score(&mixed) - l.score(&hot_only)).abs() < 1e-9);
    }

    #[test]
    fn score_all_is_bit_identical_to_score() {
        let db = vec![
            bag(100, hot_rows(0.83)),
            bag(101, quiet_rows(0.0)),
            Bag::new(
                102,
                vec![
                    Instance::new(1, quiet_rows(0.01)),
                    Instance::new(2, hot_rows(0.7)),
                ],
            ),
            Bag::new(103, vec![]), // empty bag: -inf on both paths
        ];
        // Untrained learner (heuristic path).
        let mut l = OcSvmMilLearner::new(rbf());
        let batch = l.score_all(&db);
        let single: Vec<f64> = db.iter().map(|b| l.score(b)).collect();
        assert_eq!(batch.len(), single.len());
        for (a, b) in batch.iter().zip(&single) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Trained learner (kernel-expansion path).
        let train: Vec<Bag> = (0..6)
            .map(|i| bag(i, hot_rows(0.8 + 0.02 * i as f64)))
            .collect();
        let fb: Vec<(usize, bool)> = (0..6).map(|i| (i, true)).collect();
        l.learn(&train, &fb);
        assert!(l.model().is_some());
        let batch = l.score_all(&db);
        let single: Vec<f64> = db.iter().map(|b| l.score(b)).collect();
        for (a, b) in batch.iter().zip(&single) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn memoized_gram_ranks_bit_identical_to_recompute() {
        // Feed identical feedback to a memoizing learner and a
        // from-scratch learner across several rounds; every score must
        // be bit-identical, fixed kernel and adaptive γ alike.
        for adaptive in [false, true] {
            let make = || {
                let l = OcSvmMilLearner::new(rbf());
                if adaptive {
                    l.with_adaptive_gamma(1.0)
                } else {
                    l
                }
            };
            let mut memo = make();
            let mut fresh = make().without_gram_memo();
            let bags: Vec<Bag> = (0..8)
                .map(|i| bag(i, hot_rows(0.5 + 0.05 * i as f64)))
                .collect();
            for round in 0..4 {
                let fb: Vec<(usize, bool)> =
                    (round * 2..round * 2 + 2).map(|i| (i, true)).collect();
                memo.learn(&bags, &fb);
                fresh.learn(&bags, &fb);
                let a = memo.score_all(&bags);
                let b = fresh.score_all(&bags);
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "round {round} adaptive={adaptive}: memo {x} vs fresh {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn learner_reports_name() {
        let l = OcSvmMilLearner::new(rbf());
        assert_eq!(l.name(), "MIL_OneClassSVM");
    }

    #[test]
    fn z_shifts_delta() {
        let mut a = OcSvmMilLearner::new(rbf()).with_z(0.0);
        let mut b = OcSvmMilLearner::new(rbf()).with_z(0.2);
        let bags = vec![Bag::new(
            0,
            vec![
                Instance::new(1, hot_rows(0.9)),
                Instance::new(2, hot_rows(0.85)),
            ],
        )];
        a.learn(&bags, &[(0, true)]);
        b.learn(&bags, &[(0, true)]);
        // Both hot TSs are collected: H = 2, h = 1.
        // δ_a = 1 - 0.5 = 0.5; δ_b = 1 - 0.7 = 0.3.
        assert!((a.delta().unwrap() - 0.5).abs() < 1e-12);
        assert!((b.delta().unwrap() - 0.3).abs() < 1e-12);
    }
}
