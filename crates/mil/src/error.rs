//! Typed errors for MIL rank/selection paths that previously panicked.
//!
//! The retrieval loop runs against adversarial databases (empty bags,
//! zero-round resumed sessions, clips whose tracker lost every vehicle);
//! those states are reportable conditions, not programming errors, so
//! the hot paths surface them as [`MilError`] instead of unwrapping.

use std::fmt;

/// A reportable failure in a MIL learner or session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilError {
    /// Every positively labeled bag was empty, so a concept-point search
    /// (Diverse Density / EM-DD) had no candidate starts.
    NoPositiveInstances,
    /// A session report holds no rankings (e.g. a session resumed with
    /// zero completed rounds), so there is no "final" ranking to read.
    EmptyRanking,
}

impl fmt::Display for MilError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MilError::NoPositiveInstances => {
                write!(f, "every positive bag is empty: no candidate instances")
            }
            MilError::EmptyRanking => {
                write!(f, "session report holds no rankings")
            }
        }
    }
}

impl std::error::Error for MilError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(MilError::NoPositiveInstances.to_string().contains("positive"));
        assert!(MilError::EmptyRanking.to_string().contains("rankings"));
    }
}
