//! Diverse Density and EM-DD reference baselines.
//!
//! The paper's literature review (§2.1) anchors its MIL mapping against
//! the classic MIL algorithms: Maron & Lozano-Pérez's Diverse Density
//! \[6\] and Zhang & Goldman's EM-DD \[7\]. They are implemented here as
//! additional [`Learner`]s so the experiment harness can compare the
//! paper's One-class-SVM approach against the methods it cites.
//!
//! Both learn a single *concept point* `t` in instance-feature space:
//!
//! * **DD** maximizes the diverse density
//!   `Π_{pos bags} P(t|B) · Π_{neg bags} (1 − P(t|B))` with the noisy-or
//!   bag model `P(t|B) = 1 − Π_j (1 − exp(−s‖x_j − t‖²))`, by gradient
//!   ascent from every positive instance (the standard multi-start
//!   scheme).
//! * **EM-DD** alternates picking the best instance per positive bag
//!   (E-step) with re-estimating `t` as the mean of the picked
//!   instances (simplified M-step; the original optimizes a Gaussian
//!   likelihood, for which the mean is the closed-form optimum when
//!   scales are fixed).
//!
//! Bags are scored by `max_j exp(−s‖x_j − t‖²)`.

use crate::bag::Bag;
use crate::error::MilError;
use crate::session::Learner;
use std::collections::HashSet;
use tsvr_linalg::vecops;

/// Shared bag-probability model.
fn instance_prob(x: &[f64], t: &[f64], scale: f64) -> f64 {
    (-scale * vecops::sq_dist(x, t)).exp()
}

fn bag_prob(bag: &[Vec<f64>], t: &[f64], scale: f64) -> f64 {
    let mut not_any = 1.0;
    for x in bag {
        not_any *= 1.0 - instance_prob(x, t, scale);
    }
    1.0 - not_any
}

/// Negative log diverse density (lower is better).
fn nldd(pos: &[Vec<Vec<f64>>], neg: &[Vec<Vec<f64>>], t: &[f64], scale: f64) -> f64 {
    const EPS: f64 = 1e-12;
    let mut nll = 0.0;
    for b in pos {
        nll -= bag_prob(b, t, scale).max(EPS).ln();
    }
    for b in neg {
        nll -= (1.0 - bag_prob(b, t, scale)).max(EPS).ln();
    }
    nll
}

/// Gradient of the negative log diverse density w.r.t. `t`.
fn nldd_grad(pos: &[Vec<Vec<f64>>], neg: &[Vec<Vec<f64>>], t: &[f64], scale: f64) -> Vec<f64> {
    const EPS: f64 = 1e-12;
    let d = t.len();
    let mut grad = vec![0.0; d];
    // d P(B)/dt = Σ_j [Π_{k≠j} (1 - p_k)] · dp_j/dt,
    // dp_j/dt = p_j · 2s (x_j - t).
    let mut accumulate = |bag: &Vec<Vec<f64>>, sign: f64, denom: f64| {
        // Products excluding one factor, computed via the full product
        // over (1 - p_k) divided out (guarded for p_k ≈ 1).
        let ps: Vec<f64> = bag.iter().map(|x| instance_prob(x, t, scale)).collect();
        for (j, x) in bag.iter().enumerate() {
            let mut others = 1.0;
            for (k, &p) in ps.iter().enumerate() {
                if k != j {
                    others *= 1.0 - p;
                }
            }
            let coeff = sign * others * ps[j] * 2.0 * scale / denom;
            for i in 0..d {
                grad[i] += coeff * (t[i] - x[i]);
            }
        }
    };
    for b in pos {
        // d(-ln P)/dt = -(dP/dt)/P ; dP/dt has a minus sign through
        // (t - x), folded into `accumulate`'s sign convention.
        let p = bag_prob(b, t, scale).max(EPS);
        accumulate(b, 1.0, p);
    }
    for b in neg {
        let q = (1.0 - bag_prob(b, t, scale)).max(EPS);
        accumulate(b, -1.0, q);
    }
    grad
}

/// Maron & Lozano-Pérez Diverse Density learner.
#[derive(Debug, Clone)]
pub struct DiverseDensityLearner {
    /// Distance scale `s` in the instance probability.
    pub scale: f64,
    /// Gradient-descent steps per start.
    pub steps: usize,
    /// Gradient step size.
    pub learning_rate: f64,
    positives: Vec<Vec<Vec<f64>>>,
    negatives: Vec<Vec<Vec<f64>>>,
    seen: HashSet<usize>,
    concept: Option<Vec<f64>>,
}

impl DiverseDensityLearner {
    /// Creates a DD learner with sensible defaults for unit-scaled
    /// features.
    pub fn new(scale: f64) -> Self {
        DiverseDensityLearner {
            scale,
            steps: 60,
            learning_rate: 0.05,
            positives: Vec::new(),
            negatives: Vec::new(),
            seen: HashSet::new(),
            concept: None,
        }
    }

    /// The learned concept point, if trained.
    pub fn concept(&self) -> Option<&[f64]> {
        self.concept.as_deref()
    }

    fn retrain(&mut self) -> Result<(), MilError> {
        if self.positives.is_empty() {
            return Ok(());
        }
        let mut best: Option<(f64, Vec<f64>)> = None;
        // Multi-start: every instance of every positive bag.
        for bag in &self.positives {
            for start in bag {
                let mut t = start.clone();
                for _ in 0..self.steps {
                    let g = nldd_grad(&self.positives, &self.negatives, &t, self.scale);
                    for (ti, gi) in t.iter_mut().zip(&g) {
                        *ti -= self.learning_rate * gi;
                    }
                }
                let obj = nldd(&self.positives, &self.negatives, &t, self.scale);
                if best.as_ref().map(|(b, _)| obj < *b).unwrap_or(true) {
                    best = Some((obj, t));
                }
            }
        }
        match best {
            Some((_, t)) => {
                self.concept = Some(t);
                Ok(())
            }
            // Every positive bag was empty (tracker lost all vehicles):
            // keep the previous concept instead of silently clearing it.
            None => Err(MilError::NoPositiveInstances),
        }
    }
}

impl Learner for DiverseDensityLearner {
    fn learn(&mut self, bags: &[Bag], feedback: &[(usize, bool)]) {
        for &(bag_id, relevant) in feedback {
            if !self.seen.insert(bag_id) {
                continue;
            }
            let Some(bag) = bags.iter().find(|b| b.id == bag_id) else {
                continue;
            };
            let instances: Vec<Vec<f64>> = bag.instances.iter().map(|i| i.concat()).collect();
            if relevant {
                self.positives.push(instances);
            } else {
                self.negatives.push(instances);
            }
        }
        // A failed retrain (every positive bag empty) keeps the
        // previous concept; the session degrades instead of panicking.
        let _ = self.retrain();
    }

    fn score(&self, bag: &Bag) -> f64 {
        match &self.concept {
            Some(t) => bag
                .instances
                .iter()
                .map(|i| instance_prob(&i.concat(), t, self.scale))
                .fold(f64::NEG_INFINITY, f64::max),
            None => crate::heuristic::bag_score(bag),
        }
    }

    fn name(&self) -> &'static str {
        "DiverseDensity"
    }
}

/// Zhang & Goldman EM-DD learner (simplified M-step).
#[derive(Debug, Clone)]
pub struct EmDdLearner {
    /// Distance scale `s` in the instance probability.
    pub scale: f64,
    /// Maximum EM iterations.
    pub max_iters: usize,
    positives: Vec<Vec<Vec<f64>>>,
    negatives: Vec<Vec<Vec<f64>>>,
    seen: HashSet<usize>,
    concept: Option<Vec<f64>>,
}

impl EmDdLearner {
    /// Creates an EM-DD learner.
    pub fn new(scale: f64) -> Self {
        EmDdLearner {
            scale,
            max_iters: 50,
            positives: Vec::new(),
            negatives: Vec::new(),
            seen: HashSet::new(),
            concept: None,
        }
    }

    /// The learned concept point, if trained.
    pub fn concept(&self) -> Option<&[f64]> {
        self.concept.as_deref()
    }

    fn retrain(&mut self) -> Result<(), MilError> {
        if self.positives.is_empty() {
            return Ok(());
        }
        // Start from the instance with the best diverse density. When
        // every positive bag is empty there is no candidate start:
        // keep the previous concept and report the condition instead
        // of unwrapping.
        let mut t = {
            let mut best: Option<(f64, Vec<f64>)> = None;
            for bag in &self.positives {
                for x in bag {
                    let obj = nldd(&self.positives, &self.negatives, x, self.scale);
                    if best.as_ref().map(|(b, _)| obj < *b).unwrap_or(true) {
                        best = Some((obj, x.clone()));
                    }
                }
            }
            match best {
                Some((_, t)) => t,
                None => return Err(MilError::NoPositiveInstances),
            }
        };

        let mut prev_selection: Option<Vec<(usize, usize)>> = None;
        for _ in 0..self.max_iters {
            // E-step: the most concept-like instance per non-empty
            // positive bag (an empty bag simply contributes nothing —
            // identical selections when no bag is empty).
            let selection: Vec<(usize, usize)> = self
                .positives
                .iter()
                .enumerate()
                .filter_map(|(b, bag)| {
                    (0..bag.len())
                        .min_by(|&a, &c| {
                            crate::heuristic::nan_to_highest(vecops::sq_dist(&bag[a], &t))
                                .total_cmp(&crate::heuristic::nan_to_highest(vecops::sq_dist(
                                    &bag[c], &t,
                                )))
                        })
                        .map(|j| (b, j))
                })
                .collect();
            if prev_selection.as_ref() == Some(&selection) {
                break;
            }
            // M-step: mean of the selected instances (bit-identical to
            // dividing by the positive-bag count when none is empty).
            let d = t.len();
            let mut mean = vec![0.0; d];
            for &(b, j) in &selection {
                for (m, &x) in mean.iter_mut().zip(&self.positives[b][j]) {
                    *m += x;
                }
            }
            for m in &mut mean {
                *m /= selection.len() as f64;
            }
            t = mean;
            prev_selection = Some(selection);
        }
        self.concept = Some(t);
        Ok(())
    }
}

impl Learner for EmDdLearner {
    fn learn(&mut self, bags: &[Bag], feedback: &[(usize, bool)]) {
        for &(bag_id, relevant) in feedback {
            if !self.seen.insert(bag_id) {
                continue;
            }
            let Some(bag) = bags.iter().find(|b| b.id == bag_id) else {
                continue;
            };
            let instances: Vec<Vec<f64>> = bag.instances.iter().map(|i| i.concat()).collect();
            if relevant {
                self.positives.push(instances);
            } else {
                self.negatives.push(instances);
            }
        }
        // A failed retrain (every positive bag empty) keeps the
        // previous concept; the session degrades instead of panicking.
        let _ = self.retrain();
    }

    fn score(&self, bag: &Bag) -> f64 {
        match &self.concept {
            Some(t) => bag
                .instances
                .iter()
                .map(|i| instance_prob(&i.concat(), t, self.scale))
                .fold(f64::NEG_INFINITY, f64::max),
            None => crate::heuristic::bag_score(bag),
        }
    }

    fn name(&self) -> &'static str {
        "EM-DD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bag::Instance;

    /// Positive bags share a concept instance near `c`; every bag also
    /// carries background instances near the origin.
    fn dataset(c: &[f64]) -> (Vec<Bag>, Vec<(usize, bool)>) {
        let mut bags = Vec::new();
        let mut fb = Vec::new();
        for i in 0..6 {
            let j = i as f64 * 0.01;
            let bg = Instance::new(0, vec![vec![0.05 + j, 0.02, 0.0]]);
            let hot = Instance::new(1, vec![vec![c[0] + j, c[1] - j, c[2]]]);
            let positive = i % 2 == 0;
            let instances = if positive { vec![bg, hot] } else { vec![bg] };
            bags.push(Bag::new(i, instances));
            fb.push((i, positive));
        }
        (bags, fb)
    }

    const CONCEPT: [f64; 3] = [0.7, 0.8, 0.5];

    #[test]
    fn dd_finds_the_shared_concept() {
        let (bags, fb) = dataset(&CONCEPT);
        let mut l = DiverseDensityLearner::new(4.0);
        l.learn(&bags, &fb);
        let t = l.concept().expect("trained");
        let d = vecops::dist(t, &CONCEPT);
        assert!(d < 0.15, "concept off by {d}: {t:?}");
    }

    #[test]
    fn dd_ranks_concept_bags_higher() {
        let (bags, fb) = dataset(&CONCEPT);
        let mut l = DiverseDensityLearner::new(4.0);
        l.learn(&bags, &fb);
        let hot = Bag::new(100, vec![Instance::new(0, vec![vec![0.7, 0.8, 0.5]])]);
        let cold = Bag::new(101, vec![Instance::new(0, vec![vec![0.05, 0.0, 0.0]])]);
        assert!(l.score(&hot) > l.score(&cold));
    }

    #[test]
    fn dd_untrained_falls_back_to_heuristic() {
        let l = DiverseDensityLearner::new(4.0);
        let hot = Bag::new(0, vec![Instance::new(0, vec![vec![0.9, 0.9, 0.9]])]);
        let cold = Bag::new(1, vec![Instance::new(0, vec![vec![0.0, 0.0, 0.0]])]);
        assert!(l.score(&hot) > l.score(&cold));
        assert!(l.concept().is_none());
    }

    #[test]
    fn emdd_finds_the_shared_concept() {
        let (bags, fb) = dataset(&CONCEPT);
        let mut l = EmDdLearner::new(4.0);
        l.learn(&bags, &fb);
        let t = l.concept().expect("trained");
        let d = vecops::dist(t, &CONCEPT);
        assert!(d < 0.1, "concept off by {d}: {t:?}");
    }

    #[test]
    fn emdd_selection_converges() {
        let (bags, fb) = dataset(&CONCEPT);
        let mut l = EmDdLearner::new(4.0);
        l.learn(&bags, &fb);
        // Re-training on the same data must be stable.
        let t1 = l.concept().unwrap().to_vec();
        l.retrain().expect("non-empty positives retrain");
        let t2 = l.concept().unwrap();
        assert!(vecops::dist(&t1, t2) < 1e-9);
    }

    #[test]
    fn all_empty_positive_bags_do_not_panic() {
        // Relevant bags whose tracker lost every vehicle: positives
        // exist but hold zero instances. Both learners must survive
        // (previously an unwrap panic in EM-DD's best-start search).
        let bags = vec![Bag::new(0, vec![]), Bag::new(1, vec![])];
        let fb = vec![(0, true), (1, true)];
        let mut dd = DiverseDensityLearner::new(4.0);
        let mut em = EmDdLearner::new(4.0);
        dd.learn(&bags, &fb);
        em.learn(&bags, &fb);
        assert!(dd.concept().is_none());
        assert!(em.concept().is_none());
        assert_eq!(dd.retrain(), Err(MilError::NoPositiveInstances));
        assert_eq!(em.retrain(), Err(MilError::NoPositiveInstances));
    }

    #[test]
    fn empty_positive_bag_among_real_ones_is_skipped() {
        // One empty relevant bag must not panic the E-step or shift
        // the concept away from what the real bags imply.
        let (mut bags, mut fb) = dataset(&CONCEPT);
        bags.push(Bag::new(50, vec![]));
        fb.push((50, true));
        let mut em = EmDdLearner::new(4.0);
        em.learn(&bags, &fb);
        let t = em.concept().expect("trained");
        let d = vecops::dist(t, &CONCEPT);
        assert!(d < 0.1, "concept off by {d}: {t:?}");
    }

    #[test]
    fn emdd_retrain_keeps_previous_concept_on_failure() {
        let (bags, fb) = dataset(&CONCEPT);
        let mut em = EmDdLearner::new(4.0);
        em.learn(&bags, &fb);
        let before = em.concept().unwrap().to_vec();
        // A later round contributes only an empty relevant bag; the
        // usable earlier concept must survive.
        em.learn(&[Bag::new(90, vec![])], &[(90, true)]);
        let after = em.concept().expect("concept retained");
        // Retraining reruns on all accumulated bags (the empty one is
        // skipped), so the concept stays where the data puts it.
        assert!(vecops::dist(&before, after) < 1e-9);
    }

    #[test]
    fn negative_only_feedback_trains_nothing() {
        let (bags, _) = dataset(&CONCEPT);
        let mut dd = DiverseDensityLearner::new(4.0);
        let mut em = EmDdLearner::new(4.0);
        let neg_fb: Vec<(usize, bool)> = (0..bags.len()).map(|i| (i, false)).collect();
        dd.learn(&bags, &neg_fb);
        em.learn(&bags, &neg_fb);
        assert!(dd.concept().is_none());
        assert!(em.concept().is_none());
    }

    #[test]
    fn bag_prob_is_noisy_or() {
        let bag = vec![vec![0.0, 0.0], vec![1.0, 0.0]];
        let t = [0.0, 0.0];
        let p = bag_prob(&bag, &t, 1.0);
        let p1 = instance_prob(&bag[0], &t, 1.0);
        let p2 = instance_prob(&bag[1], &t, 1.0);
        assert!((p - (1.0 - (1.0 - p1) * (1.0 - p2))).abs() < 1e-12);
        assert!(p >= p1.max(p2));
    }

    #[test]
    fn gradient_points_downhill() {
        let (bags, fb) = dataset(&CONCEPT);
        let mut l = DiverseDensityLearner::new(4.0);
        l.learn(&bags, &fb);
        // Finite-difference check at a probe point.
        let pos = &l.positives;
        let neg = &l.negatives;
        let t = vec![0.4, 0.4, 0.4];
        let g = nldd_grad(pos, neg, &t, 4.0);
        let h = 1e-6;
        for i in 0..3 {
            let mut tp = t.clone();
            tp[i] += h;
            let mut tm = t.clone();
            tm[i] -= h;
            let fd = (nldd(pos, neg, &tp, 4.0) - nldd(pos, neg, &tm, 4.0)) / (2.0 * h);
            assert!(
                (g[i] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                "dim {i}: analytic {} vs fd {fd}",
                g[i]
            );
        }
    }
}
