//! MI-SVM (Andrews, Tsochantaridis & Hofmann, NIPS 2003 — the paper's
//! reference \[16\]).
//!
//! The maximum-pattern-margin formulation solved by the standard
//! alternating heuristic:
//!
//! 1. initialize each positive bag's *witness* as its heuristically
//!    best instance;
//! 2. train a binary C-SVM on {witnesses} vs {all instances of negative
//!    bags};
//! 3. re-select each positive bag's witness as its highest-decision
//!    instance;
//! 4. repeat until the witness selection stabilizes.
//!
//! Bags are scored by the maximum decision value over their instances —
//! the same MIL max-rule the one-class learner uses, which makes the two
//! directly comparable in the experiment harness. Unlike the paper's
//! one-class method, MI-SVM *requires* negative bags, so in early rounds
//! with few irrelevant labels it can be under-constrained.

use crate::bag::Bag;
use crate::heuristic;
use crate::session::Learner;
use std::collections::HashSet;
use tsvr_svm::{Kernel, Svc, SvcModel};

/// The MI-SVM learner.
#[derive(Debug, Clone)]
pub struct MiSvmLearner {
    /// Kernel for the inner binary SVM.
    pub kernel: Kernel,
    /// Soft-margin penalty.
    pub c: f64,
    /// Maximum witness-reselection iterations.
    pub max_outer_iters: usize,
    positives: Vec<Vec<Vec<f64>>>,
    negatives: Vec<Vec<Vec<f64>>>,
    seen: HashSet<usize>,
    model: Option<SvcModel>,
}

impl MiSvmLearner {
    /// Creates a learner with the given kernel and C.
    pub fn new(kernel: Kernel, c: f64) -> MiSvmLearner {
        MiSvmLearner {
            kernel,
            c,
            max_outer_iters: 20,
            positives: Vec::new(),
            negatives: Vec::new(),
            seen: HashSet::new(),
            model: None,
        }
    }

    /// The trained inner SVM, if any.
    pub fn model(&self) -> Option<&SvcModel> {
        self.model.as_ref()
    }

    fn retrain(&mut self) {
        if self.positives.is_empty() || self.negatives.is_empty() {
            return; // under-constrained: keep the previous model
        }
        let neg_instances: Vec<Vec<f64>> = self
            .negatives
            .iter()
            .flat_map(|b| b.iter().cloned())
            .collect();

        // Initial witnesses: the instance with the largest squared norm
        // (the heuristic peak) of each positive bag.
        let mut witnesses: Vec<usize> = self
            .positives
            .iter()
            .map(|bag| {
                (0..bag.len())
                    .max_by(|&a, &b| {
                        let na: f64 = bag[a].iter().map(|x| x * x).sum();
                        let nb: f64 = bag[b].iter().map(|x| x * x).sum();
                        crate::heuristic::nan_to_lowest(na)
                            .total_cmp(&crate::heuristic::nan_to_lowest(nb))
                    })
                    .unwrap_or(0)
            })
            .collect();

        let mut model = None;
        for _ in 0..self.max_outer_iters {
            let mut data: Vec<Vec<f64>> = witnesses
                .iter()
                .zip(&self.positives)
                .map(|(&w, bag)| bag[w].clone())
                .collect();
            let mut labels = vec![true; data.len()];
            data.extend(neg_instances.iter().cloned());
            labels.extend(vec![false; neg_instances.len()]);

            let Ok(m) = Svc::new(self.kernel, self.c).fit(&data, &labels) else {
                break; // degenerate split: keep the last good model
            };

            // Witness reselection.
            let new_witnesses: Vec<usize> = self
                .positives
                .iter()
                .map(|bag| {
                    (0..bag.len())
                        .max_by(|&a, &b| {
                            crate::heuristic::nan_to_lowest(m.decision(&bag[a]))
                                .total_cmp(&crate::heuristic::nan_to_lowest(m.decision(&bag[b])))
                        })
                        .unwrap_or(0)
                })
                .collect();
            let stable = new_witnesses == witnesses;
            witnesses = new_witnesses;
            model = Some(m);
            if stable {
                break;
            }
        }
        if model.is_some() {
            self.model = model;
        }
    }
}

impl Learner for MiSvmLearner {
    fn learn(&mut self, bags: &[Bag], feedback: &[(usize, bool)]) {
        for &(bag_id, relevant) in feedback {
            if !self.seen.insert(bag_id) {
                continue;
            }
            let Some(bag) = bags.iter().find(|b| b.id == bag_id) else {
                continue;
            };
            let instances: Vec<Vec<f64>> = bag.instances.iter().map(|i| i.concat()).collect();
            if instances.is_empty() {
                continue;
            }
            if relevant {
                self.positives.push(instances);
            } else {
                self.negatives.push(instances);
            }
        }
        self.retrain();
    }

    fn score(&self, bag: &Bag) -> f64 {
        match &self.model {
            Some(m) => bag
                .instances
                .iter()
                .map(|i| m.decision(&i.concat()))
                .fold(f64::NEG_INFINITY, f64::max),
            None => heuristic::bag_score(bag),
        }
    }

    fn name(&self) -> &'static str {
        "MI-SVM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bag::Instance;

    fn bag(id: usize, rows: Vec<Vec<Vec<f64>>>) -> Bag {
        Bag::new(
            id,
            rows.into_iter()
                .enumerate()
                .map(|(i, points)| Instance::new(i as u64, points))
                .collect(),
        )
    }

    fn hot(level: f64) -> Vec<Vec<f64>> {
        vec![vec![level, level * 0.7, 0.1], vec![0.05, 0.0, 0.0]]
    }

    fn quiet(jit: f64) -> Vec<Vec<f64>> {
        vec![vec![0.02 + jit, 0.01, 0.0], vec![0.01, 0.02, jit]]
    }

    fn dataset() -> (Vec<Bag>, Vec<(usize, bool)>) {
        let mut bags = Vec::new();
        let mut fb = Vec::new();
        for i in 0..8 {
            let j = i as f64 * 0.008;
            let positive = i % 2 == 0;
            let instances = if positive {
                vec![quiet(j), hot(0.75 + j)]
            } else {
                vec![quiet(j), quiet(j + 0.004)]
            };
            bags.push(bag(i, instances));
            fb.push((i, positive));
        }
        (bags, fb)
    }

    fn rbf() -> Kernel {
        Kernel::Rbf { gamma: 4.0 }
    }

    #[test]
    fn learns_witnesses_and_separates() {
        let (bags, fb) = dataset();
        let mut l = MiSvmLearner::new(rbf(), 10.0);
        l.learn(&bags, &fb);
        assert!(l.model().is_some());
        let hot_bag = bag(100, vec![quiet(0.0), hot(0.77)]);
        let cold_bag = bag(101, vec![quiet(0.0), quiet(0.001)]);
        assert!(
            l.score(&hot_bag) > l.score(&cold_bag),
            "hot {} vs cold {}",
            l.score(&hot_bag),
            l.score(&cold_bag)
        );
        assert!(l.score(&hot_bag) > 0.0, "positive bag below the margin");
        assert!(l.score(&cold_bag) < 0.0, "negative bag above the margin");
    }

    #[test]
    fn without_negatives_falls_back_to_heuristic() {
        let (bags, _) = dataset();
        let mut l = MiSvmLearner::new(rbf(), 10.0);
        l.learn(&bags, &[(0, true), (2, true)]);
        assert!(l.model().is_none());
        // Heuristic fallback still orders hot above cold.
        let hot_bag = bag(100, vec![hot(0.8)]);
        let cold_bag = bag(101, vec![quiet(0.0)]);
        assert!(l.score(&hot_bag) > l.score(&cold_bag));
    }

    #[test]
    fn repeated_feedback_is_idempotent() {
        let (bags, fb) = dataset();
        let mut l = MiSvmLearner::new(rbf(), 10.0);
        l.learn(&bags, &fb);
        let s1 = l.score(&bags[0]);
        l.learn(&bags, &fb);
        let s2 = l.score(&bags[0]);
        assert_eq!(s1, s2);
    }

    #[test]
    fn witness_is_the_hot_instance() {
        // After training, the positive bag's max-decision instance must
        // be the hot one, not the quiet cover.
        let (bags, fb) = dataset();
        let mut l = MiSvmLearner::new(rbf(), 10.0);
        l.learn(&bags, &fb);
        let m = l.model().unwrap();
        let b = &bags[0]; // positive: [quiet, hot]
        let d_quiet = m.decision(&b.instances[0].concat());
        let d_hot = m.decision(&b.instances[1].concat());
        assert!(d_hot > d_quiet);
    }

    #[test]
    fn reports_name() {
        assert_eq!(MiSvmLearner::new(rbf(), 1.0).name(), "MI-SVM");
    }
}
