//! # tsvr-mil
//!
//! The paper's primary contribution: an interactive Multiple Instance
//! Learning framework for semantic video retrieval with relevance
//! feedback (§5).
//!
//! The mapping (§5.1): a Video Sequence (window of video) is a *bag*,
//! the Trajectory Sequences of the vehicles inside it are *instances*.
//! The user labels whole bags ("relevant"/"irrelevant"); instance labels
//! are latent. A bag is relevant iff it contains at least one relevant
//! instance (Eq. 3–4).
//!
//! * [`bag`] — bags and instances (sequences of per-checkpoint feature
//!   rows);
//! * [`heuristic`] — the initial, feedback-free query scorer (§5.3);
//! * [`ocsvm`] — the proposed learner: One-class SVM trained on the
//!   trajectory sequences of relevant bags, with the outlier fraction
//!   `δ = 1 − (h/H + z)` of Eq. 9;
//! * [`weighted_rf`] — the comparison baseline: per-feature re-weighting
//!   by inverse standard deviation with three normalization schemes
//!   (§6.2);
//! * [`oracle`] — relevance oracles standing in for the human user;
//! * [`session`] — the iterative retrieval loop (rank → top-n feedback →
//!   learn → re-rank) and its accuracy trace;
//! * [`metrics`] — accuracy@n and auxiliary retrieval metrics;
//! * [`dd`] — Diverse Density and EM-DD reference baselines from the MIL
//!   literature the paper reviews (§2.1);
//! * [`misvm`] — the MI-SVM baseline (Andrews et al. \[16\]);
//! * [`qbe`] — query by example (the paper's §7 future work).
//!
//! Feature rows are assumed pre-scaled to comparable ranges (the
//! pipeline applies fixed physical-range normalization); see `tsvr-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bag;
pub mod dd;
pub mod error;
pub mod heuristic;
pub mod metrics;
pub mod misvm;
pub mod ocsvm;
pub mod oracle;
pub mod qbe;
pub mod session;
pub mod weighted_rf;

pub use bag::{Bag, Instance};
pub use error::MilError;
pub use misvm::MiSvmLearner;
pub use ocsvm::OcSvmMilLearner;
pub use oracle::{GroundTruthOracle, Oracle};
pub use qbe::QueryByExample;
pub use session::{Learner, RetrievalSession, SessionConfig, SessionReport};
pub use weighted_rf::{Normalization, WeightedRfLearner};
