//! Retrieval metrics.
//!
//! The paper's headline measure is *accuracy*: "the percentage of all
//! the 'relevant' VSs within the top n (e.g. n=20) returned VSs"
//! (§6.2) — chosen because the total number of correct results is
//! unknown to a deployed system. With simulated ground truth we can
//! additionally report precision/recall and average precision.

/// Accuracy@n: fraction of the top-`n` ranked bags that are relevant.
///
/// When fewer than `n` bags exist, the denominator stays `n` (matching
/// the paper's fixed-size result page).
pub fn accuracy_at(ranking: &[usize], labels: &[bool], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let hits = ranking
        .iter()
        .take(n)
        .filter(|&&b| labels.get(b).copied().unwrap_or(false))
        .count();
    hits as f64 / n as f64
}

/// Precision@n: fraction of the *returned* results in the top `n` that
/// are relevant. Unlike [`accuracy_at`] the denominator is the number
/// of results actually returned (`min(n, ranking.len())`), so a short
/// result list is not penalized for empty slots.
pub fn precision_at(ranking: &[usize], labels: &[bool], n: usize) -> f64 {
    let page = ranking.len().min(n);
    if page == 0 {
        return 0.0;
    }
    let hits = ranking
        .iter()
        .take(n)
        .filter(|&&b| labels.get(b).copied().unwrap_or(false))
        .count();
    hits as f64 / page as f64
}

/// Ranks indices `0..scores.len()` by descending score with the same
/// deterministic order as `core::query::TopK`: comparison is total
/// ([`f64::total_cmp`] with NaN demoted to `-inf`), and exact score
/// ties break toward the *lower* index. A top-`k` prefix of this
/// ranking therefore never depends on input order or thread count —
/// precision@k straddling a tie is well-defined and reproducible.
pub fn rank_with_ties(scores: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    let key = |i: usize| {
        let s = scores[i];
        if s.is_nan() {
            f64::NEG_INFINITY
        } else {
            s
        }
    };
    idx.sort_by(|&a, &b| key(b).total_cmp(&key(a)).then(a.cmp(&b)));
    idx
}

/// Recall@n: fraction of all relevant bags that appear in the top `n`.
pub fn recall_at(ranking: &[usize], labels: &[bool], n: usize) -> f64 {
    let total_relevant = labels.iter().filter(|&&l| l).count();
    if total_relevant == 0 {
        return 0.0;
    }
    let hits = ranking
        .iter()
        .take(n)
        .filter(|&&b| labels.get(b).copied().unwrap_or(false))
        .count();
    hits as f64 / total_relevant as f64
}

/// Average precision over the full ranking.
pub fn average_precision(ranking: &[usize], labels: &[bool]) -> f64 {
    let total_relevant = labels.iter().filter(|&&l| l).count();
    if total_relevant == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, &b) in ranking.iter().enumerate() {
        if labels.get(b).copied().unwrap_or(false) {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / total_relevant as f64
}

/// The best achievable accuracy@n given the number of relevant bags
/// (the ceiling the paper's curves saturate against).
pub fn accuracy_ceiling(labels: &[bool], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let total_relevant = labels.iter().filter(|&&l| l).count();
    (total_relevant.min(n)) as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> Vec<bool> {
        // Bags 0, 2, 5 are relevant.
        vec![true, false, true, false, false, true, false, false]
    }

    #[test]
    fn accuracy_counts_top_n_hits() {
        let l = labels();
        assert_eq!(accuracy_at(&[0, 2, 5, 1], &l, 3), 1.0);
        assert_eq!(accuracy_at(&[1, 3, 4, 0], &l, 3), 0.0);
        assert_eq!(accuracy_at(&[0, 1, 2, 3], &l, 4), 0.5);
    }

    #[test]
    fn accuracy_denominator_is_n() {
        let l = labels();
        // Only 2 results returned but n = 4: the empty slots count
        // against accuracy, like a half-empty result page.
        assert_eq!(accuracy_at(&[0, 2], &l, 4), 0.5);
        assert_eq!(accuracy_at(&[], &l, 4), 0.0);
        assert_eq!(accuracy_at(&[0], &l, 0), 0.0);
    }

    #[test]
    fn recall_uses_total_relevant() {
        let l = labels();
        assert_eq!(recall_at(&[0, 2, 1, 3], &l, 2), 2.0 / 3.0);
        assert_eq!(recall_at(&[0, 2, 5], &l, 3), 1.0);
        assert_eq!(recall_at(&[0], &[false; 5], 1), 0.0);
    }

    #[test]
    fn average_precision_perfect_ranking() {
        let l = labels();
        let ap = average_precision(&[0, 2, 5, 1, 3, 4, 6, 7], &l);
        assert!((ap - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_precision_worst_ranking() {
        let l = labels();
        let ap = average_precision(&[1, 3, 4, 6, 7, 0, 2, 5], &l);
        // Hits at positions 6,7,8: AP = (1/6 + 2/7 + 3/8)/3.
        let want = (1.0 / 6.0 + 2.0 / 7.0 + 3.0 / 8.0) / 3.0;
        assert!((ap - want).abs() < 1e-12);
        assert!(ap < 0.5);
    }

    #[test]
    fn ceiling_reflects_scarcity() {
        let l = labels(); // 3 relevant
        assert_eq!(accuracy_ceiling(&l, 20), 3.0 / 20.0);
        assert_eq!(accuracy_ceiling(&l, 2), 1.0);
        assert_eq!(accuracy_ceiling(&l, 0), 0.0);
    }

    #[test]
    fn out_of_range_bags_count_as_irrelevant() {
        let l = labels();
        assert_eq!(accuracy_at(&[100, 101], &l, 2), 0.0);
    }

    #[test]
    fn precision_divides_by_returned_page() {
        let l = labels();
        assert_eq!(precision_at(&[0, 2], &l, 4), 1.0); // 2 hits / 2 returned
        assert_eq!(precision_at(&[0, 1, 2, 3], &l, 4), 0.5);
        assert_eq!(precision_at(&[], &l, 4), 0.0);
        assert_eq!(precision_at(&[0], &l, 0), 0.0);
    }

    #[test]
    fn rank_with_ties_breaks_toward_lower_index() {
        // Three-way tie at 0.5: indices must come out ascending, so a
        // top-2 prefix that straddles the tie is deterministic.
        let ranking = rank_with_ties(&[0.5, 0.9, 0.5, 0.5, 0.1]);
        assert_eq!(ranking, vec![1, 0, 2, 3, 4]);
        let l = [false, true, true, false, false];
        assert_eq!(precision_at(&ranking, &l, 2), 0.5);
    }

    #[test]
    fn rank_with_ties_demotes_nan_without_panicking() {
        let ranking = rank_with_ties(&[f64::NAN, 0.2, f64::NAN, 0.7]);
        assert_eq!(ranking, vec![3, 1, 0, 2]);
    }

    #[test]
    fn rank_with_ties_matches_session_rank_scores() {
        // The session-level ranker must share this ordering exactly
        // (bag ids there are the indices here).
        let scores = [0.4, 0.4, f64::NAN, 0.8, 0.4];
        let bags: Vec<crate::bag::Bag> = (0..scores.len())
            .map(|i| {
                crate::bag::Bag::new(
                    i,
                    vec![crate::bag::Instance::new(i as u64, vec![vec![0.0; 3]])],
                )
            })
            .collect();
        assert_eq!(
            rank_with_ties(&scores),
            crate::session::rank_scores(&bags, &scores)
        );
    }
}
