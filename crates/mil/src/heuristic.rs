//! The initial (feedback-free) query heuristic of §5.3.
//!
//! Before any relevance feedback exists, a bag's relevance is scored by
//! event-specific heuristics: the score of a sampling point is "the
//! square sum of all the three features in the feature vector
//! `α_i = [1/mdist_i, vdiff_i, θ_i]`"; a TS scores as its highest
//! sampling point, and a VS as its highest TS:
//! `S_v = max(S_T1, …, S_Tn)`, `S_Ti = max(S_a1, …, S_an)`.

use crate::bag::{Bag, Instance};

/// Squared-sum score of one sampling point.
pub fn point_score(row: &[f64]) -> f64 {
    row.iter().map(|x| x * x).sum()
}

/// Score of a trajectory sequence: its best sampling point.
pub fn instance_score(instance: &Instance) -> f64 {
    instance
        .points
        .iter()
        .map(|p| point_score(p))
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Score of a video sequence: its best trajectory sequence. Empty bags
/// score `-inf` (they can never be retrieved).
pub fn bag_score(bag: &Bag) -> f64 {
    bag.instances
        .iter()
        .map(instance_score)
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Index of the highest-scoring instance in a bag, if any.
pub fn best_instance(bag: &Bag) -> Option<usize> {
    (0..bag.instances.len()).max_by(|&a, &b| {
        instance_score(&bag.instances[a])
            .partial_cmp(&instance_score(&bag.instances[b]))
            .unwrap()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> Instance {
        Instance::new(1, vec![vec![0.01, 0.02, 0.0]; 3])
    }

    fn hot() -> Instance {
        Instance::new(
            2,
            vec![
                vec![0.0, 0.0, 0.0],
                vec![0.3, 0.9, 0.8], // accident checkpoint
                vec![0.1, 0.1, 0.0],
            ],
        )
    }

    #[test]
    fn point_score_is_square_sum() {
        assert!((point_score(&[0.3, 0.9, 0.8]) - (0.09 + 0.81 + 0.64)).abs() < 1e-12);
        assert_eq!(point_score(&[]), 0.0);
    }

    #[test]
    fn instance_takes_max_point() {
        assert!((instance_score(&hot()) - 1.54).abs() < 1e-12);
    }

    #[test]
    fn bag_takes_max_instance() {
        let b = Bag::new(0, vec![quiet(), hot()]);
        assert!((bag_score(&b) - 1.54).abs() < 1e-12);
        assert_eq!(best_instance(&b), Some(1));
    }

    #[test]
    fn hot_bag_outranks_quiet_bag() {
        let hot_bag = Bag::new(0, vec![quiet(), hot()]);
        let quiet_bag = Bag::new(1, vec![quiet(), quiet()]);
        assert!(bag_score(&hot_bag) > bag_score(&quiet_bag));
    }

    #[test]
    fn empty_bag_scores_neg_infinity() {
        let b = Bag::new(0, vec![]);
        assert_eq!(bag_score(&b), f64::NEG_INFINITY);
        assert_eq!(best_instance(&b), None);
    }
}
